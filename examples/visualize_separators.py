#!/usr/bin/env python3
"""Render separator hierarchies as SVGs.

Draws the first two decomposition levels of a mesh and of a random
Delaunay graph, with separator paths colored by phase, into
``./separator_*.svg`` — open them in a browser to *see* Definition 1
at work: a couple of shortest paths slicing the graph in half, then
each half again.

Run:  python examples/visualize_separators.py
"""

from __future__ import annotations

from repro.core import build_decomposition
from repro.core.separator import PathSeparator
from repro.generators import grid_2d, random_delaunay_graph
from repro.viz import grid_positions, render_svg, save_svg


def combined_top_levels(tree, max_depth: int = 1) -> PathSeparator:
    """One PathSeparator holding every separator at depth <= max_depth
    (for display only: phases from different nodes are concatenated)."""
    combined = PathSeparator()
    for node in tree.nodes:
        if node.depth <= max_depth:
            combined.phases.extend(node.separator.phases)
    return combined


def main() -> None:
    outputs = []

    grid = grid_2d(24)
    tree = build_decomposition(grid)
    svg = render_svg(
        grid, grid_positions(grid), separator=combined_top_levels(tree)
    )
    save_svg(svg, "separator_grid.svg")
    outputs.append(("separator_grid.svg", grid, tree))

    delaunay, positions = random_delaunay_graph(400, seed=3)
    tree_d = build_decomposition(delaunay)
    svg = render_svg(
        delaunay, positions, separator=combined_top_levels(tree_d)
    )
    save_svg(svg, "separator_delaunay.svg")
    outputs.append(("separator_delaunay.svg", delaunay, tree_d))

    for name, graph, t in outputs:
        stats = t.stats()
        print(
            f"{name}: n={graph.num_vertices}, depth={stats['depth']}, "
            f"k_max={stats['max_paths_per_node']} — levels 0-1 drawn"
        )
    print("\nOpen the SVGs in a browser; separator paths are colored by phase.")


if __name__ == "__main__":
    main()
