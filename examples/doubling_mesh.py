#!/usr/bin/env python3
"""Doubling separators on a 3D mesh (Section 5.3 / Theorem 8).

A 3D mesh is the paper's motivating example for generalizing path
separators: its balanced separators are 2D planes, so no O(1)-path
separator exists — but the planes are isometric subgraphs of low
doubling dimension, making the mesh (1, ~2)-doubling separable.

This example shows the contrast concretely: greedy *path* peeling
burns many paths, while the plane decomposition uses one isometric
subgraph per level and the metric-net oracle answers (1+eps) queries.

Run:  python examples/doubling_mesh.py
"""

from __future__ import annotations

import random

from repro.core import (
    GreedyPeelingEngine,
    MetricNetOracle,
    doubling_dimension_estimate,
    grid3d_doubling_decomposition,
)
from repro.generators import grid_3d
from repro.graphs import dijkstra, induced_subgraph
from repro.util import Timer, format_table


def main() -> None:
    graph = grid_3d(6)
    print(f"3D mesh: {graph}")

    # --- Why paths are not enough -----------------------------------
    separator = GreedyPeelingEngine(num_candidates=8, seed=0).find_separator(graph)
    decomposition = grid3d_doubling_decomposition(graph)
    plane = decomposition.nodes[0].separator
    plane_graph = induced_subgraph(graph, plane)
    rows = [
        ["paths needed to halve (greedy peeling)", separator.num_paths],
        ["plane separators needed (Definition P1')", 1],
        ["plane size (vertices)", len(plane)],
        ["alpha estimate, whole mesh", round(doubling_dimension_estimate(graph, 8), 2)],
        ["alpha estimate, separator plane", round(doubling_dimension_estimate(plane_graph, 8), 2)],
    ]
    print(format_table(["metric", "value"], rows, title="path vs doubling separators"))

    # --- Theorem 8 oracle -------------------------------------------
    epsilon = 0.25
    with Timer() as t:
        oracle = MetricNetOracle(graph, decomposition, epsilon=epsilon)
    rng = random.Random(1)
    vertices = sorted(graph.vertices())
    worst = 1.0
    for _ in range(200):
        u, v = rng.choice(vertices), rng.choice(vertices)
        if u == v:
            continue
        true = dijkstra(graph, u)[0][v]
        worst = max(worst, oracle.query(u, v) / true)
    report = oracle.size_report()
    print()
    print(
        format_table(
            ["metric", "value"],
            [
                ["build time (s)", round(t.elapsed, 2)],
                ["worst stretch over 200 queries", round(worst, 4)],
                ["guaranteed", 1 + epsilon],
                ["mean label (words)", round(report.mean_words, 1)],
            ],
            title="metric-net oracle (Theorem 8)",
        )
    )
    assert worst <= 1 + epsilon + 1e-9


if __name__ == "__main__":
    main()
