#!/usr/bin/env python3
"""Small-worldization of a P2P overlay (Section 4 / Theorem 3).

Takes a planar physical topology (think: a mesh of edge routers), adds
ONE long-range contact per node drawn from the paper's path-separator
landmark distribution, and measures how many greedy hops messages need
— against Kleinberg's harmonic augmentation, a uniform augmentation,
and the unaugmented network.

Run:  python examples/p2p_overlay.py
"""

from __future__ import annotations

import math
import random

from repro import GreedyRouter, PathSeparatorAugmentation, build_decomposition
from repro.baselines import KleinbergAugmentation, UniformAugmentation
from repro.core import AugmentedGraph
from repro.generators import grid_2d
from repro.util import format_table


def main() -> None:
    side = 24
    graph = grid_2d(side)
    n = graph.num_vertices
    print(f"physical topology: {side}x{side} mesh ({n} nodes)")

    rng = random.Random(1)
    vertices = sorted(graph.vertices())
    pairs = [
        (rng.choice(vertices), rng.choice(vertices)) for _ in range(250)
    ]

    tree = build_decomposition(graph)
    schemes = [
        ("path-separator (paper)", PathSeparatorAugmentation(tree).augment(graph, seed=2)),
        ("kleinberg r^-2", KleinbergAugmentation(exponent=2.0).augment(graph, seed=2)),
        ("uniform", UniformAugmentation().augment(graph, seed=2)),
        ("no augmentation", AugmentedGraph(base=graph)),
    ]

    log2n = math.log2(n)
    rows = []
    for name, augmented in schemes:
        mean = GreedyRouter(augmented).mean_hops(pairs)
        rows.append([name, round(mean, 2), round(mean / (log2n**2), 3)])

    print()
    print(
        format_table(
            ["augmentation", "mean greedy hops", "hops / log^2 n"],
            rows,
            title=f"greedy routing over {len(pairs)} random pairs",
        )
    )
    print(
        "\nThe paper's bound is O(k^2 log^2 n log^2 Delta) expected hops;"
        "\non an unweighted mesh (Delta = diameter) the normalized column"
        "\nshould stay bounded as n grows — see benchmarks/bench_e6 for"
        "\nthe full sweep."
    )


if __name__ == "__main__":
    main()
