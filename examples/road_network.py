#!/usr/bin/env python3
"""Road-network scenario: distance oracle + compact routing.

Synthesizes a road network (sparsified weighted grid with cheap
highway rows/columns — planar, large aspect ratio), then:

1. answers travel-time queries with the (1+eps) oracle, comparing
   accuracy and per-query work against exact Dijkstra;
2. routes packets with the compact routing scheme and reports the
   stretch of the actual driven routes and the table sizes that every
   "intersection" would need to store.

Run:  python examples/road_network.py
"""

from __future__ import annotations

import random
import time

from repro import CompactRoutingScheme, PathSeparatorOracle, build_decomposition
from repro.baselines import ExactOracle
from repro.generators import road_network
from repro.util import format_table


def main() -> None:
    graph = road_network(28, removal_prob=0.12, highway_every=7, seed=11)
    print(f"road network: {graph}")

    tree = build_decomposition(graph)
    oracle = PathSeparatorOracle.build(graph, epsilon=0.05, tree=tree)
    scheme = CompactRoutingScheme.build(graph, tree=tree)
    exact = ExactOracle(graph)

    rng = random.Random(3)
    vertices = sorted(graph.vertices())
    pairs = []
    while len(pairs) < 300:
        u, v = rng.choice(vertices), rng.choice(vertices)
        if u != v:
            pairs.append((u, v))

    # --- Oracle accuracy and speed --------------------------------------
    t0 = time.perf_counter()
    estimates = [oracle.query(u, v) for u, v in pairs]
    oracle_time = time.perf_counter() - t0

    t0 = time.perf_counter()
    truths = [exact.query_uncached(u, v) for u, v in pairs[:50]]
    dijkstra_time = (time.perf_counter() - t0) * (len(pairs) / 50)

    stretches = [
        est / exact.query(u, v) for (u, v), est in zip(pairs, estimates)
    ]
    print(
        format_table(
            ["metric", "oracle", "exact Dijkstra"],
            [
                ["time for 300 queries (s)", round(oracle_time, 4), round(dijkstra_time, 3)],
                ["mean stretch", round(sum(stretches) / len(stretches), 5), 1.0],
                ["max stretch", round(max(stretches), 5), 1.0],
            ],
            title="travel-time queries",
        )
    )

    # --- Compact routing -------------------------------------------------
    route_stretch = []
    for u, v in pairs[:150]:
        hops = scheme.route(u, v)
        route_stretch.append(scheme.route_cost(hops) / exact.query(u, v))
    tables = scheme.table_report()
    labels = scheme.label_report()
    print()
    print(
        format_table(
            ["metric", "value"],
            [
                ["mean route stretch", round(sum(route_stretch) / len(route_stretch), 4)],
                ["max route stretch", round(max(route_stretch), 4)],
                ["mean table size (words)", round(tables.mean_words, 1)],
                ["max table size (words)", tables.max_words],
                ["max address label (words)", labels.max_words],
            ],
            title="compact routing",
        )
    )


if __name__ == "__main__":
    main()
