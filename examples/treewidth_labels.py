#!/usr/bin/env python3
"""Distributed distance labels on a bounded-treewidth network.

Partial k-trees model many backbone topologies (series-parallel
networks are the k=2 case).  Theorem 7: treewidth-r graphs are
strongly (r+1)-path separable via center bags of single-vertex paths,
so labels are tiny and — because every "path" is one vertex — the
estimates route through actual cut vertices and are often exact.

The point of *labels* (vs the centralized oracle) is that two nodes
can estimate their distance from their own labels alone, with no
global structure online.  This example ships the labels through the
real wire format (``dump_labeling`` -> ``load_labeling``) and answers
queries from the resulting graph-free :class:`RemoteLabels` only.

Run:  python examples/treewidth_labels.py
"""

from __future__ import annotations

import random

from repro import build_decomposition, build_labeling
from repro.core.engines import CenterBagEngine
from repro.core.serialize import dump_labeling, load_labeling
from repro.generators import partial_k_tree
from repro.graphs import dijkstra
from repro.util import format_table


def main() -> None:
    graph, _ = partial_k_tree(400, 3, edge_keep_prob=0.6, weight_range=(1.0, 8.0), seed=5)
    print(f"backbone: {graph} (treewidth <= 3)")

    tree = build_decomposition(graph, engine=CenterBagEngine(order="min_degree"))
    labeling = build_labeling(graph, tree, epsilon=0.1)
    report = labeling.size_report()
    print(
        f"labels: mean {report.mean_words:.1f} words, max {report.max_words} "
        f"words per node (n = {graph.num_vertices})"
    )

    # Ship labels over the wire; the querying side holds only the
    # decoded RemoteLabels — no graph, no decomposition tree.
    wire = dump_labeling(labeling)
    remote = load_labeling(wire)
    print(f"shipped {remote.num_labels} labels ({len(wire)} bytes of JSON)")

    rng = random.Random(9)
    vertices = sorted(graph.vertices())
    rows = []
    for _ in range(8):
        u, v = rng.choice(vertices), rng.choice(vertices)
        if u == v:
            continue
        est = remote.estimate(u, v)
        true = dijkstra(graph, u)[0][v]
        rows.append([f"{u}<->{v}", round(true, 2), round(est, 2), round(est / true, 4)])

    print()
    print(format_table(["pair", "exact", "from labels", "stretch"], rows))


if __name__ == "__main__":
    main()
