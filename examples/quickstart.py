#!/usr/bin/env python3
"""Quickstart: a (1+eps)-approximate distance oracle in five lines.

Builds a random planar graph (the paper's flagship minor-free class),
computes its k-path separator decomposition, constructs the Theorem 2
oracle, and checks a few queries against exact Dijkstra distances.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

import random

from repro import PathSeparatorOracle
from repro.generators import random_planar_graph
from repro.graphs import dijkstra
from repro.util import Timer, format_table


def main() -> None:
    epsilon = 0.1
    graph = random_planar_graph(600, weight_range=(1.0, 10.0), seed=7)
    print(f"graph: {graph}  (random planar, weighted)")

    with Timer() as build_time:
        oracle = PathSeparatorOracle.build(graph, epsilon=epsilon)
    stats = oracle.tree.stats()
    print(
        f"decomposition: depth {stats['depth']} (log2 n = "
        f"{stats['log2_n']:.1f}), k = {stats['max_paths_per_node']} paths/node"
    )
    print(
        f"oracle: {oracle.space_words()} words "
        f"({oracle.space_words() / graph.num_vertices:.1f}/vertex), "
        f"built in {build_time.elapsed:.2f}s"
    )

    rng = random.Random(0)
    vertices = sorted(graph.vertices())
    rows = []
    worst = 1.0
    for _ in range(8):
        u, v = rng.choice(vertices), rng.choice(vertices)
        if u == v:
            continue
        true = dijkstra(graph, u)[0][v]
        estimate = oracle.query(u, v)
        stretch = estimate / true
        worst = max(worst, stretch)
        rows.append([f"{u}->{v}", round(true, 2), round(estimate, 2), round(stretch, 4)])

    print()
    print(format_table(["query", "exact", "oracle", "stretch"], rows))
    print(f"\nworst observed stretch {worst:.4f} <= guaranteed {1 + epsilon}")
    assert worst <= 1 + epsilon + 1e-9


if __name__ == "__main__":
    main()
