#!/usr/bin/env python3
"""Putting it together: an object-location service.

The paper's title problem: nodes of a network hold named objects, and
any node must *locate* (estimate its distance to) and *fetch* (route
a message to) an object, using per-node state that is polylogarithmic.

This example builds the full pipeline on one shared decomposition:

* labels ship through the wire format once, and the service keeps only
  the graph-free :class:`RemoteLabels` plus a directory mapping object
  names to home vertices (never routes or coordinates);
* ``locate`` estimates the distance from the caller's shipped label
  plus the home's shipped label (Theorem 2);
* ``fetch`` routes an actual message with the compact routing scheme
  and reports the realized stretch.

Run:  python examples/object_location.py
"""

from __future__ import annotations

import random

from repro import CompactRoutingScheme, build_decomposition, build_labeling
from repro.baselines import ExactOracle
from repro.core.serialize import dump_labeling, load_labeling
from repro.generators import random_delaunay_graph
from repro.util import format_table


class ObjectLocationService:
    """Name -> home-vertex directory over path-separator structures."""

    def __init__(self, graph) -> None:
        tree = build_decomposition(graph)
        labeling = build_labeling(graph, tree, epsilon=0.1)
        # Ship the labels once; queries run against the graph-free
        # RemoteLabels, exactly what a remote directory node would hold.
        self.remote = load_labeling(dump_labeling(labeling))
        self.label_report = labeling.size_report()
        self.routing = CompactRoutingScheme.build(graph, tree=tree)
        self.directory = {}

    def publish(self, name: str, home) -> None:
        self.directory[name] = home

    def locate(self, name: str, caller) -> float:
        """(1+eps)-approximate distance from *caller* to the object."""
        return self.remote.estimate(caller, self.directory[name])

    def fetch(self, name: str, caller):
        """Route a message to the object's home; returns the hop list."""
        return self.routing.route(caller, self.directory[name])


def main() -> None:
    graph, _ = random_delaunay_graph(400, seed=13)
    print(f"network: {graph}")
    service = ObjectLocationService(graph)
    exact = ExactOracle(graph)

    rng = random.Random(5)
    vertices = sorted(graph.vertices())
    objects = {f"obj-{i}": rng.choice(vertices) for i in range(12)}
    for name, home in objects.items():
        service.publish(name, home)

    rows = []
    for name, home in list(objects.items())[:8]:
        caller = rng.choice(vertices)
        if caller == home:
            continue
        true = exact.query(caller, home)
        estimate = service.locate(name, caller)
        hops = service.fetch(name, caller)
        cost = service.routing.route_cost(hops)
        rows.append(
            [
                name,
                f"{caller}->{home}",
                round(true, 1),
                round(estimate / true, 4),
                round(cost / true, 4),
                len(hops) - 1,
            ]
        )
    print()
    print(
        format_table(
            ["object", "query", "true_d", "locate_stretch", "fetch_stretch", "hops"],
            rows,
            title="locate (Theorem 2) and fetch (compact routing)",
        )
    )

    state = service.routing.table_report()
    labels = service.label_report
    print(
        f"\nper-node state: routing {state.mean_words:.0f} words (max "
        f"{state.max_words}), labels {labels.mean_words:.0f} words (max "
        f"{labels.max_words}) — for n = {graph.num_vertices}"
    )


if __name__ == "__main__":
    main()
