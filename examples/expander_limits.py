#!/usr/bin/env python3
"""Where path separators stop working (Theorem 5).

Sparse does not mean separable: random 3-regular graphs are expanders,
every balanced separator has Omega(n) vertices, and shortest paths are
O(log n) long — so the number of separator paths k must grow
polynomially, and with it every label. This example measures k and
label sizes side by side on an expander and a planar graph of the same
size, the dichotomy Theorem 5 proves.

Run:  python examples/expander_limits.py
"""

from __future__ import annotations

from repro.core import GreedyPeelingEngine, build_decomposition, build_labeling
from repro.generators import random_delaunay_graph, random_regular_graph
from repro.graphs import is_connected
from repro.util import format_table


def connected_regular(n: int, seed: int):
    for s in range(seed, seed + 50):
        g = random_regular_graph(n, 3, seed=s)
        if is_connected(g):
            return g
    raise RuntimeError("no connected sample")


def main() -> None:
    rows = []
    for n in (64, 128, 256):
        for name, graph in (
            ("3-regular expander", connected_regular(n, seed=n)),
            ("delaunay (planar)", random_delaunay_graph(n, seed=n)[0]),
        ):
            engine = GreedyPeelingEngine(num_candidates=8, seed=0)
            tree = build_decomposition(graph, engine=engine)
            labeling = build_labeling(graph, tree, epsilon=0.25)
            rows.append(
                [
                    n,
                    name,
                    tree.max_paths_per_node,
                    round(labeling.size_report().mean_words, 1),
                ]
            )
    print(
        format_table(
            ["n", "graph", "k (max paths/node)", "mean label words"],
            rows,
            title="Theorem 5: expanders defeat path separators; planar graphs do not",
        )
    )
    print(
        "\nThe expander's k (and with it every label) grows with n, while"
        "\nthe planar graph's stays flat — no technique can fix this: the"
        "\npaper shows (1+eps) schemes on such graphs need Omega(sqrt(n))-bit"
        "\nlabels, so these graphs are provably not k-path separable for"
        "\nsmall k."
    )


if __name__ == "__main__":
    main()
