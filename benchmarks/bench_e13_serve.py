"""E13 — the serving layer: QPS and latency of the asyncio query service.

Shapes to verify:
* a single server process sustains thousands of closed-loop QPS on
  one-label-pair DIST requests;
* batching (BATCH) amortizes protocol overhead: per-pair latency
  drops as the batch grows;
* the LRU pair cache lifts QPS on repeated (Zipf-ish) workloads
  without changing a single answer (the loadgen verifies estimates
  against the offline labels on every run).
"""

from __future__ import annotations

import asyncio

from repro.core import build_decomposition, build_labeling
from repro.core.serialize import dump_labeling, load_labeling
from repro.generators import random_delaunay_graph
from repro.serve import (
    OracleServer,
    ShardedLabelStore,
    StoreCatalog,
    run_loadgen,
    synthesize_pairs,
)
from repro.util import format_table

N = 512
QUERIES = 600
CONCURRENCY = 8
EPS = 0.25


def build_remote():
    graph = random_delaunay_graph(N, seed=N)[0]
    labeling = build_labeling(graph, build_decomposition(graph), epsilon=EPS)
    return load_labeling(dump_labeling(labeling))


def run_experiment():
    remote = build_remote()
    pairs = synthesize_pairs(list(remote.vertices()), QUERIES, seed=13)
    # Repeat a small hot set so the cache configuration has hits to serve.
    hot = pairs[:25] * (QUERIES // 25)

    configs = [
        ("dist c=8", dict(cache=0), dict(batch=1), pairs),
        ("dist c=8 cache=4k", dict(cache=4096), dict(batch=1), hot),
        ("batch=16 c=8", dict(cache=0), dict(batch=16), pairs),
        ("batch=64 c=8", dict(cache=0), dict(batch=64), pairs),
    ]

    async def measure(server_opts, client_opts, workload):
        catalog = StoreCatalog()
        catalog.add(ShardedLabelStore.from_remote("bench", remote))
        server = OracleServer(
            catalog, port=0, cache_size=server_opts["cache"], max_inflight=64
        )
        await server.start()
        # Warm up connections + cache, then measure.
        await run_loadgen(
            "127.0.0.1", server.port, workload[:50],
            concurrency=CONCURRENCY, **client_opts,
        )
        report = await run_loadgen(
            "127.0.0.1", server.port, workload,
            concurrency=CONCURRENCY, verify=remote, **client_opts,
        )
        await server.shutdown()
        return report

    rows = []
    for name, server_opts, client_opts, workload in configs:
        report = asyncio.run(measure(server_opts, client_opts, workload))
        assert report.errors == 0, report.error_samples
        assert report.mismatches == 0, report.error_samples
        rows.append(
            [
                name,
                report.ok,
                round(report.qps),
                round(report.latency_ms(50), 3),
                round(report.latency_ms(90), 3),
                round(report.latency_ms(99), 3),
            ]
        )
    return rows


def test_e13_bench_serve(record_table):
    rows = run_experiment()
    header = ["config", "queries", "qps", "p50_ms", "p90_ms", "p99_ms"]
    table = format_table(
        header,
        rows,
        title=f"E13: serving layer on delaunay n={N} ({QUERIES} queries, "
        f"{CONCURRENCY} connections)",
    )
    record_table(
        "e13_serve", table, rows=rows, header=header,
        meta={"n": N, "queries": QUERIES, "concurrency": CONCURRENCY},
    )
    qps = {row[0]: row[2] for row in rows}
    # Batching must beat single-DIST throughput (per-request overhead
    # is amortized over 16+ pairs).
    assert qps["batch=16 c=8"] > qps["dist c=8"]
