"""Shared benchmark plumbing.

Every experiment bench prints its paper-style table (visible with
``pytest -s``) and also writes it to ``benchmarks/results/<name>.txt``
so the numbers survive pytest's output capture.  EXPERIMENTS.md is the
curated record of one run of these benches.
"""

from __future__ import annotations

import random
from pathlib import Path

import pytest

RESULTS_DIR = Path(__file__).parent / "results"


@pytest.fixture
def record_table():
    """Print a rendered table and persist it under benchmarks/results/."""

    def _record(name: str, table: str) -> None:
        print()
        print(table)
        RESULTS_DIR.mkdir(exist_ok=True)
        (RESULTS_DIR / f"{name}.txt").write_text(table + "\n")

    return _record


def sample_pairs(graph, count: int, seed: int = 0):
    rng = random.Random(seed)
    vertices = sorted(graph.vertices(), key=repr)
    pairs = []
    while len(pairs) < count:
        u = vertices[rng.randrange(len(vertices))]
        v = vertices[rng.randrange(len(vertices))]
        if u != v:
            pairs.append((u, v))
    return pairs
