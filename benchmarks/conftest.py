"""Shared benchmark plumbing.

Every experiment bench prints its paper-style table (visible with
``pytest -s``) and persists it twice under ``benchmarks/results/``:

* ``<name>.txt`` — the rendered table, diff-friendly, as before;
* ``<name>.json`` — a structured ``repro-bench/1`` record (header +
  rows + git SHA + wall-clock) so the perf trajectory is
  machine-readable and future PRs can diff against a baseline.

At session end, ``BENCH_baseline.json`` at the repo root aggregates
per-experiment wall-clock for every bench test that ran.
EXPERIMENTS.md is the curated record of one run of these benches.
"""

from __future__ import annotations

import json
import random
import time
from pathlib import Path

import pytest

from repro.obs import git_sha
from repro.obs.export import bench_payload

RESULTS_DIR = Path(__file__).parent / "results"
REPO_ROOT = Path(__file__).parent.parent
BASELINE_PATH = REPO_ROOT / "BENCH_baseline.json"

# nodeid -> wall-clock seconds for bench tests that ran this session.
_BENCH_DURATIONS = {}
_SESSION_START = time.time()


@pytest.fixture
def record_table(request):
    """Print a rendered table and persist it (txt + json) under
    benchmarks/results/.

    ``rows``/``header`` are optional structured copies of the table
    contents; pass them so the JSON record carries real values instead
    of only the rendered text.
    """

    def _record(name: str, table: str, rows=None, header=None, meta=None) -> None:
        print()
        print(table)
        RESULTS_DIR.mkdir(exist_ok=True)
        (RESULTS_DIR / f"{name}.txt").write_text(table + "\n")
        payload = bench_payload(
            name,
            header=header,
            rows=rows,
            table=table,
            meta=meta,
            test=request.node.nodeid,
            unix_time=time.time(),
            cwd=str(REPO_ROOT),
        )
        (RESULTS_DIR / f"{name}.json").write_text(
            json.dumps(payload, indent=2, default=repr) + "\n"
        )

    return _record


def pytest_runtest_logreport(report):
    """Collect per-test wall-clock for the baseline aggregate."""
    if report.when == "call" and "benchmarks/" in report.nodeid.replace("\\", "/"):
        _BENCH_DURATIONS[report.nodeid] = {
            "seconds": round(report.duration, 4),
            "outcome": report.outcome,
        }


def pytest_sessionfinish(session, exitstatus):
    """Write the top-level BENCH_baseline.json when benches ran."""
    if not _BENCH_DURATIONS:
        return
    payload = {
        "format": "repro-bench-baseline/1",
        "git_sha": git_sha(cwd=str(REPO_ROOT)),
        "unix_time": round(time.time(), 3),
        "session_seconds": round(time.time() - _SESSION_START, 3),
        "experiments": dict(sorted(_BENCH_DURATIONS.items())),
        "total_seconds": round(
            sum(entry["seconds"] for entry in _BENCH_DURATIONS.values()), 3
        ),
    }
    BASELINE_PATH.write_text(json.dumps(payload, indent=2) + "\n")


def sample_pairs(graph, count: int, seed: int = 0):
    rng = random.Random(seed)
    vertices = sorted(graph.vertices(), key=repr)
    pairs = []
    while len(pairs) < count:
        u = vertices[rng.randrange(len(vertices))]
        v = vertices[rng.randrange(len(vertices))]
        if u != v:
            pairs.append((u, v))
    return pairs
