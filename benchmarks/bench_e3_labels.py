"""E3 — Theorem 2: (1+eps) distance labels of O(k/eps * log n) words.

Shapes to verify:
* label size grows like log n (sub-linear): doubling n adds a roughly
  constant number of words;
* label size grows like 1/eps: halving eps roughly doubles the portal
  count per path (up to the log Delta factor our greedy cover carries,
  documented in DESIGN.md);
* construction stays near O(n log n) Dijkstras.
"""

from __future__ import annotations

import math

import pytest

from repro.core import build_decomposition, build_labeling
from repro.generators import k_tree, random_delaunay_graph
from repro.util import Timer, format_table

SIZES = [128, 256, 512, 1024]
EPSILONS = [0.5, 0.25, 0.1]


def run_experiment():
    rows = []
    for family, make in (
        ("delaunay", lambda n: random_delaunay_graph(n, seed=n)[0]),
        ("k-tree(3)", lambda n: k_tree(n, 3, seed=n)[0]),
    ):
        for n in SIZES:
            graph = make(n)
            tree = build_decomposition(graph)
            for eps in EPSILONS:
                with Timer() as t:
                    labeling = build_labeling(graph, tree, epsilon=eps)
                report = labeling.size_report()
                log2n = math.log2(graph.num_vertices)
                rows.append(
                    [
                        family,
                        graph.num_vertices,
                        eps,
                        round(report.mean_words, 1),
                        report.max_words,
                        round(report.mean_words / log2n, 2),
                        round(t.elapsed, 2),
                    ]
                )
    return rows


def test_e3_label_size_table(record_table):
    rows = run_experiment()
    record_table(
        "e3_labels",
        format_table(
            ["family", "n", "eps", "mean_words", "max_words", "mean/log2n", "build_s"],
            rows,
            title="E3 (Theorem 2): label size vs n and eps",
        ),
        rows=rows,
        header=["family", "n", "eps", "mean_words", "max_words", "mean/log2n", "build_s"],
    )
    # Shape: sub-linear growth in n (per family, per eps).
    by_key = {}
    for family, n, eps, mean_words, *_ in rows:
        by_key.setdefault((family, eps), []).append((n, mean_words))
    for key, series in by_key.items():
        n_small, w_small = series[0]
        n_big, w_big = series[-1]
        growth = w_big / w_small
        assert growth < (n_big / n_small) / 2, (key, series)
    # Shape: monotone in 1/eps.
    for family in ("delaunay", "k-tree(3)"):
        last = {eps: w for f, n, eps, w, *_ in rows if f == family and n == SIZES[-1]}
        assert last[0.1] >= last[0.5]


@pytest.mark.parametrize("eps", [0.5, 0.1])
def test_e3_bench_label_construction(benchmark, eps):
    graph = random_delaunay_graph(256, seed=1)[0]
    tree = build_decomposition(graph)
    labeling = benchmark(build_labeling, graph, tree, eps)
    assert labeling.size_report().mean_words > 0
