"""E14 — serving under faults: what resilience costs, and what it buys.

Shapes to verify:
* a fault-free baseline through the :class:`ResilientClient` matches
  the historical loadgen path — zero retries, zero errors;
* under injected faults (dropped replies, added delay) the retrying
  client still completes **every** query with **zero** mismatches —
  the faults cost latency and retries, never answers;
* hedged requests clip the tail that drop-induced timeouts create:
  p99 with hedging stays below p99 with plain retries on the same
  drop plan.
"""

from __future__ import annotations

import asyncio

from repro.core import build_decomposition, build_labeling
from repro.core.serialize import dump_labeling, load_labeling
from repro.generators import random_delaunay_graph
from repro.serve import (
    FaultPlan,
    OracleServer,
    ResilientClient,
    RetryPolicy,
    ShardedLabelStore,
    StoreCatalog,
    run_loadgen,
    synthesize_pairs,
)
from repro.util import format_table

N = 512
QUERIES = 400
CONCURRENCY = 8
EPS = 0.25
ATTEMPT_TIMEOUT = 0.25

DROP_RULES = [{"kind": "drop", "rate": 0.1}]
DELAY_RULES = [{"kind": "delay", "rate": 1.0, "delay_ms": 5.0}]


def build_remote():
    graph = random_delaunay_graph(N, seed=N)[0]
    labeling = build_labeling(graph, build_decomposition(graph), epsilon=EPS)
    return load_labeling(dump_labeling(labeling))


def run_experiment():
    remote = build_remote()
    pairs = synthesize_pairs(list(remote.vertices()), QUERIES, seed=14)

    configs = [
        ("clean baseline", None, dict(retries=0)),
        ("drop 10%", DROP_RULES, dict(retries=8)),
        ("delay 5ms", DELAY_RULES, dict(retries=8)),
        ("drop 10% + hedge", DROP_RULES,
         dict(retries=8, hedge_after=ATTEMPT_TIMEOUT / 2)),
    ]

    async def measure(rules, client_opts):
        catalog = StoreCatalog()
        catalog.add(ShardedLabelStore.from_remote("bench", remote))
        plan = FaultPlan.from_rules(rules, seed=14) if rules else None
        server = OracleServer(catalog, port=0, fault_plan=plan)
        await server.start()
        # The injected faults are the point: a huge breaker threshold
        # keeps the breaker from converting them into fast-fails.
        client = ResilientClient(
            [("127.0.0.1", server.port)],
            policy=RetryPolicy(
                attempts=client_opts["retries"] + 1,
                attempt_timeout=ATTEMPT_TIMEOUT,
                hedge_after=client_opts.get("hedge_after"),
            ),
            seed=14,
            breaker_threshold=1000,
        )
        try:
            report = await run_loadgen(
                "127.0.0.1", server.port, pairs,
                concurrency=CONCURRENCY, verify=remote, client=client,
            )
        finally:
            await client.close()
            await server.shutdown()
        return report, server.faults.status()["injected"]

    rows = []
    for name, rules, client_opts in configs:
        report, injected = asyncio.run(measure(rules, client_opts))
        assert report.errors == 0, report.error_samples
        assert report.mismatches == 0, report.error_samples
        rows.append(
            [
                name,
                report.ok,
                sum(injected.values()),
                report.retries,
                report.hedges,
                round(report.qps),
                round(report.latency_ms(50), 3),
                round(report.latency_ms(99), 3),
            ]
        )
    return rows


def test_e14_bench_chaos(record_table):
    rows = run_experiment()
    header = [
        "config", "ok", "faults", "retries", "hedges", "qps",
        "p50_ms", "p99_ms",
    ]
    table = format_table(
        header,
        rows,
        title=f"E14: serving under faults, delaunay n={N} ({QUERIES} "
        f"queries, {CONCURRENCY} connections, verify=on)",
    )
    record_table(
        "e14_chaos", table, rows=rows, header=header,
        meta={
            "n": N, "queries": QUERIES, "concurrency": CONCURRENCY,
            "attempt_timeout": ATTEMPT_TIMEOUT,
            "drop_rules": DROP_RULES, "delay_rules": DELAY_RULES,
        },
    )
    by_name = {row[0]: row for row in rows}
    # The baseline really was clean and the fault configs really bit.
    assert by_name["clean baseline"][2] == 0  # faults
    assert by_name["clean baseline"][3] == 0  # retries
    assert by_name["drop 10%"][2] > 0 and by_name["drop 10%"][3] > 0
    assert by_name["delay 5ms"][2] > 0
    # Hedging must clip the drop-induced timeout tail.
    assert (
        by_name["drop 10% + hedge"][7] < by_name["drop 10%"][7]
    ), (by_name["drop 10% + hedge"], by_name["drop 10%"])
