"""E7 — Note 1: bounded-treewidth graphs route in O(k^2 log^2 n) hops.

On k-trees every separator path is a single vertex, so the landmark
set degenerates to that vertex and the log^2 Delta factor of Theorem 3
disappears — even with wildly varying edge weights.  Shape: mean hops
normalized by log^2 n stays bounded as n grows and is insensitive to
the weight range.
"""

from __future__ import annotations

import math

import pytest

from benchmarks.conftest import sample_pairs
from repro.core import AugmentedGraph, GreedyRouter, PathSeparatorAugmentation, build_decomposition
from repro.core.engines import CenterBagEngine
from repro.generators import k_tree
from repro.util import format_table

SIZES = [128, 256, 512, 1024]


def run_experiment():
    rows = []
    for weights, weight_range in (("unit", None), ("1..256", (1.0, 256.0))):
        for n in SIZES:
            graph, _ = k_tree(n, 2, weight_range=weight_range, seed=n)
            tree = build_decomposition(graph, engine=CenterBagEngine(order="mcs"))
            # Note 1 precondition: all separator paths are single vertices.
            assert all(
                len(tree.path_vertices(key)) == 1 for key in tree.all_path_keys()
            )
            aug = PathSeparatorAugmentation(tree).augment(graph, seed=12)
            pairs = sample_pairs(graph, 150, seed=13)
            hops = GreedyRouter(aug).mean_hops(pairs)
            plain = GreedyRouter(AugmentedGraph(base=graph)).mean_hops(pairs)
            rows.append(
                [
                    weights,
                    n,
                    round(hops, 2),
                    round(plain, 2),
                    round(hops / math.log2(n) ** 2, 3),
                ]
            )
    return rows


def test_e7_treewidth_smallworld_table(record_table):
    rows = run_experiment()
    record_table(
        "e7_smallworld_tw",
        format_table(
            ["weights", "n", "hops(aug)", "hops(plain)", "hops/log2n^2"],
            rows,
            title="E7 (Note 1): greedy hops on 2-trees — no log^2 Delta factor",
        ),
        rows=rows,
        header=["weights", "n", "hops(aug)", "hops(plain)", "hops/log2n^2"],
    )
    unit = [r for r in rows if r[0] == "unit"]
    heavy = [r for r in rows if r[0] == "1..256"]
    # Normalized hops bounded in n.
    assert unit[-1][4] <= 2 * unit[0][4] + 0.3
    # Weight range barely matters (Note 1's claim).
    for u, h in zip(unit, heavy):
        assert h[2] <= u[2] * 2 + 2


@pytest.mark.parametrize("n", [256, 1024])
def test_e7_bench_augmentation(benchmark, n):
    graph, _ = k_tree(n, 2, seed=n)
    tree = build_decomposition(graph, engine=CenterBagEngine(order="mcs"))
    dist = PathSeparatorAugmentation(tree)
    benchmark(dist.augment, graph, 14)
