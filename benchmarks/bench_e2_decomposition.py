"""E2 — decomposition depth is logarithmic (Section 4).

Paper claim: components halve at every level, so the decomposition
tree 𝒯 has depth at most log2 n.  The shape to verify: depth/log2(n)
stays <= 1 (plus rounding) across families and sizes, and build time
scales near-linearly.
"""

from __future__ import annotations

import math

import pytest

from repro.core import build_decomposition
from repro.generators import grid_2d, random_delaunay_graph, random_tree, series_parallel_graph
from repro.util import Timer, format_table

SIZES = [128, 256, 512, 1024, 2048]

FAMILIES = {
    "tree": lambda n: random_tree(n, seed=n),
    "series-parallel": lambda n: series_parallel_graph(n, seed=n),
    "grid": lambda n: grid_2d(int(round(n**0.5))),
    "delaunay": lambda n: random_delaunay_graph(n, seed=n)[0],
}


def run_experiment():
    rows = []
    for family, make in FAMILIES.items():
        for n in SIZES:
            graph = make(n)
            with Timer() as t:
                tree = build_decomposition(graph)
            log2n = math.log2(graph.num_vertices)
            rows.append(
                [
                    family,
                    graph.num_vertices,
                    tree.depth,
                    round(log2n, 1),
                    round(tree.depth / log2n, 2),
                    tree.num_nodes,
                    round(t.elapsed, 3),
                ]
            )
    return rows


def test_e2_depth_table(record_table):
    rows = run_experiment()
    record_table(
        "e2_decomposition",
        format_table(
            ["family", "n", "depth", "log2(n)", "ratio", "nodes", "build_s"],
            rows,
            title="E2: decomposition depth vs log2(n)",
        ),
        rows=rows,
        header=["family", "n", "depth", "log2(n)", "ratio", "nodes", "build_s"],
    )
    for family, n, depth, log2n, ratio, *_ in rows:
        assert depth <= log2n + 1, (family, n, depth)


@pytest.mark.parametrize("n", [256, 1024])
def test_e2_bench_build_decomposition(benchmark, n):
    graph = random_delaunay_graph(n, seed=n)[0]
    tree = benchmark(build_decomposition, graph)
    assert tree.depth <= math.log2(n) + 1
