"""E6 — Theorem 3: greedy routing in O(k^2 log^2 n log^2 Delta) hops.

Two sweeps:
* size sweep on unweighted grids (Delta = diameter fixed by n): mean
  greedy hops normalized by log^2 n should stay bounded, and the
  paper's augmentation should track (and at scale beat) Kleinberg's
  grid-specific distribution while plain greedy grows like sqrt(n);
* aspect-ratio sweep on weighted grids: hops should grow mildly (the
  log^2 Delta factor), not explode.
"""

from __future__ import annotations

import math

import pytest

from benchmarks.conftest import sample_pairs
from repro.baselines import KleinbergAugmentation, UniformAugmentation
from repro.core import AugmentedGraph, GreedyRouter, PathSeparatorAugmentation, build_decomposition
from repro.generators import grid_2d
from repro.util import format_table

SIDES = [12, 16, 24, 32]
PAIRS = 150


def run_size_sweep():
    rows = []
    for side in SIDES:
        graph = grid_2d(side)
        n = graph.num_vertices
        pairs = sample_pairs(graph, PAIRS, seed=5)
        tree = build_decomposition(graph)
        schemes = [
            ("path-sep", PathSeparatorAugmentation(tree).augment(graph, seed=6)),
            ("kleinberg", KleinbergAugmentation(2.0).augment(graph, seed=6)),
            ("uniform", UniformAugmentation().augment(graph, seed=6)),
            ("none", AugmentedGraph(base=graph)),
        ]
        for name, augmented in schemes:
            hops = GreedyRouter(augmented).mean_hops(pairs)
            rows.append(
                [
                    n,
                    name,
                    round(hops, 2),
                    round(hops / math.log2(n) ** 2, 3),
                    round(hops / math.sqrt(n), 3),
                ]
            )
    return rows


def run_delta_sweep():
    rows = []
    side = 20
    for hi in (1.0, 4.0, 32.0, 256.0):
        weight_range = None if hi == 1.0 else (1.0, hi)
        graph = grid_2d(side, weight_range=weight_range, seed=9)
        pairs = sample_pairs(graph, PAIRS, seed=7)
        tree = build_decomposition(graph)
        aug = PathSeparatorAugmentation(tree).augment(graph, seed=8)
        hops = GreedyRouter(aug).mean_hops(pairs)
        delta = max(2.0, hi * side)  # rough aspect ratio proxy
        rows.append(
            [
                hi,
                round(hops, 2),
                round(hops / math.log2(delta) ** 2, 3),
            ]
        )
    return rows


def test_e6_size_sweep_table(record_table):
    rows = run_size_sweep()
    record_table(
        "e6_smallworld_size",
        format_table(
            ["n", "augmentation", "mean_hops", "hops/log2n^2", "hops/sqrt(n)"],
            rows,
            title="E6a (Theorem 3): greedy hops vs n on unweighted grids",
        ),
        rows=rows,
        header=["n", "augmentation", "mean_hops", "hops/log2n^2", "hops/sqrt(n)"],
    )
    by_scheme = {}
    for n, name, hops, norm_log, norm_sqrt in rows:
        by_scheme.setdefault(name, []).append((n, hops, norm_log, norm_sqrt))
    # Paper augmentation: polylog shape — normalized-by-log^2 stays bounded.
    ps = by_scheme["path-sep"]
    assert ps[-1][2] <= 2 * ps[0][2] + 0.3
    # Unaugmented greedy grows like the diameter (sqrt n): its
    # normalized-by-sqrt column stays roughly constant and is the
    # worst scheme at the largest size.
    biggest = {name: vals[-1][1] for name, vals in by_scheme.items()}
    assert biggest["path-sep"] < biggest["none"]


def test_e6_delta_sweep_table(record_table):
    rows = run_delta_sweep()
    record_table(
        "e6_smallworld_delta",
        format_table(
            ["max_weight", "mean_hops", "hops/log2Delta^2"],
            rows,
            title="E6b (Theorem 3): greedy hops vs aspect ratio on weighted grids",
        ),
        rows=rows,
        header=["max_weight", "mean_hops", "hops/log2Delta^2"],
    )
    # Hops grow far slower than Delta itself.
    assert rows[-1][1] <= rows[0][1] * 8


@pytest.mark.parametrize("side", [16, 32])
def test_e6_bench_greedy_route(benchmark, side):
    graph = grid_2d(side)
    tree = build_decomposition(graph)
    aug = PathSeparatorAugmentation(tree).augment(graph, seed=10)
    router = GreedyRouter(aug)
    pairs = sample_pairs(graph, 20, seed=11)

    def run():
        router.mean_hops(pairs)

    benchmark(run)
