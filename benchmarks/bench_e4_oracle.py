"""E4 — Theorem 2's oracle: query time, space, and stretch vs baselines.

Shapes to verify:
* observed stretch <= 1 + eps always (and TZ's can exceed it, up to
  2k-1 = 3);
* oracle queries are orders of magnitude faster than per-query
  Dijkstra, and near-flat in n;
* space stays near-linear (words/vertex grows ~log n, not ~n).
"""

from __future__ import annotations

import time

import pytest

from benchmarks.conftest import sample_pairs
from repro.baselines import (
    AltOracle,
    ContractionHierarchy,
    ExactOracle,
    LandmarkOracle,
    ThorupZwickOracle,
)
from repro.core import PathSeparatorOracle
from repro.generators import random_delaunay_graph
from repro.util import format_table

SIZES = [128, 256, 512, 1024]
EPS = 0.25


def run_experiment():
    rows = []
    for n in SIZES:
        graph = random_delaunay_graph(n, seed=n)[0]
        pairs = sample_pairs(graph, 200, seed=1)
        exact = ExactOracle(graph)
        truths = {p: exact.query(*p) for p in pairs}

        oracles = [
            ("path-sep(1+.25)", PathSeparatorOracle.build(graph, epsilon=EPS)),
            ("thorup-zwick(k=2)", ThorupZwickOracle(graph, k=2, seed=0)),
            ("landmarks(16)", LandmarkOracle(graph, num_landmarks=16, seed=0)),
            ("alt(8, exact)", AltOracle(graph, num_landmarks=8, seed=0)),
            ("contraction-hier", ContractionHierarchy(graph)),
        ]
        for name, oracle in oracles:
            t0 = time.perf_counter()
            estimates = {p: oracle.query(*p) for p in pairs}
            per_query_us = (time.perf_counter() - t0) / len(pairs) * 1e6
            stretches = [estimates[p] / truths[p] for p in pairs]
            rows.append(
                [
                    n,
                    name,
                    round(per_query_us, 1),
                    round(sum(stretches) / len(stretches), 4),
                    round(max(stretches), 4),
                    oracle.size_report().total_words,
                ]
            )
        # Dijkstra-per-query baseline (timed on a subsample).
        t0 = time.perf_counter()
        for p in pairs[:20]:
            exact.query_uncached(*p)
        per_query_us = (time.perf_counter() - t0) / 20 * 1e6
        rows.append([n, "dijkstra/query", round(per_query_us, 1), 1.0, 1.0, 0])
    return rows


def test_e4_oracle_table(record_table):
    rows = run_experiment()
    record_table(
        "e4_oracle",
        format_table(
            ["n", "oracle", "us/query", "mean_stretch", "max_stretch", "words"],
            rows,
            title="E4 (Theorem 2): oracle query time / stretch / space vs baselines",
        ),
        rows=rows,
        header=["n", "oracle", "us/query", "mean_stretch", "max_stretch", "words"],
    )
    for n, name, us, mean_s, max_s, words in rows:
        if name.startswith("path-sep"):
            assert max_s <= 1 + EPS + 1e-9, (n, max_s)
        if name.startswith("thorup"):
            assert max_s <= 3 + 1e-9
    # Oracle beats per-query Dijkstra at the largest size.
    big = {name: us for n, name, us, *_ in rows if n == SIZES[-1]}
    assert big["path-sep(1+.25)"] < big["dijkstra/query"]


@pytest.mark.parametrize("n", [256, 1024])
def test_e4_bench_oracle_build(benchmark, n):
    # Serial construction wall-clock: the baseline entry the CI
    # bench-smoke job gates regressions against.
    graph = random_delaunay_graph(n, seed=n)[0]
    benchmark(lambda: PathSeparatorOracle.build(graph, epsilon=EPS))


@pytest.mark.parametrize("n", [256, 1024])
def test_e4_bench_oracle_query(benchmark, n):
    graph = random_delaunay_graph(n, seed=n)[0]
    oracle = PathSeparatorOracle.build(graph, epsilon=EPS)
    pairs = sample_pairs(graph, 64, seed=2)

    def run():
        for u, v in pairs:
            oracle.query(u, v)

    benchmark(run)


@pytest.mark.parametrize("n", [256, 1024])
def test_e4_bench_dijkstra_query(benchmark, n):
    graph = random_delaunay_graph(n, seed=n)[0]
    exact = ExactOracle(graph)
    pairs = sample_pairs(graph, 4, seed=2)

    def run():
        for u, v in pairs:
            exact.query_uncached(u, v)

    benchmark(run)
