"""E1 — Theorem 1: minor-free families have small-k path separators.

Paper claim: every H-minor-free weighted graph is k-path separable for
k = k(H) — a constant per family, independent of n.  The table reports
the measured k (max and mean separator paths per decomposition node)
across families and sizes; the "shape" to verify is that k stays flat
as n grows.  Contrast with E8, where expanders force k to grow.
"""

from __future__ import annotations

import pytest

from repro.core import build_decomposition
from repro.generators import (
    grid_2d,
    torus_2d,
    k_tree,
    outerplanar_graph,
    random_delaunay_graph,
    random_tree,
    series_parallel_graph,
)
from repro.util import format_table

SIZES = [128, 256, 512, 1024]

FAMILIES = {
    "tree": lambda n: random_tree(n, weight_range=(1.0, 8.0), seed=n),
    "outerplanar": lambda n: outerplanar_graph(n, seed=n),
    "series-parallel": lambda n: series_parallel_graph(n, seed=n),
    "k-tree(3)": lambda n: k_tree(n, 3, seed=n)[0],
    "grid": lambda n: grid_2d(int(round(n**0.5))),
    "torus(genus 1)": lambda n: torus_2d(max(3, int(round(n**0.5)))),
    "delaunay": lambda n: random_delaunay_graph(n, seed=n)[0],
}


def run_experiment():
    rows = []
    for family, make in FAMILIES.items():
        for n in SIZES:
            graph = make(n)
            tree = build_decomposition(graph)
            stats = tree.stats()
            rows.append(
                [
                    family,
                    graph.num_vertices,
                    stats["max_paths_per_node"],
                    round(stats["mean_paths_per_node"], 2),
                    round(stats["strong_fraction"], 2),
                    stats["depth"],
                ]
            )
    return rows


def test_e1_separator_k_table(record_table):
    rows = run_experiment()
    record_table(
        "e1_separator",
        format_table(
            ["family", "n", "k_max", "k_mean", "strong_frac", "depth"],
            rows,
            title="E1 (Theorem 1): separator paths per node across minor-free families",
        ),
        rows=rows,
        header=["family", "n", "k_max", "k_mean", "strong_frac", "depth"],
    )
    # Shape assertions: k flat in n for every family.
    by_family = {}
    for family, n, k_max, *_ in rows:
        by_family.setdefault(family, []).append(k_max)
    for family, ks in by_family.items():
        assert max(ks) <= 8, (family, ks)
        # k at the largest size is no more than a couple above the smallest.
        assert ks[-1] <= ks[0] + 3, (family, ks)


@pytest.mark.parametrize("family", ["grid", "delaunay", "k-tree(3)"])
def test_e1_bench_separator_construction(benchmark, family):
    graph = FAMILIES[family](256)
    from repro.core.engines import auto_engine

    engine = auto_engine(graph)
    result = benchmark(engine.find_separator, graph)
    assert result.num_paths >= 1
