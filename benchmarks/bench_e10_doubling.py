"""E10 — Theorem 8 / Section 5.3: doubling separators where paths fail.

A 3D mesh has no small k-path separator (its balanced separators are
2D planes of ~n^{2/3} vertices) but is (1, ~2)-doubling separable.
Shapes to verify:
* greedy path peeling on 3D meshes needs far more paths than on 2D
  meshes of the same size (the motivation for Definition P1');
* the plane-net DoublingOracle achieves stretch <= 1+eps with
  per-vertex labels that grow polylogarithmically.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import sample_pairs
from repro.baselines import ExactOracle
from repro.core import DoublingOracle, GreedyPeelingEngine, doubling_dimension_estimate
from repro.generators import grid_2d, grid_3d
from repro.util import Timer, format_table

SIDES_3D = [4, 5, 6, 8]
EPS = 0.25


def run_path_vs_plane():
    rows = []
    for s in SIDES_3D:
        g3 = grid_3d(s)
        n = g3.num_vertices
        side2 = max(2, int(round(n**0.5)))
        g2 = grid_2d(side2)
        k3 = GreedyPeelingEngine(num_candidates=8, seed=0).find_separator(g3).num_paths
        k2 = GreedyPeelingEngine(num_candidates=8, seed=0).find_separator(g2).num_paths
        rows.append([s, n, k3, k2, s])  # plane separator would be 1 subgraph of s^2 vertices
    return rows


def run_oracle_experiment():
    from repro.core import MetricNetOracle, grid3d_doubling_decomposition

    rows = []
    for s in SIDES_3D:
        graph = grid_3d(s)
        exact = ExactOracle(graph)
        pairs = sample_pairs(graph, 150, seed=15)
        for name, make in (
            ("coord-net", lambda: DoublingOracle(graph, epsilon=EPS)),
            (
                "metric-net",
                lambda: MetricNetOracle(
                    graph, grid3d_doubling_decomposition(graph), epsilon=EPS
                ),
            ),
        ):
            with Timer() as t:
                oracle = make()
            stretches = [
                oracle.query(u, v) / exact.query(u, v) for u, v in pairs
            ]
            report = oracle.size_report()
            rows.append(
                [
                    s,
                    graph.num_vertices,
                    name,
                    round(max(stretches), 4),
                    round(sum(stretches) / len(stretches), 4),
                    round(report.mean_words, 1),
                    round(t.elapsed, 2),
                ]
            )
    return rows


def test_e10_path_separators_fail_on_3d(record_table):
    rows = run_path_vs_plane()
    record_table(
        "e10_path_vs_plane",
        format_table(
            ["side", "n", "k(3D mesh)", "k(2D mesh, same n)", "plane_width"],
            rows,
            title="E10a: path separators on 3D vs 2D meshes (same n)",
        ),
        rows=rows,
        header=["side", "n", "k(3D mesh)", "k(2D mesh, same n)", "plane_width"],
    )
    # 3D needs strictly more paths, and the gap widens.
    for s, n, k3, k2, _ in rows:
        assert k3 >= k2
    assert rows[-1][2] >= 3 * rows[-1][3]


def test_e10_doubling_oracle_table(record_table):
    rows = run_oracle_experiment()
    record_table(
        "e10_doubling_oracle",
        format_table(
            ["side", "n", "oracle", "max_stretch", "mean_stretch", "label_mean_w", "build_s"],
            rows,
            title="E10b (Theorem 8): plane-net oracles on 3D meshes",
        ),
        rows=rows,
        header=["side", "n", "oracle", "max_stretch", "mean_stretch", "label_mean_w", "build_s"],
    )
    for s, n, name, max_s, mean_s, words, t in rows:
        assert max_s <= 1 + EPS + 1e-9, (name, s)
    # Label growth sub-linear in n (it tracks the separator-plane net,
    # ~n^(2/3) with a (1/eps)^2 constant, not n).
    coord = [r for r in rows if r[2] == "coord-net"]
    assert coord[-1][5] <= coord[0][5] * (coord[-1][1] / coord[0][1]) * 0.75


def test_e10_dimension_contrast(record_table):
    g3 = grid_3d(5)
    alpha_box = doubling_dimension_estimate(g3, num_samples=8, seed=0)
    dec_plane = None
    from repro.core import grid3d_doubling_decomposition
    from repro.graphs import induced_subgraph

    dec = grid3d_doubling_decomposition(g3)
    plane = induced_subgraph(g3, dec.nodes[0].separator)
    alpha_plane = doubling_dimension_estimate(plane, num_samples=8, seed=0)
    dim_rows = [
        ["alpha(3D box)", round(alpha_box, 2)],
        ["alpha(separator plane)", round(alpha_plane, 2)],
    ]
    table = format_table(
        ["metric", "value"],
        dim_rows,
        title="E10c: separator subgraph has lower doubling dimension",
    )
    record_table("e10_dimension", table, rows=dim_rows, header=["metric", "value"])
    assert alpha_plane <= alpha_box + 0.5


@pytest.mark.parametrize("s", [4, 6])
def test_e10_bench_doubling_oracle_build(benchmark, s):
    graph = grid_3d(s)
    oracle = benchmark(DoublingOracle, graph, EPS)
    assert oracle.size_report().mean_words > 0
