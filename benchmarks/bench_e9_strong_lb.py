"""E9 — Section 5.2: strong-separator lower bounds.

* Theorem 6.3: a t x t mesh plus a universal vertex is K6-minor-free
  but every strong k-path separator needs k >= t/3 = Omega(sqrt(n)):
  the graph has diameter 2, so a union of k shortest paths covers at
  most 3k vertices.  Shape: measured strong-k grows linearly in t.
  (Theorem 1 still applies — a two-phase separator is tiny: removing
  the hub first makes the residual a plain mesh.)
* Theorem 7: K_{r, n-r} needs k >= r/2 paths even for plain
  separators.  Shape: measured k tracks r/2 as r grows.
"""

from __future__ import annotations

import math

import pytest

from repro.core import GreedyPeelingEngine, StrongGreedyEngine
from repro.generators import complete_bipartite, mesh_with_universal
from repro.util import format_table

MESH_SIDES = [6, 9, 12, 16]
BIPARTITE_R = [4, 8, 12, 16]


def run_mesh_experiment():
    rows = []
    for t in MESH_SIDES:
        graph = mesh_with_universal(t)
        strong = StrongGreedyEngine(num_candidates=12, seed=0).find_separator(graph)
        phased = GreedyPeelingEngine(num_candidates=12, seed=0).find_separator(graph)
        rows.append(
            [
                t,
                graph.num_vertices,
                strong.num_paths,
                round(strong.num_paths / t, 2),
                math.ceil(t / 3),
                phased.num_paths,
            ]
        )
    return rows


def run_bipartite_experiment():
    rows = []
    for r in BIPARTITE_R:
        graph = complete_bipartite(r, 4 * r)
        sep = StrongGreedyEngine(num_candidates=12, seed=0).find_separator(graph)
        rows.append([r, 4 * r, sep.num_paths, r / 2])
    return rows


def test_e9_mesh_universal_table(record_table):
    rows = run_mesh_experiment()
    record_table(
        "e9_mesh_universal",
        format_table(
            ["t", "n", "strong_k", "strong_k/t", "bound_t/3", "phased_k"],
            rows,
            title="E9a (Theorem 6.3): strong separators of mesh+universal need k = Omega(sqrt n)",
        ),
        rows=rows,
        header=["t", "n", "strong_k", "strong_k/t", "bound_t/3", "phased_k"],
    )
    for t, n, strong_k, ratio, bound, phased_k in rows:
        assert strong_k >= bound - 1  # the proven lower bound (engine >= it)
        assert phased_k <= strong_k  # phases rescue Theorem 1
    # Strong k grows linearly in t = sqrt(n).
    assert rows[-1][2] >= 2 * rows[0][2]


def test_e9_bipartite_table(record_table):
    rows = run_bipartite_experiment()
    record_table(
        "e9_bipartite",
        format_table(
            ["r", "n-r", "k", "bound r/2"],
            rows,
            title="E9b (Theorem 7): K_{r,n-r} needs k >= r/2 paths",
        ),
        rows=rows,
        header=["r", "n-r", "k", "bound r/2"],
    )
    for r, s, k, bound in rows:
        assert k >= bound


@pytest.mark.parametrize("t", [9, 16])
def test_e9_bench_strong_separator(benchmark, t):
    graph = mesh_with_universal(t)
    engine = StrongGreedyEngine(num_candidates=8, seed=0)
    sep = benchmark(engine.find_separator, graph)
    assert sep.is_strong
