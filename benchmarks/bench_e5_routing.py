"""E5 — compact routing: polylog tables, low stretch.

Paper claim (abstract item 3): stretch-(1+eps) routing with polylog
tables.  Our anchor-based scheme (see DESIGN.md) guarantees stretch 3
in the worst case and near-1 in practice while keeping polylog state;
the shapes to verify are: (a) delivered stretch concentrated near 1,
(b) table words per vertex growing polylogarithmically, not linearly.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import sample_pairs
from repro.baselines import ExactOracle
from repro.core import CompactRoutingScheme
from repro.generators import random_delaunay_graph, road_network
from repro.util import format_table

SIZES = [128, 256, 512, 1024]


def run_experiment():
    rows = []
    for family, make in (
        ("delaunay", lambda n: random_delaunay_graph(n, seed=n)[0]),
        ("road", lambda n: road_network(int(round(n**0.5)), seed=n)),
    ):
        for n in SIZES:
            graph = make(n)
            scheme = CompactRoutingScheme.build(graph)
            exact = ExactOracle(graph)
            pairs = sample_pairs(graph, 150, seed=3)
            stretches = []
            for u, v in pairs:
                cost = scheme.route_cost(scheme.route(u, v))
                stretches.append(cost / exact.query(u, v))
            stretches.sort()
            tables = scheme.table_report()
            labels = scheme.label_report()
            rows.append(
                [
                    family,
                    graph.num_vertices,
                    round(sum(stretches) / len(stretches), 3),
                    round(stretches[len(stretches) // 2], 3),
                    round(stretches[int(0.95 * len(stretches))], 3),
                    round(max(stretches), 3),
                    round(tables.mean_words, 1),
                    tables.max_words,
                    labels.max_words,
                ]
            )
    return rows


HEADER = [
    "family",
    "n",
    "mean",
    "p50",
    "p95",
    "max",
    "tbl_mean_w",
    "tbl_max_w",
    "lbl_max_w",
]


def test_e5_routing_table(record_table):
    rows = run_experiment()
    record_table(
        "e5_routing",
        format_table(
            HEADER,
            rows,
            title="E5: compact routing stretch distribution and table sizes",
        ),
        rows=rows,
        header=HEADER,
    )
    for family, n, mean, p50, p95, mx, tbl_mean, tbl_max, lbl_max in rows:
        assert mx <= 3.0 + 1e-6
        assert mean <= 1.6
    # Polylog tables: 8x more vertices, far less than 8x bigger tables.
    for family in ("delaunay", "road"):
        series = [r for r in rows if r[0] == family]
        assert series[-1][6] <= 4 * series[0][6]


@pytest.mark.parametrize("n", [256, 1024])
def test_e5_bench_route(benchmark, n):
    graph = random_delaunay_graph(n, seed=n)[0]
    scheme = CompactRoutingScheme.build(graph)
    pairs = sample_pairs(graph, 64, seed=4)

    def run():
        for u, v in pairs:
            scheme.route(u, v)

    benchmark(run)
