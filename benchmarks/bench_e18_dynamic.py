"""E18 — dynamic updates: incremental relabel vs from-scratch rebuild.

The claim behind `repro.dynamic`: an edge reweight invalidates only the
separator units whose paths contain the edge, so recomputing those
units is far cheaper than rebuilding every label — while producing the
*byte-identical* labeling (same tree, same entry order).  Shapes:

* per-family scaling (delaunay, partial 3-tree) up to n = 2048;
* mean incremental update cost vs one full ``build_labeling`` on the
  same fixed tree — the speedup must widen with n and clear 5x at the
  largest size;
* update throughput (updates/s) and the touched-entry counts that
  explain it.

Persists the standing record to ``BENCH_dynamic.json`` at the repo
root (a ``repro-bench/1`` payload, like ``BENCH_serve.json``) next to
the usual ``benchmarks/results/e18_dynamic.*`` pair.
"""

from __future__ import annotations

import random
import time
from pathlib import Path

from repro.core import build_decomposition, build_labeling
from repro.core.serialize import dump_labeling
from repro.dynamic import EdgeUpdate, incremental_relabel
from repro.generators import k_tree, random_delaunay_graph
from repro.obs.export import write_bench_json
from repro.util import format_table

EPS = 0.25
UPDATES = 20
SIZES = (512, 2048)
FAMILIES = {
    "delaunay": lambda n: random_delaunay_graph(n, seed=n)[0],
    "ktree3": lambda n: k_tree(n, 3, seed=n)[0],
}
BENCH_OUT = Path(__file__).parent.parent / "BENCH_dynamic.json"


def reweight(rng: random.Random, graph) -> EdgeUpdate:
    edges = sorted(graph.edges(), key=repr)
    u, v, w = edges[rng.randrange(len(edges))]
    new_w = round(float(w) * rng.uniform(0.5, 2.0), 9)
    if new_w <= 0 or new_w == float(w):
        new_w = float(w) + 0.5
    return EdgeUpdate(u, v, new_w)


def run_case(family: str, n: int, seed: int = 18):
    graph = FAMILIES[family](n)
    tree = build_decomposition(graph)

    full_start = time.perf_counter()
    labeling = build_labeling(graph, tree, epsilon=EPS)
    full_s = time.perf_counter() - full_start

    rng = random.Random(seed)
    incr_s = []
    touched = 0
    units = 0
    for _ in range(UPDATES):
        update = reweight(rng, graph)
        start = time.perf_counter()
        delta = incremental_relabel(labeling, update)
        incr_s.append(time.perf_counter() - start)
        touched += delta.num_changes
        units += delta.units

    # Byte-identity after the whole run doubles as a second full-build
    # timing sample (same graph, same tree, post-update weights).
    verify_start = time.perf_counter()
    fresh = build_labeling(graph, tree, epsilon=EPS)
    full_s = min(full_s, time.perf_counter() - verify_start)
    identical = dump_labeling(labeling) == dump_labeling(fresh)

    mean_incr = sum(incr_s) / len(incr_s)
    return {
        "family": family,
        "n": n,
        "edges": graph.num_edges,
        "labels": len(labeling.labels),
        "full_s": full_s,
        "mean_incr_s": mean_incr,
        "speedup": full_s / mean_incr if mean_incr > 0 else float("inf"),
        "updates_per_s": 1.0 / mean_incr if mean_incr > 0 else float("inf"),
        "mean_touched_entries": touched / UPDATES,
        "mean_affected_units": units / UPDATES,
        "identical": identical,
    }


def test_e18_bench_dynamic(record_table):
    cases = [
        run_case(family, n) for family in sorted(FAMILIES) for n in SIZES
    ]
    header = [
        "family",
        "n",
        "full_ms",
        "incr_ms",
        "speedup",
        "upd/s",
        "entries",
        "units",
        "identical",
    ]
    rows = [
        [
            c["family"],
            c["n"],
            round(1e3 * c["full_s"], 2),
            round(1e3 * c["mean_incr_s"], 3),
            round(c["speedup"], 1),
            round(c["updates_per_s"], 1),
            round(c["mean_touched_entries"], 1),
            round(c["mean_affected_units"], 1),
            c["identical"],
        ]
        for c in cases
    ]
    meta = {
        "epsilon": EPS,
        "updates_per_case": UPDATES,
        "sizes": list(SIZES),
        "cases": cases,
    }
    table = format_table(
        header,
        rows,
        title=f"E18: incremental relabel vs full rebuild "
        f"({UPDATES} reweights/case, eps={EPS})",
    )
    record_table("e18_dynamic", table, rows=rows, header=header, meta=meta)
    write_bench_json(
        BENCH_OUT,
        "dynamic",
        header=header,
        rows=rows,
        meta=meta,
        unix_time=time.time(),
        cwd=str(BENCH_OUT.parent),
    )
    # Acceptance gates: every case stayed byte-identical to the
    # from-scratch rebuild, and at the largest size the incremental
    # path is >= 5x cheaper than a full relabel.
    assert all(c["identical"] for c in cases), cases
    largest = [c for c in cases if c["n"] == max(SIZES)]
    for c in largest:
        assert c["speedup"] >= 5, (c["family"], c["speedup"])
