"""E11 — ablations over the design choices DESIGN.md calls out.

(a) Separator engine: greedy peeling vs fundamental-cycle vs center
    bags on the same planar inputs — k, strongness, depth, and the
    label size each induces.
(b) Portal rule: the Thorup-style epsilon-cover (used by Theorem 2
    labels) vs the paper's Claim-1 landmark rule (used by the
    small-world distribution) — entries per (vertex, path).
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import sample_pairs
from repro.baselines import ExactOracle
from repro.core import (
    CenterBagEngine,
    FundamentalCycleEngine,
    GreedyPeelingEngine,
    build_decomposition,
    build_labeling,
    claim1_landmarks,
    epsilon_cover_portals,
)
from repro.core.smallworld import estimate_aspect_ratio
from repro.generators import random_delaunay_graph
from repro.graphs import dijkstra
from repro.util import Timer, format_table

N = 512
EPS = 0.25


def run_engine_ablation():
    graph = random_delaunay_graph(N, seed=20)[0]
    exact = ExactOracle(graph)
    pairs = sample_pairs(graph, 100, seed=21)
    rows = []
    from repro.planar import PlanarCycleEngine

    engines = [
        ("greedy-peeling", GreedyPeelingEngine(seed=0)),
        ("fundamental-cycle", FundamentalCycleEngine(seed=0)),
        ("lipton-tarjan(dual)", PlanarCycleEngine()),
        ("center-bag(min_deg)", CenterBagEngine(order="min_degree")),
    ]
    for name, engine in engines:
        with Timer() as t_build:
            tree = build_decomposition(graph, engine=engine)
        stats = tree.stats()
        labeling = build_labeling(graph, tree, epsilon=EPS)
        report = labeling.size_report()
        worst = max(
            labeling.estimate(u, v) / exact.query(u, v) for u, v in pairs
        )
        rows.append(
            [
                name,
                stats["max_paths_per_node"],
                round(stats["strong_fraction"], 2),
                stats["depth"],
                round(report.mean_words, 1),
                round(worst, 4),
                round(t_build.elapsed, 2),
            ]
        )
    return rows


def run_portal_ablation():
    graph = random_delaunay_graph(N, seed=22)[0]
    tree = build_decomposition(graph)
    delta = estimate_aspect_ratio(graph)
    root = tree.nodes[0]
    key = (0, 0, 0)
    path = tree.path_vertices(key)
    prefix = tree.path_prefix(key)
    residual = next(J for i, J in root.residual_sets() if i == 0)
    rows = []
    counts = {"eps-cover(.5)": [], "eps-cover(.1)": [], "claim1": []}
    for v in sorted(residual, key=repr)[:120]:
        dist, _ = dijkstra(graph, v, allowed=residual)
        counts["eps-cover(.5)"].append(
            len(epsilon_cover_portals(path, prefix, dist, 0.5))
        )
        counts["eps-cover(.1)"].append(
            len(epsilon_cover_portals(path, prefix, dist, 0.1))
        )
        counts["claim1"].append(len(claim1_landmarks(path, prefix, dist, delta)))
    for name, values in counts.items():
        rows.append(
            [
                name,
                round(sum(values) / len(values), 2),
                max(values),
                len(path),
            ]
        )
    return rows


def test_e11_engine_ablation_table(record_table):
    rows = run_engine_ablation()
    record_table(
        "e11_engines",
        format_table(
            ["engine", "k_max", "strong", "depth", "label_w", "worst_stretch", "build_s"],
            rows,
            title=f"E11a: separator engine ablation (delaunay n={N}, eps={EPS})",
        ),
        rows=rows,
        header=["engine", "k_max", "strong", "depth", "label_w", "worst_stretch", "build_s"],
    )
    for name, k_max, strong, depth, words, worst, t in rows:
        assert worst <= 1 + EPS + 1e-9, name


def test_e11_portal_ablation_table(record_table):
    rows = run_portal_ablation()
    record_table(
        "e11_portals",
        format_table(
            ["rule", "mean_entries", "max_entries", "path_len"],
            rows,
            title="E11b: portal/landmark rule ablation on one separator path",
        ),
        rows=rows,
        header=["rule", "mean_entries", "max_entries", "path_len"],
    )
    by_name = {r[0]: r for r in rows}
    # Tighter eps needs at least as many portals.
    assert by_name["eps-cover(.1)"][1] >= by_name["eps-cover(.5)"][1]
    # All rules select far fewer entries than the path has vertices.
    for name, mean_entries, max_entries, path_len in rows:
        if path_len > 16:
            assert max_entries < path_len


@pytest.mark.parametrize(
    "engine_name,engine",
    [
        ("greedy", GreedyPeelingEngine(seed=0)),
        ("cycle", FundamentalCycleEngine(seed=0)),
    ],
)
def test_e11_bench_engines(benchmark, engine_name, engine):
    graph = random_delaunay_graph(N, seed=23)[0]
    sep = benchmark(engine.find_separator, graph)
    assert sep.num_paths >= 1
