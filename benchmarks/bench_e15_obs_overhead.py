"""E15 — what the observability plane costs the serve path.

The PR-1 invariant says telemetry is free when off: with no span sink
attached, the metrics registry disabled, and no event-log sink, every
instrumentation point in the request path is one boolean check.  This
bench holds the serving stack to that claim on the E13 workload
(closed-loop DIST over a delaunay labeling) by **interleaving** rounds:

    off, on, off, on, ...

Run-to-run QPS noise on a shared machine is easily +-20%, far larger
than the effect being measured — interleaving means both configurations
sample the same machine conditions, and comparing medians across rounds
cancels the drift a sequential A-then-B design would bake in.

"on" is the full-blast plane: span JSONL (traced client + server in one
process, so every request carries ids end to end), the metrics registry
recording per-op latency histograms, and an event-log ring buffer.
"""

from __future__ import annotations

import asyncio
import statistics

from repro.core import build_decomposition, build_labeling
from repro.core.serialize import dump_labeling, load_labeling
from repro.generators import random_delaunay_graph
from repro.obs import RingBufferSink, eventlog, metrics, use_sink
from repro.obs.tracing import JsonlSpanSink
from repro.serve import (
    OracleServer,
    ShardedLabelStore,
    StoreCatalog,
    run_loadgen,
    synthesize_pairs,
)
from repro.util import format_table

N = 512
QUERIES = 600
CONCURRENCY = 8
EPS = 0.25
ROUNDS = 5  # per configuration, interleaved


def build_remote():
    graph = random_delaunay_graph(N, seed=N)[0]
    labeling = build_labeling(graph, build_decomposition(graph), epsilon=EPS)
    return load_labeling(dump_labeling(labeling))


async def _one_round(remote, pairs):
    catalog = StoreCatalog()
    catalog.add(ShardedLabelStore.from_remote("bench", remote))
    server = OracleServer(catalog, port=0, max_inflight=64)
    await server.start()
    try:
        await run_loadgen(  # warm up connections
            "127.0.0.1", server.port, pairs[:50], concurrency=CONCURRENCY
        )
        report = await run_loadgen(
            "127.0.0.1", server.port, pairs,
            concurrency=CONCURRENCY, verify=remote,
        )
    finally:
        await server.shutdown()
    assert report.errors == 0, report.error_samples
    assert report.mismatches == 0, report.error_samples
    return report


def measure_off(remote, pairs):
    """The shipped default: no sinks, registry disabled."""
    return asyncio.run(_one_round(remote, pairs))


def measure_on(remote, pairs, tmp_path, round_index):
    """Everything lit: spans to JSONL, metrics on, event ring."""
    ring = eventlog.add_sink(RingBufferSink(1024))
    try:
        with use_sink(
            JsonlSpanSink(tmp_path / f"spans_{round_index}.jsonl", service="bench")
        ):
            with metrics.activate():
                return asyncio.run(_one_round(remote, pairs))
    finally:
        eventlog.remove_sink(ring)


def run_experiment(tmp_path):
    remote = build_remote()
    pairs = synthesize_pairs(list(remote.vertices()), QUERIES, seed=13)

    off_qps, on_qps = [], []
    for i in range(ROUNDS):
        off_qps.append(measure_off(remote, pairs).qps)
        on_qps.append(measure_on(remote, pairs, tmp_path, i).qps)

    off_median = statistics.median(off_qps)
    on_median = statistics.median(on_qps)
    overhead_pct = 100.0 * (off_median - on_median) / off_median
    rows = [
        [
            "telemetry off (default)",
            ROUNDS,
            round(off_median),
            round(min(off_qps)),
            round(max(off_qps)),
        ],
        [
            "spans+metrics+log on",
            ROUNDS,
            round(on_median),
            round(min(on_qps)),
            round(max(on_qps)),
        ],
    ]
    return rows, off_qps, on_qps, overhead_pct


def test_e15_bench_obs_overhead(record_table, tmp_path):
    rows, off_qps, on_qps, overhead_pct = run_experiment(tmp_path)
    header = ["config", "rounds", "median_qps", "min_qps", "max_qps"]
    table = format_table(
        header,
        rows,
        title=f"E15: observability overhead on the E13 workload "
        f"(delaunay n={N}, {QUERIES} queries, interleaved rounds)",
    )
    off_median = statistics.median(off_qps)
    record_table(
        "e15_obs_overhead", table, rows=rows, header=header,
        meta={
            "n": N,
            "queries": QUERIES,
            "concurrency": CONCURRENCY,
            "rounds": ROUNDS,
            "interleaved": True,
            "off_qps": [round(q, 1) for q in off_qps],
            "on_qps": [round(q, 1) for q in on_qps],
            "full_telemetry_overhead_pct": round(overhead_pct, 2),
        },
    )
    # The off path must be within run-to-run noise of the full-blast
    # path's *floor*: if one boolean per instrumentation point cost
    # real throughput, off would not beat on at all.  (Comparing the
    # off path against the *pre-PR commit* cannot be done from inside
    # one checkout; the committed BENCH_obs_overhead.json records that
    # paired A/B — alternating subprocess rounds of pre-PR worktree vs
    # this tree — and is where the within-2%-of-pre-PR claim lives.)
    assert off_median > 0 and statistics.median(on_qps) > 0
    assert overhead_pct > -10.0, (
        f"telemetry-off path slower than telemetry-on by "
        f"{-overhead_pct:.1f}% — the fast path regressed"
    )
