"""E19 — flat CSR core: construction and store-level query speedups.

The flat backend's whole contract is "bit-identical, just faster"; the
differential wall proves the first half, this bench quantifies (and
gates) the second on the E3/E4 workload family (random Delaunay
triangulations, eps = 0.25):

* construction — ``build_labeling`` wall-clock, dict vs flat, with the
  byte-identity of the dumped labeling re-asserted at every size; the
  flat backend must win by **>= 5x at the largest size**;
* scaling — least-squares log-log fit of build seconds vs n per
  backend (the empirical exponent the paper's near-linear construction
  claim is judged by), recorded in the bench JSON;
* store-level queries — ``ShardedLabelStore.estimate`` throughput,
  dict vs flat store over the same loaded labels, identical answer
  checksums required, flat must win by **>= 3x**.

The query gate is deliberately *store-level*, not wire-level: E13
serves queries through asyncio + JSON framing, which costs ~100us/query
and masks any kernel difference (see docs/performance.md).  The store
estimate path is what the server executes per request after framing.

Persists the standing record to ``BENCH_flat.json`` at the repo root
(a ``repro-bench/1`` payload, like ``BENCH_labels_io.json``) next to
the usual ``benchmarks/results/e19_flat.*`` pair.
"""

from __future__ import annotations

import math
import time
from pathlib import Path

from repro.core import build_decomposition, build_labeling
from repro.core.serialize import dump_labeling, load_labeling
from repro.generators import random_delaunay_graph
from repro.obs.export import write_bench_json
from repro.serve.store import ShardedLabelStore
from repro.serve.loadgen import synthesize_pairs
from repro.util import format_table

SIZES = [256, 512, 1024, 2048]
EPS = 0.25
#: The query gate runs on the E13/E16 serve workload (delaunay n=512)
#: so its speedup is the one a serve node actually sees per request.
QUERY_N = 512
QUERY_PAIRS = 20_000
BENCH_OUT = Path(__file__).parent.parent / "BENCH_flat.json"

CONSTRUCTION_GATE = 5.0  # x, at the largest size
QUERY_GATE = 3.0  # x, store-level estimate throughput


def _fit_exponent(ns, seconds):
    """Least-squares slope of log(seconds) against log(n)."""
    xs = [math.log(n) for n in ns]
    ys = [math.log(s) for s in seconds]
    mx = sum(xs) / len(xs)
    my = sum(ys) / len(ys)
    num = sum((x - mx) * (y - my) for x, y in zip(xs, ys))
    den = sum((x - mx) ** 2 for x in xs)
    return num / den


def run_construction():
    rows = []
    dict_s, flat_s = [], []
    for n in SIZES:
        graph = random_delaunay_graph(n, seed=n)[0]
        tree = build_decomposition(graph)
        t0 = time.perf_counter()
        ref = build_labeling(graph, tree, epsilon=EPS, backend="dict")
        td = time.perf_counter() - t0
        t0 = time.perf_counter()
        flat = build_labeling(graph, tree, epsilon=EPS, backend="flat")
        tf = time.perf_counter() - t0
        # The speed claim is only worth recording for identical output.
        assert dump_labeling(flat) == dump_labeling(ref), n
        dict_s.append(td)
        flat_s.append(tf)
        rows.append(
            [n, round(td, 3), round(tf, 3), round(td / tf, 2), "yes"]
        )
    return rows, dict_s, flat_s


def run_store_queries():
    graph = random_delaunay_graph(QUERY_N, seed=QUERY_N)[0]
    tree = build_decomposition(graph)
    labeling = build_labeling(graph, tree, epsilon=EPS, backend="flat")
    remote = load_labeling(dump_labeling(labeling))
    pairs = synthesize_pairs(list(remote.vertices()), QUERY_PAIRS, seed=7)

    out = {}
    checksums = {}
    for backend in ("dict", "flat"):
        store = ShardedLabelStore.from_remote(
            "e19", remote, num_shards=8, backend=backend
        )
        estimate = store.estimate
        # Steady state: one untimed pass materializes the flat store's
        # lazy per-vertex index (and touches every dict label once), so
        # the clock sees the per-query kernel, not one-time conversion.
        for u, v in pairs:
            estimate(u, v)
        t0 = time.perf_counter()
        acc = 0.0
        for u, v in pairs:
            acc += estimate(u, v)
        elapsed = time.perf_counter() - t0
        out[backend] = elapsed
        checksums[backend] = acc
    # Same floats, in the same order: the sums are bit-equal.
    assert checksums["flat"] == checksums["dict"], checksums
    return out


def run_experiment():
    build_rows, dict_s, flat_s = run_construction()
    exponents = {
        "dict": round(_fit_exponent(SIZES, dict_s), 3),
        "flat": round(_fit_exponent(SIZES, flat_s), 3),
    }
    query_s = run_store_queries()
    build_speedup = dict_s[-1] / flat_s[-1]
    query_speedup = query_s["dict"] / query_s["flat"]
    qps = {
        backend: QUERY_PAIRS / elapsed for backend, elapsed in query_s.items()
    }
    query_rows = [
        [
            backend,
            round(query_s[backend] / QUERY_PAIRS * 1e6, 2),
            round(qps[backend]),
            round(query_s["dict"] / query_s[backend], 2),
        ]
        for backend in ("dict", "flat")
    ]
    meta = {
        "epsilon": EPS,
        "sizes": SIZES,
        "build_seconds": {
            "dict": [round(s, 4) for s in dict_s],
            "flat": [round(s, 4) for s in flat_s],
        },
        "build_speedup_at_max_n": round(build_speedup, 2),
        "empirical_exponent": exponents,
        "query": {
            "n": QUERY_N,
            "pairs": QUERY_PAIRS,
            "seconds": {k: round(v, 4) for k, v in query_s.items()},
            "qps": {k: round(v) for k, v in qps.items()},
            "speedup": round(query_speedup, 2),
            "level": "store.estimate (wire framing excluded, see E13)",
        },
        "gates": {
            "construction_x": CONSTRUCTION_GATE,
            "store_query_x": QUERY_GATE,
        },
    }
    return build_rows, query_rows, meta


def test_e19_bench_flat(record_table):
    build_rows, query_rows, meta = run_experiment()
    header = ["n", "dict_s", "flat_s", "speedup", "byte_identical"]
    table = format_table(
        header,
        build_rows,
        title=f"E19: flat vs dict construction, delaunay (eps={EPS}); "
        f"exponent dict={meta['empirical_exponent']['dict']} "
        f"flat={meta['empirical_exponent']['flat']}",
    )
    query_header = ["backend", "us/query", "qps", "speedup"]
    query_table = format_table(
        query_header,
        query_rows,
        title=f"E19: store.estimate throughput, delaunay n={QUERY_N}, "
        f"{QUERY_PAIRS} pairs",
    )
    record_table(
        "e19_flat",
        table + "\n\n" + query_table,
        rows=build_rows + query_rows,
        header=header,
        meta=meta,
    )
    write_bench_json(
        BENCH_OUT,
        "flat",
        header=header,
        rows=build_rows,
        meta=meta,
        table=table + "\n\n" + query_table,
        unix_time=time.time(),
        cwd=str(BENCH_OUT.parent),
    )
    # The acceptance gates: the flat core must not merely win, it must
    # win big enough to justify a second implementation of each kernel.
    assert meta["build_speedup_at_max_n"] >= CONSTRUCTION_GATE, meta[
        "build_speedup_at_max_n"
    ]
    assert meta["query"]["speedup"] >= QUERY_GATE, meta["query"]
