"""E16 — label I/O: JSON (/1) vs packed binary (/2) footprint + startup.

The claim behind `repro.core.binfmt`: a serve node holding `/2` labels
opens its store in O(1) — map the file, read 80 bytes — where the `/1`
JSON path must parse every label before the first query.  Shapes to
verify on an E13-size labeling (delaunay n = 512):

* cold start: `MappedLabelStore` open is >= 10x faster than the eager
  JSON parse of the same label set;
* first queries straight off the cold map answer byte-identically to
  the eager store (lazy decode changes latency, never bytes);
* footprint: bytes on disk per codec, mapped bytes, and the resident
  delta of parse-everything vs map-and-touch.

Persists the standing record to ``BENCH_labels_io.json`` at the repo
root (a ``repro-bench/1`` payload, like ``BENCH_serve.json``) next to
the usual ``benchmarks/results/e16_labels_io.*`` pair.
"""

from __future__ import annotations

import time
from pathlib import Path

from repro.core import build_decomposition, build_labeling
from repro.core.serialize import dump_labeling, load_labeling
from repro.generators import random_delaunay_graph
from repro.obs.export import write_bench_json
from repro.obs.timeseries import process_rss_bytes
from repro.serve.store import MappedLabelStore, ShardedLabelStore
from repro.util import format_table

N = 512
EPS = 0.25
NUM_SHARDS = 8
REPEATS = 5
QUERY_SAMPLE = 50
BENCH_OUT = Path(__file__).parent.parent / "BENCH_labels_io.json"


def build_remote():
    graph = random_delaunay_graph(N, seed=N)[0]
    labeling = build_labeling(graph, build_decomposition(graph), epsilon=EPS)
    return load_labeling(dump_labeling(labeling))


def _best_of(fn, repeats: int = REPEATS) -> float:
    """Min wall-clock over *repeats* runs: the least-noise estimator
    for a cold-start cost that has no warmup to amortize."""
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def run_experiment(tmp_dir: Path):
    remote = build_remote()
    json_path = tmp_dir / "labels.json"
    bin_path = tmp_dir / "labels.bin"
    dump_labeling(remote, json_path)
    dump_labeling(remote, bin_path, codec="binary", num_shards=NUM_SHARDS)

    json_bytes = json_path.stat().st_size
    bin_bytes = bin_path.stat().st_size

    rss_before = process_rss_bytes()
    json_start = _best_of(lambda: ShardedLabelStore.load(json_path, NUM_SHARDS))
    rss_after_json = process_rss_bytes()
    bin_start = _best_of(lambda: MappedLabelStore(bin_path).close())

    # Cold open + first queries: lazy decode must not change a byte.
    mapped = MappedLabelStore(bin_path)
    eager = ShardedLabelStore.load(json_path, NUM_SHARDS)
    vertices = sorted(remote.vertices())
    sample = list(zip(vertices, reversed(vertices)))[:QUERY_SAMPLE]
    first_query_start = time.perf_counter()
    for u, v in sample:
        assert mapped.estimate(u, v) == eager.estimate(u, v)
    first_queries_s = time.perf_counter() - first_query_start
    rss_after_map = process_rss_bytes()

    speedup = json_start / bin_start if bin_start > 0 else float("inf")
    rows = [
        ["json /1", json_bytes, round(1e3 * json_start, 3), 0, "parse all"],
        [
            "binary /2",
            bin_bytes,
            round(1e3 * bin_start, 3),
            mapped.mapped_bytes,
            f"mmap, {speedup:.0f}x faster open",
        ],
    ]
    meta = {
        "n": N,
        "labels": remote.num_labels,
        "epsilon": EPS,
        "num_shards": NUM_SHARDS,
        "bytes_on_disk": {"json": json_bytes, "binary": bin_bytes},
        "startup_s": {"json": json_start, "binary": bin_start},
        "startup_speedup": round(speedup, 1),
        "mapped_bytes": mapped.mapped_bytes,
        "first_queries": {
            "count": len(sample),
            "seconds": round(first_queries_s, 6),
        },
        "rss_bytes": {
            "before": rss_before,
            "after_json_parse": rss_after_json,
            "after_map_and_queries": rss_after_map,
        },
    }
    mapped.close()
    return rows, meta


def test_e16_bench_labels_io(record_table, tmp_path):
    rows, meta = run_experiment(tmp_path)
    header = ["codec", "bytes", "open_ms", "mapped_bytes", "note"]
    table = format_table(
        header,
        rows,
        title=f"E16: label store cold start, delaunay n={N} "
        f"({meta['labels']} labels, eps={EPS})",
    )
    record_table("e16_labels_io", table, rows=rows, header=header, meta=meta)
    write_bench_json(
        BENCH_OUT,
        "labels_io",
        header=header,
        rows=rows,
        meta=meta,
        unix_time=time.time(),
        cwd=str(BENCH_OUT.parent),
    )
    # The acceptance gate: a serve node opens a /2 store >= 10x faster
    # than parsing the same labels from /1 JSON.
    assert meta["startup_speedup"] >= 10, meta["startup_s"]
    # Lazy decode answered every sampled query identically (asserted
    # in run_experiment) and the map covers the whole file.
    assert meta["mapped_bytes"] == meta["bytes_on_disk"]["binary"]
