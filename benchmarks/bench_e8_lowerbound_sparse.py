"""E8 — Theorem 5: general sparse graphs defeat path separators.

Random 3-regular graphs are expanders w.h.p.: every balanced separator
has Omega(n) vertices, and shortest paths are short (O(log n)), so a
Definition-1 separator needs polynomially many paths.  Shape: measured
k grows steeply with n for expanders while staying flat for equally
sparse planar graphs (the contrast that makes Theorem 5 a *lower
bound* story rather than an engine deficiency).
"""

from __future__ import annotations

import math

import pytest

from repro.core import GreedyPeelingEngine
from repro.generators import random_delaunay_graph, random_regular_graph
from repro.graphs import is_connected
from repro.util import format_table

SIZES = [64, 128, 256, 512]


def connected_regular(n, seed):
    for s in range(seed, seed + 20):
        g = random_regular_graph(n, 3, seed=s)
        if is_connected(g):
            return g
    raise RuntimeError("no connected sample found")


def run_experiment():
    rows = []
    for n in SIZES:
        expander = connected_regular(n, seed=n)
        sep = GreedyPeelingEngine(num_candidates=8, seed=0).find_separator(expander)
        k_exp = sep.num_paths
        planar = random_delaunay_graph(n, seed=n)[0]
        sep_p = GreedyPeelingEngine(num_candidates=8, seed=0).find_separator(planar)
        rows.append(
            [
                n,
                k_exp,
                round(k_exp / math.sqrt(n), 2),
                sep_p.num_paths,
                round(math.log2(n), 1),
            ]
        )
    return rows


def test_e8_sparse_lower_bound_table(record_table):
    rows = run_experiment()
    record_table(
        "e8_lowerbound_sparse",
        format_table(
            ["n", "k(3-regular)", "k/sqrt(n)", "k(delaunay)", "log2(n)"],
            rows,
            title="E8 (Theorem 5): separator paths needed, expander vs planar",
        ),
        rows=rows,
        header=["n", "k(3-regular)", "k/sqrt(n)", "k(delaunay)", "log2(n)"],
    )
    # Expander k grows with n; planar k stays tiny.
    ks = [r[1] for r in rows]
    assert ks[-1] > 2 * ks[0], ks
    assert all(r[3] <= 8 for r in rows)
    # At the largest size the separation is stark.
    assert rows[-1][1] >= 3 * rows[-1][3]


@pytest.mark.parametrize("n", [128, 256])
def test_e8_bench_expander_separator(benchmark, n):
    graph = connected_regular(n, seed=n)
    engine = GreedyPeelingEngine(num_candidates=4, seed=0)
    sep = benchmark(engine.find_separator, graph)
    assert sep.num_paths >= 1
