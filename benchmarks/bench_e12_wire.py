"""E12 — the word model made concrete (paper footnote 2).

The paper measures space in words of Omega(omega + log n) bits.  This
bench compares three accountings of the same labels across n:

* words (the package's word-model count);
* model bits (words x (log2 n + weight bits), the footnote's block);
* wire bits (the actual JSON serialization of repro.core.serialize).

Shape: all three grow like log n per vertex, and the JSON wire format
costs a constant factor over the information-theoretic block model —
i.e. the word model is an honest proxy for shipped bytes.
"""

from __future__ import annotations

import pytest

from repro.core import build_decomposition, build_labeling
from repro.core.serialize import wire_bits
from repro.generators import random_delaunay_graph
from repro.util import format_table
from repro.util.sizing import words_to_bits

SIZES = [128, 256, 512, 1024]
EPS = 0.25


def run_experiment():
    rows = []
    for n in SIZES:
        graph = random_delaunay_graph(n, seed=n)[0]
        labeling = build_labeling(graph, build_decomposition(graph), epsilon=EPS)
        report = labeling.size_report()
        mean_words = report.mean_words
        max_weight = graph.max_weight()
        model_bits = words_to_bits(mean_words, n=n, max_weight=max_weight)
        mean_wire = sum(
            wire_bits(label) for label in labeling.labels.values()
        ) / len(labeling.labels)
        rows.append(
            [
                n,
                round(mean_words, 1),
                round(model_bits, 0),
                round(mean_wire, 0),
                round(mean_wire / model_bits, 2),
            ]
        )
    return rows


def test_e12_wire_table(record_table):
    rows = run_experiment()
    record_table(
        "e12_wire",
        format_table(
            ["n", "mean_words", "model_bits", "wire_bits", "wire/model"],
            rows,
            title="E12 (footnote 2): word model vs actual wire size of labels",
        ),
        rows=rows,
        header=["n", "mean_words", "model_bits", "wire_bits", "wire/model"],
    )
    # The JSON overhead factor stays bounded across sizes.
    factors = [r[4] for r in rows]
    assert max(factors) <= 3 * min(factors)
    # Per-vertex bits grow sub-linearly in n.
    assert rows[-1][3] <= rows[0][3] * (SIZES[-1] / SIZES[0]) / 2


@pytest.mark.parametrize("n", [256])
def test_e12_bench_serialization(benchmark, n):
    from repro.core.serialize import dump_labeling

    graph = random_delaunay_graph(n, seed=n)[0]
    labeling = build_labeling(graph, build_decomposition(graph), epsilon=EPS)
    payload = benchmark(dump_labeling, labeling)
    assert payload.startswith("{")
