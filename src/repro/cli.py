"""Command-line interface.

Subcommands::

    repro generate   --family grid --n 400 --out g.edges     # make a graph
    repro decompose  g.edges [--engine greedy|planar|...]    # separator stats
    repro oracle     g.edges --epsilon 0.1 --queries 200     # build + evaluate
    repro labels     g.edges --epsilon 0.1 --out labels.json # ship labels
    repro pack       labels.json labels.bin                  # JSON <-> binary
    repro query      labels.json U V                         # distance from labels
    repro query      labels.json --pairs-file p.txt          # batch of queries
    repro smallworld g.edges --pairs 100                     # greedy-hop comparison
    repro stats      g.edges --epsilon 0.1                   # telemetry breakdown
    repro serve      --labels labels.json --port 7471        # query service
    repro loadgen    --labels labels.json --pairs 500        # drive the service
    repro query      --remote host:7471 U V                  # query the service
    repro chaos      --labels labels.json --pairs 300        # loadgen under faults
    repro update     g.edges --labels l.json --journal j.jsonl \
                     --edge 3 7 2.5                          # incremental relabel
    repro loadgen    --updates 10 --update-graph g.edges ... # updates under load
    repro cluster    init --labels l.bin --root data/        # shard + replicate
    repro cluster    up --root data/                         # N-node local cluster
    repro chaos      --cluster 3 --kill-replica ...          # kill-a-node drill
    repro top        host:7471                               # live METRICS view
    repro trace      server.jsonl client.jsonl               # reassemble traces

Every subcommand also accepts ``--trace`` (span log on stderr),
``--trace-out PATH`` (``repro-spans/1`` JSONL for ``repro trace``),
``--log-file PATH`` / ``--log-ring N`` (structured ``repro-log/1``
events), and
``--metrics-out PATH`` (machine-readable ``repro-metrics/1`` JSON), and
subcommands that use randomness take an explicit ``--seed`` which is
threaded through the separator engines — no global interpreter RNG
state is consumed.  ``oracle``, ``labels``, and ``stats`` take
``--jobs N`` to fan label construction out over N worker processes;
the output is byte-identical to a serial build (see
:doc:`docs/performance`).

Labels travel in either codec of the ``repro-distance-labels`` family —
``/1`` JSON (debug) or ``/2`` packed binary (``docs/formats.md``) —
and every consumer (``query``, ``serve``, ``loadgen``, ``chaos``)
sniffs the file and accepts both; ``repro pack`` converts between
them and ``repro labels --codec binary`` emits ``/2`` directly.

All failure modes the operator can trigger — a missing input file, a
labels file that is not a valid ``repro-distance-labels`` payload, a
query for a vertex with no label — print one ``error: ...`` line on
stderr and exit with status 2, never a traceback.

Graphs are exchanged as whitespace edge lists (see
:mod:`repro.graphs.io`); generated graphs are relabeled to integers so
the format stays trivial.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import os
import random
import sys
from contextlib import ExitStack
from pathlib import Path
from typing import List, Optional

from repro.core import BACKENDS, build_decomposition, build_labeling
from repro.core.engines import (
    CenterBagEngine,
    GreedyPeelingEngine,
    StrongGreedyEngine,
    TreeCentroidEngine,
    auto_engine,
)
from repro.core.oracle import PathSeparatorOracle
from repro.core.serialize import dump_labeling, load_labeling
from repro.graphs.io import read_edge_list, write_edge_list
from repro.graphs.ops import relabel
from repro.graphs.shortest_paths import dijkstra
from repro.obs import (
    CollectingSink,
    JsonlFileSink,
    JsonlSpanSink,
    LogSink,
    RingBufferSink,
    eventlog,
    metrics,
    span,
    use_sink,
    write_metrics_json,
)
from repro.util.errors import ReproError
from repro.util.tables import format_table


def _make_generator(family: str, n: int, seed: int, weights, p=None, m=3):
    from repro import generators as gen

    side = max(2, int(round(n**0.5)))
    makers = {
        "gnp": lambda: gen.gnp_random_graph(
            n,
            gen.default_gnp_p(n) if p is None else p,
            weight_range=weights,
            seed=seed,
            connect=True,
        ),
        "preferential-attachment": lambda: gen.preferential_attachment_graph(
            n, m, weight_range=weights, seed=seed
        ),
        "grid": lambda: gen.grid_2d(side, weight_range=weights, seed=seed),
        "grid3d": lambda: gen.grid_3d(
            max(2, int(round(n ** (1 / 3)))), weight_range=weights, seed=seed
        ),
        "tree": lambda: gen.random_tree(n, weight_range=weights, seed=seed),
        "outerplanar": lambda: gen.outerplanar_graph(n, seed=seed),
        "series-parallel": lambda: gen.series_parallel_graph(
            n, weight_range=weights, seed=seed
        ),
        "ktree": lambda: gen.k_tree(n, 3, weight_range=weights, seed=seed)[0],
        "planar": lambda: gen.random_planar_graph(
            n, weight_range=weights or (1.0, 10.0), seed=seed
        ),
        "delaunay": lambda: gen.random_delaunay_graph(n, seed=seed)[0],
        "road": lambda: gen.road_network(side, seed=seed),
        "regular": lambda: gen.random_regular_graph(n - n % 2, 3, seed=seed),
    }
    if family not in makers:
        raise ReproError(
            f"unknown family {family!r}; choose from {sorted(makers)}"
        )
    return makers[family]()


# Engine factories take (graph, seed) so the CLI ``--seed`` flag reaches
# every randomized engine instead of relying on baked-in defaults.
ENGINES = {
    "auto": lambda g, seed: auto_engine(g, seed=seed),
    "greedy": lambda g, seed: GreedyPeelingEngine(seed=seed),
    "centerbag": lambda g, seed: CenterBagEngine(order="min_degree"),
    "centroid": lambda g, seed: TreeCentroidEngine(),
    "strong": lambda g, seed: StrongGreedyEngine(seed=seed),
    "planar": lambda g, seed: _planar_engine(seed),
}


def _planar_engine(seed: int):
    # PlanarCycleEngine is deterministic; seed is accepted for a uniform
    # factory signature but unused.
    from repro.planar import PlanarCycleEngine

    return PlanarCycleEngine()


def _engine_for(args, graph):
    return ENGINES[args.engine](graph, getattr(args, "seed", 0))


def _parse_vertex(token: str):
    try:
        return int(token)
    except ValueError:
        return token


def cmd_generate(args) -> int:
    weights = None
    if args.weights:
        lo, hi = args.weights.split(",")
        weights = (float(lo), float(hi))
    graph = _make_generator(
        args.family, args.n, args.seed, weights, p=args.p, m=args.m
    )
    index = {v: i for i, v in enumerate(sorted(graph.vertices(), key=repr))}
    graph = relabel(graph, index.__getitem__)
    write_edge_list(graph, args.out)
    print(f"wrote {graph} to {args.out}")
    return 0


def cmd_decompose(args) -> int:
    graph = read_edge_list(args.graph)
    engine = _engine_for(args, graph)
    tree = build_decomposition(graph, engine=engine)
    stats = tree.stats()
    rows = [[key, round(value, 3)] for key, value in stats.items()]
    print(format_table(["stat", "value"], rows, title=f"decomposition of {args.graph}"))
    if args.dot:
        with open(args.dot, "w") as handle:
            handle.write(tree.to_dot() + "\n")
        print(f"wrote Graphviz tree to {args.dot}")
    return 0


def _evaluate_queries(graph, oracle, queries: int, seed: int):
    """Run *queries* random queries against ground truth; returns
    ``(count, mean_stretch, max_stretch)`` and feeds the
    ``oracle.query.stretch`` histogram."""
    rng = random.Random(seed)
    vertices = sorted(graph.vertices(), key=repr)
    worst = 1.0
    total = 0.0
    count = 0
    with span("oracle.query_eval", queries=queries):
        while count < queries:
            u = vertices[rng.randrange(len(vertices))]
            v = vertices[rng.randrange(len(vertices))]
            if u == v:
                continue
            true = dijkstra(graph, u)[0].get(v)
            if true is None:
                continue
            stretch = oracle.query(u, v) / true
            metrics.observe("oracle.query.stretch", stretch)
            worst = max(worst, stretch)
            total += stretch
            count += 1
    return count, (total / count if count else 0.0), worst


def cmd_oracle(args) -> int:
    graph = read_edge_list(args.graph)
    engine = _engine_for(args, graph)
    oracle = PathSeparatorOracle.build(
        graph,
        epsilon=args.epsilon,
        engine=engine,
        parallel=args.jobs,
        seed=args.seed,
        backend=args.backend,
    )
    count, mean_stretch, worst = _evaluate_queries(
        graph, oracle, args.queries, args.seed
    )
    report = oracle.size_report()
    print(
        format_table(
            ["metric", "value"],
            [
                ["n", graph.num_vertices],
                ["epsilon", args.epsilon],
                ["queries", count],
                ["mean stretch", round(mean_stretch, 5)],
                ["max stretch", round(worst, 5)],
                ["space (words)", report.total_words],
                ["mean label (words)", round(report.mean_words, 1)],
            ],
            title=f"oracle on {args.graph}",
        )
    )
    return 0 if worst <= 1 + args.epsilon + 1e-9 else 1


def cmd_labels(args) -> int:
    graph = read_edge_list(args.graph)
    tree = build_decomposition(graph, engine=_engine_for(args, graph))
    labeling = build_labeling(
        graph,
        tree,
        epsilon=args.epsilon,
        parallel=args.jobs,
        seed=args.seed,
        backend=args.backend,
    )
    dump_labeling(labeling, args.out, codec=args.codec, num_shards=args.shards)
    report = labeling.size_report()
    print(
        f"wrote {len(labeling.labels)} labels (mean {report.mean_words:.1f} "
        f"words, {args.codec}) to {args.out}"
    )
    return 0


def cmd_pack(args) -> int:
    """``repro pack``: convert a labels file between the JSON (``/1``)
    and packed binary (``/2``) codecs.

    The direction is inferred by sniffing the input (override with
    ``--to``); converting a file to its own codec is allowed and
    canonicalizes it.  ``--verify`` reloads the output and requires
    the label set to match the input exactly.
    """
    from repro.core.binfmt import MAGIC, is_binary_labels

    in_path = Path(args.input)
    with open(in_path, "rb") as handle:
        head = handle.read(len(MAGIC))
    source_codec = "binary" if is_binary_labels(head) else "json"
    target_codec = args.to or ("json" if source_codec == "binary" else "binary")
    remote = load_labeling(in_path)
    with span("pack", labels=remote.num_labels, to=target_codec):
        dump_labeling(remote, args.out, codec=target_codec, num_shards=args.shards)
    in_bytes = in_path.stat().st_size
    out_bytes = Path(args.out).stat().st_size
    print(
        f"packed {remote.num_labels} labels: {in_bytes} bytes {source_codec} "
        f"-> {out_bytes} bytes {target_codec} "
        f"({out_bytes / max(1, in_bytes):.2f}x) in {args.out}"
    )
    if args.verify:
        packed = load_labeling(args.out)
        if packed.epsilon != remote.epsilon or packed.labels != remote.labels:
            raise ReproError(
                f"verification failed: {args.out} does not reproduce "
                f"the label set of {args.input}"
            )
        print(f"verified: {args.out} reproduces the label set exactly")
    return 0


def _query_remote(args) -> int:
    """``repro query --remote HOST:PORT``: same answers, served over TCP
    through the resilient client (retries on transient faults, exit 2 on
    permanent errors — identical surface to the offline path)."""
    from repro.serve import ResilientClient, RetryPolicy, parse_address
    from repro.serve.loadgen import read_pairs_file

    # With --remote there is no labels file, so the positionals shift
    # left: `repro query --remote h:p U V` parses as labels=U, u=V.
    tokens = [t for t in (args.labels, args.u, args.v) if t is not None]
    policy = RetryPolicy(attempts=args.retries + 1, attempt_timeout=args.timeout)
    client = ResilientClient(
        [parse_address(args.remote)], policy=policy, store=args.store
    )

    def value_of(fields: dict) -> float:
        est = fields.get("estimate")
        return float("inf") if est is None else est

    async def run() -> int:
        try:
            if args.pairs_file:
                if tokens:
                    raise ReproError("give either U V or --pairs-file, not both")
                if args.pairs_file == "-":
                    pairs = read_pairs_file("<stdin>", stream=sys.stdin)
                else:
                    pairs = read_pairs_file(args.pairs_file)
                response = await client.batch(pairs)
                for (u, v), item in zip(pairs, response.get("results", [])):
                    if isinstance(item, dict) and item.get("ok"):
                        print(f"{u} {v} {value_of(item):.6g}")
                    else:
                        error = (item or {}).get("error", {})
                        print(f"{u} {v} error:{error.get('code', 'internal')}")
                return 0
            if len(tokens) != 2:
                raise ReproError("need two vertices U V (or --pairs-file)")
            u, v = _parse_vertex(tokens[0]), _parse_vertex(tokens[1])
            response = await client.dist(u, v)
            print(f"d({u}, {v}) <= {value_of(response):.6g}")
            return 0
        finally:
            await client.close()

    return asyncio.run(run())


def _local_estimator(remote, backend):
    """An ``estimate(u, v)`` callable over loaded labels, honoring the
    ``--backend`` flag.  Both paths answer bit-identically and raise
    the same missing-vertex errors (``remote.label`` does the raising);
    the flat path converts labels lazily and memoizes them, which pays
    off in ``--pairs-file`` batch mode."""
    from repro.core.flat import FlatLabel, flat_estimate, resolve_backend

    if resolve_backend(backend) != "flat":
        return remote.estimate
    flats = {}

    def estimate(u, v):
        fu = flats.get(u)
        if fu is None:
            fu = flats[u] = FlatLabel.from_label(remote.label(u))
        fv = flats.get(v)
        if fv is None:
            fv = flats[v] = FlatLabel.from_label(remote.label(v))
        return flat_estimate(fu, fv)

    return estimate


def cmd_query(args) -> int:
    if args.remote:
        return _query_remote(args)
    # load_labeling raises SerializationError for malformed payloads and
    # OSError for a missing file; RemoteLabels.label raises GraphError
    # for an unlabeled vertex.  All three become one-line ``error: ...``
    # messages with exit status 2 in main().
    if args.labels is None:
        raise ReproError("need a labels file (or --remote HOST:PORT)")
    remote = load_labeling(args.labels)
    estimate = _local_estimator(remote, args.backend)
    if args.pairs_file:
        # Batch mode: one load_labeling amortized over many estimates,
        # one ``u v estimate`` line per pair.
        from repro.serve.loadgen import read_pairs_file

        if args.u is not None or args.v is not None:
            raise ReproError("give either U V or --pairs-file, not both")
        if args.pairs_file == "-":
            pairs = read_pairs_file("<stdin>", stream=sys.stdin)
        else:
            pairs = read_pairs_file(args.pairs_file)
        for u, v in pairs:
            print(f"{u} {v} {estimate(u, v):.6g}")
        return 0
    if args.u is None or args.v is None:
        raise ReproError("need two vertices U V (or --pairs-file)")
    u, v = _parse_vertex(args.u), _parse_vertex(args.v)
    d_hat = estimate(u, v)
    print(f"d({u}, {v}) <= {d_hat:.6g}   (within factor {1 + remote.epsilon})")
    return 0


def _sample_distinct_pairs(vertices, count: int, rng: random.Random):
    """*count* uniform (u, v) pairs with u != v — self-pairs are
    resampled, not silently kept, because a greedy route from u to u
    is 0 hops and deflates the mean."""
    pairs = []
    while len(pairs) < count:
        u = vertices[rng.randrange(len(vertices))]
        v = vertices[rng.randrange(len(vertices))]
        if u != v:
            pairs.append((u, v))
    return pairs


def cmd_smallworld(args) -> int:
    from repro.baselines import KleinbergAugmentation, UniformAugmentation
    from repro.core import AugmentedGraph, GreedyRouter, PathSeparatorAugmentation

    graph = read_edge_list(args.graph)
    tree = build_decomposition(graph, engine=_engine_for(args, graph))
    rng = random.Random(args.seed)
    vertices = sorted(graph.vertices(), key=repr)
    pairs = _sample_distinct_pairs(vertices, args.pairs, rng)
    rows = []
    for name, augmented in (
        ("path-separator", PathSeparatorAugmentation(tree).augment(graph, seed=args.seed)),
        ("kleinberg", KleinbergAugmentation(2.0).augment(graph, seed=args.seed)),
        ("uniform", UniformAugmentation().augment(graph, seed=args.seed)),
        ("none", AugmentedGraph(base=graph)),
    ):
        rows.append([name, round(GreedyRouter(augmented).mean_hops(pairs), 2)])
    print(format_table(["augmentation", "mean greedy hops"], rows))
    return 0


async def _serve_main(server) -> None:
    """Start *server*, announce the bound address, run until a signal."""
    import signal

    await server.start()
    loop = asyncio.get_running_loop()
    for signum in (signal.SIGTERM, signal.SIGINT):
        try:
            loop.add_signal_handler(signum, server.request_shutdown)
        except (NotImplementedError, RuntimeError):
            pass  # non-Unix event loops: Ctrl-C still raises KeyboardInterrupt
    host, port = server.address
    print(
        f"serving {server.catalog.num_labels} labels "
        f"({len(server.catalog)} store(s)) on {host}:{port}",
        flush=True,
    )
    # Machine-readable readiness: with --port 0 this is how a parent
    # process (repro cluster up) learns the bound ephemeral port.
    print(f"ready {host}:{port}", flush=True)
    await server.serve_until_shutdown()
    stats = server.counters
    print(
        f"drained: {stats['requests']} requests "
        f"({stats['errors']} errors) over {stats['connections']} connections",
        flush=True,
    )


def cmd_serve(args) -> int:
    from repro.serve import FaultPlan, OracleServer, ShardedLabelStore, StoreCatalog

    fault_plan = None
    if args.fault_plan:
        # FaultPlan.load validates the plan (format stamp, kinds, rates)
        # before the port is ever bound, same as the label stores below.
        fault_plan = FaultPlan.load(args.fault_plan)
        kinds = sorted({r.kind for s in fault_plan.stages for r in s.rules})
        print(
            f"fault plan {args.fault_plan!r}: {len(fault_plan.stages)} stage(s), "
            f"kinds {kinds}, seed {fault_plan.seed}",
            file=sys.stderr,
        )
    catalog = StoreCatalog()
    for path in args.labels:
        # ShardedLabelStore.load validates the format stamp here, so an
        # incompatible file is refused before the port is ever bound.
        store = catalog.add(
            ShardedLabelStore.load(
                path, num_shards=args.shards, backend=args.backend
            )
        )
        print(
            f"loaded store {store.name!r}: {store.num_labels} labels, "
            f"{store.total_words} words across {store.num_shards} shards",
            file=sys.stderr,
        )
    timeseries = None
    if args.timeseries_out:
        from repro.obs import TimeseriesWriter

        timeseries = TimeseriesWriter(
            args.timeseries_out, interval_s=args.timeseries_interval
        )
        print(
            f"timeseries: repro-timeseries/1 deltas to {args.timeseries_out!r} "
            f"every {args.timeseries_interval}s",
            file=sys.stderr,
        )
    cluster = None
    if bool(args.cluster_map) != bool(args.cluster_node):
        raise ReproError("--cluster-map and --cluster-node go together")
    if args.cluster_map:
        from repro.cluster.map import ClusterMap, ClusterNodeState, store_name_for_shard

        cluster_map = ClusterMap.load(args.cluster_map)
        names = {store.name for store in catalog}
        owned = frozenset(
            shard
            for shard in range(cluster_map.num_shards)
            if store_name_for_shard(shard) in names
        )
        cluster = ClusterNodeState(
            node_id=args.cluster_node, map=cluster_map, owned=owned
        )
        print(
            f"cluster node {args.cluster_node!r}: owns {len(owned)} of "
            f"{cluster_map.num_shards} shards (map epoch {cluster_map.epoch})",
            file=sys.stderr,
        )
    server = OracleServer(
        catalog,
        host=args.host,
        port=args.port,
        cache_size=args.cache,
        max_inflight=args.max_inflight,
        request_timeout=args.timeout,
        drain_grace=args.drain_grace,
        fault_plan=fault_plan,
        timeseries=timeseries,
        cluster=cluster,
    )
    try:
        asyncio.run(_serve_main(server))
    except KeyboardInterrupt:
        pass
    return 0


def _cmd_loadgen_updates(args) -> int:
    """``repro loadgen --updates N``: incremental relabeling under live
    traffic.  Builds the labeling locally (same graph / engine / seed /
    epsilon as the served labels), interleaves N journaled edge
    reweights with byte-verified query phases, pushes each delta to the
    server as an epoch-gated DELTA, and finishes with a from-scratch
    rebuild comparison plus a final verification phase against that
    fresh rebuild (see docs/dynamic.md)."""
    import time

    from repro.dynamic import JournalWriter
    from repro.dynamic.driver import run_update_loadgen
    from repro.obs import write_bench_json

    if not args.update_graph:
        raise ReproError(
            "--updates needs --update-graph (the edge list the served "
            "labels were built from)"
        )
    if args.cluster_map:
        raise ReproError("--updates drives one --host/--port server")
    graph = read_edge_list(args.update_graph)
    tree = build_decomposition(graph, engine=_engine_for(args, graph))
    labeling = build_labeling(graph, tree, epsilon=args.epsilon, seed=args.seed)
    journal = None
    if args.update_journal:
        journal = JournalWriter(
            args.update_journal,
            epsilon=labeling.epsilon,
            source=str(args.update_graph),
        )
    try:
        report = asyncio.run(
            run_update_loadgen(
                args.host,
                args.port,
                labeling,
                updates=args.updates,
                queries_per_update=args.queries_per_update,
                verify_queries=args.verify_queries,
                concurrency=args.concurrency,
                store=args.store,
                journal=journal,
                verify_rebuild=not args.no_verify_rebuild,
                request_timeout=args.timeout,
                seed=args.seed,
            )
        )
    finally:
        if journal is not None:
            journal.close()
    target = f"{args.host}:{args.port}"
    print(
        format_table(
            ["metric", "value"],
            report.rows(),
            title=f"loadgen --updates {args.updates} vs {target}",
        )
    )
    for sample in report.loadgen.error_samples:
        print(f"note: {sample}", file=sys.stderr)
    if args.bench_out:
        write_bench_json(
            args.bench_out,
            "dynamic",
            header=["metric", "value"],
            rows=report.rows(),
            meta={
                "target": target,
                "graph": str(args.update_graph),
                "engine": args.engine,
                "epsilon": args.epsilon,
                "journal": args.update_journal,
                **report.meta(),
            },
            unix_time=time.time(),
        )
        print(f"wrote bench record to {args.bench_out}", file=sys.stderr)
    return 0 if report.ok and report.loadgen.errors == 0 else 1


def cmd_loadgen(args) -> int:
    import time

    from repro.obs import write_bench_json
    from repro.serve import read_pairs_file, run_loadgen, synthesize_pairs

    if args.updates:
        return _cmd_loadgen_updates(args)
    remote = load_labeling(args.labels) if args.labels else None
    if args.replay:
        from repro.serve.querytrace import read_trace

        if args.pairs_file:
            raise ReproError("give either --replay or --pairs-file, not both")
        pairs = read_trace(args.replay)
    elif args.pairs_file:
        if args.pairs_file == "-":
            pairs = read_pairs_file("<stdin>", stream=sys.stdin)
        else:
            pairs = read_pairs_file(args.pairs_file)
    else:
        if remote is None:
            raise ReproError(
                "need --labels (to sample labeled vertices) or --pairs-file"
            )
        pairs = synthesize_pairs(
            list(remote.vertices()), args.pairs, args.seed, zipf=args.zipf
        )
    if args.record_trace:
        from repro.serve.querytrace import write_trace

        meta = {"seed": args.seed}
        if args.zipf is not None:
            meta["zipf"] = args.zipf
        if args.labels:
            meta["labels"] = str(args.labels)
        write_trace(args.record_trace, pairs, meta=meta)
        print(
            f"recorded {len(pairs)} pairs to {args.record_trace}",
            file=sys.stderr,
        )
    if args.verify and remote is None:
        raise ReproError("--verify needs --labels to compute offline estimates")

    cluster_client = None
    if args.cluster_map:
        from repro.cluster import ClusterClient
        from repro.serve import RetryPolicy

        cluster_client = ClusterClient.from_file(
            args.cluster_map,
            policy=RetryPolicy(
                attempts=args.retries + 1,
                attempt_timeout=args.attempt_timeout or args.timeout,
                hedge_after=args.hedge,
            ),
            seed=args.seed,
        )

    async def drive():
        try:
            return await run_loadgen(
                args.host,
                args.port,
                pairs,
                concurrency=args.concurrency,
                batch=args.batch,
                store=args.store,
                verify=remote if args.verify else None,
                request_timeout=args.timeout,
                retries=args.retries,
                attempt_timeout=args.attempt_timeout,
                hedge_after=args.hedge,
                seed=args.seed,
                slo_ms=args.slo_ms,
                client=cluster_client,
            )
        finally:
            if cluster_client is not None:
                await cluster_client.close()

    target = args.cluster_map or f"{args.host}:{args.port}"
    report = asyncio.run(drive())
    print(
        format_table(
            ["metric", "value"],
            report.rows(),
            title=f"loadgen vs {target}",
        )
    )
    if cluster_client is not None:
        print(
            "cluster routing: "
            + ", ".join(
                f"{key}={value}"
                for key, value in sorted(cluster_client.counters.items())
            ),
            file=sys.stderr,
        )
    for sample in report.error_samples:
        print(f"note: {sample}", file=sys.stderr)
    if args.bench_out:
        meta = {
            "target": target,
            "pairs": len(pairs),
            "verified": bool(args.verify),
            **report.meta(),
        }
        if args.zipf is not None:
            meta["zipf"] = args.zipf
        if cluster_client is not None:
            meta["cluster"] = cluster_client.stats()["cluster"]
        write_bench_json(
            args.bench_out,
            "serve",
            header=["metric", "value"],
            rows=report.rows(),
            meta=meta,
            unix_time=time.time(),
        )
        print(f"wrote bench record to {args.bench_out}", file=sys.stderr)
    return 0 if report.errors == 0 and report.mismatches == 0 else 1


def cmd_update(args) -> int:
    """``repro update``: journaled incremental relabeling, offline.

    Loads the graph, rebuilds its decomposition tree (same engine and
    seed the labels were built with), attaches the exported labels,
    replays any existing journal to reach its last epoch, then applies
    each ``--edge U V W`` reweight incrementally — journaling every
    delta and optionally pushing it to a running server (``--push``)
    and writing the updated labels (``--out``).  ``--verify`` rebuilds
    from scratch at the end and requires byte-identical labels.
    """
    from repro.core.labeling import DistanceLabeling
    from repro.dynamic import (
        EdgeUpdate,
        JournalWriter,
        delta_to_dict,
        incremental_relabel,
        read_journal,
        replay_journal,
    )

    graph = read_edge_list(args.graph)
    tree = build_decomposition(graph, engine=_engine_for(args, graph))
    remote = load_labeling(args.labels)
    labeling = DistanceLabeling(graph, tree, remote.epsilon, dict(remote.labels))
    journal_path = Path(args.journal)
    if journal_path.exists() and journal_path.stat().st_size > 0:
        read = read_journal(journal_path)
        for warning in read.warnings:
            print(f"note: {warning}", file=sys.stderr)
        replayed = replay_journal(read, labeling)
        if replayed:
            print(f"replayed {replayed} journaled deltas "
                  f"(at epoch {read.last_epoch})")

    deltas = []
    with JournalWriter(
        journal_path, epsilon=labeling.epsilon, source=str(args.graph)
    ) as journal:
        for u_token, v_token, w_token in args.edge:
            u, v = _parse_vertex(u_token), _parse_vertex(v_token)
            try:
                weight = float(w_token)
            except ValueError:
                raise ReproError(f"bad edge weight {w_token!r}") from None
            delta = incremental_relabel(labeling, EdgeUpdate(u, v, weight))
            journal.append(delta)
            deltas.append(delta)
            print(f"epoch {delta.epoch}: {u} -- {v} reweighted "
                  f"{delta.old_weight:g} -> {weight:g} "
                  f"({delta.num_changes} label entries, {delta.units} units)")

    if args.push:
        from repro.serve import ResilientClient, RetryPolicy, parse_address

        async def push_all() -> None:
            client = ResilientClient(
                [parse_address(args.push)],
                policy=RetryPolicy(attempts=3, attempt_timeout=args.timeout),
                store=args.store,
            )
            try:
                for delta in deltas:
                    payload = {
                        "op": "DELTA",
                        "action": "apply",
                        "delta": delta_to_dict(delta),
                    }
                    response = await client.call(payload)
                    status = (
                        "applied" if response.get("applied")
                        else "noop" if response.get("noop")
                        else "rejected"
                    )
                    print(f"pushed epoch {delta.epoch}: {status} "
                          f"(server epoch {response.get('epoch')})")
            finally:
                await client.close()

        asyncio.run(push_all())

    if args.out:
        dump_labeling(labeling, args.out, codec=args.codec)
        print(f"wrote {len(labeling.labels)} updated labels to {args.out}")
    if args.verify:
        fresh = build_labeling(
            graph, tree, epsilon=labeling.epsilon, seed=args.seed
        )
        if dump_labeling(fresh) != dump_labeling(labeling):
            raise ReproError(
                "verification failed: incrementally updated labels differ "
                "from a from-scratch rebuild on the updated graph"
            )
        print("verified: incremental labels are byte-identical to a "
              "from-scratch rebuild")
    return 0


# The default chaos schedule when no --fault-plan is given: the CI
# scenario from docs/serving.md — 10% dropped replies plus a 50ms
# fixed delay on every response.
DEFAULT_CHAOS_PLAN = {
    "format": "repro-fault-plan/1",
    "seed": 0,
    "rules": [
        {"kind": "drop", "rate": 0.1},
        {"kind": "delay", "rate": 1.0, "delay_ms": 50.0},
    ],
}


def _cmd_chaos_cluster(args) -> int:
    """``repro chaos --cluster N``: the kill-a-node drill.

    Initializes an N-node R-replicated cluster from the labels file in
    a temp directory, launches it, and runs two phases:

    * **throughput** — skewed BATCH traffic against all N nodes through
      the cluster client (this is the aggregate-QPS number);
    * **chaos** — ``--pairs`` byte-verified DIST queries, during which
      (with ``--kill-replica``) one replica is SIGKILLed mid-run.  The
      phase must finish with zero errors and zero mismatches: failover
      and the label-combine fallback have to absorb the loss.
    """
    import shutil
    import tempfile
    import time

    from repro.cluster import ClusterClient, LocalCluster, init_cluster
    from repro.obs import write_bench_json
    from repro.serve import RetryPolicy
    from repro.serve.loadgen import LoadgenReport, run_loadgen, synthesize_pairs

    if args.cluster < 2:
        raise ReproError(f"--cluster needs at least 2 nodes, got {args.cluster}")
    if args.fault_plan:
        raise ReproError("--fault-plan is for single-node chaos; "
                         "--cluster injects real process death instead")
    remote = load_labeling(args.labels)
    vertices = list(remote.vertices())
    pairs_throughput = synthesize_pairs(
        vertices, args.throughput_pairs, args.seed, zipf=args.zipf
    )
    pairs_chaos = synthesize_pairs(vertices, args.pairs, args.seed + 1)
    policy = RetryPolicy(
        attempts=args.retries + 1,
        attempt_timeout=args.attempt_timeout,
        hedge_after=args.hedge,
    )
    root = Path(tempfile.mkdtemp(prefix="repro-chaos-cluster-"))

    async def run():
        init_cluster(
            args.labels,
            root,
            nodes=args.cluster,
            replication=args.replication,
            num_shards=args.cluster_shards,
            seed=args.seed,
        )
        cluster = LocalCluster(root, cache=args.cache)
        live_map = await cluster.start()
        victim = None
        try:
            # Phase A: aggregate throughput, every node up.
            client = ClusterClient(live_map, policy=policy, seed=args.seed)
            try:
                report_a = await run_loadgen(
                    "127.0.0.1",
                    0,
                    pairs_throughput,
                    concurrency=args.concurrency,
                    batch=args.throughput_batch,
                    seed=args.seed,
                    client=client,
                )
            finally:
                await client.close()

            # Phase B: verified queries with a replica dying mid-run.
            client = ClusterClient(live_map, policy=policy, seed=args.seed)
            report_b = LoadgenReport()
            kill_after = max(1, args.pairs // 3)
            try:
                load_task = asyncio.ensure_future(
                    run_loadgen(
                        "127.0.0.1",
                        0,
                        pairs_chaos,
                        concurrency=args.concurrency,
                        batch=1,
                        verify=remote,
                        seed=args.seed,
                        client=client,
                        report=report_b,
                    )
                )
                if args.kill_replica:
                    while not load_task.done() and report_b.sent < kill_after:
                        await asyncio.sleep(0.005)
                    if not load_task.done():
                        victim = cluster.victim_for(0)
                        cluster.kill(victim)
                await load_task
            finally:
                await client.close()
        finally:
            drain = await cluster.stop()
        return report_a, report_b, victim, drain, live_map

    try:
        report_a, report_b, victim, drain, live_map = asyncio.run(run())
    finally:
        shutil.rmtree(root, ignore_errors=True)

    print(
        format_table(
            ["metric", "value"],
            report_a.rows(),
            title=(
                f"cluster throughput: {args.cluster} nodes (R={args.replication}), "
                f"batch {args.throughput_batch}, zipf {args.zipf}"
            ),
        )
    )
    print()
    killed = f"node {victim} SIGKILLed mid-run" if victim else "no node killed"
    print(
        format_table(
            ["metric", "value"],
            report_b.rows(),
            title=f"cluster chaos: {args.pairs} verified queries, {killed}",
        )
    )
    for sample in report_b.error_samples:
        print(f"note: {sample}", file=sys.stderr)
    survivors_drained = all(
        r["drained"] for node, r in drain.items() if node != victim
    )
    if not survivors_drained:
        print("note: a surviving node exited without its drain report",
              file=sys.stderr)
    if args.bench_out:
        write_bench_json(
            args.bench_out,
            "cluster",
            header=["metric", "value"],
            rows=report_b.rows(),
            meta={
                "mode": "cluster",
                "nodes": args.cluster,
                "replication": args.replication,
                "cluster_shards": args.cluster_shards,
                "map_epoch": live_map.epoch,
                "cpu_count": os.cpu_count(),
                "killed_node": victim,
                "kill_after_sent": max(1, args.pairs // 3),
                "throughput": {
                    "pairs": len(pairs_throughput),
                    "batch": args.throughput_batch,
                    "zipf": args.zipf,
                    "verified": False,
                    **report_a.meta(),
                },
                "chaos": {
                    "pairs": len(pairs_chaos),
                    "verified": True,
                    **report_b.meta(),
                },
                "drain": drain,
            },
            unix_time=time.time(),
        )
        print(f"wrote bench record to {args.bench_out}", file=sys.stderr)
    clean = (
        report_b.ok == len(pairs_chaos)
        and report_b.errors == 0
        and report_b.mismatches == 0
        and survivors_drained
        and (victim is not None or not args.kill_replica)
    )
    return 0 if clean else 1


def cmd_chaos(args) -> int:
    """Self-hosted resilience check: serve the labels with a fault plan
    active, drive them through the resilient client, verify every answer
    byte-exactly, and report what the faults cost."""
    import time

    from repro.obs import write_bench_json
    from repro.serve import (
        FaultPlan,
        OracleServer,
        ShardedLabelStore,
        StoreCatalog,
        run_loadgen,
        synthesize_pairs,
    )

    if args.cluster:
        return _cmd_chaos_cluster(args)
    if args.fault_plan:
        plan = FaultPlan.load(args.fault_plan)
    else:
        plan = FaultPlan.from_dict(
            {**DEFAULT_CHAOS_PLAN, "seed": args.seed}
        )
    remote = load_labeling(args.labels)
    pairs = synthesize_pairs(list(remote.vertices()), args.pairs, args.seed)
    catalog = StoreCatalog()
    catalog.add(ShardedLabelStore.load(args.labels, num_shards=args.shards))

    async def run():
        server = OracleServer(
            catalog, host="127.0.0.1", port=0, fault_plan=plan
        )
        await server.start()
        try:
            report = await run_loadgen(
                "127.0.0.1",
                server.port,
                pairs,
                concurrency=args.concurrency,
                batch=args.batch,
                verify=remote,
                retries=args.retries,
                attempt_timeout=args.attempt_timeout,
                hedge_after=args.hedge,
                seed=args.seed,
            )
        finally:
            await server.shutdown()
        return report, server.faults.status()

    report, fault_status = asyncio.run(run())
    injected = fault_status.get("injected", {})
    print(
        format_table(
            ["metric", "value"],
            report.rows(),
            title=f"chaos: {args.pairs} verified queries under faults",
        )
    )
    print()
    print(
        format_table(
            ["fault", "injected"],
            sorted(injected.items()) or [["(none)", 0]],
            title="server-side fault injections",
        )
    )
    for sample in report.error_samples:
        print(f"note: {sample}", file=sys.stderr)
    if args.bench_out:
        write_bench_json(
            args.bench_out,
            "chaos",
            header=["metric", "value"],
            rows=report.rows(),
            meta={
                "pairs": len(pairs),
                "verified": True,
                "fault_plan": plan.to_dict(),
                "faults_injected": injected,
                **report.meta(),
            },
            unix_time=time.time(),
        )
        print(f"wrote bench record to {args.bench_out}", file=sys.stderr)
    # Chaos succeeds when the faults were *absorbed*: every query got a
    # byte-exact answer.  Errors mean the retry policy was too weak for
    # the plan; mismatches mean a correctness bug.
    return 0 if report.mismatches == 0 and report.ok > 0 and report.errors == 0 else 1


def cmd_cluster_init(args) -> int:
    """``repro cluster init``: one labels file -> a cluster data
    directory (authored map + canonical shard packs + per-node
    replicas), ready for ``repro cluster up``."""
    from repro.cluster import MAP_FILE, init_cluster

    cluster_map = init_cluster(
        args.labels,
        args.root,
        nodes=args.nodes,
        replication=args.replication,
        num_shards=args.shards,
        seed=args.seed,
    )
    print(
        f"initialized cluster in {args.root}: {len(cluster_map.nodes)} nodes, "
        f"{cluster_map.num_shards} shards at R={cluster_map.replication} "
        f"(map epoch {cluster_map.epoch} in {Path(args.root) / MAP_FILE})"
    )
    return 0


def cmd_cluster_up(args) -> int:
    """``repro cluster up``: launch one ``repro serve`` per node on
    ephemeral ports, push the live map, run until a signal (or
    ``--duration``), then drain."""
    import signal

    from repro.cluster import LIVE_MAP_FILE, LocalCluster

    async def run() -> int:
        cluster = LocalCluster(args.root, cache=args.cache, host=args.host)
        live = await cluster.start()
        for node in live.nodes:
            print(f"node {node.id}: {node.host}:{node.port}", flush=True)
        print(
            f"cluster up: {len(live.nodes)} nodes at epoch {live.epoch}; "
            f"live map in {Path(args.root) / LIVE_MAP_FILE}",
            flush=True,
        )
        stop = asyncio.Event()
        loop = asyncio.get_running_loop()
        for signum in (signal.SIGTERM, signal.SIGINT):
            try:
                loop.add_signal_handler(signum, stop.set)
            except (NotImplementedError, RuntimeError):
                pass
        try:
            await asyncio.wait_for(stop.wait(), args.duration)
        except asyncio.TimeoutError:
            pass
        results = await cluster.stop()
        undrained = sorted(
            node for node, r in results.items() if not r["drained"]
        )
        print(
            f"cluster down: {len(results)} nodes stopped"
            + (f", undrained: {undrained}" if undrained else ""),
            flush=True,
        )
        return 1 if undrained else 0

    try:
        return asyncio.run(run())
    except KeyboardInterrupt:
        return 0


def cmd_cluster_plan(args) -> int:
    """``repro cluster plan``: diff two maps into the minimal shard
    moves that turn the old layout into the new one."""
    from repro.cluster import ClusterMap, diff_maps

    old = ClusterMap.load(args.old)
    new = ClusterMap.load(args.new)
    plan = diff_maps(old, new)
    rows = [
        [copy.shard, copy.src or "(canonical)", copy.dst, "copy"]
        for copy in plan.copies
    ] + [[drop.shard, drop.node, "-", "drop"] for drop in plan.drops]
    print(
        format_table(
            ["shard", "from", "to", "action"],
            rows or [["-", "-", "-", "(no moves)"]],
            title=(
                f"rebalance epoch {old.epoch} -> {plan.new_epoch}: "
                f"{plan.moved_shards} shard(s) move"
            ),
        )
    )
    if args.json_out:
        Path(args.json_out).write_text(
            json.dumps(plan.to_dict(), indent=1, sort_keys=True) + "\n"
        )
        print(f"wrote plan to {args.json_out}", file=sys.stderr)
    return 0


def cmd_cluster_apply(args) -> int:
    """``repro cluster apply``: execute a rebalance against a cluster
    data directory — copy shard packs to their new replicas, bump the
    authored map's epoch, optionally prune dropped replicas."""
    from repro.cluster import MAP_FILE, ClusterMap, apply_plan, diff_maps

    root = Path(args.root)
    old = ClusterMap.load(root / MAP_FILE)
    new = ClusterMap.load(args.new)
    plan = diff_maps(old, new)
    summary = apply_plan(root, plan, new, prune=args.prune)
    print(
        f"applied rebalance to {root}: {summary['copied']} copied, "
        f"{summary['skipped']} already present, {summary['pruned']} pruned; "
        f"map now at epoch {plan.new_epoch}"
    )
    return 0


def cmd_trace(args) -> int:
    """``repro trace``: merge ``repro-spans/1`` files from any number of
    processes and render one tree per request with critical-path
    timings.  ``--require-join`` is the CI gate: at least one trace
    must stitch client-side and server-side spans into a single tree."""
    from repro.obs.traceview import (
        assemble_traces,
        cross_process,
        read_span_files,
        render_trace,
    )

    records, skipped = read_span_files(args.files)
    trees = assemble_traces(records)
    joined = sum(1 for tree in trees if cross_process(tree))
    shown = trees if args.limit is None else trees[: args.limit]
    for tree in shown:
        print(render_trace(tree))
        print()
    summary = (
        f"{len(records)} span(s) in {len(args.files)} file(s): "
        f"{len(trees)} trace(s), {joined} joined across processes"
    )
    if len(shown) < len(trees):
        summary += f", showing first {len(shown)}"
    if skipped:
        summary += f", {skipped} unparseable line(s) skipped"
    print(summary)
    if args.require_join and joined == 0:
        print(
            "error: no trace joined client- and server-side spans into one tree",
            file=sys.stderr,
        )
        return 1
    return 0


def cmd_top(args) -> int:
    """``repro top``: poll a running server's METRICS op and render a
    live frame per tick (rates are deltas between consecutive polls)."""
    import time

    from repro.serve import ResilientClient, RetryPolicy, parse_address
    from repro.serve.top import render_top

    policy = RetryPolicy(attempts=args.retries + 1, attempt_timeout=args.timeout)
    client = ResilientClient([parse_address(args.target)], policy=policy)

    async def run() -> int:
        prev = None
        prev_t = None
        ticks = 0
        try:
            while args.iterations is None or ticks < args.iterations:
                if ticks:
                    await asyncio.sleep(args.interval)
                cur = await client.call({"op": "METRICS"})
                now = time.monotonic()
                dt = (now - prev_t) if prev_t is not None else None
                print(f"-- {args.target} --")
                print(
                    render_top(cur, prev, dt, client.stats()["breakers"]),
                    flush=True,
                )
                print()
                prev, prev_t = cur, now
                ticks += 1
            return 0
        finally:
            await client.close()

    try:
        return asyncio.run(run())
    except KeyboardInterrupt:
        return 0


def _phase_rows(roots):
    """Flatten collected span trees into per-phase table rows."""
    rows = []
    for root in roots:
        base = root.duration_s or 1e-12
        for node, depth in root.walk():
            rows.append(
                [
                    "  " * depth + node.name,
                    round(node.duration_s, 4),
                    round(node.self_ns / 1e9, 4),
                    round(100.0 * node.duration_s / base, 1),
                ]
            )
    return rows


def _level_rows(tree):
    """Per-level breakdown of the decomposition tree."""
    levels = {}
    for node in tree.nodes:
        agg = levels.setdefault(
            node.depth, {"nodes": 0, "paths": 0, "sep_vertices": 0, "size": 0}
        )
        agg["nodes"] += 1
        agg["paths"] += node.separator.num_paths
        agg["sep_vertices"] += len(node.separator.vertices())
        agg["size"] += node.size
    return [
        [
            level,
            agg["nodes"],
            agg["paths"],
            agg["sep_vertices"],
            round(agg["size"] / agg["nodes"], 1),
        ]
        for level, agg in sorted(levels.items())
    ]


def cmd_stats(args) -> int:
    graph = read_edge_list(args.graph)
    engine = _engine_for(args, graph)
    collector = CollectingSink()
    with metrics.activate(reset=False), use_sink(collector):
        oracle = PathSeparatorOracle.build(
            graph,
            epsilon=args.epsilon,
            engine=engine,
            parallel=args.jobs,
            seed=args.seed,
            backend=args.backend,
        )
        count, mean_stretch, worst = _evaluate_queries(
            graph, oracle, args.queries, args.seed
        )

    phase_rows = _phase_rows(collector.roots)
    level_rows = _level_rows(oracle.tree)
    snapshot = metrics.snapshot()
    scalar_rows = [
        [name, round(value, 3)]
        for name, value in sorted(
            {**snapshot["counters"], **snapshot["gauges"]}.items()
        )
    ]
    hist_rows = [
        [
            name,
            h["count"],
            round(h["mean"], 3),
            round(h["p50"], 3),
            round(h["p90"], 3),
            round(h["max"], 3),
        ]
        for name, h in sorted(snapshot["histograms"].items())
    ]

    print(
        format_table(
            ["phase", "wall_s", "self_s", "pct"],
            phase_rows,
            title=f"per-phase timing on {args.graph} (eps={args.epsilon})",
        )
    )
    print()
    print(
        format_table(
            ["level", "nodes", "paths", "sep_vertices", "mean_size"],
            level_rows,
            title="per-level decomposition breakdown",
        )
    )
    print()
    print(format_table(["metric", "value"], scalar_rows, title="counters / gauges"))
    print()
    print(
        format_table(
            ["histogram", "count", "mean", "p50", "p90", "max"],
            hist_rows,
            title="histograms",
        )
    )
    print()
    print(
        f"{count} queries: mean stretch {mean_stretch:.4f}, "
        f"max stretch {worst:.4f} (bound {1 + args.epsilon})"
    )

    # Enrich the generic --metrics-out payload with the same breakdowns.
    args._metrics_extra = {
        "command": "stats",
        "graph": args.graph,
        "n": graph.num_vertices,
        "epsilon": args.epsilon,
        "seed": args.seed,
        "queries": {
            "count": count,
            "mean_stretch": mean_stretch,
            "max_stretch": worst,
        },
        "phases": [root.to_dict() for root in collector.roots],
        "levels": [
            {
                "level": level,
                "nodes": nodes,
                "paths": paths,
                "sep_vertices": sep_vertices,
                "mean_size": mean_size,
            }
            for level, nodes, paths, sep_vertices, mean_size in level_rows
        ],
    }
    return 0 if worst <= 1 + args.epsilon + 1e-9 else 1


def _add_backend_arg(p) -> None:
    p.add_argument(
        "--backend",
        choices=list(BACKENDS),
        default="auto",
        help="core kernels: 'flat' (CSR/flat-array, needs numpy+scipy), "
        "'dict' (pure-python reference), or 'auto' (flat when available); "
        "every observable output is byte-identical between the two",
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Object location using path separators (PODC 2006)",
    )
    obs_parent = argparse.ArgumentParser(add_help=False)
    obs_parent.add_argument(
        "--trace",
        action="store_true",
        help="log hierarchical spans to stderr as they complete",
    )
    obs_parent.add_argument(
        "--metrics-out",
        metavar="PATH",
        help="write a repro-metrics/1 JSON snapshot to PATH on exit",
    )
    obs_parent.add_argument(
        "--trace-out",
        metavar="PATH",
        help="append completed spans to PATH as repro-spans/1 JSONL",
    )
    obs_parent.add_argument(
        "--log-file",
        metavar="PATH",
        help="append structured events to PATH as repro-log/1 JSONL",
    )
    obs_parent.add_argument(
        "--log-ring",
        type=int,
        metavar="N",
        help="keep the last N events in memory; dump to stderr on failure",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser(
        "generate", help="generate a benchmark graph", parents=[obs_parent]
    )
    p.add_argument("--family", default="grid")
    p.add_argument("--n", type=int, default=256)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--weights", help="LO,HI uniform edge weights")
    p.add_argument("--p", type=float, default=None,
                   help="edge probability for --family gnp "
                   "(default: 3 ln(n)/n, above the connectivity threshold)")
    p.add_argument("--m", type=int, default=3,
                   help="edges per new vertex for "
                   "--family preferential-attachment (default 3)")
    p.add_argument("--out", required=True)
    p.set_defaults(func=cmd_generate)

    p = sub.add_parser(
        "decompose", help="decomposition statistics", parents=[obs_parent]
    )
    p.add_argument("graph")
    p.add_argument("--engine", choices=sorted(ENGINES), default="auto")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--dot", help="also write the tree as Graphviz DOT")
    p.set_defaults(func=cmd_decompose)

    p = sub.add_parser(
        "oracle",
        help="build an oracle and evaluate stretch",
        parents=[obs_parent],
    )
    p.add_argument("graph")
    p.add_argument("--engine", choices=sorted(ENGINES), default="auto")
    p.add_argument("--epsilon", type=float, default=0.25)
    p.add_argument("--queries", type=int, default=100)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument(
        "--jobs",
        type=int,
        default=None,
        metavar="N",
        help="build labels with N worker processes (same bytes as serial)",
    )
    _add_backend_arg(p)
    p.set_defaults(func=cmd_oracle)

    p = sub.add_parser(
        "labels",
        help="build and export distance labels",
        parents=[obs_parent],
    )
    p.add_argument("graph")
    p.add_argument("--engine", choices=sorted(ENGINES), default="auto")
    p.add_argument("--epsilon", type=float, default=0.25)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument(
        "--jobs",
        type=int,
        default=None,
        metavar="N",
        help="build labels with N worker processes (same bytes as serial)",
    )
    p.add_argument("--codec", choices=["json", "binary"], default="json",
                   help="output codec: repro-distance-labels/1 JSON (debug, "
                   "default) or /2 packed binary (see docs/formats.md)")
    p.add_argument("--shards", type=int, default=8,
                   help="pack-time shard count (binary codec only)")
    p.add_argument("--out", required=True)
    _add_backend_arg(p)
    p.set_defaults(func=cmd_labels)

    p = sub.add_parser(
        "pack",
        help="convert a labels file between the JSON and binary codecs",
        parents=[obs_parent],
    )
    p.add_argument("input", help="labels file in either codec")
    p.add_argument("out", help="output path")
    p.add_argument("--to", choices=["json", "binary"], default=None,
                   help="target codec (default: the other one)")
    p.add_argument("--shards", type=int, default=8,
                   help="pack-time shard count baked into a binary output")
    p.add_argument("--verify", action="store_true",
                   help="reload the output and require the label set to "
                   "match the input exactly")
    p.set_defaults(func=cmd_pack)

    p = sub.add_parser(
        "query",
        help="answer a query from exported labels",
        parents=[obs_parent],
    )
    p.add_argument("labels", nargs="?",
                   help="labels file (omit with --remote)")
    p.add_argument("u", nargs="?")
    p.add_argument("v", nargs="?")
    p.add_argument(
        "--pairs-file",
        metavar="PATH",
        help="answer every 'u v' pair in PATH ('-' for stdin) instead of "
        "one positional pair; prints one 'u v estimate' line each",
    )
    p.add_argument("--remote", metavar="HOST:PORT",
                   help="ask a running `repro serve` instead of reading "
                   "a labels file")
    p.add_argument("--store", help="named store on the remote server")
    p.add_argument("--retries", type=int, default=2, metavar="R",
                   help="extra attempts per remote request")
    p.add_argument("--timeout", type=float, default=5.0,
                   help="per-attempt remote deadline in seconds")
    _add_backend_arg(p)
    p.set_defaults(func=cmd_query)

    p = sub.add_parser(
        "smallworld",
        help="compare greedy-routing augmentations",
        parents=[obs_parent],
    )
    p.add_argument("graph")
    p.add_argument("--engine", choices=sorted(ENGINES), default="auto")
    p.add_argument("--pairs", type=int, default=100)
    p.add_argument("--seed", type=int, default=0)
    p.set_defaults(func=cmd_smallworld)

    p = sub.add_parser(
        "stats",
        help="build an oracle and print per-phase / per-level telemetry",
        parents=[obs_parent],
    )
    p.add_argument("graph")
    p.add_argument("--engine", choices=sorted(ENGINES), default="auto")
    p.add_argument("--epsilon", type=float, default=0.25)
    p.add_argument("--queries", type=int, default=64)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument(
        "--jobs",
        type=int,
        default=None,
        metavar="N",
        help="build labels with N worker processes (same bytes as serial)",
    )
    _add_backend_arg(p)
    p.set_defaults(func=cmd_stats)

    p = sub.add_parser(
        "serve",
        help="serve DIST/BATCH/LABEL queries from exported labels over TCP",
        parents=[obs_parent],
    )
    p.add_argument(
        "--labels",
        action="append",
        required=True,
        metavar="PATH",
        help="labels file to load (repeat for multiple stores)",
    )
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=7471,
                   help="TCP port (0 = ephemeral)")
    p.add_argument("--shards", type=int, default=8,
                   help="hash shards per store")
    p.add_argument("--cache", type=int, default=0, metavar="N",
                   help="LRU cache capacity in (u, v) pairs (0 = off)")
    p.add_argument("--max-inflight", type=int, default=64, metavar="M",
                   help="max requests executing at once (backpressure)")
    p.add_argument("--timeout", type=float, default=30.0,
                   help="per-request deadline in seconds")
    p.add_argument("--drain-grace", type=float, default=10.0,
                   help="seconds to let inflight requests finish on shutdown")
    p.add_argument("--fault-plan", metavar="PATH",
                   help="arm a repro-fault-plan/1 JSON fault-injection "
                   "schedule (see docs/serving.md)")
    p.add_argument("--metrics", action="store_true",
                   help="enable the in-process metrics registry so METRICS "
                   "returns per-op counters and latency histograms")
    p.add_argument("--timeseries-out", metavar="PATH",
                   help="append repro-timeseries/1 JSONL samples to PATH "
                   "while serving")
    p.add_argument("--timeseries-interval", type=float, default=2.0,
                   metavar="S",
                   help="seconds between timeseries samples (default 2.0)")
    p.add_argument("--cluster-map", metavar="PATH",
                   help="serve as one node of a repro-cluster-map/1 "
                   "cluster (see docs/cluster.md)")
    p.add_argument("--cluster-node", metavar="ID",
                   help="this node's id in the cluster map")
    _add_backend_arg(p)
    p.set_defaults(func=cmd_serve)

    p = sub.add_parser(
        "loadgen",
        help="drive a running `repro serve` and report QPS + latency",
        parents=[obs_parent],
    )
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=7471)
    p.add_argument("--labels", metavar="PATH",
                   help="labels file: sample vertices from it (and verify "
                   "against it with --verify)")
    p.add_argument("--pairs-file", metavar="PATH",
                   help="replay 'u v' pairs from PATH ('-' for stdin) "
                   "instead of sampling")
    p.add_argument("--pairs", type=int, default=500, metavar="K",
                   help="queries to synthesize when sampling")
    p.add_argument("--concurrency", type=int, default=8, metavar="C",
                   help="concurrent client connections")
    p.add_argument("--batch", type=int, default=1, metavar="B",
                   help="pairs per request (1 = DIST, >1 = BATCH)")
    p.add_argument("--store", help="target a named store on the server")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--timeout", type=float, default=30.0,
                   help="per-request client deadline in seconds")
    p.add_argument("--retries", type=int, default=0, metavar="R",
                   help="extra attempts per request on transient failures")
    p.add_argument("--attempt-timeout", type=float, default=None,
                   metavar="S", help="per-attempt deadline (default: --timeout)")
    p.add_argument("--hedge", type=float, default=None, metavar="S",
                   help="launch a hedged second attempt after S seconds "
                   "of silence")
    p.add_argument("--verify", action="store_true",
                   help="compare every served estimate to the offline "
                   "RemoteLabels.estimate (requires --labels)")
    p.add_argument("--slo-ms", type=float, default=None, metavar="MS",
                   help="report SLO attainment: fraction of requests "
                   "answered within MS milliseconds")
    p.add_argument("--zipf", type=float, default=None, metavar="S",
                   help="sample skewed pairs from a Zipf(S) distribution "
                   "instead of uniformly (requires --labels)")
    p.add_argument("--cluster-map", metavar="PATH",
                   help="route through a cluster map (cluster-map.live.json) "
                   "instead of one --host/--port server")
    p.add_argument("--bench-out", metavar="PATH",
                   help="write a repro-bench/1 record (e.g. BENCH_serve.json)")
    p.add_argument("--record-trace", metavar="PATH",
                   help="write the query pairs as a repro-querytrace/1 "
                   "file for later --replay")
    p.add_argument("--replay", metavar="PATH",
                   help="replay pairs from a repro-querytrace/1 file "
                   "instead of sampling")
    p.add_argument("--updates", type=int, default=0, metavar="N",
                   help="interleave N journaled edge reweights with the "
                   "query load, pushing each to the server as an "
                   "epoch-gated DELTA (see docs/dynamic.md)")
    p.add_argument("--update-graph", metavar="PATH",
                   help="edge list the served labels were built from "
                   "(required with --updates)")
    p.add_argument("--engine", choices=sorted(ENGINES), default="auto",
                   help="separator engine for --updates label rebuilds")
    p.add_argument("--epsilon", type=float, default=0.25,
                   help="epsilon the served labels were built with "
                   "(--updates)")
    p.add_argument("--queries-per-update", type=int, default=30, metavar="K",
                   help="verified queries between updates (--updates)")
    p.add_argument("--verify-queries", type=int, default=300, metavar="K",
                   help="final queries verified against a fresh offline "
                   "rebuild (--updates)")
    p.add_argument("--update-journal", metavar="PATH",
                   help="append each delta to a repro-label-journal/1 "
                   "file (--updates)")
    p.add_argument("--no-verify-rebuild", action="store_true",
                   help="skip the final from-scratch rebuild and byte "
                   "comparison (--updates)")
    p.set_defaults(func=cmd_loadgen)

    p = sub.add_parser(
        "update",
        help="apply journaled edge reweights to exported labels "
        "incrementally (see docs/dynamic.md)",
        parents=[obs_parent],
    )
    p.add_argument("graph", help="edge list the labels were built from")
    p.add_argument("--labels", required=True, metavar="PATH",
                   help="exported labels file to update")
    p.add_argument("--journal", required=True, metavar="PATH",
                   help="repro-label-journal/1 file to replay and append to")
    p.add_argument("--edge", nargs=3, action="append", required=True,
                   metavar=("U", "V", "W"),
                   help="reweight edge U--V to W (repeatable, applied "
                   "in order)")
    p.add_argument("--engine", choices=sorted(ENGINES), default="auto",
                   help="separator engine the labels were built with")
    p.add_argument("--seed", type=int, default=0,
                   help="seed the labels were built with")
    p.add_argument("--push", metavar="HOST:PORT",
                   help="also push each delta to a running `repro serve` "
                   "as an epoch-gated DELTA")
    p.add_argument("--store", help="named store on the --push server")
    p.add_argument("--timeout", type=float, default=10.0,
                   help="per-attempt --push deadline in seconds")
    p.add_argument("--out", metavar="PATH",
                   help="write the updated labels file")
    p.add_argument("--codec", choices=["json", "binary"], default="json",
                   help="codec for --out")
    p.add_argument("--verify", action="store_true",
                   help="rebuild from scratch and require byte-identical "
                   "labels")
    p.set_defaults(func=cmd_update)

    p = sub.add_parser(
        "chaos",
        help="serve labels under an injected fault plan and verify the "
        "resilient client absorbs it byte-exactly",
        parents=[obs_parent],
    )
    p.add_argument("--labels", required=True, metavar="PATH",
                   help="labels file to serve and verify against")
    p.add_argument("--fault-plan", metavar="PATH",
                   help="repro-fault-plan/1 JSON schedule (default: 10%% "
                   "dropped replies + 50ms delay)")
    p.add_argument("--pairs", type=int, default=300, metavar="K",
                   help="verified queries to run")
    p.add_argument("--concurrency", type=int, default=8, metavar="C")
    p.add_argument("--batch", type=int, default=1, metavar="B",
                   help="pairs per request (1 = DIST, >1 = BATCH)")
    p.add_argument("--shards", type=int, default=8,
                   help="hash shards for the hosted store")
    p.add_argument("--retries", type=int, default=5, metavar="R",
                   help="extra attempts per request")
    p.add_argument("--attempt-timeout", type=float, default=2.0, metavar="S",
                   help="per-attempt deadline in seconds")
    p.add_argument("--hedge", type=float, default=None, metavar="S",
                   help="hedge a second attempt after S seconds of silence")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--cluster", type=int, default=0, metavar="N",
                   help="run the kill-a-node drill against an N-node local "
                   "cluster instead of one faulty server")
    p.add_argument("--kill-replica", action="store_true",
                   help="SIGKILL one replica mid-run (with --cluster)")
    p.add_argument("--replication", type=int, default=2, metavar="R",
                   help="replicas per shard for --cluster (default 2)")
    p.add_argument("--cluster-shards", type=int, default=16, metavar="K",
                   help="shards in the cluster map (default 16)")
    p.add_argument("--cache", type=int, default=4096, metavar="N",
                   help="per-node (u, v) pair-cache capacity for --cluster")
    p.add_argument("--zipf", type=float, default=1.1, metavar="S",
                   help="Zipf skew of the cluster throughput phase")
    p.add_argument("--throughput-pairs", type=int, default=16384, metavar="K",
                   help="pairs in the cluster throughput phase")
    p.add_argument("--throughput-batch", type=int, default=64, metavar="B",
                   help="batch size in the cluster throughput phase")
    p.add_argument("--bench-out", metavar="PATH",
                   help="write a repro-bench/1 record (e.g. BENCH_chaos.json)")
    p.set_defaults(func=cmd_chaos)

    p = sub.add_parser(
        "cluster",
        help="replicated shard cluster: init, up, plan, apply "
        "(see docs/cluster.md)",
    )
    cluster_sub = p.add_subparsers(dest="cluster_command", required=True)

    pc = cluster_sub.add_parser(
        "init",
        help="split a labels file into a cluster data directory",
        parents=[obs_parent],
    )
    pc.add_argument("--labels", required=True, metavar="PATH",
                    help="labels file to shard across the cluster")
    pc.add_argument("--root", required=True, metavar="DIR",
                    help="cluster data directory to create")
    pc.add_argument("--nodes", type=int, default=3, metavar="N")
    pc.add_argument("--replication", type=int, default=2, metavar="R",
                    help="replicas per shard (default 2)")
    pc.add_argument("--shards", type=int, default=16, metavar="K",
                    help="shards in the cluster map (default 16)")
    pc.add_argument("--seed", type=int, default=0,
                    help="rendezvous placement seed")
    pc.set_defaults(func=cmd_cluster_init)

    pc = cluster_sub.add_parser(
        "up",
        help="launch every node of an initialized cluster locally",
        parents=[obs_parent],
    )
    pc.add_argument("--root", required=True, metavar="DIR",
                    help="directory from `repro cluster init`")
    pc.add_argument("--host", default="127.0.0.1")
    pc.add_argument("--cache", type=int, default=4096, metavar="N",
                    help="per-node (u, v) pair-cache capacity")
    pc.add_argument("--duration", type=float, default=None, metavar="S",
                    help="stop after S seconds (default: until a signal)")
    pc.set_defaults(func=cmd_cluster_up)

    pc = cluster_sub.add_parser(
        "plan",
        help="diff two cluster maps into minimal shard moves",
        parents=[obs_parent],
    )
    pc.add_argument("old", metavar="OLD_MAP")
    pc.add_argument("new", metavar="NEW_MAP")
    pc.add_argument("--json-out", metavar="PATH",
                    help="also write the plan as JSON")
    pc.set_defaults(func=cmd_cluster_plan)

    pc = cluster_sub.add_parser(
        "apply",
        help="execute a rebalance against a cluster data directory",
        parents=[obs_parent],
    )
    pc.add_argument("--root", required=True, metavar="DIR",
                    help="directory from `repro cluster init`")
    pc.add_argument("--new", required=True, metavar="NEW_MAP",
                    help="target map to rebalance to")
    pc.add_argument("--prune", action="store_true",
                    help="delete shard packs a node no longer replicates")
    pc.set_defaults(func=cmd_cluster_apply)

    p = sub.add_parser(
        "top",
        help="live view over a running server's METRICS snapshot",
        parents=[obs_parent],
    )
    p.add_argument("target", metavar="HOST:PORT",
                   help="address of a running `repro serve`")
    p.add_argument("--interval", type=float, default=2.0, metavar="S",
                   help="seconds between polls (default 2.0)")
    p.add_argument("--iterations", type=int, default=None, metavar="N",
                   help="render N frames then exit (default: until Ctrl-C)")
    p.add_argument("--retries", type=int, default=2, metavar="R",
                   help="extra attempts per poll on transient failures")
    p.add_argument("--timeout", type=float, default=5.0,
                   help="per-poll deadline in seconds")
    p.set_defaults(func=cmd_top)

    p = sub.add_parser(
        "trace",
        help="reassemble repro-spans/1 files into per-request trace trees",
        parents=[obs_parent],
    )
    p.add_argument("files", nargs="+", metavar="SPANS_JSONL",
                   help="span files from any mix of processes "
                   "(e.g. server + loadgen --trace-out)")
    p.add_argument("--limit", type=int, default=None, metavar="N",
                   help="render at most N traces")
    p.add_argument("--require-join", action="store_true",
                   help="exit nonzero unless at least one trace joins "
                   "client- and server-side spans")
    p.set_defaults(func=cmd_trace)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    metrics_out = getattr(args, "metrics_out", None)
    needs_metrics = (
        bool(metrics_out)
        or args.func is cmd_stats
        or getattr(args, "metrics", False)
    )
    ring = None
    try:
        with ExitStack() as stack:
            if getattr(args, "trace", False):
                stack.enter_context(use_sink(LogSink(sys.stderr)))
            trace_out = getattr(args, "trace_out", None)
            if trace_out:
                stack.enter_context(
                    use_sink(JsonlSpanSink(trace_out, service=args.command))
                )
            log_file = getattr(args, "log_file", None)
            if log_file:
                file_sink = JsonlFileSink(log_file)
                eventlog.add_sink(file_sink)
                stack.callback(file_sink.close)
                stack.callback(eventlog.remove_sink, file_sink)
            log_ring = getattr(args, "log_ring", None)
            if log_ring:
                ring = RingBufferSink(log_ring)
                eventlog.add_sink(ring)
                stack.callback(eventlog.remove_sink, ring)
            if needs_metrics:
                stack.enter_context(metrics.activate())
            rc = args.func(args)
            if ring is not None and rc != 0:
                for event in ring.events():
                    print(json.dumps(event, sort_keys=True), file=sys.stderr)
            if metrics_out:
                extra = getattr(args, "_metrics_extra", {"command": args.command})
                try:
                    write_metrics_json(metrics_out, extra=extra)
                except OSError as exc:
                    print(f"error: cannot write metrics to {metrics_out}: {exc}",
                          file=sys.stderr)
                    return 2
                print(f"wrote metrics to {metrics_out}", file=sys.stderr)
        return rc
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except BrokenPipeError:
        # stdout's consumer went away (e.g. `repro ... | head`): not an
        # error.  Detach stdout so the interpreter's shutdown flush
        # doesn't raise again.
        devnull = os.open(os.devnull, os.O_WRONLY)
        os.dup2(devnull, sys.stdout.fileno())
        return 0
    except OSError as exc:
        # Missing / unreadable input paths (graph files, labels files).
        name = getattr(exc, "filename", None)
        where = f" ({name})" if name else ""
        print(f"error: {exc.strerror or exc}{where}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    raise SystemExit(main())
