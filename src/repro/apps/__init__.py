"""Applications built on the path-separator decomposition.

Beyond the paper's four object-location problems, the recursive
separator structure solves classic divide-and-conquer problems
directly; this package collects them.  Currently: nested dissection
orderings for sparse elimination.
"""

from repro.apps.nested_dissection import (
    elimination_fill_in,
    nested_dissection_order,
)

__all__ = ["elimination_fill_in", "nested_dissection_order"]
