"""Nested dissection from path-separator decompositions.

Nested dissection (George 1973; Lipton-Rose-Tarjan for the separator-
based analysis) orders the vertices of a sparse matrix graph so that
Gaussian elimination creates little fill-in: eliminate the two halves
recursively, then the separator last.  A k-path separator decomposition
is exactly the required recursive separator structure, so the
decomposition tree yields the ordering directly — a practical dividend
of Theorem 1 beyond the paper's object-location problems.
"""

from __future__ import annotations

from typing import Dict, Hashable, List, Optional, Set

from repro.core.decomposition import DecompositionTree, build_decomposition
from repro.core.engines import SeparatorEngine
from repro.graphs.graph import Graph
from repro.util.errors import GraphError

Vertex = Hashable


def nested_dissection_order(
    graph: Graph,
    engine: Optional[SeparatorEngine] = None,
    tree: Optional[DecompositionTree] = None,
) -> List[Vertex]:
    """Elimination order: children regions first, separators last.

    Returns a permutation of the vertices.  Vertices inside deeper
    components are eliminated before the separators that cut them off,
    so elimination never connects across a separator.
    """
    if tree is None:
        tree = build_decomposition(graph, engine=engine)
    order: List[Vertex] = []
    if tree.nodes:
        # Iterative post-order (children before their separator) to
        # avoid recursion limits on deep trees.
        stack = [(0, False)]
        while stack:
            node_id, expanded = stack.pop()
            node = tree.nodes[node_id]
            if expanded:
                seen: Set[Vertex] = set()
                for phase in node.separator.phases:
                    for path in phase.paths:
                        for v in path:
                            if v not in seen:
                                seen.add(v)
                                order.append(v)
                continue
            stack.append((node_id, True))
            for child in node.children:
                stack.append((child, False))
    if len(order) != graph.num_vertices:
        raise GraphError(
            "decomposition does not cover the graph (is it connected?)"
        )
    return order


def elimination_fill_in(graph: Graph, order: List[Vertex]) -> int:
    """Number of fill edges Gaussian elimination adds under *order*.

    Simulates symbolic elimination: eliminating v connects its
    not-yet-eliminated neighbors into a clique; every edge so added
    that was absent counts as fill.
    """
    position = {v: i for i, v in enumerate(order)}
    if len(position) != graph.num_vertices:
        raise GraphError("order must enumerate every vertex exactly once")
    adj: Dict[Vertex, Set[Vertex]] = {
        v: set(graph.neighbors(v)) for v in graph.vertices()
    }
    fill = 0
    for v in order:
        later = [u for u in adj[v] if position[u] > position[v]]
        for i, a in enumerate(later):
            for b in later[i + 1 :]:
                if b not in adj[a]:
                    adj[a].add(b)
                    adj[b].add(a)
                    fill += 1
    return fill
