"""Interval routing on rooted trees.

Every vertex gets a DFS interval ``[in, out)``; the interval of a
descendant nests inside its ancestor's.  To route from w toward the
vertex labeled ``t_in``:

* if ``t_in`` is outside w's interval, go to w's parent;
* otherwise go to the unique child whose interval contains ``t_in``
  (found by bisection on the sorted child intervals);
* if no child interval contains it, w is the target.

Labels are 1 word, tables are O(degree) words, and routes follow the
unique tree path (stretch 1 on the tree).
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass, field
from typing import Dict, Hashable, List, Optional, Tuple

from repro.util.errors import GraphError

Vertex = Hashable


def dfs_intervals(
    children: Dict[Vertex, List[Vertex]],
    root: Vertex,
) -> Dict[Vertex, Tuple[int, int]]:
    """Iterative DFS interval labeling of a rooted tree/forest subtree.

    Returns ``{v: (in, out)}`` with ``in`` the DFS entry index and
    ``out`` one past the largest entry index in v's subtree.
    """
    intervals: Dict[Vertex, Tuple[int, int]] = {}
    counter = 0
    # (vertex, child_iteration_state): emulate recursion with a stack.
    stack: List[Tuple[Vertex, int]] = [(root, -1)]
    entry: Dict[Vertex, int] = {}
    while stack:
        v, child_idx = stack.pop()
        if child_idx == -1:
            entry[v] = counter
            counter += 1
            stack.append((v, 0))
            continue
        kids = children.get(v, [])
        if child_idx < len(kids):
            stack.append((v, child_idx + 1))
            stack.append((kids[child_idx], -1))
        else:
            intervals[v] = (entry[v], counter)
    return intervals


@dataclass
class _VertexTable:
    parent: Optional[Vertex]
    interval: Tuple[int, int]
    # Sorted child entry points and, aligned, the child vertices.
    child_starts: List[int] = field(default_factory=list)
    children: List[Vertex] = field(default_factory=list)

    @property
    def words(self) -> int:
        # interval (2 words) + parent (1) + one word per child pointer
        # + one per child boundary.
        return 3 + 2 * len(self.children)


class IntervalTreeRouting:
    """Routing tables + labels for one rooted tree."""

    def __init__(
        self,
        parent: Dict[Vertex, Optional[Vertex]],
        root: Vertex,
    ) -> None:
        children: Dict[Vertex, List[Vertex]] = {v: [] for v in parent}
        for v, p in parent.items():
            if p is not None:
                if p not in children:
                    raise GraphError(f"parent {p!r} of {v!r} is not a tree vertex")
                children[p].append(v)
        self.root = root
        self.intervals = dfs_intervals(children, root)
        if len(self.intervals) != len(parent):
            raise GraphError("parent map does not describe a tree rooted at root")
        self.tables: Dict[Vertex, _VertexTable] = {}
        for v in parent:
            kids = sorted(children[v], key=lambda c: self.intervals[c][0])
            self.tables[v] = _VertexTable(
                parent=parent[v],
                interval=self.intervals[v],
                child_starts=[self.intervals[c][0] for c in kids],
                children=kids,
            )

    def label(self, v: Vertex) -> int:
        """The 1-word routing label of v: its DFS entry index."""
        return self.intervals[v][0]

    def next_hop(self, current: Vertex, target_label: int) -> Optional[Vertex]:
        """The next vertex on the tree path toward the target.

        Returns ``None`` when *current* is the target.
        """
        table = self.tables[current]
        lo, hi = table.interval
        if target_label == lo:
            return None
        if not (lo <= target_label < hi):
            if table.parent is None:
                raise GraphError(
                    f"target label {target_label} is not in this tree"
                )
            return table.parent
        idx = bisect.bisect_right(table.child_starts, target_label) - 1
        if idx < 0:
            raise GraphError(
                f"corrupt interval structure at {current!r} for {target_label}"
            )
        return table.children[idx]

    def route(self, source: Vertex, target: Vertex) -> List[Vertex]:
        """Simulate routing; returns the vertex sequence source..target."""
        target_label = self.label(target)
        path = [source]
        current = source
        guard = len(self.tables) + 1
        while True:
            nxt = self.next_hop(current, target_label)
            if nxt is None:
                return path
            path.append(nxt)
            current = nxt
            guard -= 1
            if guard < 0:
                raise GraphError("routing loop detected (corrupt tables)")

    def table_words(self) -> Dict[Vertex, int]:
        return {v: t.words for v, t in self.tables.items()}
