"""Classic interval-labeled tree routing.

The substrate under the compact routing scheme: routing in a rooted
tree with 2-word labels (DFS intervals) and per-vertex tables sized by
degree.  See Fraigniaud & Gavoille, "Routing in trees" [20] for the
scheme this follows.
"""

from repro.treerouting.interval import IntervalTreeRouting, dfs_intervals

__all__ = ["IntervalTreeRouting", "dfs_intervals"]
