"""Reassemble and render distributed traces from span JSONL files.

``repro serve --trace-out server.jsonl`` and ``repro loadgen
--trace-out client.jsonl`` each emit ``repro-spans/1`` lines
(:class:`~repro.obs.tracing.JsonlSpanSink`).  This module is the read
side: merge any number of those files, group spans by trace id, stitch
parent/child links back into trees — the client's request and attempt
spans on top, the server's parse/cache/estimate/encode spans joined
underneath via the propagated trace context — and render one tree per
request with critical-path timings.

The **critical path** of a tree is the chain from the root to the span
that finished last within each level: the spans that actually gated the
request's latency.  A hedged request shows this vividly — the losing
attempt sits in the tree (tagged, cancelled) but off the critical path,
while the winner's server-side spans carry the path down to the stage
that dominated.

Used by ``repro trace`` (docs/observability.md) and the CI trace-smoke
job, whose gate is :func:`cross_process` — at least one reassembled
tree must span both the client and the server files.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Tuple

__all__ = [
    "SpanRecord",
    "TraceTree",
    "assemble_traces",
    "cross_process",
    "read_span_files",
    "render_trace",
]


@dataclass
class SpanRecord:
    """One parsed ``repro-spans/1`` line."""

    trace: str
    span: str
    parent: Optional[str]
    name: str
    ts: float
    dur_ns: int
    service: str = ""
    attrs: Dict = field(default_factory=dict)
    error: Optional[str] = None
    children: List["SpanRecord"] = field(default_factory=list)
    orphan: bool = False  # parent id never showed up in any file

    @property
    def dur_ms(self) -> float:
        return self.dur_ns / 1e6

    @property
    def end_ts(self) -> float:
        return self.ts + self.dur_ns / 1e9

    def walk(self, depth: int = 0):
        yield self, depth
        for child in self.children:
            yield from child.walk(depth + 1)

    def find_all(self, name: str) -> List["SpanRecord"]:
        return [node for node, _ in self.walk() if node.name == name]


@dataclass
class TraceTree:
    """All spans of one trace id, stitched into root trees."""

    trace_id: str
    roots: List[SpanRecord]
    span_count: int

    @property
    def started(self) -> float:
        return min(root.ts for root in self.roots)

    def walk(self):
        for root in self.roots:
            yield from root.walk()

    def services(self) -> List[str]:
        return sorted({node.service for node, _ in self.walk() if node.service})

    def find_all(self, name: str) -> List[SpanRecord]:
        return [node for node, _ in self.walk() if node.name == name]


def read_span_files(paths: Iterable) -> Tuple[List[SpanRecord], int]:
    """Parse every span line of *paths*; returns ``(records, skipped)``.

    Header lines (``"format"``) and unparseable lines are skipped and
    counted, never fatal — a truncated tail from a crashed process must
    not take the rest of the trace down with it.
    """
    records: List[SpanRecord] = []
    skipped = 0
    for path in paths:
        for line in Path(path).read_text().splitlines():
            line = line.strip()
            if not line:
                continue
            try:
                payload = json.loads(line)
            except json.JSONDecodeError:
                skipped += 1
                continue
            if not isinstance(payload, dict) or "format" in payload:
                continue  # header / foreign line
            try:
                records.append(
                    SpanRecord(
                        trace=str(payload["trace"]),
                        span=str(payload["span"]),
                        parent=payload.get("parent"),
                        name=str(payload["name"]),
                        ts=float(payload["ts"]),
                        dur_ns=int(payload["dur_ns"]),
                        service=str(payload.get("svc", "")),
                        attrs=payload.get("attrs") or {},
                        error=payload.get("error"),
                    )
                )
            except (KeyError, TypeError, ValueError):
                skipped += 1
    return records, skipped


def assemble_traces(records: Iterable[SpanRecord]) -> List[TraceTree]:
    """Group spans by trace id and stitch parent links into trees.

    A span whose parent id never appears (the parent process died
    before flushing, or only one side's file was given) becomes an
    *orphan root*, flagged so the renderer and the CI join-gate can
    tell a complete tree from a fragment.  Trees are ordered by start
    time; children by start time within their parent.
    """
    by_trace: Dict[str, List[SpanRecord]] = {}
    for record in records:
        by_trace.setdefault(record.trace, []).append(record)

    trees: List[TraceTree] = []
    for trace_id, spans in by_trace.items():
        by_id = {span.span: span for span in spans}
        roots: List[SpanRecord] = []
        for span in spans:
            if span.parent is None:
                roots.append(span)
            elif span.parent in by_id:
                by_id[span.parent].children.append(span)
            else:
                span.orphan = True
                roots.append(span)
        for span in spans:
            span.children.sort(key=lambda s: (s.ts, s.span))
        roots.sort(key=lambda s: (s.ts, s.span))
        trees.append(TraceTree(trace_id=trace_id, roots=roots, span_count=len(spans)))
    trees.sort(key=lambda t: t.started)
    return trees


def cross_process(tree: TraceTree) -> bool:
    """Did this trace join spans from both sides of the wire into ONE
    tree?  True only when some client-side span has a server-side span
    as a descendant — the CI trace-smoke gate."""
    for root in tree.roots:
        for node, _ in root.walk():
            if not node.name.startswith("client."):
                continue
            for descendant, _ in node.walk():
                if descendant.name.startswith("serve."):
                    return True
    return False


def critical_spans(root: SpanRecord) -> List[SpanRecord]:
    """The chain of spans that gated the end-to-end latency: from the
    root, repeatedly descend into the child that *finished last*."""
    path = [root]
    node = root
    while node.children:
        node = max(node.children, key=lambda s: s.end_ts)
        path.append(node)
    return path


_INTERESTING_ATTRS = 4


def _attr_text(node: SpanRecord) -> str:
    parts = [f"{k}={v}" for k, v in list(node.attrs.items())[:_INTERESTING_ATTRS]]
    if node.error:
        parts.append(f"error={node.error}")
    return " ".join(parts)


def render_trace(tree: TraceTree) -> str:
    """One indented tree per root, critical path marked with ``*``."""
    lines = [
        f"trace {tree.trace_id}  "
        f"({tree.span_count} spans, services: {', '.join(tree.services()) or '?'})"
    ]
    for root in tree.roots:
        on_path = set(id(s) for s in critical_spans(root))
        base = root.ts
        for node, depth in root.walk():
            marker = "*" if id(node) in on_path else " "
            svc = f"[{node.service}] " if node.service else ""
            attrs = _attr_text(node)
            offset_ms = (node.ts - base) * 1e3
            lines.append(
                f" {marker} {'  ' * depth}{node.name:<{max(1, 28 - 2 * depth)}} "
                f"+{offset_ms:8.2f}ms {node.dur_ms:9.3f}ms  {svc}{attrs}".rstrip()
            )
            if node.orphan:
                lines[-1] += "  (orphan: parent span not found)"
        path = critical_spans(root)
        lines.append(
            "   critical path: "
            + " -> ".join(f"{n.name} {n.dur_ms:.2f}ms" for n in path)
        )
    return "\n".join(lines)
