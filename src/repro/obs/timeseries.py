"""Live metrics plane: periodic time-series snapshots of the registry.

A :class:`TimeseriesWriter` samples a :class:`~repro.obs.metrics
.MetricsRegistry` on a fixed cadence and appends one
``repro-timeseries/1`` JSON line per tick — counter **deltas** (what
happened this interval), gauge readings, and histogram count/sum
deltas::

    {"format": "repro-timeseries/1", "interval_s": 2.0}
    {"t": 1722470402.0, "dt": 2.001,
     "counters": {"serve.requests{op=DIST}": 1841},
     "gauges": {"serve.cache.size": 512, "proc.rss_bytes": 48758784},
     "histograms": {"serve.latency_ns": {"count": 1841, "sum": 3.1e9}}}

Deltas rather than totals because that is the shape a dashboard wants:
QPS is ``counters[...]/dt`` with no client-side bookkeeping, and a
restarted server restarts cleanly at zero instead of emitting one huge
negative spike.  The writer is driven either by the server's own
asyncio tick (:meth:`TimeseriesWriter.run`) or manually
(:meth:`TimeseriesWriter.sample`) from tests and benchmarks.

Lines are flushed as written and writes after stream close are
dropped, matching the crash-safety stance of the other sinks.

:func:`process_rss_bytes` reads the resident set size of the current
process (``/proc/self/statm`` on Linux, ``ru_maxrss`` as a fallback) —
the number STATS and the timeseries export as the memory baseline.
"""

from __future__ import annotations

import asyncio
import json
import os
import time
from typing import Dict, Optional

from repro.obs.metrics import MetricsRegistry
from repro.obs.metrics import metrics as _global_metrics

__all__ = [
    "FORMAT",
    "TimeseriesWriter",
    "process_rss_bytes",
    "registry_sample",
    "sample_delta",
]

FORMAT = "repro-timeseries/1"


def process_rss_bytes() -> int:
    """Resident set size of this process in bytes (0 if unknowable).

    Prefers the *current* RSS from ``/proc/self/statm``; falls back to
    the peak (``ru_maxrss``) where /proc is unavailable.
    """
    try:
        with open("/proc/self/statm") as handle:
            fields = handle.read().split()
        return int(fields[1]) * os.sysconf("SC_PAGE_SIZE")
    except (OSError, IndexError, ValueError):
        pass
    try:
        import resource

        usage = resource.getrusage(resource.RUSAGE_SELF)
        # Linux reports KiB, macOS bytes; by this point we are not on a
        # /proc system, so assume the BSD convention.
        return int(usage.ru_maxrss)
    except (ImportError, ValueError, OSError):
        return 0


def registry_sample(registry: Optional[MetricsRegistry] = None) -> Dict:
    """A snapshot suitable for delta computation (histograms reduced to
    their exact running aggregates)."""
    registry = registry if registry is not None else _global_metrics
    snapshot = registry.snapshot()
    return {
        "counters": snapshot["counters"],
        "gauges": snapshot["gauges"],
        "histograms": {
            key: {"count": hist["count"], "sum": hist["sum"]}
            for key, hist in snapshot["histograms"].items()
        },
    }


def sample_delta(prev: Dict, cur: Dict) -> Dict:
    """What changed between two :func:`registry_sample` snapshots.

    Counters and histogram aggregates are differenced (new keys count
    from zero); gauges are reported at their current reading.  Keys
    with a zero delta are omitted, so an idle interval is a tiny line.
    """
    counters = {}
    for key, value in cur["counters"].items():
        delta = value - prev["counters"].get(key, 0.0)
        if delta:
            counters[key] = delta
    histograms = {}
    for key, agg in cur["histograms"].items():
        before = prev["histograms"].get(key, {"count": 0, "sum": 0.0})
        count = agg["count"] - before["count"]
        if count:
            histograms[key] = {"count": count, "sum": agg["sum"] - before["sum"]}
    return {"counters": counters, "gauges": dict(cur["gauges"]), "histograms": histograms}


class TimeseriesWriter:
    """Append registry deltas to a ``repro-timeseries/1`` JSONL file."""

    def __init__(
        self,
        path,
        *,
        registry: Optional[MetricsRegistry] = None,
        interval_s: float = 2.0,
        extra_gauges=None,
    ) -> None:
        self.path = path
        self.registry = registry if registry is not None else _global_metrics
        self.interval_s = interval_s
        #: Optional callable returning extra gauges per tick (the server
        #: injects inflight / rss here without touching the registry).
        self.extra_gauges = extra_gauges
        self.samples = 0
        self._handle = open(path, "w")
        self._prev = registry_sample(self.registry)
        self._prev_t = time.time()
        self._write({"format": FORMAT, "interval_s": interval_s})

    def sample(self) -> Dict:
        """Take one sample now; writes and returns the delta record."""
        now = time.time()
        cur = registry_sample(self.registry)
        delta = sample_delta(self._prev, cur)
        if self.extra_gauges is not None:
            delta["gauges"].update(
                {str(k): v for k, v in self.extra_gauges().items()}
            )
        record = {"t": round(now, 3), "dt": round(now - self._prev_t, 6), **delta}
        self._prev, self._prev_t = cur, now
        self.samples += 1
        self._write(record)
        return record

    async def run(self, stop: "asyncio.Event") -> None:
        """Sample every ``interval_s`` until *stop* is set (one final
        sample on the way out, so short runs still produce data)."""
        try:
            while not stop.is_set():
                try:
                    await asyncio.wait_for(stop.wait(), self.interval_s)
                except asyncio.TimeoutError:
                    pass
                self.sample()
        finally:
            self.close()

    def _write(self, record: dict) -> None:
        try:
            self._handle.write(json.dumps(record, separators=(",", ":")) + "\n")
            self._handle.flush()
        except (ValueError, OSError):
            pass  # stream closed during shutdown; prior lines are safe

    def close(self) -> None:
        try:
            self._handle.close()
        except (ValueError, OSError):
            pass
