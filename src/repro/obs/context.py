"""Trace-context propagation across process boundaries.

A *trace* is one logical request's journey through the whole system —
the client's retries, hedges, and backoff on one side, the server's
parse → cache → estimate → encode pipeline on the other.  A
:class:`TraceContext` is the tiny, wire-serializable handle that ties
the two halves together: a 64-bit trace id shared by every span of the
request, plus the span id of the sender's currently-open span, so the
receiver's spans attach as its children.

Determinism: ids are *derived*, never drawn from entropy.  The client
derives trace id *n* from its run seed via
``derive_seed(seed, "trace", n)`` (:func:`trace_id_for`) and every span
id from ``(trace_id, parent_span_id, name, child_index)``
(:func:`span_id_for`), so two runs with the same seed and workload emit
byte-identical ids — trace files diff cleanly across reruns, which is
how the repo keeps chaos runs and CI reproductions comparable.

Wire format (the optional ``"trace"`` request field, see
docs/observability.md)::

    {"op": "DIST", "u": 0, "v": 41,
     "trace": {"id": "9f1c24a77d03b56e", "span": "4b0e8a2f6d91c370"}}

Both ids are 16 lowercase hex characters.  The field is *optional* and
*advisory*: a server with tracing off ignores it at the cost of one
dict lookup, and a malformed context is dropped rather than failing the
request — observability must never break serving.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.util.rng import derive_seed

__all__ = [
    "TraceContext",
    "format_trace_id",
    "span_id_for",
    "trace_id_for",
]


def format_trace_id(value: int) -> str:
    """Render a 64-bit id as the canonical 16-char lowercase hex form."""
    return format(value & (2**64 - 1), "016x")


def trace_id_for(seed: int, call: int) -> str:
    """Deterministic trace id for logical request *call* of a run.

    Pure function of ``(seed, call)`` — the client's call counter is
    the only state, so replaying a seeded workload replays its ids.
    """
    return format_trace_id(derive_seed(seed, "trace", call))


def span_id_for(
    trace_id: str, parent: Optional[str], name: str, index: int
) -> str:
    """Deterministic span id for child *index* named *name* under
    *parent* (None for the trace root) within *trace_id*."""
    return format_trace_id(
        derive_seed(int(trace_id, 16), "span", parent or "", name, index)
    )


@dataclass(frozen=True)
class TraceContext:
    """One propagated trace position: ``(trace_id, span_id)``.

    ``span_id`` is the sender's open span — the receiver's root span
    adopts it as parent.  ``span_id=None`` marks the *start* of a trace
    (the client's root span adopts the trace id with no parent).
    """

    trace_id: str
    span_id: Optional[str] = None

    def to_wire(self) -> dict:
        """The ``"trace"`` request field."""
        payload = {"id": self.trace_id}
        if self.span_id is not None:
            payload["span"] = self.span_id
        return payload

    @classmethod
    def from_wire(cls, payload) -> Optional["TraceContext"]:
        """Parse a ``"trace"`` field; None for absent *or* malformed.

        Lenient by design: a bad trace context costs the request its
        observability, never its answer.
        """
        if not isinstance(payload, dict):
            return None
        trace_id = payload.get("id")
        if not _valid_id(trace_id):
            return None
        span_id = payload.get("span")
        if span_id is not None and not _valid_id(span_id):
            return None
        return cls(trace_id=trace_id, span_id=span_id)


def _valid_id(value) -> bool:
    if not isinstance(value, str) or len(value) != 16:
        return False
    try:
        int(value, 16)
    except ValueError:
        return False
    return value == value.lower()
