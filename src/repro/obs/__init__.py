"""``repro.obs`` — telemetry: metrics registry, span tracing, export.

The pipeline (separator engines → decomposition → labeling → oracle /
routing queries) is instrumented against this package.  Everything is
**off by default** and costs one boolean check per event until a caller
opts in:

* :data:`metrics` — the process-wide :class:`MetricsRegistry` of
  counters, gauges, and histograms.  Enable with
  ``with metrics.activate(): ...`` and read back via
  :meth:`MetricsRegistry.snapshot`.
* :func:`span` — hierarchical tracing.  Attach a sink
  (``with use_sink(CollectingSink()) as c: ...``) to make spans real;
  with no sink attached :func:`span` returns a shared no-op object.
* :func:`write_metrics_json` / :func:`metrics_payload` — the
  machine-readable ``repro-metrics/1`` export used by
  ``--metrics-out`` and the benchmark plumbing.

:class:`~repro.util.timer.Timer` is re-exported here so examples and
benchmarks can migrate to ``from repro.obs import Timer`` while the old
``repro.util`` import path keeps working.

See ``docs/observability.md`` for the metric-name catalog and the span
hierarchy emitted by the instrumented pipeline.
"""

from repro.obs.export import (
    bench_payload,
    git_sha,
    metrics_payload,
    write_bench_json,
    write_metrics_json,
)
from repro.obs.metrics import Histogram, MetricsRegistry, metrics, render_key
from repro.obs.tracing import (
    NOOP_SPAN,
    CollectingSink,
    JsonFileSink,
    LogSink,
    Span,
    SpanSink,
    add_sink,
    record_span,
    remove_sink,
    span,
    tracing_active,
    use_sink,
)
from repro.util.timer import Timer

__all__ = [
    "CollectingSink",
    "Histogram",
    "JsonFileSink",
    "LogSink",
    "MetricsRegistry",
    "NOOP_SPAN",
    "Span",
    "SpanSink",
    "Timer",
    "add_sink",
    "bench_payload",
    "git_sha",
    "metrics",
    "metrics_payload",
    "record_span",
    "remove_sink",
    "render_key",
    "span",
    "tracing_active",
    "use_sink",
    "write_bench_json",
    "write_metrics_json",
]
