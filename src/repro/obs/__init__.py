"""``repro.obs`` — telemetry: metrics, tracing, events, export.

The pipeline (separator engines → decomposition → labeling → oracle /
routing queries) *and* the serving stack (``repro.serve``) are
instrumented against this package.  Everything is **off by default**
and costs one boolean check per event until a caller opts in:

* :data:`metrics` — the process-wide :class:`MetricsRegistry` of
  counters, gauges, and histograms.  Enable with
  ``with metrics.activate(): ...`` and read back via
  :meth:`MetricsRegistry.snapshot`.
* :func:`span` — hierarchical tracing.  Attach a sink
  (``with use_sink(CollectingSink()) as c: ...``) to make spans real;
  with no sink attached :func:`span` returns a shared no-op object.
  Spans can carry **distributed trace context**
  (:class:`TraceContext`): ids are derived deterministically from the
  run seed, propagate over the wire in the optional ``"trace"``
  request field, and reassemble with ``repro trace``
  (:mod:`repro.obs.traceview`).
* :data:`eventlog` — the structured one-line-JSON event log
  (``repro-log/1``, :mod:`repro.obs.log`) with ring-buffer, JSONL-file,
  and stderr sinks.
* :class:`TimeseriesWriter` — the live metrics plane: periodic
  ``repro-timeseries/1`` registry-delta snapshots
  (:mod:`repro.obs.timeseries`), served live via the ``METRICS``
  protocol op and watched with ``repro top``.
* :func:`write_metrics_json` / :func:`metrics_payload` — the
  machine-readable ``repro-metrics/1`` export used by
  ``--metrics-out`` and the benchmark plumbing.

:class:`~repro.util.timer.Timer` is re-exported here so examples and
benchmarks can migrate to ``from repro.obs import Timer`` while the old
``repro.util`` import path keeps working.

See ``docs/observability.md`` for the metric-name catalog, the span
hierarchy, and every wire schema emitted by this package.
"""

from repro.obs.context import TraceContext, span_id_for, trace_id_for
from repro.obs.export import (
    bench_payload,
    git_sha,
    metrics_payload,
    write_bench_json,
    write_metrics_json,
)
from repro.obs.log import (
    EventLogger,
    EventSink,
    JsonlFileSink,
    RingBufferSink,
    StderrLineSink,
    eventlog,
)
from repro.obs.metrics import Histogram, MetricsRegistry, metrics, render_key
from repro.obs.timeseries import (
    TimeseriesWriter,
    process_rss_bytes,
    registry_sample,
    sample_delta,
)
from repro.obs.tracing import (
    NOOP_SPAN,
    CollectingSink,
    JsonFileSink,
    JsonlSpanSink,
    LogSink,
    Span,
    SpanSink,
    add_sink,
    current_span,
    record_span,
    remove_sink,
    span,
    tracing_active,
    use_sink,
)
from repro.util.timer import Timer

__all__ = [
    "CollectingSink",
    "EventLogger",
    "EventSink",
    "Histogram",
    "JsonFileSink",
    "JsonlFileSink",
    "JsonlSpanSink",
    "LogSink",
    "MetricsRegistry",
    "NOOP_SPAN",
    "RingBufferSink",
    "Span",
    "SpanSink",
    "StderrLineSink",
    "Timer",
    "TimeseriesWriter",
    "TraceContext",
    "add_sink",
    "bench_payload",
    "current_span",
    "eventlog",
    "git_sha",
    "metrics",
    "metrics_payload",
    "process_rss_bytes",
    "record_span",
    "registry_sample",
    "remove_sink",
    "render_key",
    "sample_delta",
    "span",
    "span_id_for",
    "trace_id_for",
    "tracing_active",
    "use_sink",
    "write_bench_json",
    "write_metrics_json",
]
