"""Machine-readable export of telemetry snapshots.

``repro <cmd> --metrics-out m.json`` and the benchmark plumbing both
emit the payload produced here, so downstream tooling (and later PRs
diffing perf baselines) can rely on one format: ``repro-metrics/1``.
"""

from __future__ import annotations

import json
import subprocess
from typing import Dict, Optional

from repro.obs.metrics import MetricsRegistry
from repro.obs.metrics import metrics as _global_metrics

__all__ = ["git_sha", "metrics_payload", "write_metrics_json"]


def git_sha(cwd: Optional[str] = None) -> str:
    """Current git commit SHA, or ``"unknown"`` outside a checkout."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=cwd,
            capture_output=True,
            text=True,
            timeout=10,
        )
    except (OSError, subprocess.TimeoutExpired):
        return "unknown"
    return out.stdout.strip() if out.returncode == 0 else "unknown"


def metrics_payload(
    registry: Optional[MetricsRegistry] = None,
    extra: Optional[Dict] = None,
) -> Dict:
    """JSON-serializable snapshot of *registry* (the global one by default)."""
    registry = registry if registry is not None else _global_metrics
    payload: Dict = {"format": "repro-metrics/1"}
    if extra:
        payload.update(extra)
    payload["metrics"] = registry.snapshot()
    return payload


def write_metrics_json(
    path,
    registry: Optional[MetricsRegistry] = None,
    extra: Optional[Dict] = None,
) -> Dict:
    """Write :func:`metrics_payload` to *path*; returns the payload."""
    payload = metrics_payload(registry, extra)
    with open(path, "w") as handle:
        json.dump(payload, handle, indent=2, default=repr)
        handle.write("\n")
    return payload
