"""Machine-readable export of telemetry snapshots.

``repro <cmd> --metrics-out m.json`` and the benchmark plumbing both
emit the payload produced here, so downstream tooling (and later PRs
diffing perf baselines) can rely on one format: ``repro-metrics/1``.
"""

from __future__ import annotations

import json
import subprocess
from typing import Dict, Optional

from repro.obs.metrics import MetricsRegistry
from repro.obs.metrics import metrics as _global_metrics

__all__ = [
    "bench_payload",
    "git_sha",
    "metrics_payload",
    "write_bench_json",
    "write_metrics_json",
]


#: Per-process memo for :func:`git_sha`, keyed by cwd.  The SHA cannot
#: change under a running process in any workflow this repo has, and
#: ``bench_payload`` is called once per record — serve/loadgen bench
#: emission was shelling out to ``git rev-parse`` on every record.
_git_sha_cache: Dict[Optional[str], str] = {}


def git_sha(cwd: Optional[str] = None) -> str:
    """Current git commit SHA, or ``"unknown"`` outside a checkout.

    Cached per ``(process, cwd)``: the first call shells out, every
    later call is a dict hit.
    """
    if cwd in _git_sha_cache:
        return _git_sha_cache[cwd]
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=cwd,
            capture_output=True,
            text=True,
            timeout=10,
        )
    except (OSError, subprocess.TimeoutExpired):
        sha = "unknown"
    else:
        sha = out.stdout.strip() if out.returncode == 0 else "unknown"
    _git_sha_cache[cwd] = sha
    return sha


def bench_payload(
    name: str,
    *,
    header=None,
    rows=None,
    table: Optional[str] = None,
    meta: Optional[Dict] = None,
    test: Optional[str] = None,
    unix_time: Optional[float] = None,
    cwd: Optional[str] = None,
) -> Dict:
    """A ``repro-bench/1`` record: the one shape every benchmark artifact
    uses (``benchmarks/results/*.json``, ``BENCH_serve.json``), so the
    perf trajectory stays diffable across PRs."""
    payload: Dict = {
        "format": "repro-bench/1",
        "name": name,
        "git_sha": git_sha(cwd=cwd),
    }
    if test is not None:
        payload["test"] = test
    if unix_time is not None:
        payload["unix_time"] = round(unix_time, 3)
    payload["header"] = header
    payload["rows"] = rows
    if table is not None:
        payload["table"] = table
    if meta:
        payload["meta"] = meta
    return payload


def write_bench_json(path, name: str, **kwargs) -> Dict:
    """Write :func:`bench_payload` to *path*; returns the payload."""
    payload = bench_payload(name, **kwargs)
    with open(path, "w") as handle:
        json.dump(payload, handle, indent=2, default=repr)
        handle.write("\n")
    return payload


def metrics_payload(
    registry: Optional[MetricsRegistry] = None,
    extra: Optional[Dict] = None,
) -> Dict:
    """JSON-serializable snapshot of *registry* (the global one by default)."""
    registry = registry if registry is not None else _global_metrics
    payload: Dict = {"format": "repro-metrics/1"}
    if extra:
        payload.update(extra)
    payload["metrics"] = registry.snapshot()
    return payload


def write_metrics_json(
    path,
    registry: Optional[MetricsRegistry] = None,
    extra: Optional[Dict] = None,
) -> Dict:
    """Write :func:`metrics_payload` to *path*; returns the payload."""
    payload = metrics_payload(registry, extra)
    with open(path, "w") as handle:
        json.dump(payload, handle, indent=2, default=repr)
        handle.write("\n")
    return payload
