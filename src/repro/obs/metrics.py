"""Process-wide metrics registry: counters, gauges, and histograms.

The registry is *disabled by default* and every recording method begins
with a single boolean check, so instrumented hot paths (the separator
engines, the decomposition recursion, labeling, oracle queries) cost one
attribute lookup per event when nothing is listening.

Metric names are dotted paths (``decomposition.nodes``,
``oracle.query.portal_scans``); optional labels render into the key as
``name{k=v}`` so per-level or per-engine breakdowns stay addressable in
a flat snapshot::

    metrics.inc("decomposition.level.nodes", level=3)
    metrics.value("decomposition.level.nodes", level=3)  # -> 1.0

The module-level singleton :data:`metrics` is what the rest of the
package records into; tests that need isolation construct their own
:class:`MetricsRegistry`.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Dict, Iterator, List, Optional

__all__ = ["Histogram", "MetricsRegistry", "metrics", "render_key"]

# Cap on retained histogram observations; beyond it only the running
# aggregates (count/sum/min/max) stay exact.  Large enough for every
# workload in this repo (one observation per vertex or per query).
_HISTOGRAM_CAP = 65536


def render_key(name: str, labels: Dict[str, object]) -> str:
    """Render ``name`` + labels into the flat snapshot key."""
    if not labels:
        return name
    inner = ",".join(f"{k}={labels[k]}" for k in sorted(labels))
    return f"{name}{{{inner}}}"


class Histogram:
    """Streaming value distribution: exact aggregates + retained samples."""

    __slots__ = ("count", "total", "min", "max", "_values")

    def __init__(self) -> None:
        self.count = 0
        self.total = 0.0
        self.min = float("inf")
        self.max = float("-inf")
        self._values: List[float] = []

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        if len(self._values) < _HISTOGRAM_CAP:
            self._values.append(value)

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def percentile(self, q: float) -> float:
        """Nearest-rank percentile over the retained samples (q in 0..100)."""
        if not self._values:
            return 0.0
        ordered = sorted(self._values)
        rank = max(0, min(len(ordered) - 1, round(q / 100.0 * (len(ordered) - 1))))
        return ordered[rank]

    def snapshot(self) -> Dict[str, float]:
        if not self.count:
            return {"count": 0, "sum": 0.0, "min": 0.0, "max": 0.0,
                    "mean": 0.0, "p50": 0.0, "p90": 0.0, "p99": 0.0}
        return {
            "count": self.count,
            "sum": self.total,
            "min": self.min,
            "max": self.max,
            "mean": self.mean,
            "p50": self.percentile(50),
            "p90": self.percentile(90),
            "p99": self.percentile(99),
        }


class MetricsRegistry:
    """Counters, gauges, and histograms behind one enable switch."""

    def __init__(self) -> None:
        self.enabled = False
        self._counters: Dict[str, float] = {}
        self._gauges: Dict[str, float] = {}
        self._histograms: Dict[str, Histogram] = {}

    # -- recording (all no-ops while disabled) -------------------------
    def inc(self, name: str, amount: float = 1.0, **labels) -> None:
        """Add *amount* to a counter (creating it at 0)."""
        if not self.enabled:
            return
        key = render_key(name, labels)
        self._counters[key] = self._counters.get(key, 0.0) + amount

    def gauge(self, name: str, value: float, **labels) -> None:
        """Set a gauge to *value* (last write wins)."""
        if not self.enabled:
            return
        self._gauges[render_key(name, labels)] = value

    def gauge_max(self, name: str, value: float, **labels) -> None:
        """Raise a gauge to *value* if larger than its current reading."""
        if not self.enabled:
            return
        key = render_key(name, labels)
        if value > self._gauges.get(key, float("-inf")):
            self._gauges[key] = value

    def observe(self, name: str, value: float, **labels) -> None:
        """Record one observation into a histogram."""
        if not self.enabled:
            return
        key = render_key(name, labels)
        hist = self._histograms.get(key)
        if hist is None:
            hist = self._histograms[key] = Histogram()
        hist.observe(value)

    # -- reading -------------------------------------------------------
    def value(self, name: str, **labels) -> Optional[float]:
        """Current reading of a counter or gauge (None if absent)."""
        key = render_key(name, labels)
        if key in self._counters:
            return self._counters[key]
        return self._gauges.get(key)

    def histogram(self, name: str, **labels) -> Optional[Histogram]:
        return self._histograms.get(render_key(name, labels))

    @property
    def counters(self) -> Dict[str, float]:
        return dict(self._counters)

    @property
    def gauges(self) -> Dict[str, float]:
        return dict(self._gauges)

    def snapshot(self) -> Dict[str, Dict]:
        """Flat JSON-serializable view of everything recorded so far."""
        return {
            "counters": dict(sorted(self._counters.items())),
            "gauges": dict(sorted(self._gauges.items())),
            "histograms": {
                key: hist.snapshot()
                for key, hist in sorted(self._histograms.items())
            },
        }

    def names(self) -> List[str]:
        """Every distinct metric key recorded so far, sorted."""
        return sorted(
            set(self._counters) | set(self._gauges) | set(self._histograms)
        )

    # -- lifecycle -----------------------------------------------------
    def reset(self) -> None:
        self._counters.clear()
        self._gauges.clear()
        self._histograms.clear()

    @contextmanager
    def activate(self, reset: bool = True) -> Iterator["MetricsRegistry"]:
        """Enable recording for a ``with`` block, restoring the previous
        enabled state afterwards.  *reset* wipes prior readings first."""
        previous = self.enabled
        if reset:
            self.reset()
        self.enabled = True
        try:
            yield self
        finally:
            self.enabled = previous


#: The process-wide registry every instrumented module records into.
metrics = MetricsRegistry()
