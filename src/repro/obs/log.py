"""Structured event log: one-line JSON events (``repro-log/1``).

Where spans answer "how long did each stage of this request take", the
event log answers "what happened, in order" — a server started, a
fault plan armed, a connection dropped mid-write, a drain began.  Each
event is a single JSON line::

    {"ts": 1722470400.123, "level": "info", "event": "serve.start",
     "trace": "9f1c24a77d03b56e", "span": "4b0e8a2f6d91c370",
     "host": "127.0.0.1", "port": 7471}

Schema (``repro-log/1``): ``ts`` (unix seconds), ``level`` (``debug`` |
``info`` | ``warn`` | ``error``), ``event`` (dotted name, same
namespace convention as metrics), optional ``trace``/``span`` ids
(attached automatically when the event fires inside a traced span —
see :mod:`repro.obs.context`), then free-form fields.

Like the rest of ``repro.obs``, the logger is **off by default**: with
no sink attached, :meth:`EventLogger.log` is one boolean check.  Sinks:

* :class:`RingBufferSink` — last *N* events in memory, drainable (the
  server keeps one so STATS/debugging can see recent history without
  any file);
* :class:`JsonlFileSink` — appends one line per event, flushed per
  line so a SIGTERM loses nothing already logged; writes after the
  stream closed (interpreter shutdown) are dropped, not raised;
* :class:`StderrLineSink` — human-readable one-liners, the structured
  replacement for the serve/loadgen/chaos ad-hoc prints.

The module-level :data:`eventlog` singleton is what the serving stack
logs into; tests construct their own :class:`EventLogger`.
"""

from __future__ import annotations

import json
import sys
import time
from collections import deque
from typing import Deque, Dict, List, Optional, TextIO

from repro.obs import tracing

__all__ = [
    "EventLogger",
    "EventSink",
    "JsonlFileSink",
    "LEVELS",
    "RingBufferSink",
    "StderrLineSink",
    "eventlog",
]

FORMAT = "repro-log/1"

#: Severity levels, least to most severe.
LEVELS = ("debug", "info", "warn", "error")


def _jsonable(value):
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    if isinstance(value, dict):
        return {str(k): _jsonable(v) for k, v in value.items()}
    return repr(value)


class EventSink:
    """Receiver of completed events; subclass and override."""

    def on_event(self, event: Dict) -> None:
        """Called once per event with the full record dict."""


class RingBufferSink(EventSink):
    """Keep the most recent *capacity* events in memory."""

    def __init__(self, capacity: int = 1024) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._events: Deque[Dict] = deque(maxlen=capacity)
        self.dropped = 0

    def on_event(self, event: Dict) -> None:
        if len(self._events) == self.capacity:
            self.dropped += 1
        self._events.append(event)

    def events(self) -> List[Dict]:
        """The retained events, oldest first."""
        return list(self._events)

    def drain(self) -> List[Dict]:
        """Return and clear the retained events."""
        out = list(self._events)
        self._events.clear()
        return out

    def __len__(self) -> int:
        return len(self._events)


class JsonlFileSink(EventSink):
    """Append one ``repro-log/1`` JSON line per event, flushed per line.

    Per-line flushing is the crash-safety contract: everything logged
    before a SIGTERM is on disk, and a write that races interpreter
    shutdown (stream already closed) is silently dropped — the event
    log must never turn a clean drain into a traceback.
    """

    def __init__(self, path) -> None:
        self.path = path
        self._handle = open(path, "a")

    def on_event(self, event: Dict) -> None:
        try:
            self._handle.write(json.dumps(event, separators=(",", ":")) + "\n")
            self._handle.flush()
        except (ValueError, OSError):
            pass

    def close(self) -> None:
        try:
            self._handle.close()
        except (ValueError, OSError):
            pass


class StderrLineSink(EventSink):
    """Human-readable one-liners: ``[level] event k=v k=v``."""

    def __init__(self, stream: Optional[TextIO] = None, min_level: str = "info") -> None:
        self.stream = stream if stream is not None else sys.stderr
        self.min_rank = LEVELS.index(min_level)

    def on_event(self, event: Dict) -> None:
        level = event.get("level", "info")
        if LEVELS.index(level) < self.min_rank:
            return
        fields = " ".join(
            f"{k}={v}"
            for k, v in event.items()
            if k not in ("ts", "level", "event")
        )
        try:
            print(
                f"[{level}] {event.get('event')}{' ' + fields if fields else ''}",
                file=self.stream,
            )
        except (ValueError, OSError):
            pass


class EventLogger:
    """Dispatch events to sinks; one boolean check when none attached."""

    def __init__(self) -> None:
        self._sinks: List[EventSink] = []

    @property
    def active(self) -> bool:
        return bool(self._sinks)

    def add_sink(self, sink: EventSink) -> EventSink:
        self._sinks.append(sink)
        return sink

    def remove_sink(self, sink: EventSink) -> None:
        try:
            self._sinks.remove(sink)
        except ValueError:
            pass

    # -- emission -------------------------------------------------------
    def log(self, level: str, event: str, **fields) -> None:
        """Emit one event (no-op while no sink is attached).

        Trace/span ids are attached automatically when the event fires
        inside a traced span, so log lines and span trees join on the
        same ids with no caller plumbing.
        """
        if not self._sinks:
            return
        record: Dict = {"ts": round(time.time(), 6), "level": level, "event": event}
        open_span = tracing.current_span()
        if open_span is not None and open_span.trace_id is not None:
            record["trace"] = open_span.trace_id
            record["span"] = open_span.span_id
        for key, value in fields.items():
            record[key] = _jsonable(value)
        for sink in self._sinks:
            sink.on_event(record)

    def debug(self, event: str, **fields) -> None:
        self.log("debug", event, **fields)

    def info(self, event: str, **fields) -> None:
        self.log("info", event, **fields)

    def warn(self, event: str, **fields) -> None:
        self.log("warn", event, **fields)

    def error(self, event: str, **fields) -> None:
        self.log("error", event, **fields)


#: The process-wide logger the serving stack emits into.
eventlog = EventLogger()
