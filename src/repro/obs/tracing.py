"""Hierarchical span tracing with pluggable sinks.

A *span* is a named, timed region of execution with structured
attributes.  Spans nest: entering a span while another is open makes it
a child, so a build like ``PathSeparatorOracle.build`` yields a tree

::

    oracle.build (n=1024, epsilon=0.25)
      decomposition.build (engine=GreedyPeelingEngine)
      labeling.build

Timing uses ``time.monotonic_ns``.  When **no sink is attached**,
:func:`span` returns a shared no-op object without reading the clock or
allocating, so instrumentation left in hot paths is effectively free.

The open-span stack lives in a :mod:`contextvars` variable, so nesting
is tracked **per asyncio task** (and, as before, per thread): two
concurrent requests inside the asyncio server each build their own span
tree instead of interleaving into one.  Values are immutable tuples —
a task's pushes and pops never leak into sibling tasks that inherited
the same snapshot.

Spans can carry **trace context** (:mod:`repro.obs.context`): a span
entered while a traced parent is open inherits its trace id and gets a
deterministic span id; a span given an explicit ``context=`` adopts a
context that arrived over the wire, which is how the server's spans
join the client's trace.

Sinks receive every completed span (:meth:`SpanSink.on_span_end`) and
every completed *root* (:meth:`SpanSink.on_root`):

* :class:`LogSink` — indented one-line-per-span log (stderr by default);
* :class:`CollectingSink` — in-memory, for tests and ``repro stats``;
* :class:`JsonFileSink` — accumulates root trees, persists every
  completed root (crash-safe: a SIGTERM between roots loses nothing);
* :class:`JsonlSpanSink` — one ``repro-spans/1`` JSON line per
  completed span, flushed per line, for ``repro trace`` to merge
  across processes.
"""

from __future__ import annotations

import json
import sys
import time
from contextvars import ContextVar
from typing import Dict, Iterator, List, Optional, TextIO, Tuple

from repro.obs.context import TraceContext, span_id_for

__all__ = [
    "CollectingSink",
    "JsonFileSink",
    "JsonlSpanSink",
    "LogSink",
    "NOOP_SPAN",
    "Span",
    "SpanSink",
    "add_sink",
    "current_span",
    "record_span",
    "remove_sink",
    "span",
    "tracing_active",
    "use_sink",
]

_sinks: List["SpanSink"] = []

#: The open-span stack of the current task/thread.  Immutable tuple:
#: pushes and pops replace the whole value, so concurrent tasks that
#: inherited one snapshot cannot see each other's mutations.
_stack_var: ContextVar[Tuple["Span", ...]] = ContextVar("repro_span_stack", default=())


def current_span() -> Optional["Span"]:
    """The innermost open span of this task, or None."""
    stack = _stack_var.get()
    return stack[-1] if stack else None


class Span:
    """One timed region.  Use as a context manager (see :func:`span`).

    ``trace_id`` / ``span_id`` / ``parent_span_id`` are populated on
    entry when the span joins a trace — via an adopted wire
    ``context`` or by inheriting from a traced parent — and stay None
    for plain local spans.
    """

    __slots__ = (
        "name",
        "attributes",
        "start_ns",
        "end_ns",
        "start_unix_ns",
        "children",
        "error",
        "trace_id",
        "span_id",
        "parent_span_id",
        "_adopt",
    )

    def __init__(
        self,
        name: str,
        attributes: Optional[Dict] = None,
        context: Optional[TraceContext] = None,
    ) -> None:
        self.name = name
        self.attributes: Dict = dict(attributes) if attributes else {}
        self.start_ns = 0
        self.end_ns = 0
        self.start_unix_ns = 0
        self.children: List["Span"] = []
        self.error: Optional[str] = None
        self.trace_id: Optional[str] = None
        self.span_id: Optional[str] = None
        self.parent_span_id: Optional[str] = None
        self._adopt = context

    # -- timing --------------------------------------------------------
    @property
    def duration_ns(self) -> int:
        return max(0, self.end_ns - self.start_ns)

    @property
    def duration_s(self) -> float:
        return self.duration_ns / 1e9

    @property
    def self_ns(self) -> int:
        """Own time: duration minus the children's durations."""
        return max(0, self.duration_ns - sum(c.duration_ns for c in self.children))

    # -- structure -----------------------------------------------------
    def set_attribute(self, key: str, value) -> None:
        self.attributes[key] = value

    def walk(self, depth: int = 0) -> Iterator[Tuple["Span", int]]:
        """Yield ``(span, depth)`` for self and all descendants, pre-order."""
        yield self, depth
        for child in self.children:
            yield from child.walk(depth + 1)

    def find(self, name: str) -> Optional["Span"]:
        """First span named *name* in this subtree (pre-order), or None."""
        for node, _ in self.walk():
            if node.name == name:
                return node
        return None

    def find_all(self, name: str) -> List["Span"]:
        return [node for node, _ in self.walk() if node.name == name]

    def to_dict(self) -> Dict:
        out: Dict = {
            "name": self.name,
            "duration_ns": self.duration_ns,
            "duration_s": self.duration_s,
        }
        if self.trace_id is not None:
            out["trace_id"] = self.trace_id
            out["span_id"] = self.span_id
            if self.parent_span_id is not None:
                out["parent_span_id"] = self.parent_span_id
        if self.attributes:
            out["attributes"] = {k: _jsonable(v) for k, v in self.attributes.items()}
        if self.error is not None:
            out["error"] = self.error
        if self.children:
            out["children"] = [c.to_dict() for c in self.children]
        return out

    def __repr__(self) -> str:
        return f"Span({self.name!r}, {self.duration_s * 1e3:.3f}ms, children={len(self.children)})"

    # -- trace identity ------------------------------------------------
    def _assign_ids(self, parent: Optional["Span"], index: int) -> None:
        """Join a trace: adopted context wins, else inherit from a
        traced parent; ids are pure functions of the lineage (see
        :func:`repro.obs.context.span_id_for`), so reruns match."""
        if self._adopt is not None:
            self.trace_id = self._adopt.trace_id
            self.parent_span_id = self._adopt.span_id
        elif parent is not None and parent.trace_id is not None:
            self.trace_id = parent.trace_id
            self.parent_span_id = parent.span_id
        if self.trace_id is not None:
            self.span_id = span_id_for(
                self.trace_id, self.parent_span_id, self.name, index
            )

    # -- context manager ----------------------------------------------
    def __enter__(self) -> "Span":
        stack = _stack_var.get()
        parent = stack[-1] if stack else None
        index = 0
        if parent is not None:
            index = len(parent.children)
            parent.children.append(self)
        self._assign_ids(parent, index)
        _stack_var.set(stack + (self,))
        self.start_unix_ns = time.time_ns()
        self.start_ns = time.monotonic_ns()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.end_ns = time.monotonic_ns()
        if exc_type is not None:
            self.error = exc_type.__name__
        stack = _stack_var.get()
        # Exception safety: pop *this* span even if an inner span leaked.
        while stack and stack[-1] is not self:
            stack = stack[:-1]
        if stack:
            stack = stack[:-1]
        _stack_var.set(stack)
        depth = len(stack)
        for sink in _sinks:
            sink.on_span_end(self, depth)
            if depth == 0:
                sink.on_root(self)
        return False


def _jsonable(value):
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    return repr(value)


class _NoopSpan:
    """Shared do-nothing span returned while no sink is attached."""

    __slots__ = ()

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, *exc_info) -> bool:
        return False

    def set_attribute(self, key: str, value) -> None:
        pass


NOOP_SPAN = _NoopSpan()


def span(name: str, **attributes):
    """Open a span named *name* with the given attributes.

    Returns the shared :data:`NOOP_SPAN` when no sink is attached — the
    zero-overhead fast path the hot-path instrumentation relies on.
    """
    if not _sinks:
        return NOOP_SPAN
    return Span(name, attributes)


def tracing_active() -> bool:
    """True when at least one sink is attached (spans are real)."""
    return bool(_sinks)


def record_span(name: str, duration_ns: int, **attributes) -> None:
    """Record an already-measured region as a completed span.

    For work timed somewhere the sinks cannot see — worker *processes*
    most of all, whose own spans die with them.  The parent measures
    (or receives) a duration and replays it here: the span lands under
    whatever span is currently open, so ``labeling.build`` can show one
    child per worker.  A no-op while no sink is attached.
    """
    if not _sinks:
        return
    recorded = Span(name, attributes)
    now = time.monotonic_ns()
    recorded.start_ns = now - max(0, int(duration_ns))
    recorded.end_ns = now
    recorded.start_unix_ns = time.time_ns() - max(0, int(duration_ns))
    stack = _stack_var.get()
    parent = stack[-1] if stack else None
    index = 0
    if parent is not None:
        index = len(parent.children)
        parent.children.append(recorded)
    recorded._assign_ids(parent, index)
    depth = len(stack)
    for sink in _sinks:
        sink.on_span_end(recorded, depth)
        if depth == 0:
            sink.on_root(recorded)


# ----------------------------------------------------------------------
# Sinks
# ----------------------------------------------------------------------


class SpanSink:
    """Receiver of completed spans; subclass and override what you need."""

    def on_span_end(self, span: Span, depth: int) -> None:
        """Called for every completed span; *depth* is its nesting level."""

    def on_root(self, span: Span) -> None:
        """Called when a top-level span (a whole tree) completes."""


class LogSink(SpanSink):
    """One indented log line per completed span."""

    def __init__(self, stream: Optional[TextIO] = None) -> None:
        self.stream = stream if stream is not None else sys.stderr

    def on_span_end(self, span: Span, depth: int) -> None:
        attrs = " ".join(f"{k}={v}" for k, v in span.attributes.items())
        error = f" error={span.error}" if span.error else ""
        print(
            f"[trace] {'  ' * depth}{span.name} "
            f"{span.duration_s * 1e3:.2f}ms"
            f"{' ' + attrs if attrs else ''}{error}",
            file=self.stream,
        )


class CollectingSink(SpanSink):
    """Keep completed spans in memory (all of them, plus the roots)."""

    def __init__(self) -> None:
        self.spans: List[Span] = []
        self.roots: List[Span] = []

    def on_span_end(self, span: Span, depth: int) -> None:
        self.spans.append(span)

    def on_root(self, span: Span) -> None:
        self.roots.append(span)

    def find(self, name: str) -> Optional[Span]:
        for candidate in self.spans:
            if candidate.name == name:
                return candidate
        return None

    def find_all(self, name: str) -> List[Span]:
        return [s for s in self.spans if s.name == name]


class JsonFileSink(SpanSink):
    """Accumulate root span trees; persist them as ``repro-trace/1``.

    Crash-safe: every completed root rewrites the file immediately, so
    a SIGTERM (or any abrupt exit) between roots loses at most the span
    tree still open — never the completed tail.  Writes during
    interpreter shutdown, when the filesystem layer may already be torn
    down, are tolerated rather than raised.
    """

    def __init__(self, path) -> None:
        self.path = path
        self.roots: List[Span] = []

    def on_root(self, span: Span) -> None:
        self.roots.append(span)
        self.flush()

    def flush(self) -> None:
        payload = {
            "format": "repro-trace/1",
            "spans": [root.to_dict() for root in self.roots],
        }
        try:
            with open(self.path, "w") as handle:
                json.dump(payload, handle, indent=2)
                handle.write("\n")
        except (ValueError, OSError):
            # Closed stream / vanished directory during shutdown: the
            # previously flushed state is already on disk.
            pass


class JsonlSpanSink(SpanSink):
    """One ``repro-spans/1`` JSON line per completed span.

    The cross-process trace format: ``repro serve --trace-out`` and
    ``repro loadgen --trace-out`` each write one of these, and
    ``repro trace`` merges them back into per-request trees by trace /
    parent ids.  Each line is flushed as it is written (a drain during
    SIGTERM keeps every completed span) and a write after the stream
    closed — interpreter shutdown — is dropped, not raised.

    By default only spans that carry a trace id are emitted; pass
    ``all_spans=True`` to also keep local untraced spans.
    """

    FORMAT = "repro-spans/1"

    def __init__(self, path, *, service: str = "", all_spans: bool = False) -> None:
        self.path = path
        self.service = service
        self.all_spans = all_spans
        self._handle = open(path, "w")
        self._write({"format": self.FORMAT, "service": service})

    def on_span_end(self, span: Span, depth: int) -> None:
        if span.trace_id is None and not self.all_spans:
            return
        record = {
            "trace": span.trace_id,
            "span": span.span_id,
            "parent": span.parent_span_id,
            "name": span.name,
            "ts": span.start_unix_ns / 1e9,
            "dur_ns": span.duration_ns,
        }
        if self.service:
            record["svc"] = self.service
        if span.attributes:
            record["attrs"] = {
                k: _jsonable(v) for k, v in span.attributes.items()
            }
        if span.error is not None:
            record["error"] = span.error
        self._write(record)

    def _write(self, record: dict) -> None:
        try:
            self._handle.write(json.dumps(record, separators=(",", ":")) + "\n")
            self._handle.flush()
        except (ValueError, OSError):
            pass  # stream closed during interpreter shutdown

    def flush(self) -> None:
        try:
            self._handle.flush()
        except (ValueError, OSError):
            pass

    def close(self) -> None:
        try:
            self._handle.close()
        except (ValueError, OSError):
            pass


# ----------------------------------------------------------------------
# Sink management
# ----------------------------------------------------------------------


def add_sink(sink: SpanSink) -> SpanSink:
    _sinks.append(sink)
    return sink


def remove_sink(sink: SpanSink) -> None:
    try:
        _sinks.remove(sink)
    except ValueError:
        pass


class use_sink:
    """Context manager attaching *sink* for the duration of a block."""

    def __init__(self, sink: SpanSink) -> None:
        self.sink = sink

    def __enter__(self) -> SpanSink:
        add_sink(self.sink)
        return self.sink

    def __exit__(self, *exc_info) -> bool:
        remove_sink(self.sink)
        if isinstance(self.sink, JsonFileSink):
            self.sink.flush()
        elif isinstance(self.sink, JsonlSpanSink):
            self.sink.close()
        return False
