"""repro — Object Location Using Path Separators (PODC 2006).

A faithful, self-contained implementation of Abraham & Gavoille's
k-path separators and the object-location data structures built on
them:

* k-path separators (Definition 1) with validated (P1)-(P3) properties
  and engines for trees, bounded-treewidth, planar, and general graphs;
* the recursive decomposition tree (Section 4);
* (1+eps)-approximate distance labels and oracle (Theorem 2);
* a labeled compact routing scheme with polylog tables;
* small-worldization with the Claim-1 landmark distribution and greedy
  routing (Theorem 3);
* (k, alpha)-doubling separators for 3D meshes (Theorem 8);
* baselines: exact, Thorup-Zwick, landmarks, Kleinberg/uniform
  small worlds.

Quick start::

    from repro import PathSeparatorOracle
    from repro.generators import random_delaunay_graph

    graph, _ = random_delaunay_graph(500, seed=1)
    oracle = PathSeparatorOracle.build(graph, epsilon=0.1)
    d = oracle.query(0, 499)   # within a factor 1.1 of the true distance
"""

from repro.core import (
    CompactRoutingScheme,
    DecompositionTree,
    DistanceLabeling,
    DoublingOracle,
    GreedyRouter,
    PathSeparator,
    PathSeparatorAugmentation,
    PathSeparatorOracle,
    SeparatorPhase,
    build_decomposition,
    build_labeling,
    greedy_route,
)
from repro.graphs import Graph

__version__ = "1.0.0"

__all__ = [
    "CompactRoutingScheme",
    "DecompositionTree",
    "DistanceLabeling",
    "DoublingOracle",
    "Graph",
    "GreedyRouter",
    "PathSeparator",
    "PathSeparatorAugmentation",
    "PathSeparatorOracle",
    "SeparatorPhase",
    "__version__",
    "build_decomposition",
    "build_labeling",
    "greedy_route",
]
