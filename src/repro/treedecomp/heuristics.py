"""Elimination-order constructions of tree decompositions.

Every vertex elimination order yields a tree decomposition whose width
is the largest "higher neighborhood" encountered.  ``min_degree`` and
``min_fill`` are the standard greedy orders; ``mcs`` (maximum
cardinality search) is exact on chordal graphs (e.g. the k-trees our
generator produces), recovering width exactly k.
"""

from __future__ import annotations

import heapq
from typing import Dict, FrozenSet, Hashable, List, Sequence, Set, Tuple

from repro.graphs.graph import Graph
from repro.treedecomp.decomposition import TreeDecomposition
from repro.util.errors import GraphError, InvalidDecompositionError

Vertex = Hashable


def min_degree_order(graph: Graph) -> List[Vertex]:
    """Greedy elimination order: repeatedly eliminate a minimum-degree vertex.

    Elimination connects the vertex's remaining neighbors into a clique,
    as required for the induced decomposition to be valid.
    """
    adj: Dict[Vertex, Set[Vertex]] = {v: set(graph.neighbors(v)) for v in graph.vertices()}
    heap = [(len(nbrs), _stable_key(v), v) for v, nbrs in adj.items()]
    heapq.heapify(heap)
    order: List[Vertex] = []
    eliminated: Set[Vertex] = set()
    while heap:
        deg, _, v = heapq.heappop(heap)
        if v in eliminated or deg != len(adj[v]):
            if v not in eliminated:
                heapq.heappush(heap, (len(adj[v]), _stable_key(v), v))
            continue
        order.append(v)
        eliminated.add(v)
        nbrs = adj.pop(v)
        for u in nbrs:
            adj[u].discard(v)
        nbr_list = list(nbrs)
        for i, a in enumerate(nbr_list):
            for b in nbr_list[i + 1 :]:
                if b not in adj[a]:
                    adj[a].add(b)
                    adj[b].add(a)
        for u in nbrs:
            heapq.heappush(heap, (len(adj[u]), _stable_key(u), u))
    return order


def min_fill_order(graph: Graph) -> List[Vertex]:
    """Greedy elimination order minimizing fill-in edges at each step.

    Slower than min-degree (it scans all remaining vertices each step)
    but usually produces lower width; intended for small graphs.
    """
    adj: Dict[Vertex, Set[Vertex]] = {v: set(graph.neighbors(v)) for v in graph.vertices()}
    order: List[Vertex] = []
    remaining = set(adj)
    while remaining:
        best_v = None
        best_fill = None
        for v in remaining:
            nbrs = adj[v]
            fill = 0
            nbr_list = list(nbrs)
            for i, a in enumerate(nbr_list):
                for b in nbr_list[i + 1 :]:
                    if b not in adj[a]:
                        fill += 1
            key = (fill, _stable_key(v))
            if best_fill is None or key < best_fill:
                best_fill = key
                best_v = v
        v = best_v
        order.append(v)
        remaining.discard(v)
        nbrs = adj.pop(v)
        for u in nbrs:
            adj[u].discard(v)
        nbr_list = list(nbrs)
        for i, a in enumerate(nbr_list):
            for b in nbr_list[i + 1 :]:
                if b not in adj[a]:
                    adj[a].add(b)
                    adj[b].add(a)
    return order


def mcs_order(graph: Graph) -> List[Vertex]:
    """Maximum cardinality search, reversed into an elimination order.

    On chordal graphs the result is a perfect elimination order, so the
    induced decomposition has exactly the graph's treewidth.
    """
    weights: Dict[Vertex, int] = {v: 0 for v in graph.vertices()}
    visited: Set[Vertex] = set()
    visit_order: List[Vertex] = []
    heap = [(0, _stable_key(v), v) for v in graph.vertices()]
    heapq.heapify(heap)
    while heap:
        neg_w, _, v = heapq.heappop(heap)
        if v in visited or -neg_w != weights[v]:
            continue
        visited.add(v)
        visit_order.append(v)
        for u in graph.neighbors(v):
            if u not in visited:
                weights[u] += 1
                heapq.heappush(heap, (-weights[u], _stable_key(u), u))
    return list(reversed(visit_order))


def decomposition_from_elimination(
    graph: Graph, order: Sequence[Vertex]
) -> TreeDecomposition:
    """Build the tree decomposition induced by an elimination *order*.

    Bag of v = {v} + its neighbors later in the order (after fill-in);
    the bag of v attaches to the bag of the earliest-eliminated vertex
    among those later neighbors.  This is the textbook construction.
    """
    position = {v: i for i, v in enumerate(order)}
    if len(position) != graph.num_vertices:
        raise GraphError("elimination order must enumerate every vertex exactly once")
    adj: Dict[Vertex, Set[Vertex]] = {v: set(graph.neighbors(v)) for v in graph.vertices()}
    bags: List[FrozenSet[Vertex]] = []
    bag_index: Dict[Vertex, int] = {}
    higher: Dict[Vertex, Set[Vertex]] = {}
    for v in order:
        nbrs = {u for u in adj[v] if position[u] > position[v]}
        higher[v] = nbrs
        # Fill in: later neighbors become a clique.
        nbr_list = list(nbrs)
        for i, a in enumerate(nbr_list):
            for b in nbr_list[i + 1 :]:
                adj[a].add(b)
                adj[b].add(a)
        bag_index[v] = len(bags)
        bags.append(frozenset({v} | nbrs))
    edges: List[Tuple[int, int]] = []
    for v in order:
        nbrs = higher[v]
        if nbrs:
            parent_vertex = min(nbrs, key=position.__getitem__)
            edges.append((bag_index[v], bag_index[parent_vertex]))
    td = TreeDecomposition(bags, edges)
    return td


def min_degree_decomposition(graph: Graph) -> TreeDecomposition:
    """The min-degree heuristic decomposition (the package default)."""
    return decomposition_from_elimination(graph, min_degree_order(graph))


def decomposition_from_bags(
    graph: Graph, bags: Sequence[FrozenSet[Vertex]]
) -> TreeDecomposition:
    """Assemble a decomposition from a *bag set* known to be valid.

    Connects the bags by a maximum-weight spanning tree on pairwise
    intersection sizes (Prim); by the running-intersection property
    this yields a valid tree decomposition whenever one exists for the
    given bags (e.g. the (k+1)-cliques returned by the k-tree
    generator).  Quadratic in the number of bags.
    """
    bag_list = [frozenset(b) for b in bags]
    if not bag_list:
        raise InvalidDecompositionError("decomposition_from_bags needs >= 1 bag")
    n = len(bag_list)
    in_tree = [False] * n
    best_weight = [-1] * n
    best_parent = [-1] * n
    in_tree[0] = True
    for j in range(1, n):
        best_weight[j] = len(bag_list[0] & bag_list[j])
        best_parent[j] = 0
    edges: List[Tuple[int, int]] = []
    for _ in range(n - 1):
        pick = -1
        for j in range(n):
            if not in_tree[j] and (pick == -1 or best_weight[j] > best_weight[pick]):
                pick = j
        in_tree[pick] = True
        edges.append((pick, best_parent[pick]))
        for j in range(n):
            if not in_tree[j]:
                w = len(bag_list[pick] & bag_list[j])
                if w > best_weight[j]:
                    best_weight[j] = w
                    best_parent[j] = pick
    td = TreeDecomposition(bag_list, edges)
    td.validate(graph)
    return td


def _stable_key(v) -> str:
    """Deterministic tiebreak usable across mixed vertex types."""
    return f"{type(v).__name__}:{v!r}"
