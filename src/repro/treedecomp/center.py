"""Lemma 1: every tree decomposition has a *center bag*.

A center bag C satisfies: every connected component of ``G \\ C`` has
at most ``n/2`` vertices.  This is the engine behind Theorem 7 (strong
(r+1)-path separators for treewidth-r graphs): each vertex of the
center bag is a trivial minimum-cost path, so C itself is a strong
|C|-path separator.

The implementation is the classic linear-time centroid walk: assign
each graph vertex to its topmost bag, compute subtree weights, and
descend from the root into any child subtree holding more than half
the vertices; the bag where the walk stops is a center.
"""

from __future__ import annotations

from typing import Dict, Hashable, List, Optional

from repro.graphs.graph import Graph
from repro.treedecomp.decomposition import TreeDecomposition
from repro.util.errors import InvalidDecompositionError

Vertex = Hashable


def center_bag(graph: Graph, td: TreeDecomposition, root: int = 0) -> int:
    """Index of a center bag of *td* for *graph* (Lemma 1).

    Requires *td* to be a valid decomposition of *graph*; with an
    invalid one the balance guarantee is meaningless and this function
    may return a non-center bag (``validate`` first when unsure).
    """
    n = graph.num_vertices
    if td.num_bags == 0:
        raise InvalidDecompositionError("cannot find a center of an empty decomposition")
    parent, order = td.rooted(root)

    # top(v): the bag containing v that is closest to the root.  BFS
    # order guarantees we see each vertex's topmost bag first.
    assigned_weight = [0] * td.num_bags
    seen_vertices: Dict[Vertex, bool] = {}
    for b in order:
        for v in td.bags[b]:
            if v not in seen_vertices:
                seen_vertices[v] = True
                assigned_weight[b] += 1
    if len(seen_vertices) != n:
        raise InvalidDecompositionError(
            "decomposition does not cover every graph vertex"
        )

    subtree = list(assigned_weight)
    for b in reversed(order):
        p = parent[b]
        if p is not None:
            subtree[p] += subtree[b]

    children: List[List[int]] = [[] for _ in range(td.num_bags)]
    for b, p in enumerate(parent):
        if p is not None:
            children[p].append(b)

    current = root
    while True:
        heavy: Optional[int] = None
        for c in children[current]:
            if subtree[c] > n / 2:
                heavy = c
                break
        if heavy is None:
            return current
        current = heavy
