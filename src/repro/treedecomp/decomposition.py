"""The tree-decomposition data type and its validity check."""

from __future__ import annotations

from collections import deque
from typing import Dict, FrozenSet, Hashable, List, Optional, Sequence, Set, Tuple

from repro.graphs.graph import Graph
from repro.util.errors import InvalidDecompositionError

Vertex = Hashable
Bag = FrozenSet[Vertex]


class TreeDecomposition:
    """A tree decomposition: bags plus tree edges between bag indices.

    Bags are frozensets of graph vertices; the tree is stored as an
    adjacency list over bag indices ``0..len(bags)-1``.
    """

    def __init__(self, bags: Sequence[Bag], tree_edges: Sequence[Tuple[int, int]]) -> None:
        self.bags: List[Bag] = [frozenset(b) for b in bags]
        self.tree_adj: List[List[int]] = [[] for _ in self.bags]
        for a, b in tree_edges:
            if not (0 <= a < len(self.bags) and 0 <= b < len(self.bags)):
                raise InvalidDecompositionError(f"tree edge ({a}, {b}) out of range")
            self.tree_adj[a].append(b)
            self.tree_adj[b].append(a)

    # ------------------------------------------------------------------
    @property
    def num_bags(self) -> int:
        return len(self.bags)

    @property
    def width(self) -> int:
        """Width = max bag size - 1 (the classic definition)."""
        if not self.bags:
            return -1
        return max(len(b) for b in self.bags) - 1

    def bags_containing(self, v: Vertex) -> List[int]:
        return [i for i, bag in enumerate(self.bags) if v in bag]

    # ------------------------------------------------------------------
    def validate(self, graph: Graph) -> None:
        """Check the three tree-decomposition conditions against *graph*.

        Raises :class:`InvalidDecompositionError` on the first failure:
        (1) every vertex is covered, (2) every edge is covered, and
        (3) the bags containing each vertex induce a connected subtree.
        Also checks that the bag graph is in fact a tree.
        """
        if self.num_bags == 0:
            if graph.num_vertices:
                raise InvalidDecompositionError("empty decomposition, non-empty graph")
            return
        self._validate_tree()
        covered: Set[Vertex] = set()
        for bag in self.bags:
            covered.update(bag)
        missing = [v for v in graph.vertices() if v not in covered]
        if missing:
            raise InvalidDecompositionError(
                f"{len(missing)} vertices not covered by any bag, e.g. {missing[0]!r}"
            )
        for u, v, _ in graph.edges():
            if not any(u in bag and v in bag for bag in self.bags):
                raise InvalidDecompositionError(
                    f"edge ({u!r}, {v!r}) not covered by any bag"
                )
        self._validate_connectivity()

    def _validate_tree(self) -> None:
        n = self.num_bags
        edge_count = sum(len(adj) for adj in self.tree_adj) // 2
        if edge_count != n - 1:
            raise InvalidDecompositionError(
                f"bag graph has {edge_count} edges, a tree on {n} bags needs {n - 1}"
            )
        seen = {0}
        queue = deque([0])
        while queue:
            a = queue.popleft()
            for b in self.tree_adj[a]:
                if b not in seen:
                    seen.add(b)
                    queue.append(b)
        if len(seen) != n:
            raise InvalidDecompositionError("bag graph is disconnected")

    def _validate_connectivity(self) -> None:
        occurrences: Dict[Vertex, List[int]] = {}
        for i, bag in enumerate(self.bags):
            for v in bag:
                occurrences.setdefault(v, []).append(i)
        for v, indices in occurrences.items():
            index_set = set(indices)
            start = indices[0]
            seen = {start}
            queue = deque([start])
            while queue:
                a = queue.popleft()
                for b in self.tree_adj[a]:
                    if b in index_set and b not in seen:
                        seen.add(b)
                        queue.append(b)
            if len(seen) != len(index_set):
                raise InvalidDecompositionError(
                    f"bags containing {v!r} do not induce a connected subtree"
                )

    # ------------------------------------------------------------------
    def rooted(self, root: int = 0) -> Tuple[List[Optional[int]], List[int]]:
        """BFS-root the bag tree: returns (parent array, BFS order)."""
        parent: List[Optional[int]] = [None] * self.num_bags
        order: List[int] = []
        seen = {root}
        queue = deque([root])
        while queue:
            a = queue.popleft()
            order.append(a)
            for b in self.tree_adj[a]:
                if b not in seen:
                    seen.add(b)
                    parent[b] = a
                    queue.append(b)
        return parent, order

    def restrict(self, vertices: Set[Vertex]) -> "TreeDecomposition":
        """The decomposition ``T ∩ X`` of the paper: intersect every bag
        with *vertices*, keep the (possibly empty) bags, and keep the
        same tree so connectivity of traces is preserved.

        If the induced subgraph is connected this is a valid tree
        decomposition of it (Section 2.1).
        """
        new_bags = [frozenset(bag & vertices) for bag in self.bags]
        edges = []
        for a in range(self.num_bags):
            for b in self.tree_adj[a]:
                if a < b:
                    edges.append((a, b))
        return TreeDecomposition(new_bags, edges)

    def __repr__(self) -> str:
        return f"TreeDecomposition(bags={self.num_bags}, width={self.width})"
