"""Clique-weights (Lemma 5): transferring balance from a torso to the graph.

A clique-weight is a set of cliques K with weights w(K); the weight of
a subgraph A is the sum over cliques *touching* A.  Lemma 5 builds a
clique-weight on the torso of a center bag C such that any half-size
separator of the torso (w.r.t. this weight) is automatically a
half-size separator of the whole graph: every component of ``G \\ C``
contributes its size as the weight of the clique it attaches to.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import AbstractSet, FrozenSet, Hashable, List, Set

from repro.graphs.components import connected_components
from repro.graphs.graph import Graph

Vertex = Hashable


@dataclass
class CliqueWeight:
    """A weighted family of cliques over some vertex set.

    ``f(A) = sum of w(K) over cliques K intersecting A`` — the paper's
    weight function.  Note f is *not* additive over disjoint subsets
    (a clique may touch both); it is sub-additive, which is all the
    separator argument needs.
    """

    cliques: List[FrozenSet[Vertex]] = field(default_factory=list)
    weights: List[float] = field(default_factory=list)

    def add(self, clique: AbstractSet[Vertex], weight: float) -> None:
        if weight < 0:
            raise ValueError("clique weights must be non-negative")
        self.cliques.append(frozenset(clique))
        self.weights.append(float(weight))

    def total(self) -> float:
        """f of the full vertex set: the sum of all clique weights."""
        return sum(self.weights)

    def weight_of(self, subset: AbstractSet[Vertex]) -> float:
        """f(subset): total weight of cliques intersecting *subset*."""
        return sum(
            w for clique, w in zip(self.cliques, self.weights) if clique & subset
        )

    def is_half_size_separator(self, graph: Graph, separator: AbstractSet[Vertex]) -> bool:
        """Whether removing *separator* leaves components of weight <= total/2."""
        half = self.total() / 2
        remaining = [v for v in graph.vertices() if v not in separator]
        for comp in connected_components(graph, within=remaining):
            if self.weight_of(comp) > half:
                return False
        return True


def center_clique_weight(graph: Graph, center: AbstractSet[Vertex]) -> CliqueWeight:
    """Lemma 5's clique-weight for a center set *center* of *graph*.

    * each center vertex u contributes a singleton clique {u} of weight 1;
    * each connected component D of ``G \\ center`` contributes the
      clique ``N(D) ∩ center`` (its attachment set — a clique in the
      torso) with weight |D|.

    The total weight is exactly ``graph.num_vertices``, and a half-size
    separator S ⊆ center w.r.t. this weight leaves components of
    ``G \\ S`` with at most n/2 vertices.
    """
    cw = CliqueWeight()
    center_set: Set[Vertex] = set(center)
    for u in center_set:
        cw.add({u}, 1.0)
    outside = [v for v in graph.vertices() if v not in center_set]
    for comp in connected_components(graph, within=outside):
        attachment: Set[Vertex] = set()
        for v in comp:
            for u in graph.neighbors(v):
                if u in center_set:
                    attachment.add(u)
        cw.add(attachment, float(len(comp)))
    return cw
