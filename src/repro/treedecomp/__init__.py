"""Tree decompositions: the substrate behind bounded-treewidth separators.

The paper uses tree decompositions twice: Lemma 1 (every tree
decomposition has a *center bag* whose removal halves the graph — the
engine behind Theorem 7's strong (r+1)-path separators) and Lemma 5
(clique-weights transferring balance from a torso to the whole graph).
Both are implemented here, together with the standard elimination-order
heuristics for finding low-width decompositions of arbitrary graphs.
"""

from repro.treedecomp.center import center_bag
from repro.treedecomp.cliqueweights import CliqueWeight, center_clique_weight
from repro.treedecomp.decomposition import TreeDecomposition
from repro.treedecomp.exact import exact_treewidth
from repro.treedecomp.heuristics import (
    decomposition_from_bags,
    decomposition_from_elimination,
    mcs_order,
    min_degree_decomposition,
    min_degree_order,
    min_fill_order,
)

__all__ = [
    "CliqueWeight",
    "TreeDecomposition",
    "center_bag",
    "center_clique_weight",
    "decomposition_from_bags",
    "exact_treewidth",
    "decomposition_from_elimination",
    "mcs_order",
    "min_degree_decomposition",
    "min_degree_order",
    "min_fill_order",
]
