"""Exact treewidth by dynamic programming over vertex subsets.

The Bodlaender-Fomin-Koster-Kratsch-Thilikos DP: for a set S of
already-eliminated vertices, the cost of eliminating v next is
``Q(S, v)`` — the number of vertices outside S ∪ {v} reachable from v
through S — and

    tw(G) = f(V),   f(S) = min over v in S of max(f(S\\{v}), Q(S\\{v}, v)).

Exponential (O(2^n poly)) and guarded to small n; used by the tests to
certify the elimination heuristics and by anyone needing ground truth
on toy instances.
"""

from __future__ import annotations

from typing import Dict, Hashable, List

from repro.graphs.components import connected_components
from repro.graphs.graph import Graph
from repro.util.errors import GraphError

Vertex = Hashable

MAX_EXACT_VERTICES = 18


def exact_treewidth(graph: Graph) -> int:
    """The exact treewidth of *graph* (components solved independently).

    Raises :class:`GraphError` when any component exceeds
    ``MAX_EXACT_VERTICES`` vertices.
    """
    if graph.num_vertices == 0:
        return -1
    best = 0
    for comp in connected_components(graph):
        best = max(best, _component_treewidth(graph, comp))
    return best


def _component_treewidth(graph: Graph, comp) -> int:
    vertices: List[Vertex] = sorted(comp, key=repr)
    n = len(vertices)
    if n > MAX_EXACT_VERTICES:
        raise GraphError(
            f"exact_treewidth limited to components of {MAX_EXACT_VERTICES} "
            f"vertices; got {n}"
        )
    if n == 1:
        return 0
    index = {v: i for i, v in enumerate(vertices)}
    adjacency: List[int] = [0] * n
    for i, v in enumerate(vertices):
        for u in graph.neighbors(v):
            j = index.get(u)
            if j is not None:
                adjacency[i] |= 1 << j

    full = (1 << n) - 1

    def elimination_cost(eliminated: int, v: int) -> int:
        """|vertices outside eliminated+{v} reachable from v through
        the eliminated set| — v's degree at elimination time."""
        seen = 1 << v
        frontier = adjacency[v]
        reached = 0
        queue = frontier & ~seen
        # BFS where only eliminated vertices may be traversed.
        pending = queue
        while pending:
            low = pending & -pending
            pending &= pending - 1
            if seen & low:
                continue
            seen |= low
            u = low.bit_length() - 1
            if eliminated & low:
                pending |= adjacency[u] & ~seen
            else:
                reached |= low
        return bin(reached).count("1")

    # Iterative DP over subsets by popcount (avoids deep recursion).
    f: Dict[int, int] = {0: 0}
    subsets_by_size: List[List[int]] = [[] for _ in range(n + 1)]
    for s in range(1, full + 1):
        subsets_by_size[bin(s).count("1")].append(s)
    for size in range(1, n + 1):
        for s in subsets_by_size[size]:
            best = n  # upper bound
            pending = s
            while pending:
                low = pending & -pending
                pending &= pending - 1
                v = low.bit_length() - 1
                without = s & ~low
                cost = max(f[without], elimination_cost(without, v))
                if cost < best:
                    best = cost
            f[s] = best
    return f[full]
