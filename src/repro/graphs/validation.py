"""Precondition checks shared by the algorithm layers."""

from __future__ import annotations

from repro.graphs.components import is_connected
from repro.graphs.graph import Graph
from repro.util.errors import GraphError, NotConnectedError


def require_positive_weights(graph: Graph) -> None:
    """Raise :class:`GraphError` if any edge weight is non-positive.

    ``Graph.add_edge`` already enforces this, so the check only fires
    on graphs built by bypassing the public API.
    """
    for u, v, w in graph.edges():
        if not w > 0:
            raise GraphError(f"edge ({u!r}, {v!r}) has non-positive weight {w!r}")


def require_connected(graph: Graph) -> None:
    """Raise :class:`NotConnectedError` unless *graph* is connected."""
    if graph.num_vertices and not is_connected(graph):
        raise NotConnectedError(
            f"graph with {graph.num_vertices} vertices is not connected"
        )


def require_nonempty(graph: Graph) -> None:
    """Raise :class:`GraphError` for graphs with no vertices."""
    if graph.num_vertices == 0:
        raise GraphError("operation requires a non-empty graph")


def validate_graph(graph: Graph, connected: bool = False) -> None:
    """Run the standard battery of structural checks."""
    require_positive_weights(graph)
    if connected:
        require_connected(graph)
