"""Shortest-path algorithms: Dijkstra variants and path utilities.

These are the hot loops of the whole package: separator engines run a
Dijkstra per recursion level, label construction runs one per vertex
per level, and the small-world simulator queries distances constantly.
The implementations use ``heapq`` with lazy deletion (the standard
fastest pattern in pure Python) and accept an optional ``allowed``
vertex set so callers can search inside an induced subgraph without
materializing it.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import (
    AbstractSet,
    Dict,
    Hashable,
    Iterable,
    List,
    Optional,
    Tuple,
)

from repro.graphs.graph import Graph
from repro.util.errors import GraphError

Vertex = Hashable
INF = float("inf")


def dijkstra(
    graph: Graph,
    source: Vertex,
    allowed: Optional[AbstractSet[Vertex]] = None,
    cutoff: float = INF,
) -> Tuple[Dict[Vertex, float], Dict[Vertex, Optional[Vertex]]]:
    """Single-source shortest paths from *source*.

    Parameters
    ----------
    allowed:
        If given, the search is restricted to this vertex set (an
        induced-subgraph search); *source* must belong to it.
    cutoff:
        Vertices farther than this are not settled.

    Returns
    -------
    (dist, parent):
        ``dist`` maps each reached vertex to its distance; ``parent``
        maps it to its predecessor on a shortest path (``None`` for the
        source).
    """
    if source not in graph:
        raise GraphError(f"source {source!r} not in graph")
    if allowed is not None and source not in allowed:
        raise GraphError(f"source {source!r} not in the allowed set")

    dist: Dict[Vertex, float] = {source: 0.0}
    parent: Dict[Vertex, Optional[Vertex]] = {source: None}
    settled = set()
    heap: List[Tuple[float, int, Vertex]] = [(0.0, 0, source)]
    counter = 1  # tie-breaker so heapq never compares vertices
    # Hot loop: bind everything local; the adjacency dict is accessed
    # directly (same-package privilege) to skip per-vertex call overhead.
    adj = graph._adj
    push, pop = heapq.heappush, heapq.heappop
    settled_add = settled.add
    dist_get = dist.get
    while heap:
        d, _, u = pop(heap)
        if u in settled:
            continue
        settled_add(u)
        for v, w in adj[u].items():
            if v in settled:
                continue
            if allowed is not None and v not in allowed:
                continue
            nd = d + w
            if nd > cutoff or nd >= dist_get(v, INF):
                continue
            dist[v] = nd
            parent[v] = u
            push(heap, (nd, counter, v))
            counter += 1
    return dist, parent


def multi_source_dijkstra(
    graph: Graph,
    sources: Iterable[Vertex],
    allowed: Optional[AbstractSet[Vertex]] = None,
    cutoff: float = INF,
) -> Tuple[Dict[Vertex, float], Dict[Vertex, Vertex]]:
    """Shortest distance from the nearest of *sources* to every vertex.

    Returns ``(dist, origin)`` where ``origin[v]`` is the source vertex
    that realizes ``dist[v]``.
    """
    dist: Dict[Vertex, float] = {}
    origin: Dict[Vertex, Vertex] = {}
    heap: List[Tuple[float, int, Vertex, Vertex]] = []
    counter = 0
    for s in sources:
        if s not in graph:
            raise GraphError(f"source {s!r} not in graph")
        if allowed is not None and s not in allowed:
            continue
        dist[s] = 0.0
        origin[s] = s
        heap.append((0.0, counter, s, s))
        counter += 1
    heapq.heapify(heap)
    settled = set()
    while heap:
        d, _, u, root = heapq.heappop(heap)
        if u in settled:
            continue
        settled.add(u)
        origin[u] = root
        for v, w in graph.neighbor_items(u):
            if v in settled:
                continue
            if allowed is not None and v not in allowed:
                continue
            nd = d + w
            if nd > cutoff:
                continue
            if nd < dist.get(v, INF):
                dist[v] = nd
                origin[v] = root
                heapq.heappush(heap, (nd, counter, v, root))
                counter += 1
    return dist, origin


def multi_source_forest(
    graph: Graph,
    sources: Iterable[Vertex],
    allowed: Optional[AbstractSet[Vertex]] = None,
) -> Tuple[Dict[Vertex, float], Dict[Vertex, Vertex], Dict[Vertex, Optional[Vertex]]]:
    """Multi-source Dijkstra that also returns parent pointers.

    Returns ``(dist, origin, parent)``: the shortest-path forest rooted
    at *sources* — each reached vertex's distance to the nearest
    source, which source that is, and its predecessor (``None`` for
    sources themselves).  This is the anchor forest the compact routing
    scheme hangs off every separator path.
    """
    dist: Dict[Vertex, float] = {}
    origin: Dict[Vertex, Vertex] = {}
    parent: Dict[Vertex, Optional[Vertex]] = {}
    heap: List[Tuple[float, int, Vertex, Vertex, Optional[Vertex]]] = []
    counter = 0
    for s in sources:
        if s not in graph:
            raise GraphError(f"source {s!r} not in graph")
        if allowed is not None and s not in allowed:
            continue
        dist[s] = 0.0
        origin[s] = s
        parent[s] = None
        heap.append((0.0, counter, s, s, None))
        counter += 1
    heapq.heapify(heap)
    settled = set()
    while heap:
        d, _, u, root, par = heapq.heappop(heap)
        if u in settled:
            continue
        settled.add(u)
        origin[u] = root
        parent[u] = par
        for v, w in graph.neighbor_items(u):
            if v in settled:
                continue
            if allowed is not None and v not in allowed:
                continue
            nd = d + w
            if nd < dist.get(v, INF):
                dist[v] = nd
                heapq.heappush(heap, (nd, counter, v, root, u))
                counter += 1
    return dist, origin, parent


def batched_dijkstra(
    graph: Graph,
    sources: Iterable[Vertex],
    allowed: Optional[AbstractSet[Vertex]] = None,
    cutoff: float = INF,
) -> Dict[Vertex, Dict[Vertex, float]]:
    """Independent single-source searches from every source, one heap pass.

    Unlike :func:`multi_source_dijkstra` (distance to the *nearest*
    source), this computes the full per-source distance map
    ``d(s, .)`` for **each** source, interleaving all the searches
    through one shared heap.  It is the batched forest primitive behind
    per-level label construction: one call per (node, phase) replaces
    one Dijkstra per (vertex, path), because in an undirected graph
    ``d_J(v, x) = d_J(x, v)`` and separator paths are far smaller than
    the residual they separate.

    Parameters
    ----------
    sources:
        Search roots; duplicates are collapsed.  Every source must be
        in the graph and (when given) in *allowed*, like
        :func:`dijkstra`.
    allowed, cutoff:
        Same semantics as :func:`dijkstra`, applied to every search.

    Returns
    -------
    ``{source: dist_map}`` with one entry per distinct source; each
    ``dist_map`` is exactly what ``dijkstra(graph, source, ...)``
    would return as its first element.
    """
    src_list: List[Vertex] = []
    seen = set()
    for s in sources:
        if s not in graph:
            raise GraphError(f"source {s!r} not in graph")
        if allowed is not None and s not in allowed:
            raise GraphError(f"source {s!r} not in the allowed set")
        if s not in seen:
            seen.add(s)
            src_list.append(s)
    dists: List[Dict[Vertex, float]] = [{s: 0.0} for s in src_list]
    settled: List[set] = [set() for _ in src_list]
    # Heap entries carry the index of the search they belong to; ties
    # break on the insertion counter so vertices are never compared.
    heap: List[Tuple[float, int, int, Vertex]] = [
        (0.0, i, i, s) for i, s in enumerate(src_list)
    ]
    counter = len(src_list)
    adj = graph._adj
    push, pop = heapq.heappush, heapq.heappop
    while heap:
        d, _, si, u = pop(heap)
        done = settled[si]
        if u in done:
            continue
        done.add(u)
        dist = dists[si]
        dist_get = dist.get
        for v, w in adj[u].items():
            if v in done:
                continue
            if allowed is not None and v not in allowed:
                continue
            nd = d + w
            if nd > cutoff or nd >= dist_get(v, INF):
                continue
            dist[v] = nd
            push(heap, (nd, counter, si, v))
            counter += 1
    return {s: dists[i] for i, s in enumerate(src_list)}


def bidirectional_dijkstra(
    graph: Graph,
    source: Vertex,
    target: Vertex,
    allowed: Optional[AbstractSet[Vertex]] = None,
) -> Tuple[float, List[Vertex]]:
    """Shortest ``source -> target`` distance and one realizing path.

    Runs two simultaneous Dijkstra searches meeting in the middle;
    roughly twice as fast as a full single-source run for point
    queries.  Returns ``(inf, [])`` when *target* is unreachable.
    """
    if source not in graph or target not in graph:
        raise GraphError("source and target must both be in the graph")
    if source == target:
        return 0.0, [source]

    dists = ({source: 0.0}, {target: 0.0})
    parents: Tuple[Dict, Dict] = ({source: None}, {target: None})
    settled: Tuple[set, set] = (set(), set())
    heaps: Tuple[list, list] = ([(0.0, 0, source)], [(0.0, 0, target)])
    counter = 1
    best = INF
    meeting: Optional[Vertex] = None

    while heaps[0] and heaps[1]:
        side = 0 if heaps[0][0][0] <= heaps[1][0][0] else 1
        d, _, u = heapq.heappop(heaps[side])
        if u in settled[side]:
            continue
        settled[side].add(u)
        if u in settled[1 - side]:
            break
        for v, w in graph.neighbor_items(u):
            if allowed is not None and v not in allowed and v != target and v != source:
                continue
            nd = d + w
            if nd < dists[side].get(v, INF):
                dists[side][v] = nd
                parents[side][v] = u
                heapq.heappush(heaps[side], (nd, counter, v))
                counter += 1
            if v in dists[1 - side]:
                total = nd + dists[1 - side][v]
                if total < best:
                    best = total
                    meeting = v
    if meeting is None:
        return INF, []

    forward: List[Vertex] = []
    node: Optional[Vertex] = meeting
    while node is not None:
        forward.append(node)
        node = parents[0].get(node)
    forward.reverse()
    node = parents[1].get(meeting)
    while node is not None:
        forward.append(node)
        node = parents[1].get(node)
    return best, forward


def shortest_path(
    graph: Graph,
    source: Vertex,
    target: Vertex,
    allowed: Optional[AbstractSet[Vertex]] = None,
) -> List[Vertex]:
    """One shortest path from *source* to *target* (empty if unreachable)."""
    dist, parent = dijkstra(graph, source, allowed=allowed)
    if target not in dist:
        return []
    path: List[Vertex] = []
    node: Optional[Vertex] = target
    while node is not None:
        path.append(node)
        node = parent[node]
    path.reverse()
    return path


def path_cost(graph: Graph, path: List[Vertex]) -> float:
    """Total weight of consecutive edges along *path* (0.0 for <=1 vertex)."""
    return sum(graph.weight(u, v) for u, v in zip(path, path[1:]))


def reconstruct_path(parent: Dict[Vertex, Optional[Vertex]], target: Vertex) -> List[Vertex]:
    """Rebuild a root-to-*target* path from a Dijkstra parent map."""
    if target not in parent:
        return []
    path: List[Vertex] = []
    node: Optional[Vertex] = target
    while node is not None:
        path.append(node)
        node = parent[node]
    path.reverse()
    return path


@dataclass
class ShortestPathTree:
    """A rooted shortest-path (Dijkstra) tree.

    Root paths of this tree are minimum-cost paths of the searched
    graph, which is exactly the property separator engines need
    (Definition 1 requires separator paths to be shortest paths in the
    residual graph).
    """

    root: Vertex
    dist: Dict[Vertex, float]
    parent: Dict[Vertex, Optional[Vertex]]
    children: Dict[Vertex, List[Vertex]] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.children:
            self.children = {v: [] for v in self.dist}
            for v, p in self.parent.items():
                if p is not None:
                    self.children[p].append(v)

    def __contains__(self, v: Vertex) -> bool:
        return v in self.dist

    def path_to(self, v: Vertex) -> List[Vertex]:
        """The tree path root -> v (a shortest path of the searched graph)."""
        return reconstruct_path(self.parent, v)

    def subtree_sizes(self) -> Dict[Vertex, int]:
        """Number of descendants (inclusive) of every vertex."""
        order = sorted(self.dist, key=self.dist.__getitem__, reverse=True)
        size = {v: 1 for v in self.dist}
        for v in order:
            p = self.parent[v]
            if p is not None:
                size[p] += size[v]
        return size

    def depth_order(self) -> List[Vertex]:
        """Vertices ordered by increasing distance from the root."""
        return sorted(self.dist, key=self.dist.__getitem__)


def dijkstra_tree(
    graph: Graph,
    root: Vertex,
    allowed: Optional[AbstractSet[Vertex]] = None,
) -> ShortestPathTree:
    """Compute the shortest-path tree rooted at *root*."""
    dist, parent = dijkstra(graph, root, allowed=allowed)
    return ShortestPathTree(root=root, dist=dist, parent=parent)
