"""Unweighted traversals: BFS and DFS orders and hop distances."""

from __future__ import annotations

from collections import deque
from typing import AbstractSet, Dict, Hashable, List, Optional

from repro.graphs.graph import Graph
from repro.util.errors import GraphError

Vertex = Hashable


def bfs_order(
    graph: Graph,
    source: Vertex,
    allowed: Optional[AbstractSet[Vertex]] = None,
) -> List[Vertex]:
    """Vertices reachable from *source* in BFS discovery order."""
    if source not in graph:
        raise GraphError(f"source {source!r} not in graph")
    seen = {source}
    order = [source]
    queue = deque([source])
    while queue:
        u = queue.popleft()
        for v in graph.neighbors(u):
            if v in seen:
                continue
            if allowed is not None and v not in allowed:
                continue
            seen.add(v)
            order.append(v)
            queue.append(v)
    return order


def bfs_distances(
    graph: Graph,
    source: Vertex,
    allowed: Optional[AbstractSet[Vertex]] = None,
) -> Dict[Vertex, int]:
    """Hop counts (ignoring weights) from *source* to each reachable vertex."""
    if source not in graph:
        raise GraphError(f"source {source!r} not in graph")
    dist = {source: 0}
    queue = deque([source])
    while queue:
        u = queue.popleft()
        for v in graph.neighbors(u):
            if v in dist:
                continue
            if allowed is not None and v not in allowed:
                continue
            dist[v] = dist[u] + 1
            queue.append(v)
    return dist


def dfs_order(
    graph: Graph,
    source: Vertex,
    allowed: Optional[AbstractSet[Vertex]] = None,
) -> List[Vertex]:
    """Vertices reachable from *source* in iterative DFS preorder."""
    if source not in graph:
        raise GraphError(f"source {source!r} not in graph")
    seen = set()
    order: List[Vertex] = []
    stack = [source]
    while stack:
        u = stack.pop()
        if u in seen:
            continue
        if allowed is not None and u not in allowed and u != source:
            continue
        seen.add(u)
        order.append(u)
        # Reversed so the first neighbor is visited first (stable order).
        stack.extend(reversed(list(graph.neighbors(u))))
    return order
