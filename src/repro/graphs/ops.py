"""Graph surgery: induced subgraphs, vertex removal, unions."""

from __future__ import annotations

from typing import Callable, Hashable, Iterable

from repro.graphs.graph import Graph

Vertex = Hashable


def induced_subgraph(graph: Graph, vertices: Iterable[Vertex]) -> Graph:
    """New graph on *vertices* keeping exactly the edges inside the set."""
    keep = {v for v in vertices if v in graph}
    sub = Graph()
    for v in keep:
        sub.add_vertex(v)
    for u in keep:
        for v, w in graph.neighbor_items(u):
            if v in keep and not sub.has_edge(u, v):
                sub.add_edge(u, v, w)
    return sub


def remove_vertices(graph: Graph, vertices: Iterable[Vertex]) -> Graph:
    """New graph with *vertices* (and incident edges) removed."""
    drop = set(vertices)
    return induced_subgraph(graph, (v for v in graph.vertices() if v not in drop))


def disjoint_union(a: Graph, b: Graph) -> Graph:
    """Union of two graphs with disjoint vertex sets.

    Vertices shared by both inputs keep their edges from *both* graphs
    (so this doubles as a plain graph union); conflicting weights take
    the value from *b*.
    """
    out = a.copy()
    for v in b.vertices():
        out.add_vertex(v)
    for u, v, w in b.edges():
        out.add_edge(u, v, w)
    return out


def relabel(graph: Graph, mapping: Callable[[Vertex], Vertex]) -> Graph:
    """New graph with every vertex *v* renamed to ``mapping(v)``."""
    out = Graph()
    for v in graph.vertices():
        out.add_vertex(mapping(v))
    for u, v, w in graph.edges():
        out.add_edge(mapping(u), mapping(v), w)
    return out


def reweighted(graph: Graph, weight_fn: Callable[[Vertex, Vertex, float], float]) -> Graph:
    """New graph with each edge weight replaced by ``weight_fn(u, v, w)``."""
    out = Graph()
    for v in graph.vertices():
        out.add_vertex(v)
    for u, v, w in graph.edges():
        out.add_edge(u, v, weight_fn(u, v, w))
    return out
