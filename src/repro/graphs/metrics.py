"""Metric invariants: diameter, radius, center, aspect ratio.

The aspect ratio Delta = max d(u,v) / min d(u,v) parametrizes the
paper's small-world bound (Theorem 3) and the landmark rule's offset
count, so both an exact computation (n Dijkstras, for
experiments) and the cheap double-sweep approximation (for
construction-time use) live here.
"""

from __future__ import annotations

from typing import Dict, Hashable, Optional, Tuple

from repro.graphs.graph import Graph
from repro.graphs.shortest_paths import dijkstra
from repro.util.errors import GraphError, NotConnectedError

Vertex = Hashable
INF = float("inf")


def eccentricities(graph: Graph) -> Dict[Vertex, float]:
    """Exact eccentricity of every vertex (n Dijkstra runs).

    Raises :class:`NotConnectedError` if some vertex cannot see all
    others.
    """
    out: Dict[Vertex, float] = {}
    n = graph.num_vertices
    for v in graph.vertices():
        dist, _ = dijkstra(graph, v)
        if len(dist) != n:
            raise NotConnectedError("eccentricities need a connected graph")
        out[v] = max(dist.values())
    return out


def diameter(graph: Graph) -> float:
    """Exact weighted diameter (0.0 for graphs with < 2 vertices)."""
    if graph.num_vertices < 2:
        return 0.0
    return max(eccentricities(graph).values())


def radius_and_center(graph: Graph) -> Tuple[float, Vertex]:
    """Exact radius and one center vertex (minimum eccentricity)."""
    if graph.num_vertices == 0:
        raise GraphError("radius of an empty graph is undefined")
    eccs = eccentricities(graph)
    center = min(eccs, key=lambda v: (eccs[v], repr(v)))
    return eccs[center], center


def double_sweep_diameter(graph: Graph, start: Optional[Vertex] = None) -> float:
    """Double-sweep lower bound on the diameter (2 Dijkstras).

    Exact on trees; within a factor 2 in general (usually much closer).
    """
    if graph.num_vertices < 2:
        return 0.0
    if start is None:
        start = min(graph.vertices(), key=repr)
    d0, _ = dijkstra(graph, start)
    a = max(d0, key=lambda v: (d0[v], repr(v)))
    d1, _ = dijkstra(graph, a)
    return max(d1.values())


def aspect_ratio(graph: Graph, exact: bool = False) -> float:
    """Delta = diameter / min pairwise distance.

    The minimum pairwise distance equals the minimum edge weight
    (every path costs at least one edge).  With ``exact=False`` the
    diameter comes from a double sweep (a lower bound, so the returned
    Delta is a lower bound too — the conservative direction for
    sizing landmark sets).
    """
    if graph.num_vertices < 2:
        return 1.0
    min_w = min((w for _, _, w in graph.edges()), default=0.0)
    if min_w <= 0:
        raise GraphError("aspect ratio needs at least one edge")
    diam = diameter(graph) if exact else double_sweep_diameter(graph)
    if diam <= 0:
        return 1.0
    return diam / min_w
