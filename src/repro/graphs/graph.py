"""The weighted undirected graph type used throughout the package.

Design notes
------------
* Vertices are arbitrary hashable objects (ints, strings, tuples).
* Edges are undirected with strictly positive float weights; parallel
  edges are not supported (re-adding an edge overwrites its weight),
  and self-loops are rejected because no shortest path uses them.
* Storage is a dict-of-dicts adjacency map, the structure with the best
  constant factors for the Dijkstra-heavy workloads in this package.
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterable, Iterator, Optional, Tuple

from repro.util.errors import GraphError

Vertex = Hashable
Edge = Tuple[Vertex, Vertex]
WeightedEdge = Tuple[Vertex, Vertex, float]


class Graph:
    """An undirected graph with positive edge weights.

    >>> g = Graph()
    >>> g.add_edge(0, 1, 2.5)
    >>> g.add_edge(1, 2)
    >>> sorted(g.neighbors(1))
    [0, 2]
    >>> g.weight(0, 1)
    2.5
    """

    __slots__ = ("_adj",)

    def __init__(self, edges: Optional[Iterable] = None) -> None:
        """Create a graph, optionally from ``(u, v)`` or ``(u, v, w)`` tuples."""
        self._adj: Dict[Vertex, Dict[Vertex, float]] = {}
        if edges is not None:
            for edge in edges:
                if len(edge) == 2:
                    u, v = edge
                    self.add_edge(u, v)
                else:
                    u, v, w = edge
                    self.add_edge(u, v, w)

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def add_vertex(self, u: Vertex) -> None:
        """Add an isolated vertex (a no-op if already present)."""
        if u not in self._adj:
            self._adj[u] = {}

    def add_edge(self, u: Vertex, v: Vertex, weight: float = 1.0) -> None:
        """Add (or re-weight) the undirected edge ``{u, v}``."""
        if u == v:
            raise GraphError(f"self-loop on vertex {u!r} is not allowed")
        if not weight > 0:
            raise GraphError(f"edge weight must be positive, got {weight!r}")
        self.add_vertex(u)
        self.add_vertex(v)
        w = float(weight)
        self._adj[u][v] = w
        self._adj[v][u] = w

    def remove_edge(self, u: Vertex, v: Vertex) -> None:
        """Remove the edge ``{u, v}``; raises if absent."""
        try:
            del self._adj[u][v]
            del self._adj[v][u]
        except KeyError:
            raise GraphError(f"edge ({u!r}, {v!r}) not in graph") from None

    def remove_vertex(self, u: Vertex) -> None:
        """Remove *u* and all incident edges; raises if absent."""
        try:
            neighbors = self._adj.pop(u)
        except KeyError:
            raise GraphError(f"vertex {u!r} not in graph") from None
        for v in neighbors:
            del self._adj[v][u]

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def __contains__(self, u: Vertex) -> bool:
        return u in self._adj

    def __len__(self) -> int:
        return len(self._adj)

    def __iter__(self) -> Iterator[Vertex]:
        return iter(self._adj)

    @property
    def num_vertices(self) -> int:
        return len(self._adj)

    @property
    def num_edges(self) -> int:
        return sum(len(nbrs) for nbrs in self._adj.values()) // 2

    def vertices(self) -> Iterator[Vertex]:
        return iter(self._adj)

    def edges(self) -> Iterator[WeightedEdge]:
        """Yield each undirected edge exactly once as ``(u, v, weight)``."""
        seen = set()
        for u, nbrs in self._adj.items():
            for v, w in nbrs.items():
                if v not in seen:
                    yield (u, v, w)
            seen.add(u)

    def neighbors(self, u: Vertex) -> Iterator[Vertex]:
        try:
            return iter(self._adj[u])
        except KeyError:
            raise GraphError(f"vertex {u!r} not in graph") from None

    def neighbor_items(self, u: Vertex):
        """Iterate ``(neighbor, weight)`` pairs of *u* (hot path for Dijkstra)."""
        try:
            return self._adj[u].items()
        except KeyError:
            raise GraphError(f"vertex {u!r} not in graph") from None

    def degree(self, u: Vertex) -> int:
        try:
            return len(self._adj[u])
        except KeyError:
            raise GraphError(f"vertex {u!r} not in graph") from None

    def has_edge(self, u: Vertex, v: Vertex) -> bool:
        return u in self._adj and v in self._adj[u]

    def weight(self, u: Vertex, v: Vertex) -> float:
        try:
            return self._adj[u][v]
        except KeyError:
            raise GraphError(f"edge ({u!r}, {v!r}) not in graph") from None

    def total_weight(self) -> float:
        """Sum of all edge weights."""
        return sum(w for _, _, w in self.edges())

    def max_weight(self) -> float:
        """Largest edge weight (0.0 for an edgeless graph)."""
        return max((w for _, _, w in self.edges()), default=0.0)

    # ------------------------------------------------------------------
    # Copies
    # ------------------------------------------------------------------
    def copy(self) -> "Graph":
        """Deep copy of the adjacency structure (vertices are shared)."""
        g = Graph()
        g._adj = {u: dict(nbrs) for u, nbrs in self._adj.items()}
        return g

    def __repr__(self) -> str:
        return f"Graph(n={self.num_vertices}, m={self.num_edges})"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Graph):
            return NotImplemented
        return self._adj == other._adj

    def __hash__(self):  # graphs are mutable
        raise TypeError("Graph objects are unhashable")
