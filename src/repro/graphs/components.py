"""Connected-component computations.

Separator engines call :func:`connected_components` on every recursion
level, so the implementation is an iterative flood fill with no
recursion-depth hazards.
"""

from __future__ import annotations

from collections import deque
from typing import AbstractSet, Hashable, Iterable, List, Optional, Set

from repro.graphs.graph import Graph

Vertex = Hashable


def connected_components(
    graph: Graph,
    within: Optional[Iterable[Vertex]] = None,
) -> List[Set[Vertex]]:
    """Connected components, optionally of the subgraph induced by *within*.

    Components are returned largest-first so callers that only care
    about the biggest one can take index 0.
    """
    if within is None:
        universe: Set[Vertex] = set(graph.vertices())
    else:
        universe = {v for v in within if v in graph}
    components: List[Set[Vertex]] = []
    unvisited = set(universe)
    while unvisited:
        start = next(iter(unvisited))
        comp = {start}
        unvisited.discard(start)
        queue = deque([start])
        while queue:
            u = queue.popleft()
            for v in graph.neighbors(u):
                if v in unvisited:
                    unvisited.discard(v)
                    comp.add(v)
                    queue.append(v)
        components.append(comp)
    components.sort(key=len, reverse=True)
    return components


def largest_component(
    graph: Graph,
    within: Optional[Iterable[Vertex]] = None,
) -> Set[Vertex]:
    """The largest connected component (empty set for an empty graph)."""
    comps = connected_components(graph, within=within)
    return comps[0] if comps else set()


def is_connected(graph: Graph, within: Optional[AbstractSet[Vertex]] = None) -> bool:
    """Whether the (sub)graph is connected; an empty graph counts as connected."""
    comps = connected_components(graph, within=within)
    return len(comps) <= 1
