"""Weighted undirected graph substrate.

This subpackage provides the graph data structure and the shortest-path
machinery every higher layer (separators, oracles, routing, small
worlds) builds on.  It is self-contained: ``networkx`` is only touched
by the optional converters in :mod:`repro.graphs.converters`.
"""

from repro.graphs.components import (
    connected_components,
    is_connected,
    largest_component,
)
from repro.graphs.graph import Graph
from repro.graphs.metrics import (
    aspect_ratio,
    diameter,
    double_sweep_diameter,
    eccentricities,
    radius_and_center,
)
from repro.graphs.ops import (
    disjoint_union,
    induced_subgraph,
    remove_vertices,
)
from repro.graphs.shortest_paths import (
    ShortestPathTree,
    batched_dijkstra,
    bidirectional_dijkstra,
    dijkstra,
    dijkstra_tree,
    multi_source_dijkstra,
    path_cost,
    shortest_path,
)
from repro.graphs.traversal import bfs_distances, bfs_order, dfs_order
from repro.graphs.validation import (
    require_connected,
    require_positive_weights,
    validate_graph,
)

__all__ = [
    "Graph",
    "ShortestPathTree",
    "aspect_ratio",
    "batched_dijkstra",
    "bfs_distances",
    "bfs_order",
    "bidirectional_dijkstra",
    "connected_components",
    "dfs_order",
    "diameter",
    "double_sweep_diameter",
    "dijkstra",
    "dijkstra_tree",
    "disjoint_union",
    "eccentricities",
    "induced_subgraph",
    "is_connected",
    "largest_component",
    "multi_source_dijkstra",
    "path_cost",
    "radius_and_center",
    "remove_vertices",
    "require_connected",
    "require_positive_weights",
    "shortest_path",
    "validate_graph",
]
