"""Optional converters to and from ``networkx``.

``networkx`` is only needed by the planar-embedding machinery and by
users who want to interoperate; everything else in the package works
without it, so the import is deferred.
"""

from __future__ import annotations

from repro.graphs.graph import Graph
from repro.util.errors import GraphError


def _require_networkx():
    try:
        import networkx
    except ImportError as exc:  # pragma: no cover - depends on environment
        raise GraphError(
            "this operation requires the optional dependency networkx"
        ) from exc
    return networkx


def to_networkx(graph: Graph):
    """Convert to an ``networkx.Graph`` with ``weight`` edge attributes."""
    nx = _require_networkx()
    out = nx.Graph()
    out.add_nodes_from(graph.vertices())
    out.add_weighted_edges_from(graph.edges())
    return out


def from_networkx(nx_graph, default_weight: float = 1.0) -> Graph:
    """Convert from ``networkx``; missing ``weight`` attributes get *default_weight*."""
    graph = Graph()
    for v in nx_graph.nodes():
        graph.add_vertex(v)
    for u, v, data in nx_graph.edges(data=True):
        graph.add_edge(u, v, data.get("weight", default_weight))
    return graph
