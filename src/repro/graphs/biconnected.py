"""Biconnected components and articulation points (Tarjan, iterative).

Substrate for the self-contained planar embedder: planarity is decided
block by block (a graph is planar iff each biconnected component is),
and block embeddings merge freely at articulation vertices.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Hashable, List, Set, Tuple

from repro.graphs.graph import Graph

Vertex = Hashable
Edge = FrozenSet[Vertex]


def biconnected_components(graph: Graph) -> Tuple[List[Set[Edge]], Set[Vertex]]:
    """Edge partition into biconnected components, plus articulation points.

    Returns ``(blocks, articulation_points)`` where each block is a set
    of undirected edges (frozensets).  Bridges form their own
    single-edge blocks; isolated vertices belong to no block.
    """
    index: Dict[Vertex, int] = {}
    low: Dict[Vertex, int] = {}
    blocks: List[Set[Edge]] = []
    articulation: Set[Vertex] = set()
    edge_stack: List[Edge] = []
    counter = 0

    for root in graph.vertices():
        if root in index:
            continue
        # Iterative DFS: stack holds (vertex, parent, neighbor iterator).
        index[root] = low[root] = counter
        counter += 1
        root_children = 0
        stack = [(root, None, iter(sorted(graph.neighbors(root), key=repr)))]
        while stack:
            v, parent, neighbors = stack[-1]
            advanced = False
            for w in neighbors:
                if w == parent:
                    continue
                edge = frozenset((v, w))
                if w not in index:
                    if v == root:
                        root_children += 1
                    edge_stack.append(edge)
                    index[w] = low[w] = counter
                    counter += 1
                    stack.append(
                        (w, v, iter(sorted(graph.neighbors(w), key=repr)))
                    )
                    advanced = True
                    break
                if index[w] < index[v]:  # back edge
                    edge_stack.append(edge)
                    if index[w] < low[v]:
                        low[v] = index[w]
            if advanced:
                continue
            stack.pop()
            if parent is not None:
                if low[v] < low[parent]:
                    low[parent] = low[v]
                if low[v] >= index[parent]:
                    # parent closes a block; pop its edges.  (The root
                    # is handled after the DFS: it is an articulation
                    # point iff it has more than one DFS child.)
                    if parent != root:
                        articulation.add(parent)
                    block: Set[Edge] = set()
                    boundary = frozenset((parent, v))
                    while edge_stack:
                        edge = edge_stack.pop()
                        block.add(edge)
                        if edge == boundary:
                            break
                    if block:
                        blocks.append(block)
        if root_children > 1:
            articulation.add(root)
    return blocks, articulation


def is_biconnected(graph: Graph) -> bool:
    """Whether the graph is connected with no articulation point
    (vacuously true below 3 vertices if connected)."""
    from repro.graphs.components import is_connected

    if graph.num_vertices < 3:
        return is_connected(graph)
    if not is_connected(graph):
        return False
    _, articulation = biconnected_components(graph)
    return not articulation
