"""Plain-text edge-list serialization.

Format: one edge per line, ``u v weight`` separated by whitespace;
lines starting with ``#`` are comments.  Vertex tokens are kept as
strings unless they parse as ints.
"""

from __future__ import annotations

from pathlib import Path
from typing import Union

from repro.graphs.graph import Graph
from repro.util.errors import GraphError


def _parse_vertex(token: str):
    try:
        return int(token)
    except ValueError:
        return token


def write_edge_list(graph: Graph, path: Union[str, Path]) -> None:
    """Write *graph* as a weighted edge list (isolated vertices as ``v`` lines)."""
    path = Path(path)
    with path.open("w") as handle:
        handle.write(f"# repro graph n={graph.num_vertices} m={graph.num_edges}\n")
        for v in graph.vertices():
            if graph.degree(v) == 0:
                handle.write(f"{v}\n")
        for u, v, w in graph.edges():
            handle.write(f"{u} {v} {w}\n")


def read_edge_list(path: Union[str, Path]) -> Graph:
    """Read a graph written by :func:`write_edge_list`."""
    path = Path(path)
    graph = Graph()
    with path.open() as handle:
        for lineno, line in enumerate(handle, start=1):
            line = line.strip()
            if not line or line.startswith("#"):
                continue
            parts = line.split()
            if len(parts) == 1:
                graph.add_vertex(_parse_vertex(parts[0]))
            elif len(parts) == 2:
                graph.add_edge(_parse_vertex(parts[0]), _parse_vertex(parts[1]))
            elif len(parts) == 3:
                graph.add_edge(
                    _parse_vertex(parts[0]),
                    _parse_vertex(parts[1]),
                    float(parts[2]),
                )
            else:
                raise GraphError(f"{path}:{lineno}: malformed edge line {line!r}")
    return graph
