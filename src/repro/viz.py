"""SVG rendering of graphs, separators, and decompositions.

Dependency-free visual debugging: draw a (typically planar) graph
from vertex positions and highlight separator paths phase by phase.
Produces plain SVG strings — view in any browser.

>>> from repro.generators import grid_2d
>>> from repro.core import GreedyPeelingEngine
>>> g = grid_2d(8)
>>> sep = GreedyPeelingEngine(seed=0).find_separator(g)
>>> svg = render_svg(g, grid_positions(g), separator=sep)
>>> svg.startswith("<svg")
True
"""

from __future__ import annotations

from pathlib import Path
from typing import Dict, Hashable, Optional, Tuple, Union

from repro.core.separator import PathSeparator
from repro.graphs.graph import Graph
from repro.util.errors import GraphError

Vertex = Hashable
Point = Tuple[float, float]

# A color-blind-friendly cycle for separator phases.
PHASE_COLORS = ["#d62728", "#1f77b4", "#2ca02c", "#9467bd", "#ff7f0e", "#8c564b"]


def grid_positions(graph: Graph) -> Dict[Vertex, Point]:
    """Positions for graphs whose vertices are (row, col) pairs."""
    positions = {}
    for v in graph.vertices():
        if not (isinstance(v, tuple) and len(v) == 2):
            raise GraphError("grid_positions needs (row, col) vertices")
        positions[v] = (float(v[1]), float(v[0]))
    return positions


def render_svg(
    graph: Graph,
    positions: Dict[Vertex, Point],
    separator: Optional[PathSeparator] = None,
    width: int = 640,
    height: int = 640,
    margin: int = 24,
    vertex_radius: float = 3.0,
) -> str:
    """Render *graph* as an SVG string.

    Separator paths, when given, are drawn as thick colored polylines
    (one color per phase) over the light base edges; separator vertices
    are filled in the phase color.
    """
    missing = [v for v in graph.vertices() if v not in positions]
    if missing:
        raise GraphError(f"no position for vertex {missing[0]!r}")
    if graph.num_vertices == 0:
        return f'<svg xmlns="http://www.w3.org/2000/svg" width="{width}" height="{height}"></svg>'

    xs = [positions[v][0] for v in graph.vertices()]
    ys = [positions[v][1] for v in graph.vertices()]
    min_x, max_x = min(xs), max(xs)
    min_y, max_y = min(ys), max(ys)
    span_x = max(max_x - min_x, 1e-9)
    span_y = max(max_y - min_y, 1e-9)

    def project(v: Vertex) -> Tuple[float, float]:
        x, y = positions[v]
        px = margin + (x - min_x) / span_x * (width - 2 * margin)
        py = margin + (y - min_y) / span_y * (height - 2 * margin)
        return px, py

    parts = [
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{width}" '
        f'height="{height}" viewBox="0 0 {width} {height}">',
        f'<rect width="{width}" height="{height}" fill="white"/>',
    ]
    for u, v, _ in graph.edges():
        (x1, y1), (x2, y2) = project(u), project(v)
        parts.append(
            f'<line x1="{x1:.1f}" y1="{y1:.1f}" x2="{x2:.1f}" y2="{y2:.1f}" '
            f'stroke="#cccccc" stroke-width="1"/>'
        )

    vertex_color: Dict[Vertex, str] = {}
    if separator is not None:
        for phase_idx, phase in enumerate(separator.phases):
            color = PHASE_COLORS[phase_idx % len(PHASE_COLORS)]
            for path in phase.paths:
                points = " ".join(
                    f"{x:.1f},{y:.1f}" for x, y in (project(v) for v in path)
                )
                if len(path) > 1:
                    parts.append(
                        f'<polyline points="{points}" fill="none" '
                        f'stroke="{color}" stroke-width="3"/>'
                    )
                for v in path:
                    vertex_color[v] = color

    for v in graph.vertices():
        x, y = project(v)
        color = vertex_color.get(v, "#444444")
        radius = vertex_radius * (1.6 if v in vertex_color else 1.0)
        parts.append(
            f'<circle cx="{x:.1f}" cy="{y:.1f}" r="{radius:.1f}" fill="{color}"/>'
        )
    parts.append("</svg>")
    return "\n".join(parts)


def save_svg(
    svg: str,
    path: Union[str, Path],
) -> None:
    """Write an SVG string to *path*."""
    Path(path).write_text(svg)
