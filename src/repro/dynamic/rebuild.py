"""Incremental relabeling: recompute only the affected units.

:func:`incremental_relabel` takes a live :class:`DistanceLabeling`
and one edge reweight, recomputes exactly the units named by
:func:`repro.dynamic.invalidate.affected_units` through the same
``_unit_entries`` / ``batched_dijkstra`` machinery the offline build
uses, mutates the labeling in place, and returns a :class:`LabelDelta`
describing every entry that changed.

Byte-identity contract: after the call, ``dump_labeling(labeling)`` is
byte-identical to ``dump_labeling(build_labeling(updated_graph, tree,
epsilon))`` on the *same* decomposition tree.  Three facts carry it:

* untouched units reproduce their old entries exactly (their inputs
  are unchanged — see the soundness argument in
  :mod:`repro.dynamic.invalidate`), so skipping them is lossless;
* a full build inserts each vertex's keys in global unit order, which
  is ascending ``(node_id, phase, path)`` — i.e. *sorted* key order —
  so replacing a value in place keeps the order, deleting keeps the
  order, and inserting a brand-new key followed by a per-vertex key
  re-sort reproduces it;
* the label dict itself is prefilled in graph order by both builds.

The delta also travels: :func:`delta_to_dict` / :func:`delta_from_dict`
give it a strict JSON wire form (shared by the journal and the serve
``DELTA`` op), and :func:`apply_delta_to_labels` replays one onto any
label dict — replica stores apply the same delta the builder computed
and land in the same state.
"""

from __future__ import annotations

import heapq
import math
import time
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Dict, Hashable, List, Tuple

from repro.core import flat as flat_core
from repro.core.decomposition import PathKey, phase_portal_distance_maps
from repro.core.labeling import (
    INF,
    DistanceLabeling,
    PortalEntry,
    VertexLabel,
)
from repro.core.portals import epsilon_cover_portals_at
from repro.graphs.shortest_paths import batched_dijkstra
from repro.core.serialize import (
    SerializationError,
    decode_path_key,
    decode_vertex,
    encode_path_key,
    encode_vertex,
)
from repro.dynamic.invalidate import (
    EdgeUpdate,
    affected_units,
    touched_path_keys,
)
from repro.obs import metrics, span
from repro.util.errors import ReproError

Vertex = Hashable

#: One changed label entry: (vertex, path key, new portal list).
Change = Tuple[Vertex, PathKey, List[PortalEntry]]
#: One removed label entry: (vertex, path key).
Removal = Tuple[Vertex, PathKey]


class DynamicError(ReproError):
    """An update cannot be applied incrementally."""


class DeltaError(DynamicError):
    """A label delta is malformed or inconsistent with its target."""


@dataclass
class LabelDelta:
    """Everything that changed in one incremental relabel.

    ``epoch`` is 0 ("unstamped") until a journal or a caller assigns
    the delta its position in an update sequence; stores and servers
    gate application on it (see ``docs/dynamic.md``).
    """

    update: EdgeUpdate
    old_weight: float
    epsilon: float
    changes: List[Change] = field(default_factory=list)
    removals: List[Removal] = field(default_factory=list)
    units: int = 0
    epoch: int = 0

    @property
    def num_changes(self) -> int:
        return len(self.changes) + len(self.removals)

    @property
    def is_noop(self) -> bool:
        return not self.changes and not self.removals


# Relative slack below which an edge is conservatively treated as
# tight (on some shortest path).  Over-inclusion only costs an extra
# recompute; the float error of a path-length sum is orders of
# magnitude smaller than this, so a genuinely slack edge never slips
# under the threshold.
_TIGHT_TOL = 1e-9

#: Entry budget (dict slots, not bytes) for the per-labeling cache of
#: unit distance maps.  Whole units are evicted LRU past the budget.
_DIST_CACHE_ENTRIES = 4_000_000


class _UnitDistCache:
    """LRU cache of per-unit portal distance maps, keyed (node, phase).

    Owned by one labeling (stashed on the instance): the maps hold
    ``d_J(x, .)`` for every separator-path vertex x of the unit under
    the labeling's *current* graph weights, and are updated in
    lock-step with each incremental relabel.  A hit turns "re-run
    Dijkstra from every path vertex of the unit" into "re-run it from
    the few tight sources and diff against the cached rows".
    """

    def __init__(self, budget: int = _DIST_CACHE_ENTRIES) -> None:
        self.budget = budget
        self.units: "OrderedDict[Tuple[int, int], Dict]" = OrderedDict()
        self.entries = 0

    def get(self, unit):
        maps = self.units.get(unit)
        if maps is not None:
            self.units.move_to_end(unit)
        return maps

    def put(self, unit, maps) -> None:
        self.discard(unit)
        self.units[unit] = maps
        self.entries += sum(len(m) for m in maps.values())
        while self.entries > self.budget and len(self.units) > 1:
            _, evicted = self.units.popitem(last=False)
            self.entries -= sum(len(m) for m in evicted.values())

    def discard(self, unit) -> None:
        old = self.units.pop(unit, None)
        if old is not None:
            self.entries -= sum(len(m) for m in old.values())


def _dist_cache(labeling: DistanceLabeling) -> _UnitDistCache:
    cache = getattr(labeling, "_unit_dist_cache", None)
    if cache is None:
        cache = _UnitDistCache()
        labeling._unit_dist_cache = cache
    return cache


def _flat_context(labeling: DistanceLabeling):
    """The labeling's long-lived CSR view, or ``None`` without numpy.

    Built lazily off the current graph and then kept in lock-step with
    it: every reweight that goes through :func:`incremental_relabel`
    also lands in the CSR arrays via ``set_weight``, so cold-unit
    recomputes can run the same C Dijkstra as the offline flat build.
    (Mutating ``labeling.graph`` behind the labeling's back already
    invalidates the unit distance cache's contract; the CSR mirror
    adds no new requirement.)
    """
    if not flat_core.flat_available():
        return None
    ctx = getattr(labeling, "_flat_ctx", None)
    if ctx is None:
        ctx = flat_core.FlatBuildContext(labeling.graph, labeling.tree)
        labeling._flat_ctx = ctx
    return ctx


def _unit_distance_maps(ctx, graph, tree, node_id, phase_idx, residual):
    """Cold-unit distance maps: flat kernel when available and the
    residual is large enough to amortize the scipy call, else the
    pure-Python reference.  Both are bit-identical (see
    :func:`repro.core.flat.flat_distance_maps`)."""
    if ctx is not None and len(residual) >= flat_core.SMALL_RESIDUAL:
        return flat_core.flat_phase_distance_maps(
            ctx, node_id, phase_idx, residual
        )
    return phase_portal_distance_maps(
        graph, tree, node_id, phase_idx, residual
    )


def _phase_sources(phase) -> List[Vertex]:
    seen = set()
    out: List[Vertex] = []
    for path in phase.paths:
        for x in path:
            if x not in seen:
                seen.add(x)
                out.append(x)
    return out


def _tight_sources(phase, dist_u, dist_v, w_min: float) -> List[Vertex]:
    """Separator-path vertices of one unit the reweight can reach.

    ``dist_u``/``dist_v`` are the residual-restricted distance maps of
    the edge's endpoints under the **old** weights.  A source x's map
    can change only if some old or new shortest path from x uses the
    edge, and both directions reduce to one inequality on old data:

    * weight increase: a change requires the old path to use the edge,
      forcing the old tightness ``|d(x,u) - d(x,v)| = w_old``;
    * weight decrease: an improvement through the edge at its new
      weight forces ``d(x,u) + w_new < d(x,v)`` (or symmetrically),
      i.e. ``|d(x,u) - d(x,v)| > w_new``.

    Both are implied by ``|d(x,u) - d(x,v)| >= min(w_old, w_new)`` up
    to float tolerance — so two endpoint Dijkstras decide a whole
    unit, against one per path vertex to rebuild it.  Sources the
    filter rejects keep bitwise-identical maps: every relaxation
    through the edge loses strictly, so Dijkstra settles the same
    values with or without the reweight.
    """
    tight: List[Vertex] = []
    for x in _phase_sources(phase):
        a = dist_u.get(x)
        b = dist_v.get(x)
        if a is None or b is None:
            continue
        tol = _TIGHT_TOL * (1.0 + a + b + w_min)
        if abs(a - b) >= w_min - tol:
            tight.append(x)
    return tight


def _propagate_decrease(graph, allowed, m, near, far, new_weight):
    """Fold a weight decrease into one cached distance map, in place.

    ``m`` holds ``d_J(x, .)`` under the old weights with ``near`` the
    closer edge endpoint to x.  A decrease can only *improve* values,
    and only along paths whose last fresh relaxation is the edge — so
    seeding one candidate ``d(x, near) + w_new`` at ``far`` and running
    the ordinary Dijkstra loop over the improvements reproduces, float
    op for float op, exactly the relaxations a from-scratch run would
    win with the new weight.  Values the loop never touches keep their
    (provably identical) old floats.  Returns the changed vertices.
    """
    near_d = m.get(near)
    if near_d is None:
        return ()
    base = near_d + new_weight
    if base >= m.get(far, INF):
        return ()
    changed = set()
    heap = [(base, 0, far)]
    counter = 1
    adj = graph._adj
    push, pop = heapq.heappush, heapq.heappop
    m_get = m.get
    while heap:
        d, _, t = pop(heap)
        if d >= m_get(t, INF):
            continue
        m[t] = d
        changed.add(t)
        for nb, w in adj[t].items():
            if nb not in allowed:
                continue
            nd = d + w
            if nd < m_get(nb, INF):
                push(heap, (nd, counter, nb))
                counter += 1
    return changed


def _propagate_increase(graph, allowed, m, near, far, old_weight):
    """Fold a weight increase into one cached distance map, in place.

    An increase can only change values of vertices whose *every* old
    shortest path from x crosses the edge.  That affected set is found
    by walking the old shortest-path DAG outward from ``far`` in
    distance order: a vertex stays put the moment it has one tight
    predecessor that stayed put (tightness is float-exact — the stored
    value *is* the winning ``d(p) + w`` sum).  The affected vertices
    are then re-settled by a Dijkstra seeded from every unaffected
    neighbor, whose values are bitwise those a full run would carry in.
    The caller guarantees the edge is old-tight from x.  Returns the
    changed vertices.
    """
    adj = graph._adj
    m_get = m.get
    far_old = m_get(far, INF)
    affected: set = set()
    enqueued = {far}
    heap = [(far_old, 0, far)]
    counter = 1
    push, pop = heapq.heappush, heapq.heappop
    while heap:
        d, _, t = pop(heap)
        supported = False
        for p, w in adj[t].items():
            if p not in allowed:
                continue
            if p == near and t == far:
                w = old_weight  # the reweighted edge: test old support
            dp = m_get(p, INF)
            if dp + w == d and not (p == near and t == far):
                if p not in affected:
                    supported = True
                    break
        if supported:
            continue
        affected.add(t)
        for nb, w in adj[t].items():
            if nb in enqueued or nb not in allowed:
                continue
            dnb = m_get(nb, INF)
            if d + w == dnb:  # tight successor: may lose its support
                enqueued.add(nb)
                push(heap, (dnb, counter, nb))
                counter += 1
    if not affected:
        return ()
    # Re-settle the affected region from its unaffected boundary.
    seeds = []
    for t in affected:
        best = INF
        for p, w in adj[t].items():
            if p not in allowed or p in affected:
                continue
            cand = m_get(p, INF) + w  # new weights; boundary is bitwise-old
            if cand < best:
                best = cand
        if best < INF:
            seeds.append((best, counter, t))
            counter += 1
    heapq.heapify(seeds)
    settled: Dict = {}
    while seeds:
        d, _, t = pop(seeds)
        if t in settled:
            continue
        settled[t] = d
        for nb, w in adj[t].items():
            if nb not in affected or nb in settled:
                continue
            nd = d + w
            if nd < settled.get(nb, INF):
                push(seeds, (nd, counter, nb))
                counter += 1
    changed = set()
    for t in affected:
        new_d = settled.get(t, INF)
        if new_d != m_get(t, INF):
            changed.add(t)
            if new_d == INF:
                m.pop(t, None)
            else:
                m[t] = new_d
    return changed


def _insert_entry_sorted(
    entries: Dict[PathKey, List[PortalEntry]],
    key: PathKey,
    portals: List[PortalEntry],
) -> None:
    """Insert a (possibly brand-new) key, restoring full-build order.

    A full build writes each vertex's keys in ascending key order, so
    on the rare insert of a key the vertex did not previously hold we
    re-sort that one vertex's dict; replacements and deletions never
    disturb the order.
    """
    entries[key] = portals
    keys = list(entries)
    if keys != sorted(keys):
        items = sorted(entries.items())
        entries.clear()
        entries.update(items)


def incremental_relabel(
    labeling: DistanceLabeling, update: EdgeUpdate
) -> LabelDelta:
    """Apply one edge reweight to a labeling, in place.

    Mutates ``labeling.graph`` (the new weight), the tree's cached path
    prefixes, and the affected vertices' labels; returns the
    :class:`LabelDelta` to journal and ship to serving replicas.

    Raises :class:`DynamicError` for structural updates (the edge does
    not exist — adding or removing edges changes residual reachability
    and needs an offline rebuild) and for non-finite or non-positive
    weights.
    """
    graph, tree = labeling.graph, labeling.tree
    u, v, new_weight = update.u, update.v, update.weight
    if u == v:
        raise DynamicError("edge endpoints must differ")
    if not isinstance(new_weight, (int, float)) or isinstance(new_weight, bool):
        raise DynamicError(f"edge weight must be a number, got {new_weight!r}")
    new_weight = float(new_weight)
    if not math.isfinite(new_weight) or new_weight <= 0:
        raise DynamicError(
            f"edge weight must be finite and positive, got {new_weight!r}"
        )
    if not graph.has_edge(u, v):
        raise DynamicError(
            f"no edge {u!r} -- {v!r}: adding or removing edges changes the "
            f"decomposition and requires a full offline rebuild"
        )
    started = time.perf_counter()
    with span("dynamic.relabel", u=repr(u), v=repr(v)):
        old_weight = graph.weight(u, v)
        # Affected units and touched paths are properties of the tree
        # alone; the tightness pass below must also run before the
        # mutation (it reasons from the old distance maps).
        units = affected_units(tree, u, v)
        touched = set(touched_path_keys(tree, u, v))
        touched_units = {key[:2] for key in touched}
        w_min = min(float(old_weight), new_weight)
        cache = _dist_cache(labeling)
        flat_ctx = _flat_context(labeling)

        # Pre-mutation pass: cold units (no cached maps) get two
        # endpoint Dijkstras deciding whether the reweight can change
        # any of their distance maps at all (see _tight_sources); most
        # units of a random update are dismissed here without touching
        # their sources.  Warm units need nothing up front — their
        # cached rows carry the old endpoint distances directly.
        plans = []
        skipped_units = 0
        for node_id, phase_idx, residual in units:
            forced = (node_id, phase_idx) in touched_units
            if cache.get((node_id, phase_idx)) is not None:
                plans.append((node_id, phase_idx, residual))
                continue
            phase = tree.nodes[node_id].separator.phases[phase_idx]
            # Runs before the mutation below, so the CSR mirror still
            # carries the old weight here — as the tightness reasoning
            # requires.
            if (
                flat_ctx is not None
                and len(residual) >= flat_core.SMALL_RESIDUAL
            ):
                endpoint_maps = flat_core.flat_distance_maps(
                    flat_ctx, (u, v), residual
                )
            else:
                endpoint_maps = batched_dijkstra(
                    graph, (u, v), allowed=residual
                )
            tight = _tight_sources(
                phase, endpoint_maps[u], endpoint_maps[v], w_min
            )
            if tight or forced:
                plans.append((node_id, phase_idx, residual))
            else:
                skipped_units += 1

        graph.add_edge(u, v, new_weight)
        if flat_ctx is not None:
            flat_ctx.csr.set_weight(u, v, new_weight)
        for key in touched:
            tree.recompute_prefix(key)

        delta = LabelDelta(
            update=EdgeUpdate(u, v, new_weight),
            old_weight=old_weight,
            epsilon=labeling.epsilon,
            units=len(units),
        )
        increase = new_weight > float(old_weight)
        for node_id, phase_idx, residual in plans:
            unit = (node_id, phase_idx)
            phase = tree.nodes[node_id].separator.phases[phase_idx]
            maps = cache.get(unit)
            if maps is None:
                # Cold unit: full recompute, and the maps seed the
                # cache so the next update over this unit diffs.
                maps = _unit_distance_maps(
                    flat_ctx, graph, tree, node_id, phase_idx, residual
                )
                cache.put(unit, maps)
                changed = residual
            else:
                # Warm unit: fold the reweight into each cached row
                # incrementally — an increase re-settles the affected
                # shortest-path subtree, a decrease propagates the
                # improvements; either way the work is proportional to
                # what actually moved, and every row stays bitwise
                # what a from-scratch Dijkstra would produce.
                changed = set()
                for x in _phase_sources(phase):
                    m = maps[x]
                    a = m.get(u, INF)
                    b = m.get(v, INF)
                    if a <= b:
                        near, far = u, v
                        near_d, far_d = a, b
                    else:
                        near, far = v, u
                        near_d, far_d = b, a
                    if far_d == INF:
                        continue
                    if increase:
                        if far_d != near_d + float(old_weight):
                            continue  # edge not on x's old SP DAG
                        changed.update(_propagate_increase(
                            graph, residual, m, near, far, float(old_weight)
                        ))
                    else:
                        changed.update(_propagate_decrease(
                            graph, residual, m, near, far, new_weight
                        ))
            # Deterministic delta ordering: paths in path order, then
            # vertices sorted by repr (frozenset iteration order is
            # hash-salted across processes for str vertices).
            for path_idx, path in enumerate(phase.paths):
                key = (node_id, phase_idx, path_idx)
                # A touched prefix shifts every portal position on the
                # path, so its key refreshes all residual vertices even
                # when no distance map moved.
                targets = residual if key in touched else changed
                if not targets:
                    continue
                prefix = tree.path_prefix(key)
                rows = [maps[x] for x in path]
                for vx in sorted(targets, key=repr):
                    pos_dist = [row.get(vx, INF) for row in rows]
                    portals = epsilon_cover_portals_at(
                        prefix, pos_dist, labeling.epsilon
                    )
                    new = (
                        [(prefix[i], d) for i, d in portals]
                        if portals
                        else None
                    )
                    old = labeling.labels[vx].entries.get(key)
                    if new is None:
                        if old is not None:
                            del labeling.labels[vx].entries[key]
                            delta.removals.append((vx, key))
                    elif old != new:
                        _insert_entry_sorted(
                            labeling.labels[vx].entries, key, new
                        )
                        delta.changes.append((vx, key, new))
        seconds = time.perf_counter() - started
        if metrics.enabled:
            metrics.inc("dynamic.updates")
            metrics.inc("dynamic.affected_units", len(units))
            metrics.inc("dynamic.units_skipped", skipped_units)
            metrics.inc("dynamic.changed_entries", delta.num_changes)
            metrics.observe("dynamic.rebuild_seconds", seconds)
            metrics.observe(
                "dynamic.affected_vertices",
                len({vx for vx, _, _ in delta.changes}
                    | {vx for vx, _ in delta.removals}),
            )
    return delta


def apply_delta_to_labels(
    labels: Dict[Vertex, VertexLabel],
    delta: LabelDelta,
    require_vertices: bool = True,
) -> Tuple[int, int]:
    """Replay a delta onto a label dict; returns ``(changes, removals)``
    actually applied.

    With ``require_vertices`` (the default), a change naming a vertex
    the dict does not hold raises :class:`DeltaError` — the right
    behavior for a whole-graph store or a journal replay.  Sharded
    cluster stores pass ``False`` so a delta can be fanned out whole
    and each node applies only its owned slice.

    Removals of already-absent keys are no-ops (counted as skipped):
    application is idempotent at the entry level, and the epoch gate
    above this layer is what prevents double-apply.
    """
    applied_changes = 0
    for vx, key, portals in delta.changes:
        label = labels.get(vx)
        if label is None:
            if require_vertices:
                raise DeltaError(f"delta names unknown vertex {vx!r}")
            continue
        _insert_entry_sorted(label.entries, key, list(portals))
        applied_changes += 1
    applied_removals = 0
    for vx, key in delta.removals:
        label = labels.get(vx)
        if label is None:
            if require_vertices:
                raise DeltaError(f"delta names unknown vertex {vx!r}")
            continue
        if label.entries.pop(key, None) is not None:
            applied_removals += 1
    return applied_changes, applied_removals


def delta_to_dict(delta: LabelDelta) -> dict:
    """The strict JSON wire form of a delta (journal records and the
    serve ``DELTA`` op both carry exactly this shape)."""
    return {
        "u": encode_vertex(delta.update.u),
        "v": encode_vertex(delta.update.v),
        "w": float(delta.update.weight),
        "old_w": float(delta.old_weight),
        "epsilon": float(delta.epsilon),
        "epoch": int(delta.epoch),
        "units": int(delta.units),
        "changes": [
            [
                encode_vertex(vx),
                encode_path_key(key),
                [[float(pos), float(dist)] for pos, dist in portals],
            ]
            for vx, key, portals in delta.changes
        ],
        "removals": [
            [encode_vertex(vx), encode_path_key(key)]
            for vx, key in delta.removals
        ],
    }


def _require_finite_positive(value, name: str) -> float:
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise DeltaError(f"delta field {name!r} must be a number, got {value!r}")
    value = float(value)
    if not math.isfinite(value) or value <= 0:
        raise DeltaError(
            f"delta field {name!r} must be finite and positive, got {value!r}"
        )
    return value


def delta_from_dict(data) -> LabelDelta:
    """Strict inverse of :func:`delta_to_dict`.

    Every malformation raises :class:`DeltaError` with a one-line
    reason; nothing is coerced silently.  The journal loader and the
    serve ``DELTA`` op both funnel untrusted bytes through here.
    """
    if not isinstance(data, dict):
        raise DeltaError(f"delta payload must be an object, got {type(data).__name__}")
    required = {"u", "v", "w", "old_w", "epsilon", "epoch", "units",
                "changes", "removals"}
    missing = required - set(data)
    if missing:
        raise DeltaError(f"delta payload missing fields {sorted(missing)}")
    try:
        u = decode_vertex(data["u"])
        v = decode_vertex(data["v"])
    except SerializationError as exc:
        raise DeltaError(str(exc)) from None
    if u == v:
        raise DeltaError("delta endpoints must differ")
    weight = _require_finite_positive(data["w"], "w")
    old_weight = _require_finite_positive(data["old_w"], "old_w")
    epsilon = _require_finite_positive(data["epsilon"], "epsilon")
    epoch = data["epoch"]
    if isinstance(epoch, bool) or not isinstance(epoch, int) or epoch < 0:
        raise DeltaError(f"delta epoch must be a non-negative int, got {epoch!r}")
    units = data["units"]
    if isinstance(units, bool) or not isinstance(units, int) or units < 0:
        raise DeltaError(f"delta units must be a non-negative int, got {units!r}")
    changes: List[Change] = []
    if not isinstance(data["changes"], list):
        raise DeltaError("delta changes must be a list")
    for item in data["changes"]:
        if not isinstance(item, list) or len(item) != 3:
            raise DeltaError(f"malformed delta change {item!r}")
        enc_v, key_text, pairs = item
        try:
            vx = decode_vertex(enc_v)
            key = decode_path_key(key_text) if isinstance(key_text, str) else None
        except SerializationError as exc:
            raise DeltaError(str(exc)) from None
        if key is None:
            raise DeltaError(f"malformed path key {key_text!r}")
        if not isinstance(pairs, list) or not pairs:
            raise DeltaError(f"delta change for {vx!r} has no portal entries")
        portals: List[PortalEntry] = []
        for pair in pairs:
            if not isinstance(pair, list) or len(pair) != 2:
                raise DeltaError(f"malformed portal entry {pair!r}")
            pos, dist = pair
            for val in (pos, dist):
                if isinstance(val, bool) or not isinstance(val, (int, float)):
                    raise DeltaError(f"malformed portal entry {pair!r}")
                if not math.isfinite(float(val)):
                    raise DeltaError(f"non-finite portal entry {pair!r}")
            portals.append((float(pos), float(dist)))
        changes.append((vx, key, portals))
    removals: List[Removal] = []
    if not isinstance(data["removals"], list):
        raise DeltaError("delta removals must be a list")
    for item in data["removals"]:
        if not isinstance(item, list) or len(item) != 2:
            raise DeltaError(f"malformed delta removal {item!r}")
        enc_v, key_text = item
        try:
            vx = decode_vertex(enc_v)
            key = decode_path_key(key_text) if isinstance(key_text, str) else None
        except SerializationError as exc:
            raise DeltaError(str(exc)) from None
        if key is None:
            raise DeltaError(f"malformed path key {key_text!r}")
        removals.append((vx, key))
    return LabelDelta(
        update=EdgeUpdate(u, v, weight),
        old_weight=old_weight,
        epsilon=epsilon,
        changes=changes,
        removals=removals,
        units=units,
        epoch=epoch,
    )
