"""``repro.dynamic`` — incremental relabeling under live traffic.

A static labeling answers queries forever, but the moment an edge
weight changes the offline pipeline says "rebuild everything".  The
decomposition tree makes that unnecessary: the labels produced for a
``(node, phase)`` unit depend only on distances *inside that phase's
residual* and on the prefix sums of that phase's separator paths, so a
weight change on edge ``{u, v}`` can only move the output of units
whose residual contains **both** endpoints — and those units form a
short root-down chain of the tree (see :mod:`repro.dynamic.invalidate`).

The package turns that observation into a live-update pipeline:

* :mod:`repro.dynamic.invalidate` — compute the minimal affected-unit
  set for one edge update (with the soundness argument spelled out);
* :mod:`repro.dynamic.rebuild` — recompute exactly those units through
  the same batched-Dijkstra machinery the offline build uses, mutate
  the labeling in place, and emit a :class:`LabelDelta` whose
  application is byte-identical to a from-scratch rebuild on the same
  decomposition tree;
* :mod:`repro.dynamic.journal` — the ``repro-label-journal/1``
  append-only journal of epoch-stamped deltas (fsync'd writes, strict
  replay, crash-tolerant trailing-record handling);
* :mod:`repro.dynamic.driver` — the loadgen ``--updates`` driver that
  interleaves journaled weight changes with live verified queries
  against a running server (the DELTA op of
  :mod:`repro.serve.protocol`).

Scope: the decomposition tree is held **fixed** across updates, so the
supported update is a *reweight* of an existing edge (adds/removes can
change residual reachability and therefore which keys a label holds —
those still require an offline rebuild, and the CLI says so).  See
``docs/dynamic.md`` for the consistency model.
"""

from repro.dynamic.invalidate import (
    EdgeUpdate,
    affected_units,
    affected_units_bruteforce,
    affected_vertices,
    touched_path_keys,
)
from repro.dynamic.journal import (
    JOURNAL_FORMAT,
    JournalError,
    JournalRead,
    JournalWriter,
    read_journal,
    replay_journal,
)
from repro.dynamic.rebuild import (
    DeltaError,
    DynamicError,
    LabelDelta,
    apply_delta_to_labels,
    delta_from_dict,
    delta_to_dict,
    incremental_relabel,
)

__all__ = [
    "DeltaError",
    "DynamicError",
    "EdgeUpdate",
    "JOURNAL_FORMAT",
    "JournalError",
    "JournalRead",
    "JournalWriter",
    "LabelDelta",
    "affected_units",
    "affected_units_bruteforce",
    "affected_vertices",
    "apply_delta_to_labels",
    "delta_from_dict",
    "delta_to_dict",
    "incremental_relabel",
    "read_journal",
    "replay_journal",
    "touched_path_keys",
]
