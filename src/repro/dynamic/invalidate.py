"""Which labels can an edge update touch?  The affected-unit set.

Label construction is organized in ``(node, phase)`` *units*: the
portal entries written for unit ``(H, i)`` are a function of (a) the
residual ``J = J_i(H)``, (b) the weights of edges with **both**
endpoints in J (those are the only edges ``batched_dijkstra`` relaxes
when restricted to J), and (c) the prefix sums of phase i's separator
paths (only consecutive path edges contribute).  Reweighting edge
``{u, v}`` therefore leaves a unit's output untouched unless both u
and v lie in its residual.

Soundness argument, spelled out:

* If ``u not in J`` or ``v not in J`` then no relaxation inside J ever
  reads ``w(u, v)``, so every ``d_J(x, .)`` row is unchanged.  The
  prefix of a path of the unit can only change if u, v are consecutive
  on it — but path vertices are members of J (paths are peeled from
  the residual), so that case implies both endpoints are in J.
* Hence the labels that can change are exactly those written by units
  whose residual contains both endpoints, and the vertex set whose
  labels can change is the union of those residuals.

Minimality of the *unit* set is structural, not per-instance: a unit
whose residual contains both endpoints genuinely depends on the
updated weight (a different weight can change its output), even though
for a particular update the recomputation may reproduce identical
entries — the rebuild diff (:mod:`repro.dynamic.rebuild`) filters
those no-ops out of the delta.

Shape of the set: the nodes containing any fixed vertex form a
root-down chain of the decomposition tree (children partition
``H \\ S(H)``), so nodes containing *both* endpoints form a prefix of
both chains — we walk it directly instead of scanning every unit.
``affected_units_bruteforce`` is the definitional full scan kept for
the differential soundness tests.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, Hashable, List, Set, Tuple

from repro.core.decomposition import DecompositionTree, PathKey
from repro.util.errors import GraphError

Vertex = Hashable

# One affected unit: (node_id, phase_index, residual).
AffectedUnit = Tuple[int, int, FrozenSet[Vertex]]


@dataclass(frozen=True)
class EdgeUpdate:
    """A single edge reweight: set ``w(u, v) = weight``.

    The decomposition tree is held fixed across updates, so only
    reweights of *existing* edges are representable; structural changes
    (add/remove an edge) require an offline rebuild and are rejected at
    the API boundary (:func:`repro.dynamic.rebuild.incremental_relabel`).
    """

    u: Vertex
    v: Vertex
    weight: float

    def endpoints(self) -> Tuple[Vertex, Vertex]:
        return (self.u, self.v)


def affected_units(
    tree: DecompositionTree, u: Vertex, v: Vertex
) -> List[AffectedUnit]:
    """Units whose output can depend on the weight of edge ``{u, v}``.

    Returned in global unit order (the order ``tree.phase_units()``
    yields them), which is the order the offline build writes them —
    the rebuild relies on this for byte-identical output.
    """
    if u == v:
        raise GraphError("edge endpoints must differ")
    if u not in tree.home or v not in tree.home:
        missing = u if u not in tree.home else v
        raise GraphError(f"vertex {missing!r} is not in the decomposition tree")
    out: List[AffectedUnit] = []
    if not tree.nodes:
        return out
    node = tree.root()
    while True:
        # Node ids increase along any root-down chain, and phase_units()
        # lists phases of a node in ascending order, so appending along
        # the walk yields global unit order.
        for phase_idx, residual in node.residual_sets():
            if u in residual and v in residual:
                out.append((node.node_id, phase_idx, frozenset(residual)))
        next_node = None
        for child_id in node.children:
            child = tree.nodes[child_id]
            if u in child.vertices and v in child.vertices:
                next_node = child
                break
        if next_node is None:
            return out
        node = next_node


def affected_units_bruteforce(
    tree: DecompositionTree, u: Vertex, v: Vertex
) -> List[AffectedUnit]:
    """The definitional scan: every unit whose residual holds both
    endpoints, straight from ``tree.phase_units()``.  Used by the
    differential tests that pin :func:`affected_units` to the
    definition; O(total residual size) instead of O(chain)."""
    if u == v:
        raise GraphError("edge endpoints must differ")
    return [
        (node_id, phase_idx, residual)
        for node_id, phase_idx, residual in tree.phase_units()
        if u in residual and v in residual
    ]


def affected_vertices(
    tree: DecompositionTree, u: Vertex, v: Vertex
) -> Set[Vertex]:
    """Vertices whose labels can change when edge ``{u, v}`` is
    reweighted: the union of the affected units' residuals."""
    out: Set[Vertex] = set()
    for _, _, residual in affected_units(tree, u, v):
        out.update(residual)
    return out


def touched_path_keys(
    tree: DecompositionTree, u: Vertex, v: Vertex
) -> List[PathKey]:
    """Separator paths on which u and v are *consecutive* — the paths
    whose prefix sums read ``w(u, v)`` and must be recomputed.

    Any such path belongs to an affected unit: path vertices are
    members of the residual they were peeled from, so a path containing
    both endpoints certifies both are in that unit's residual.
    """
    out: List[PathKey] = []
    for key in tree.all_path_keys():
        path = tree.path_vertices(key)
        for a, b in zip(path, path[1:]):
            if (a == u and b == v) or (a == v and b == u):
                out.append(key)
                break
    return out
