"""Update-under-load driver — ``repro loadgen --updates``.

Interleaves edge-weight updates with live query traffic against a
running :class:`~repro.serve.server.OracleServer` and verifies, query
by query, that the served answers track the updates:

1. Phase 0 queries the pristine labels.
2. Each update picks a random existing edge, reweights it, runs
   :func:`~repro.dynamic.rebuild.incremental_relabel` locally, appends
   the delta to the journal (when one is given), and pushes it to the
   server with an epoch-gated ``DELTA`` apply.
3. The next query phase verifies served estimates **byte-exactly**
   against the updated in-memory labeling — the server must answer
   from the new labels, not stale ones, and never a mix.
4. After the last update the driver rebuilds the labeling from scratch
   on the mutated graph (same tree) and (a) byte-compares it with the
   incrementally maintained labels, (b) runs a final verification
   phase against that *fresh offline rebuild* — the end-to-end check
   that incremental serving equals full recomputation.

All query phases share one :class:`~repro.serve.client.ResilientClient`
and one :class:`~repro.serve.loadgen.LoadgenReport`, so the totals read
like a single run (elapsed time is accumulated across phases by hand —
:func:`run_loadgen` overwrites ``elapsed_s`` per call).
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass, field
from typing import List, Optional

from repro.core.labeling import DistanceLabeling, build_labeling
from repro.core.serialize import dump_labeling
from repro.dynamic.invalidate import EdgeUpdate
from repro.dynamic.journal import JournalWriter
from repro.dynamic.rebuild import delta_to_dict, incremental_relabel
from repro.obs import eventlog, metrics
from repro.serve.client import ClientError, RequestFailed, ResilientClient, RetryPolicy
from repro.serve.loadgen import LoadgenError, LoadgenReport, run_loadgen, synthesize_pairs
from repro.util.rng import derive_seed

__all__ = [
    "UpdateRunReport",
    "run_update_loadgen",
]


@dataclass
class UpdateRunReport:
    """What one ``--updates`` run did and observed."""

    loadgen: LoadgenReport = field(default_factory=LoadgenReport)
    updates_applied: int = 0
    update_failures: int = 0
    final_epoch: int = 0
    update_seconds: float = 0.0     # local relabel + journal + push, total
    rebuild_identical: Optional[bool] = None  # None: --verify-rebuild off
    rebuild_seconds: float = 0.0
    applied_edges: List[List] = field(default_factory=list)  # [u, v, old_w, new_w]

    @property
    def ok(self) -> bool:
        return (
            self.update_failures == 0
            and self.loadgen.mismatches == 0
            and self.rebuild_identical is not False
        )

    def rows(self) -> List[List]:
        rows = [
            ["updates_applied", self.updates_applied],
            ["update_failures", self.update_failures],
            ["final_epoch", self.final_epoch],
            ["update_seconds", round(self.update_seconds, 3)],
        ]
        if self.rebuild_identical is not None:
            rows.append(["rebuild_identical", self.rebuild_identical])
            rows.append(["rebuild_seconds", round(self.rebuild_seconds, 3)])
        return rows + self.loadgen.rows()

    def meta(self) -> dict:
        payload = dict(self.loadgen.meta())
        payload["updates"] = {
            "applied": self.updates_applied,
            "failures": self.update_failures,
            "final_epoch": self.final_epoch,
            "update_seconds": round(self.update_seconds, 4),
        }
        if self.rebuild_identical is not None:
            payload["updates"]["rebuild_identical"] = self.rebuild_identical
            payload["updates"]["rebuild_seconds"] = round(self.rebuild_seconds, 4)
        return payload


def _pick_update(rng: random.Random, graph) -> tuple:
    """A random existing edge and a new weight for it (never the old)."""
    edges = sorted(graph.edges(), key=repr)
    if not edges:
        raise LoadgenError("graph has no edges to update")
    u, v, old_w = edges[rng.randrange(len(edges))]
    new_w = round(float(old_w) * rng.uniform(0.5, 2.0), 9)
    if new_w == float(old_w) or new_w <= 0:
        new_w = float(old_w) + 0.5
    return u, v, new_w


async def run_update_loadgen(
    host: str,
    port: int,
    labeling: DistanceLabeling,
    *,
    updates: int = 10,
    queries_per_update: int = 30,
    verify_queries: int = 300,
    concurrency: int = 4,
    store: Optional[str] = None,
    journal: Optional[JournalWriter] = None,
    verify_rebuild: bool = True,
    request_timeout: float = 30.0,
    seed: int = 0,
) -> UpdateRunReport:
    """Drive *updates* journaled edge reweights against ``host:port``
    under live verified query load.  See the module docstring for the
    phase structure.  The *labeling* is mutated in place (its graph
    gets the new weights, its labels the incremental deltas); pass a
    throwaway copy if you need the original afterwards.

    Raises :class:`~repro.serve.loadgen.LoadgenError` for unusable
    parameters; a server that rejects a DELTA push is an
    ``update_failures`` row in the report, not an exception.
    """
    if updates < 1:
        raise LoadgenError(f"updates must be >= 1, got {updates}")
    if queries_per_update < 0 or verify_queries < 0:
        raise LoadgenError("query counts must be >= 0")

    report = UpdateRunReport()
    vertices = sorted(labeling.labels, key=repr)
    edge_rng = random.Random(derive_seed(seed, "updates.elements"))
    client = ResilientClient(
        [(host, port)],
        policy=RetryPolicy(attempts=1, attempt_timeout=request_timeout),
        store=store,
        seed=seed,
    )
    elapsed_total = 0.0

    async def query_phase(phase: int, count: int, verify) -> None:
        nonlocal elapsed_total
        if count <= 0:
            return
        pairs = synthesize_pairs(
            vertices, count, seed=derive_seed(seed, "updates.pairs", phase)
        )
        await run_loadgen(
            host,
            port,
            pairs,
            concurrency=concurrency,
            store=store,
            verify=verify,
            request_timeout=request_timeout,
            seed=seed,
            client=client,
            report=report.loadgen,
        )
        elapsed_total += report.loadgen.elapsed_s

    async def push(delta) -> bool:
        payload = {
            "op": "DELTA",
            "action": "apply",
            "delta": delta_to_dict(delta),
        }
        if store is not None:
            payload["store"] = store
        try:
            response = await client.call(payload)
        except (RequestFailed, ClientError) as exc:
            eventlog.warn(
                "dynamic.push.failed", epoch=delta.epoch, error=str(exc)
            )
            return False
        if not response.get("ok"):
            eventlog.warn(
                "dynamic.push.rejected", epoch=delta.epoch,
                error=response.get("error"),
            )
            return False
        report.final_epoch = max(report.final_epoch, int(response.get("epoch", 0)))
        return True

    try:
        # Phase 0: pristine labels.
        await query_phase(0, queries_per_update, labeling)
        for i in range(updates):
            u, v, new_w = _pick_update(edge_rng, labeling.graph)
            old_w = float(labeling.graph.weight(u, v))
            t0 = time.perf_counter()
            delta = incremental_relabel(labeling, EdgeUpdate(u, v, new_w))
            if journal is not None:
                journal.append(delta)
            pushed = await push(delta)
            report.update_seconds += time.perf_counter() - t0
            if pushed:
                report.updates_applied += 1
                report.applied_edges.append([u, v, old_w, new_w])
            else:
                report.update_failures += 1
            # Queries in this phase must see the *new* labels.
            await query_phase(i + 1, queries_per_update, labeling)
        # Final check: a from-scratch rebuild on the mutated graph.
        verify = labeling
        if verify_rebuild:
            t0 = time.perf_counter()
            fresh = build_labeling(
                labeling.graph, labeling.tree, labeling.epsilon
            )
            report.rebuild_seconds = time.perf_counter() - t0
            report.rebuild_identical = (
                dump_labeling(fresh) == dump_labeling(labeling)
            )
            verify = fresh
            if not report.rebuild_identical:
                eventlog.warn("dynamic.rebuild.mismatch")
        await query_phase(updates + 1, verify_queries, verify)
    finally:
        report.loadgen.elapsed_s = elapsed_total
        await client.close()
    metrics.gauge("dynamic.loadgen.updates", report.updates_applied)
    metrics.gauge("dynamic.loadgen.mismatches", report.loadgen.mismatches)
    return report
