"""``repro-label-journal/1`` — the append-only delta journal.

The journal is the durability story for incremental relabeling, in the
same spirit as the event-log sync pattern: instead of re-dumping the
whole labeling after every update, append the delta and replay on
load.  Layout is line-delimited JSON:

* line 1 — header: ``{"format": "repro-label-journal/1",
  "epsilon": ..., "source": ...}``;
* each further line — one record: ``{"crc": <crc32 of the canonical
  delta JSON>, "delta": {...}}`` where the delta body is
  :func:`repro.dynamic.rebuild.delta_to_dict`'s shape, epoch-stamped
  1, 2, 3, ... in file order.

Writes are appended, flushed, and ``fsync``'d per record, so a crash
can lose or tear at most the record being written.  The loader is
exactly as lenient as that failure mode requires and no more:

* a torn **final** record (truncated bytes, invalid JSON, wrong
  envelope shape, crc mismatch, or missing trailing newline) is
  skipped with a warning — :class:`JournalWriter` then truncates it on
  reopen before appending;
* a crc-*valid* record whose delta body fails strict validation is an
  error even at the tail (the crc proves those bytes were written
  deliberately — that is writer corruption, not a crash artifact);
* anything wrong before the final record is an error: an append-only
  writer cannot tear the middle of a file.
"""

from __future__ import annotations

import json
import os
import zlib
from dataclasses import dataclass, field
from pathlib import Path
from typing import List, Optional, Tuple, Union

from repro.dynamic.rebuild import (
    DeltaError,
    DynamicError,
    LabelDelta,
    apply_delta_to_labels,
    delta_from_dict,
    delta_to_dict,
)
from repro.obs import eventlog, metrics, span

#: The format stamp written into every journal header.
JOURNAL_FORMAT = "repro-label-journal/1"


class JournalError(DynamicError):
    """A journal cannot be read, written, or replayed."""


def canonical_delta_bytes(delta_dict: dict) -> bytes:
    """The bytes the record crc covers: sorted-key strict JSON of the
    delta body (independent of the envelope's own key layout)."""
    return json.dumps(
        delta_dict, sort_keys=True, separators=(",", ":"), allow_nan=False
    ).encode("utf-8")


@dataclass
class JournalRead:
    """A fully-validated journal: header fields plus its deltas in
    epoch order.  ``warnings`` holds at most one message (a skipped
    torn tail record); ``valid_bytes`` is the byte length of the valid
    prefix — what a reopening writer truncates to."""

    epsilon: float
    source: Optional[str]
    deltas: List[LabelDelta] = field(default_factory=list)
    warnings: List[str] = field(default_factory=list)
    valid_bytes: int = 0

    @property
    def last_epoch(self) -> int:
        return self.deltas[-1].epoch if self.deltas else 0


def _parse_header(line: bytes, path: Path) -> Tuple[float, Optional[str]]:
    try:
        header = json.loads(line.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise JournalError(f"{path}: invalid journal header: {exc}") from None
    if not isinstance(header, dict):
        raise JournalError(f"{path}: journal header is not an object")
    if header.get("format") != JOURNAL_FORMAT:
        raise JournalError(
            f"{path}: unknown journal format {header.get('format')!r} "
            f"(this build reads {JOURNAL_FORMAT})"
        )
    epsilon = header.get("epsilon")
    if isinstance(epsilon, bool) or not isinstance(epsilon, (int, float)):
        raise JournalError(f"{path}: journal header has no valid epsilon")
    epsilon = float(epsilon)
    if not epsilon > 0:
        raise JournalError(f"{path}: journal epsilon must be positive")
    source = header.get("source")
    if source is not None and not isinstance(source, str):
        raise JournalError(f"{path}: journal source must be a string")
    return epsilon, source


def _parse_record(line: bytes) -> LabelDelta:
    """One record line -> delta, or raise.

    The two failure layers matter to the caller: envelope problems
    (undecodable, bad JSON, wrong shape, crc mismatch) raise
    :class:`JournalError` and are forgivable at the tail; a crc-valid
    envelope whose delta body is invalid raises :class:`DeltaError`,
    which is never forgiven.
    """
    try:
        record = json.loads(line.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise JournalError(f"invalid record: {exc}") from None
    if (
        not isinstance(record, dict)
        or set(record) != {"crc", "delta"}
        or isinstance(record.get("crc"), bool)
        or not isinstance(record.get("crc"), int)
        or not isinstance(record.get("delta"), dict)
    ):
        raise JournalError(f"malformed record envelope {line[:80]!r}")
    expected = zlib.crc32(canonical_delta_bytes(record["delta"])) & 0xFFFFFFFF
    if record["crc"] != expected:
        raise JournalError(
            f"record crc mismatch (stored {record['crc']}, computed {expected})"
        )
    return delta_from_dict(record["delta"])


def read_journal(path: Union[str, Path]) -> JournalRead:
    """Load and validate a journal file.

    Strict everywhere except the single torn-tail case described in
    the module docstring, which lands in ``read.warnings`` instead of
    raising.  Epochs must be exactly 1..N in file order.
    """
    path = Path(path)
    try:
        raw = path.read_bytes()
    except OSError as exc:
        raise JournalError(f"cannot read journal {path}: {exc}") from None
    if not raw:
        raise JournalError(f"{path}: empty journal (no header)")
    lines = raw.split(b"\n")
    # A well-formed file ends with a newline, so the final split piece
    # is empty; a non-empty final piece is an unterminated (torn) line.
    terminated = lines[-1] == b""
    if terminated:
        lines = lines[:-1]
    if not lines:
        raise JournalError(f"{path}: empty journal (no header)")
    if not terminated and len(lines) == 1:
        raise JournalError(f"{path}: journal header line is unterminated")
    epsilon, source = _parse_header(lines[0], path)
    read = JournalRead(epsilon=epsilon, source=source)
    offset = len(lines[0]) + 1
    read.valid_bytes = offset
    for idx, line in enumerate(lines[1:]):
        is_tail = idx == len(lines) - 2
        torn = is_tail and not terminated
        try:
            if torn:
                raise JournalError("unterminated record (torn write)")
            delta = _parse_record(line)
        except DeltaError as exc:
            raise JournalError(
                f"{path}: record {idx + 1}: invalid delta: {exc}"
            ) from None
        except JournalError as exc:
            if is_tail:
                read.warnings.append(
                    f"{path}: skipped torn trailing record {idx + 1}: {exc}"
                )
                eventlog.warn(
                    "dynamic.journal.torn_tail", path=str(path), record=idx + 1
                )
                return read
            raise JournalError(f"{path}: record {idx + 1}: {exc}") from None
        expected_epoch = read.last_epoch + 1
        if delta.epoch != expected_epoch:
            raise JournalError(
                f"{path}: record {idx + 1}: epoch {delta.epoch} out of "
                f"sequence (expected {expected_epoch})"
            )
        if delta.epsilon != epsilon:
            raise JournalError(
                f"{path}: record {idx + 1}: delta epsilon {delta.epsilon} "
                f"differs from journal epsilon {epsilon}"
            )
        read.deltas.append(delta)
        offset += len(line) + 1
        read.valid_bytes = offset
    return read


class JournalWriter:
    """Append epoch-stamped deltas to a journal with fsync durability.

    Creating a writer on a fresh path writes (and fsyncs) the header;
    on an existing journal it validates the whole file first, adopts
    the last epoch, and — if the file ends in a torn record from a
    crashed writer — truncates the tear before appending.
    """

    def __init__(
        self,
        path: Union[str, Path],
        *,
        epsilon: float,
        source: Optional[str] = None,
    ) -> None:
        self.path = Path(path)
        self.epsilon = float(epsilon)
        self.source = source
        self.last_epoch = 0
        self._handle = None
        if self.path.exists() and self.path.stat().st_size > 0:
            read = read_journal(self.path)
            if read.epsilon != self.epsilon:
                raise JournalError(
                    f"{self.path}: journal epsilon {read.epsilon} differs "
                    f"from labeling epsilon {self.epsilon}"
                )
            self.last_epoch = read.last_epoch
            self._handle = open(self.path, "r+b")
            if read.warnings:
                self._handle.truncate(read.valid_bytes)
            self._handle.seek(0, os.SEEK_END)
        else:
            self._handle = open(self.path, "wb")
            header = {"format": JOURNAL_FORMAT, "epsilon": self.epsilon}
            if source is not None:
                header["source"] = source
            self._write_line(json.dumps(header, separators=(",", ":")))

    def _write_line(self, text: str) -> None:
        assert self._handle is not None
        self._handle.write(text.encode("utf-8") + b"\n")
        self._handle.flush()
        os.fsync(self._handle.fileno())

    def append(self, delta: LabelDelta) -> int:
        """Stamp (or verify) the next epoch, write one record, fsync.

        An unstamped delta (``epoch == 0``) receives ``last_epoch + 1``
        in place; a pre-stamped delta must already carry exactly that
        epoch.  Returns the epoch written.
        """
        if self._handle is None:
            raise JournalError(f"{self.path}: journal writer is closed")
        if delta.epsilon != self.epsilon:
            raise JournalError(
                f"delta epsilon {delta.epsilon} differs from journal "
                f"epsilon {self.epsilon}"
            )
        expected = self.last_epoch + 1
        if delta.epoch == 0:
            delta.epoch = expected
        elif delta.epoch != expected:
            raise JournalError(
                f"delta epoch {delta.epoch} out of sequence "
                f"(journal expects {expected})"
            )
        body = delta_to_dict(delta)
        crc = zlib.crc32(canonical_delta_bytes(body)) & 0xFFFFFFFF
        self._write_line(
            json.dumps({"crc": crc, "delta": body}, separators=(",", ":"))
        )
        self.last_epoch = delta.epoch
        metrics.inc("dynamic.journal.appends")
        return delta.epoch

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    def __enter__(self) -> "JournalWriter":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def replay_journal(read: JournalRead, labeling) -> int:
    """Replay a loaded journal onto a labeling, in place.

    Brings a freshly-loaded (graph, tree, labels) triple up to the
    journal's last epoch: each delta's reweight is applied to the
    graph (after checking the edge exists and its current weight
    matches the recorded ``old_w`` — replaying against the wrong base
    graph is detected, not absorbed), its label changes are applied,
    and finally every path prefix is recomputed from the final weights
    so subsequent :func:`repro.dynamic.rebuild.incremental_relabel`
    calls see a consistent tree.  Returns the number of deltas
    replayed.
    """
    if read.epsilon != labeling.epsilon:
        raise JournalError(
            f"journal epsilon {read.epsilon} differs from labeling "
            f"epsilon {labeling.epsilon}"
        )
    graph, tree = labeling.graph, labeling.tree
    with span("dynamic.journal.replay", deltas=len(read.deltas)):
        for delta in read.deltas:
            u, v = delta.update.u, delta.update.v
            if not graph.has_edge(u, v):
                raise JournalError(
                    f"epoch {delta.epoch}: journal reweights missing edge "
                    f"{u!r} -- {v!r} (wrong base graph?)"
                )
            current = float(graph.weight(u, v))
            if current != delta.old_weight:
                raise JournalError(
                    f"epoch {delta.epoch}: edge {u!r} -- {v!r} has weight "
                    f"{current}, journal expected {delta.old_weight} "
                    f"(wrong base graph or journal order?)"
                )
            graph.add_edge(u, v, delta.update.weight)
            try:
                apply_delta_to_labels(labeling.labels, delta)
            except DeltaError as exc:
                raise JournalError(f"epoch {delta.epoch}: {exc}") from None
            metrics.inc("dynamic.journal.replayed")
        if read.deltas:
            for key in tree.all_path_keys():
                tree.recompute_prefix(key)
    return len(read.deltas)
