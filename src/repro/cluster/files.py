"""On-disk layout of a file-backed cluster, and the shard splitter.

A cluster data directory looks like::

    DIR/cluster-map.json        the authored map (ports may be 0)
    DIR/cluster-map.live.json   written by `cluster up` once ports are bound
    DIR/shards/shard-0000.bin   canonical full shard set (binary codec)
    DIR/shards/...
    DIR/nodes/<id>/shard-0000.bin   per-node replicas (copies of canonical)

The splitter partitions one labeling into ``num_shards`` pack files by
the *same* hash the router uses (``ClusterMap.shard_of``, i.e. CRC-32
of the canonical vertex key), so the node that a client routes a
vertex to is exactly the node whose pack files contain its label.
Each per-shard file is a complete, self-describing
``repro-distance-labels/2`` pack — a node opens its shards mmap'd in
O(1) with no knowledge of the rest of the cluster's data.

Empty shards are legal and produce valid empty pack files (a cluster
with more shards than vertices simply has some empty replicas).
"""

from __future__ import annotations

import shutil
from pathlib import Path
from typing import Dict, List, Tuple, Union

from repro.core.serialize import RemoteLabels, dump_labeling, load_labeling
from repro.cluster.map import ClusterMap, ClusterMapError, store_name_for_shard

__all__ = [
    "MAP_FILE",
    "LIVE_MAP_FILE",
    "SHARDS_DIR",
    "NODES_DIR",
    "split_labels",
    "populate_nodes",
    "node_dir",
    "shard_path",
]

MAP_FILE = "cluster-map.json"
LIVE_MAP_FILE = "cluster-map.live.json"
SHARDS_DIR = "shards"
NODES_DIR = "nodes"

#: Internal hash-bucket count of each per-shard pack file.  This is the
#: binfmt's *intra-file* sharding (lookup buckets), unrelated to the
#: cluster's shard count; small files don't need many buckets.
_PACK_BUCKETS = 8


def shard_path(root: Union[str, Path], shard: int) -> Path:
    """Canonical pack file of global shard *shard*."""
    return Path(root) / SHARDS_DIR / f"{store_name_for_shard(shard)}.bin"


def node_dir(root: Union[str, Path], node_id: str) -> Path:
    """Data directory of node *node_id*."""
    return Path(root) / NODES_DIR / node_id


def split_labels(
    labels_path: Union[str, Path],
    root: Union[str, Path],
    cluster_map: ClusterMap,
) -> List[Path]:
    """Split the labeling at *labels_path* into per-shard binary packs
    under ``root/shards/``, one file per shard of *cluster_map*.

    Returns the written paths (one per shard, ascending).  The union of
    the written packs is exactly the input labeling, and every vertex
    lands in the shard ``cluster_map.shard_of`` routes it to.
    """
    labeling = load_labeling(labels_path)
    buckets: Dict[int, dict] = {s: {} for s in range(cluster_map.num_shards)}
    for v, label in labeling.labels.items():
        buckets[cluster_map.shard_of(v)][v] = label
    out_dir = Path(root) / SHARDS_DIR
    out_dir.mkdir(parents=True, exist_ok=True)
    written: List[Path] = []
    for shard in range(cluster_map.num_shards):
        path = shard_path(root, shard)
        dump_labeling(
            RemoteLabels(epsilon=labeling.epsilon, labels=buckets[shard]),
            path,
            codec="binary",
            num_shards=_PACK_BUCKETS,
        )
        written.append(path)
    return written


def populate_nodes(root: Union[str, Path], cluster_map: ClusterMap) -> Dict[str, List[Path]]:
    """Copy canonical shard packs into each node's data directory
    according to *cluster_map*'s assignments.

    Idempotent: existing copies are overwritten.  Returns
    ``{node_id: [paths copied]}``.
    """
    placed: Dict[str, List[Path]] = {}
    for node in cluster_map.nodes:
        dest_dir = node_dir(root, node.id)
        dest_dir.mkdir(parents=True, exist_ok=True)
        placed[node.id] = []
        for shard in cluster_map.shards_of_node(node.id):
            src = shard_path(root, shard)
            if not src.is_file():
                raise ClusterMapError(
                    f"canonical shard file missing: {src} "
                    f"(run split_labels / `repro cluster init` first)"
                )
            dest = dest_dir / src.name
            shutil.copyfile(src, dest)
            placed[node.id].append(dest)
    return placed


def node_shard_files(root: Union[str, Path], node_id: str) -> List[Path]:
    """The shard pack files currently present in *node_id*'s directory,
    sorted by shard number."""
    directory = node_dir(root, node_id)
    if not directory.is_dir():
        return []
    return sorted(directory.glob("shard-*.bin"))


def owned_shards(root: Union[str, Path], node_id: str) -> Tuple[int, ...]:
    """Shard numbers whose pack files are present for *node_id*."""
    shards = []
    for path in node_shard_files(root, node_id):
        stem = path.stem
        try:
            shards.append(int(stem.split("-", 1)[1]))
        except (IndexError, ValueError):
            continue
    return tuple(shards)
