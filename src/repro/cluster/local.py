"""Local N-node cluster orchestration (`repro cluster up` / chaos).

:func:`init_cluster` turns one labels file into a cluster data
directory (map + canonical shards + per-node replicas);
:class:`LocalCluster` launches one ``repro serve`` subprocess per node
on ephemeral ports, resolves the bind-time chicken-and-egg, and can
kill or drain nodes — the primitive under ``repro cluster up`` and
``repro chaos --cluster``.

The chicken-and-egg: a node must load the map before binding (it needs
its shard assignment), but the map cannot carry real addresses until
every node has bound its ephemeral port.  Resolution, in order:

1. children start from the authored map (ports 0) and announce
   ``ready HOST:PORT`` on stdout once bound;
2. the parent collects the announcements, builds the **live map**
   (same assignments, real addresses, epoch+1), and writes it to
   ``cluster-map.live.json`` for clients;
3. the parent pushes the live map to every node via ``MAP set`` —
   exercising the same epoch-gated push path a rebalance uses.
"""

from __future__ import annotations

import asyncio
import os
import signal
import sys
from pathlib import Path
from typing import Dict, List, Optional, Tuple, Union

from repro.core.serialize import load_labeling
from repro.cluster.files import (
    LIVE_MAP_FILE,
    MAP_FILE,
    node_dir,
    node_shard_files,
    populate_nodes,
    split_labels,
)
from repro.cluster.map import ClusterMap, ClusterMapError
from repro.obs import eventlog
from repro.util.errors import ReproError

__all__ = ["ClusterUpError", "LocalCluster", "init_cluster"]


class ClusterUpError(ReproError):
    """A local cluster that cannot be initialized or launched."""


def init_cluster(
    labels_path: Union[str, Path],
    root: Union[str, Path],
    *,
    nodes: int = 3,
    replication: int = 2,
    num_shards: int = 16,
    seed: int = 0,
) -> ClusterMap:
    """Create a cluster data directory at *root* from one labels file.

    Writes the authored map (epoch 1, ports unassigned), the canonical
    per-shard packs, and every node's replica copies.  Node ids are
    ``n0..n{N-1}``; the labeling's epsilon is stamped into the map so
    clients can combine labels without holding any labels file.
    """
    if nodes < 1:
        raise ClusterUpError(f"need at least one node, got {nodes}")
    labeling = load_labeling(labels_path)
    cluster_map = ClusterMap.build(
        [f"n{i}" for i in range(nodes)],
        num_shards=num_shards,
        replication=replication,
        seed=seed,
        epoch=1,
        epsilon=labeling.epsilon,
    )
    root = Path(root)
    root.mkdir(parents=True, exist_ok=True)
    split_labels(labels_path, root, cluster_map)
    populate_nodes(root, cluster_map)
    cluster_map.dump(root / MAP_FILE)
    return cluster_map


class LocalCluster:
    """One ``repro serve`` subprocess per node of a file-backed cluster.

    Usage::

        cluster = LocalCluster(root)
        live_map = await cluster.start()
        ...
        cluster.kill("n1")           # chaos: SIGKILL mid-load
        results = await cluster.stop()  # SIGTERM + drain the rest
    """

    def __init__(
        self,
        root: Union[str, Path],
        *,
        cache: int = 4096,
        host: str = "127.0.0.1",
        python: Optional[str] = None,
        ready_timeout: float = 60.0,
    ) -> None:
        self.root = Path(root)
        try:
            self.map = ClusterMap.load(self.root / MAP_FILE)
        except ClusterMapError as exc:
            raise ClusterUpError(str(exc)) from None
        self.cache = cache
        self.host = host
        self.python = python or sys.executable
        self.ready_timeout = ready_timeout
        self.live_map: Optional[ClusterMap] = None
        self._procs: Dict[str, asyncio.subprocess.Process] = {}
        self._stdout: Dict[str, List[str]] = {}
        self._readers: Dict[str, asyncio.Task] = {}
        self._killed: set = set()

    # -- lifecycle ------------------------------------------------------
    def _serve_argv(self, node_id: str) -> List[str]:
        shard_files = node_shard_files(self.root, node_id)
        if not shard_files:
            raise ClusterUpError(
                f"node {node_id!r} has no shard files under "
                f"{node_dir(self.root, node_id)}; run init first"
            )
        argv = [self.python, "-m", "repro.cli", "serve"]
        for path in shard_files:
            argv += ["--labels", str(path)]
        argv += [
            "--host", self.host,
            "--port", "0",
            "--cache", str(self.cache),
            "--cluster-map", str(self.root / MAP_FILE),
            "--cluster-node", node_id,
        ]
        return argv

    async def _spawn(self, node_id: str) -> Tuple[str, int]:
        proc = await asyncio.create_subprocess_exec(
            *self._serve_argv(node_id),
            stdout=asyncio.subprocess.PIPE,
            stderr=asyncio.subprocess.DEVNULL,
            env=dict(os.environ),
        )
        self._procs[node_id] = proc
        self._stdout[node_id] = []
        address = None
        try:
            while True:
                line = await asyncio.wait_for(
                    proc.stdout.readline(), self.ready_timeout
                )
                if not line:
                    raise ClusterUpError(
                        f"node {node_id!r} exited before announcing readiness"
                    )
                text = line.decode("utf-8", "replace").rstrip()
                self._stdout[node_id].append(text)
                if text.startswith("ready "):
                    host, _, port = text[len("ready "):].rpartition(":")
                    address = (host, int(port))
                    break
        except asyncio.TimeoutError:
            raise ClusterUpError(
                f"node {node_id!r} did not announce readiness within "
                f"{self.ready_timeout}s"
            ) from None
        # Keep draining stdout in the background: a full pipe would
        # block the child's final drain report.
        self._readers[node_id] = asyncio.ensure_future(
            self._drain_stdout(node_id, proc)
        )
        return address

    async def _drain_stdout(self, node_id: str, proc) -> None:
        while True:
            line = await proc.stdout.readline()
            if not line:
                return
            self._stdout[node_id].append(
                line.decode("utf-8", "replace").rstrip()
            )

    async def start(self) -> ClusterMap:
        """Launch every node, build and push the live map; returns it."""
        addresses: Dict[str, Tuple[str, int]] = {}
        try:
            for node in self.map.nodes:
                addresses[node.id] = await self._spawn(node.id)
        except ClusterUpError:
            await self.stop(grace=2.0)
            raise
        self.live_map = self.map.with_addresses(addresses)
        self.live_map.dump(self.root / LIVE_MAP_FILE)
        await self._push_map(self.live_map)
        eventlog.info(
            "cluster.up",
            nodes=len(addresses),
            epoch=self.live_map.epoch,
            shards=self.live_map.num_shards,
            replication=self.live_map.replication,
        )
        return self.live_map

    async def _push_map(self, live_map: ClusterMap) -> None:
        """Push *live_map* to every node via MAP set (the same
        epoch-gated path a rebalance uses)."""
        from repro.serve.client import ClientError, RequestFailed, ResilientClient

        wire = live_map.to_dict()
        for node in live_map.nodes:
            client = ResilientClient([node.address])
            try:
                await client.call(
                    {"op": "MAP", "action": "set", "map": wire}
                )
            except (ClientError, RequestFailed) as exc:
                raise ClusterUpError(
                    f"map push to node {node.id!r} failed: {exc}"
                ) from None
            finally:
                await client.close()

    # -- chaos ----------------------------------------------------------
    def kill(self, node_id: str, sig: int = signal.SIGKILL) -> None:
        """Kill one node without warning (the chaos primitive)."""
        proc = self._procs.get(node_id)
        if proc is None or proc.returncode is not None:
            raise ClusterUpError(f"node {node_id!r} is not running")
        proc.send_signal(sig)
        self._killed.add(node_id)
        eventlog.info("cluster.kill", node=node_id, signal=int(sig))

    def victim_for(self, shard: int) -> str:
        """A running replica of *shard* to kill (the first one)."""
        for node_id in (self.live_map or self.map).assignments[shard]:
            proc = self._procs.get(node_id)
            if proc is not None and proc.returncode is None:
                return node_id
        raise ClusterUpError(f"no running replica of shard {shard}")

    @property
    def running(self) -> List[str]:
        return [
            node_id
            for node_id, proc in self._procs.items()
            if proc.returncode is None
        ]

    # -- teardown -------------------------------------------------------
    async def stop(self, grace: float = 15.0) -> Dict[str, dict]:
        """SIGTERM every running node and wait for a clean drain.

        Returns per-node ``{"returncode", "killed", "drained"}`` where
        *drained* means the child printed its drain report (the serve
        CLI's last line) before exiting.
        """
        for node_id, proc in self._procs.items():
            if proc.returncode is None and node_id not in self._killed:
                try:
                    proc.send_signal(signal.SIGTERM)
                except ProcessLookupError:
                    pass
        results: Dict[str, dict] = {}
        for node_id, proc in self._procs.items():
            try:
                await asyncio.wait_for(proc.wait(), grace)
            except asyncio.TimeoutError:
                proc.kill()
                await proc.wait()
            reader = self._readers.get(node_id)
            if reader is not None:
                try:
                    await asyncio.wait_for(reader, 2.0)
                except asyncio.TimeoutError:
                    reader.cancel()
            results[node_id] = {
                "returncode": proc.returncode,
                "killed": node_id in self._killed,
                "drained": any(
                    line.startswith("drained:")
                    for line in self._stdout.get(node_id, [])
                ),
            }
        return results

    def stdout_of(self, node_id: str) -> List[str]:
        return list(self._stdout.get(node_id, []))
