"""Rebalance planning: diff two cluster maps into minimal shard moves.

Because placement is rendezvous hashing, changing the node set only
reassigns the shards whose top-R score order actually changed — the
diff here is exactly that delta, expressed as **copies** (a node gains
a replica of a shard) and **drops** (a node is no longer a replica).

A plan is executed against the file-backed layout of
:mod:`repro.cluster.files`: each copy duplicates an existing replica's
pack file into the gaining node's directory (falling back to the
canonical ``shards/`` copy when no old replica has it on disk), and
drops are deletions — applied only when asked, because keeping a stale
replica is harmless while deleting a needed one is not.

``apply_plan`` finishes by writing the target map with its epoch
bumped past the source's, so nodes restarted on the new layout reject
requests routed by the old map.
"""

from __future__ import annotations

import shutil
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Tuple, Union

from repro.cluster.files import MAP_FILE, node_dir, shard_path
from repro.cluster.map import ClusterMap, ClusterMapError, store_name_for_shard

__all__ = ["ShardCopy", "ShardDrop", "RebalancePlan", "diff_maps", "apply_plan"]


@dataclass(frozen=True)
class ShardCopy:
    """Node *dst* must gain a replica of *shard*; *src* is the
    preferred donor (an old replica), or None when only the canonical
    copy can serve as the source."""

    shard: int
    dst: str
    src: str = None  # type: ignore[assignment]


@dataclass(frozen=True)
class ShardDrop:
    """Node *node* holds a replica of *shard* the target map no longer
    assigns to it."""

    shard: int
    node: str


@dataclass
class RebalancePlan:
    old_epoch: int
    new_epoch: int
    copies: List[ShardCopy]
    drops: List[ShardDrop]

    @property
    def moved_shards(self) -> int:
        return len({c.shard for c in self.copies})

    def to_dict(self) -> dict:
        return {
            "old_epoch": self.old_epoch,
            "new_epoch": self.new_epoch,
            "copies": [
                {"shard": c.shard, "dst": c.dst, "src": c.src} for c in self.copies
            ],
            "drops": [{"shard": d.shard, "node": d.node} for d in self.drops],
        }


def diff_maps(old: ClusterMap, new: ClusterMap) -> RebalancePlan:
    """The minimal copy/drop set that turns *old*'s data placement into
    *new*'s.

    Minimal means: one copy per (shard, gaining node) and one drop per
    (shard, losing node); a shard whose replica set is unchanged
    contributes nothing, and replica *order* changes alone (primary
    preference) move no data.
    """
    if old.num_shards != new.num_shards:
        raise ClusterMapError(
            f"cannot rebalance across shard counts "
            f"({old.num_shards} -> {new.num_shards}); resplit instead"
        )
    copies: List[ShardCopy] = []
    drops: List[ShardDrop] = []
    for shard in range(old.num_shards):
        old_set = set(old.assignments[shard])
        new_set = set(new.assignments[shard])
        donors = sorted(old_set & new_set) or sorted(old_set)
        donor = donors[0] if donors else None
        for node_id in sorted(new_set - old_set):
            copies.append(ShardCopy(shard=shard, dst=node_id, src=donor))
        for node_id in sorted(old_set - new_set):
            drops.append(ShardDrop(shard=shard, node=node_id))
    return RebalancePlan(
        old_epoch=old.epoch,
        new_epoch=max(new.epoch, old.epoch + 1),
        copies=copies,
        drops=drops,
    )


def apply_plan(
    root: Union[str, Path],
    plan: RebalancePlan,
    new_map: ClusterMap,
    *,
    prune: bool = False,
) -> Dict[str, int]:
    """Execute *plan* against the cluster directory *root*.

    Copies run first (grow before shrink, so every shard always has a
    live replica on disk); drops only delete files when *prune* is
    true.  The target map is then written to ``root/cluster-map.json``
    with epoch ``plan.new_epoch``.

    Returns ``{"copied": n, "pruned": n, "skipped": n}`` where skipped
    counts copies whose destination already had the file.
    """
    root = Path(root)
    stats = {"copied": 0, "pruned": 0, "skipped": 0}
    for copy in plan.copies:
        name = f"{store_name_for_shard(copy.shard)}.bin"
        dest_dir = node_dir(root, copy.dst)
        dest = dest_dir / name
        if dest.is_file():
            stats["skipped"] += 1
            continue
        src = node_dir(root, copy.src) / name if copy.src else None
        if src is None or not src.is_file():
            src = shard_path(root, copy.shard)
        if not src.is_file():
            raise ClusterMapError(
                f"no source replica for shard {copy.shard}: neither a donor "
                f"node nor {src} has the pack file"
            )
        dest_dir.mkdir(parents=True, exist_ok=True)
        shutil.copyfile(src, dest)
        stats["copied"] += 1
    if prune:
        for drop in plan.drops:
            victim = node_dir(root, drop.node) / f"{store_name_for_shard(drop.shard)}.bin"
            if victim.is_file():
                victim.unlink()
                stats["pruned"] += 1
    new_map.with_epoch(plan.new_epoch).dump(root / MAP_FILE)
    return stats
