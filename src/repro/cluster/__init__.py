"""Replicated shard catalog with client-side routing (`repro.cluster`).

The serving layer's multi-node story, following the "centralized
metadata, decentralized data" model: a small versioned **cluster map**
(:mod:`repro.cluster.map`) says which node replicates which shard;
every node carries the whole map and a subset of the data.  Placement
is deterministic rendezvous hashing, staleness is an epoch counter,
and the client (:mod:`repro.cluster.client`) routes by the map,
fails over across replicas, and — when no single node can answer —
falls back to fetching both labels and combining locally, exactly
what the paper's distance-labeling guarantee makes possible.

See docs/cluster.md for the full format and semantics.
"""

from repro.cluster.client import ClusterClient
from repro.cluster.files import (
    LIVE_MAP_FILE,
    MAP_FILE,
    populate_nodes,
    split_labels,
)
from repro.cluster.local import ClusterUpError, LocalCluster, init_cluster
from repro.cluster.map import (
    FORMAT,
    ClusterMap,
    ClusterMapError,
    ClusterNodeState,
    NodeInfo,
    store_name_for_shard,
)
from repro.cluster.plan import (
    RebalancePlan,
    ShardCopy,
    ShardDrop,
    apply_plan,
    diff_maps,
)

__all__ = [
    "FORMAT",
    "LIVE_MAP_FILE",
    "MAP_FILE",
    "ClusterClient",
    "ClusterMap",
    "ClusterMapError",
    "ClusterNodeState",
    "ClusterUpError",
    "LocalCluster",
    "NodeInfo",
    "RebalancePlan",
    "ShardCopy",
    "ShardDrop",
    "apply_plan",
    "diff_maps",
    "init_cluster",
    "populate_nodes",
    "split_labels",
    "store_name_for_shard",
]
