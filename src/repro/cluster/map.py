"""The replicated cluster map: ``repro-cluster-map/1``.

A cluster map is the *centralized metadata* of the serving cluster
(the "centralized metadata, decentralized data" model): one small,
versioned JSON document that says which node holds which shard.  Every
node carries a full copy and serves it over the ``MAP`` protocol op;
label data itself stays sharded across nodes.

Placement is **deterministic rendezvous (HRW) hashing**: the replica
set of shard *s* is the R nodes with the highest scores
``derive_seed(seed, "place", s, node_id)``.  The same ``(seed, nodes,
num_shards, replication)`` always produces the same assignments, and
adding or removing one node only moves the shards that node gains or
loses — the property the rebalance planner
(:mod:`repro.cluster.plan`) turns into minimal pack-file copies.

Staleness is an **epoch counter**: every mutation of the map (address
assignment at cluster-up, a rebalance apply, a MAP push) bumps it.
Clients stamp data requests with the epoch of the map they routed by;
a node whose epoch disagrees answers with a typed ``stale_map`` error,
which is the client's cue to refresh its map and re-route (see
:class:`repro.cluster.client.ClusterClient`).

Wire form::

    {"format": "repro-cluster-map/1",
     "epoch": 2,
     "seed": 0,
     "epsilon": 0.25,
     "num_shards": 16,
     "replication": 2,
     "nodes": [{"id": "n0", "host": "127.0.0.1", "port": 7501}, ...],
     "assignments": [["n0", "n2"], ["n1", "n0"], ...]}

``assignments[s]`` is shard *s*'s ordered replica list (first entry is
the preferred primary).  ``epsilon`` is the labeling's approximation
parameter, carried so a client that combines two remotely fetched
labels can report it without holding any labels file.
"""

from __future__ import annotations

import json
import zlib
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Hashable, List, Mapping, Optional, Sequence, Tuple, Union

from repro.core.serialize import shard_key_bytes
from repro.util.errors import ReproError
from repro.util.rng import derive_seed

Vertex = Hashable

__all__ = [
    "FORMAT",
    "ClusterMap",
    "ClusterMapError",
    "ClusterNodeState",
    "NodeInfo",
    "store_name_for_shard",
]

FORMAT = "repro-cluster-map/1"

#: Shard-store naming convention shared by the file splitter, the serve
#: catalog, and the cluster view: global shard *s* lives in the store
#: (and pack file stem) ``shard-%04d``.
_STORE_PREFIX = "shard-"


def store_name_for_shard(shard: int) -> str:
    """Store / pack-file stem of global shard *shard* (``shard-0007``)."""
    return f"{_STORE_PREFIX}{shard:04d}"


class ClusterMapError(ReproError):
    """A cluster map that cannot be built, loaded, or validated."""


@dataclass(frozen=True)
class NodeInfo:
    """One serve node: a stable id plus its (possibly not yet bound)
    TCP address.  Port 0 means "not assigned yet" — the placeholder a
    map carries between ``cluster init`` and ``cluster up``."""

    id: str
    host: str = "127.0.0.1"
    port: int = 0

    @property
    def address(self) -> Tuple[str, int]:
        return (self.host, self.port)

    @classmethod
    def from_dict(cls, payload) -> "NodeInfo":
        if not isinstance(payload, dict):
            raise ClusterMapError(f"node must be an object, got {payload!r}")
        node_id = payload.get("id")
        if not isinstance(node_id, str) or not node_id:
            raise ClusterMapError(f"node id must be a non-empty string: {payload!r}")
        host = payload.get("host", "127.0.0.1")
        if not isinstance(host, str) or not host:
            raise ClusterMapError(f"node {node_id!r} host must be a string")
        port = payload.get("port", 0)
        if isinstance(port, bool) or not isinstance(port, int) or port < 0:
            raise ClusterMapError(f"node {node_id!r} port must be an int >= 0")
        return cls(id=node_id, host=host, port=port)

    def to_dict(self) -> dict:
        return {"id": self.id, "host": self.host, "port": self.port}


class ClusterMap:
    """Immutable shard->replica-set assignment at one epoch."""

    def __init__(
        self,
        nodes: Sequence[NodeInfo],
        assignments: Sequence[Tuple[str, ...]],
        *,
        epoch: int = 1,
        seed: int = 0,
        replication: int = 1,
        epsilon: float = 0.0,
    ) -> None:
        self.nodes: Tuple[NodeInfo, ...] = tuple(nodes)
        self.assignments: Tuple[Tuple[str, ...], ...] = tuple(
            tuple(a) for a in assignments
        )
        self.epoch = int(epoch)
        self.seed = int(seed)
        self.replication = int(replication)
        self.epsilon = float(epsilon)
        self._by_id: Dict[str, NodeInfo] = {n.id: n for n in self.nodes}
        self._validate()

    # -- construction ---------------------------------------------------
    @classmethod
    def build(
        cls,
        node_ids: Sequence[str],
        *,
        num_shards: int,
        replication: int,
        seed: int = 0,
        epoch: int = 1,
        epsilon: float = 0.0,
        hosts: Optional[Mapping[str, Tuple[str, int]]] = None,
    ) -> "ClusterMap":
        """Place *num_shards* shards on *node_ids* by rendezvous hashing.

        Shard *s* goes to the *replication* nodes with the highest
        ``derive_seed(seed, "place", s, node_id)`` scores, ordered by
        descending score (ties broken by node id, which cannot recur
        since ids are unique).  Deterministic in all arguments.
        """
        ids = list(node_ids)
        if len(set(ids)) != len(ids):
            raise ClusterMapError(f"duplicate node ids in {ids!r}")
        if not ids:
            raise ClusterMapError("a cluster needs at least one node")
        if num_shards < 1:
            raise ClusterMapError(f"num_shards must be >= 1, got {num_shards}")
        if not 1 <= replication <= len(ids):
            raise ClusterMapError(
                f"replication must be in [1, {len(ids)}], got {replication}"
            )
        assignments = []
        for shard in range(num_shards):
            scored = sorted(
                ids,
                key=lambda node_id: (-derive_seed(seed, "place", shard, node_id),
                                     node_id),
            )
            assignments.append(tuple(scored[:replication]))
        hosts = hosts or {}
        nodes = [
            NodeInfo(id=node_id, *()) if node_id not in hosts
            else NodeInfo(node_id, hosts[node_id][0], hosts[node_id][1])
            for node_id in ids
        ]
        return cls(
            nodes,
            assignments,
            epoch=epoch,
            seed=seed,
            replication=replication,
            epsilon=epsilon,
        )

    def _validate(self) -> None:
        if len(self._by_id) != len(self.nodes):
            dupes = sorted(
                {n.id for n in self.nodes if sum(m.id == n.id for m in self.nodes) > 1}
            )
            raise ClusterMapError(f"duplicate node ids: {dupes}")
        if not self.nodes:
            raise ClusterMapError("a cluster map needs at least one node")
        if not self.assignments:
            raise ClusterMapError("a cluster map needs at least one shard")
        if self.epoch < 0:
            raise ClusterMapError(f"epoch must be >= 0, got {self.epoch}")
        if not 1 <= self.replication <= len(self.nodes):
            raise ClusterMapError(
                f"replication must be in [1, {len(self.nodes)}], "
                f"got {self.replication}"
            )
        for shard, replicas in enumerate(self.assignments):
            if len(replicas) != self.replication:
                raise ClusterMapError(
                    f"shard {shard} has {len(replicas)} replicas, "
                    f"expected {self.replication}"
                )
            if len(set(replicas)) != len(replicas):
                raise ClusterMapError(f"shard {shard} repeats a replica: {replicas}")
            for node_id in replicas:
                if node_id not in self._by_id:
                    raise ClusterMapError(
                        f"shard {shard} assigned to unknown node {node_id!r}"
                    )

    # -- routing --------------------------------------------------------
    @property
    def num_shards(self) -> int:
        return len(self.assignments)

    def shard_of(self, v: Vertex) -> int:
        """Global shard of vertex *v* (CRC-32 of its canonical wire
        key — the same function the in-store shard router uses, so a
        vertex's cluster shard and its file placement agree)."""
        return zlib.crc32(shard_key_bytes(v)) % self.num_shards

    def node(self, node_id: str) -> NodeInfo:
        try:
            return self._by_id[node_id]
        except KeyError:
            raise ClusterMapError(f"unknown node {node_id!r}") from None

    def replicas_for(self, shard: int) -> Tuple[NodeInfo, ...]:
        """Ordered replica set of *shard* (preferred primary first)."""
        if not 0 <= shard < self.num_shards:
            raise ClusterMapError(
                f"shard {shard} out of range [0, {self.num_shards})"
            )
        return tuple(self._by_id[node_id] for node_id in self.assignments[shard])

    def nodes_for(self, v: Vertex) -> Tuple[NodeInfo, ...]:
        """Replica set holding the label of vertex *v*."""
        return self.replicas_for(self.shard_of(v))

    def shards_of_node(self, node_id: str) -> Tuple[int, ...]:
        """Every shard *node_id* holds a replica of, ascending."""
        self.node(node_id)
        return tuple(
            shard
            for shard, replicas in enumerate(self.assignments)
            if node_id in replicas
        )

    # -- evolution ------------------------------------------------------
    def with_addresses(
        self, addresses: Mapping[str, Tuple[str, int]], *, bump_epoch: bool = True
    ) -> "ClusterMap":
        """A copy with some nodes' addresses replaced (cluster-up binds
        ephemeral ports, then publishes the real addresses this way)."""
        for node_id in addresses:
            self.node(node_id)
        nodes = [
            NodeInfo(n.id, *addresses[n.id]) if n.id in addresses else n
            for n in self.nodes
        ]
        return ClusterMap(
            nodes,
            self.assignments,
            epoch=self.epoch + (1 if bump_epoch else 0),
            seed=self.seed,
            replication=self.replication,
            epsilon=self.epsilon,
        )

    def with_epoch(self, epoch: int) -> "ClusterMap":
        return ClusterMap(
            self.nodes,
            self.assignments,
            epoch=epoch,
            seed=self.seed,
            replication=self.replication,
            epsilon=self.epsilon,
        )

    # -- serialization --------------------------------------------------
    @classmethod
    def from_dict(cls, payload) -> "ClusterMap":
        if not isinstance(payload, dict):
            raise ClusterMapError(f"cluster map must be an object, got {payload!r}")
        stamp = payload.get("format")
        if stamp != FORMAT:
            raise ClusterMapError(
                f"unsupported cluster-map format {stamp!r}; this build reads {FORMAT}"
            )
        epoch = payload.get("epoch", 1)
        if isinstance(epoch, bool) or not isinstance(epoch, int):
            raise ClusterMapError(f"'epoch' must be an int: {epoch!r}")
        seed = payload.get("seed", 0)
        if isinstance(seed, bool) or not isinstance(seed, int):
            raise ClusterMapError(f"'seed' must be an int: {seed!r}")
        replication = payload.get("replication", 1)
        if isinstance(replication, bool) or not isinstance(replication, int):
            raise ClusterMapError(f"'replication' must be an int: {replication!r}")
        epsilon = payload.get("epsilon", 0.0)
        if isinstance(epsilon, bool) or not isinstance(epsilon, (int, float)):
            raise ClusterMapError(f"'epsilon' must be a number: {epsilon!r}")
        raw_nodes = payload.get("nodes")
        if not isinstance(raw_nodes, list) or not raw_nodes:
            raise ClusterMapError("'nodes' must be a non-empty list")
        nodes = [NodeInfo.from_dict(item) for item in raw_nodes]
        raw_assignments = payload.get("assignments")
        if not isinstance(raw_assignments, list) or not raw_assignments:
            raise ClusterMapError("'assignments' must be a non-empty list")
        assignments = []
        for shard, replicas in enumerate(raw_assignments):
            if not isinstance(replicas, list) or not all(
                isinstance(node_id, str) for node_id in replicas
            ):
                raise ClusterMapError(
                    f"assignments[{shard}] must be a list of node ids: {replicas!r}"
                )
            assignments.append(tuple(replicas))
        num_shards = payload.get("num_shards", len(assignments))
        if num_shards != len(assignments):
            raise ClusterMapError(
                f"'num_shards' is {num_shards} but {len(assignments)} "
                f"assignments are listed"
            )
        return cls(
            nodes,
            assignments,
            epoch=epoch,
            seed=seed,
            replication=replication,
            epsilon=float(epsilon),
        )

    @classmethod
    def load(cls, path: Union[str, Path]) -> "ClusterMap":
        try:
            text = Path(path).read_text()
        except OSError as exc:
            raise ClusterMapError(f"cannot read cluster map {path}: {exc}") from None
        try:
            payload = json.loads(text)
        except json.JSONDecodeError as exc:
            raise ClusterMapError(f"{path} is not valid JSON: {exc}") from None
        return cls.from_dict(payload)

    def to_dict(self) -> dict:
        return {
            "format": FORMAT,
            "epoch": self.epoch,
            "seed": self.seed,
            "epsilon": self.epsilon,
            "num_shards": self.num_shards,
            "replication": self.replication,
            "nodes": [node.to_dict() for node in self.nodes],
            "assignments": [list(replicas) for replicas in self.assignments],
        }

    def dump(self, path: Union[str, Path]) -> None:
        Path(path).write_text(json.dumps(self.to_dict(), indent=1) + "\n")

    def __eq__(self, other) -> bool:
        if not isinstance(other, ClusterMap):
            return NotImplemented
        return self.to_dict() == other.to_dict()

    def __repr__(self) -> str:
        return (
            f"ClusterMap(epoch={self.epoch}, nodes={len(self.nodes)}, "
            f"shards={self.num_shards}, R={self.replication})"
        )


@dataclass
class ClusterNodeState:
    """One serve node's view of the cluster: its identity, the map it
    currently believes, and the shards it actually has loaded.

    The *map* is mutable (a MAP push swaps it); *owned* is fixed at
    process start — data placement changes through the rebalance
    planner and a restart, never through a metadata push alone.
    """

    node_id: str
    map: ClusterMap
    owned: frozenset

    def __post_init__(self) -> None:
        self.map.node(self.node_id)  # membership check
        self.owned = frozenset(int(s) for s in self.owned)

    @property
    def epoch(self) -> int:
        return self.map.epoch

    def store_name(self, shard: int) -> str:
        return store_name_for_shard(shard)

    def assigned(self) -> Tuple[int, ...]:
        """Shards the current map says this node should hold."""
        return self.map.shards_of_node(self.node_id)

    def install(self, new_map: ClusterMap) -> None:
        """Adopt *new_map* (the MAP push path).  The caller has already
        checked the epoch is strictly newer; membership must hold."""
        new_map.node(self.node_id)
        self.map = new_map
