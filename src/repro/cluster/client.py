"""Cluster-aware client: shard routing, replica failover, map refresh.

:class:`ClusterClient` wraps one shared
:class:`~repro.serve.client.ResilientClient` (so breakers, pools,
backoff, and hedging are reused, not reimplemented) and adds the
cluster layer on top:

* **Routing.**  A DIST(u, v) needs *both* labels on the answering
  node, so the candidate set is the **intersection** of the two
  shards' replica sets.  With ``2R > N`` (e.g. the canonical 3 nodes
  at R=2) that intersection is never empty, so single-round-trip
  answers are the common case.  The call is restricted to those
  candidates via the resilient client's per-call address subset —
  retries rotate and hedges race *across replicas* of the right data,
  not across arbitrary nodes.
* **Failover + combine fallback.**  When every candidate is out (the
  killed-replica case: the only intersection node died), the client
  falls back to what the paper's labeling scheme guarantees: fetch
  label(u) and label(v) from *any* live replica of each shard and run
  the Theorem-2 combine locally (:func:`estimate_distance` — the
  same code path the server runs, so the answer is byte-identical).
* **Epoch refresh.**  Data requests are stamped with the map epoch the
  client routed by.  A ``stale_map`` reply triggers the resilient
  client's refresh hook — MAP-get from any live node, adopt the newer
  map (learning new node addresses on the way) — and the routing loop
  re-routes with fresh assignments.

Every answer remains byte-identical to a fault-free single-node run:
routing chooses *where* to ask, never *what* the answer is.
"""

from __future__ import annotations

import asyncio
from typing import Dict, Hashable, List, Optional, Sequence, Tuple, Union

from repro.core.labeling import estimate_distance
from repro.core.serialize import (
    SerializationError,
    decode_label,
    decode_vertex,
    encode_vertex,
)
from repro.obs import eventlog, metrics
from repro.serve.client import (
    ClientError,
    RequestFailed,
    ResilientClient,
    RetryPolicy,
)
from repro.serve.protocol import estimate_field, wire_pair
from repro.cluster.map import ClusterMap, ClusterMapError, NodeInfo

Vertex = Hashable
Pair = Tuple[Vertex, Vertex]

__all__ = ["ClusterClient"]

#: Codes that mean "refresh the cluster map, then retry".
_REFRESH_CODES = frozenset({"stale_map"})


class ClusterClient:
    """Route queries across a cluster by its map; drop-in for the
    :class:`~repro.serve.client.ResilientClient` surface the loadgen
    uses (``call`` / ``dist`` / ``batch`` / ``stats`` / ``close``).
    """

    def __init__(
        self,
        cluster_map: ClusterMap,
        *,
        policy: Optional[RetryPolicy] = None,
        seed: int = 0,
        breaker_threshold: int = 5,
        breaker_reset: float = 1.0,
        route_rounds: int = 3,
    ) -> None:
        if route_rounds < 1:
            raise ClientError(f"route_rounds must be >= 1, got {route_rounds}")
        self.map = cluster_map
        self._route_rounds = route_rounds
        self.counters: Dict[str, int] = {
            "routed": 0,        # answered by a single intersection node
            "combined": 0,      # answered by label-fetch + local combine
            "reroutes": 0,      # routing loop restarted on a fresher map
            "map_refreshes": 0, # MAP-get refresh attempts
            "map_installs": 0,  # refreshes that adopted a newer map
        }
        self._spread = 0  # rotates candidate preference across calls
        self._rc = ResilientClient(
            [node.address for node in cluster_map.nodes],
            policy=policy or RetryPolicy(),
            seed=seed,
            breaker_threshold=breaker_threshold,
            breaker_reset=breaker_reset,
            refresh_codes=_REFRESH_CODES,
            on_refresh=self._refresh,
        )

    @classmethod
    def from_file(cls, path, **kwargs) -> "ClusterClient":
        """Build from a ``cluster-map.live.json`` (or any map file)."""
        return cls(ClusterMap.load(path), **kwargs)

    @property
    def epsilon(self) -> float:
        return self.map.epsilon

    # -- public surface -------------------------------------------------
    async def dist(self, u: Vertex, v: Vertex) -> dict:
        return await self.call(
            {"op": "DIST", "u": encode_vertex(u), "v": encode_vertex(v)}
        )

    async def batch(self, pairs: Sequence[Pair]) -> dict:
        return await self.call(
            {"op": "BATCH", "pairs": [wire_pair(u, v) for u, v in pairs]}
        )

    async def call(self, payload: dict, **_ignored) -> dict:
        """Route one request.  DIST/BATCH/LABEL go to replicas of the
        right shards; STATS fans out and aggregates; everything else
        goes to any live node."""
        op = str(payload.get("op", "")).upper()
        if op == "DIST":
            return await self._dist_call(payload)
        if op == "BATCH":
            return await self._batch_call(payload)
        if op == "LABEL":
            return await self._label_call(payload)
        if op == "STATS":
            return await self._stats_call(payload)
        if op == "DELTA":
            return await self._delta_call(payload)
        return await self._rc.call(payload)

    async def close(self) -> None:
        await self._rc.close()

    def stats(self) -> dict:
        """Resilient-client stats plus the cluster routing counters
        (same shape the loadgen reads, extended)."""
        payload = self._rc.stats()
        payload["cluster"] = {"epoch": self.map.epoch, **self.counters}
        return payload

    # -- vertex plumbing ------------------------------------------------
    def _decode(self, wire, what: str) -> Vertex:
        try:
            return decode_vertex(wire)
        except SerializationError as exc:
            raise ClientError(f"malformed vertex in {what!r}: {exc}") from None

    def _intersection(self, su: int, sv: int) -> List[NodeInfo]:
        """Replicas holding *both* shards, rotated for load spread."""
        holders_v = set(self.map.assignments[sv])
        both = [n for n in self.map.assignments[su] if n in holders_v]
        if not both:
            return []
        rot = self._spread % len(both)
        ordered = both[rot:] + both[:rot]
        return [self.map.node(node_id) for node_id in ordered]

    # -- routed single-node path ----------------------------------------
    async def _try_routed(
        self, payload: dict, pick_candidates, *, stamp_epoch: bool = True
    ) -> Optional[dict]:
        """Attempt *payload* against ``pick_candidates()`` (re-evaluated
        from the *current* map each round).

        Returns None when no single node can answer — either the
        candidate set is empty or every candidate is down — which is
        the caller's cue to fall back to label-combine.  A refresh
        underneath (the map epoch moved) restarts the round with fresh
        candidates instead of giving up.  Permanent server answers
        (:class:`RequestFailed`) propagate: they are answers.
        """
        for _ in range(self._route_rounds):
            epoch = self.map.epoch
            candidates = pick_candidates()
            if not candidates:
                return None
            request = {**payload, "epoch": epoch} if stamp_epoch else payload
            try:
                response = await self._rc.call(
                    request, addresses=[node.address for node in candidates]
                )
            except RequestFailed:
                raise
            except ClientError:
                if self.map.epoch != epoch:
                    # The refresh hook adopted a newer map mid-call;
                    # routing by the old one is what failed.  Re-route.
                    self.counters["reroutes"] += 1
                    metrics.inc("cluster.client.reroutes")
                    continue
                return None
            self.counters["routed"] += 1
            metrics.inc("cluster.client.routed")
            return response
        return None

    async def _dist_call(self, payload: dict) -> dict:
        u = self._decode(payload.get("u"), "u")
        v = self._decode(payload.get("v"), "v")
        self._spread += 1
        response = await self._try_routed(
            payload,
            lambda: self._intersection(self.map.shard_of(u), self.map.shard_of(v)),
        )
        if response is not None:
            return response
        return await self._combine_dist(u, v, req_id=payload.get("id"))

    async def _label_call(self, payload: dict) -> dict:
        v = self._decode(payload.get("v"), "v")
        self._spread += 1
        response = await self._try_routed(
            payload,
            lambda: list(self.map.nodes_for(v)),
            # Labels are immutable; an epoch disagreement must not
            # block fetching one during a map transition.
            stamp_epoch=False,
        )
        if response is None:
            raise ClientError(
                f"no live replica for vertex {v!r} "
                f"(shard {self.map.shard_of(v)})"
            )
        return response

    # -- combine fallback ------------------------------------------------
    async def _fetch_label(self, v: Vertex):
        response = await self._label_call({"op": "LABEL", "v": encode_vertex(v)})
        return decode_label(response["label"])

    async def _combine_dist(self, u: Vertex, v: Vertex, req_id=None) -> dict:
        """Client-side Theorem-2 combine: fetch both labels from any
        live replicas and estimate locally.  Byte-identical to a server
        answer — same labels, same :func:`estimate_distance`."""
        label_u, label_v = await asyncio.gather(
            self._fetch_label(u), self._fetch_label(v)
        )
        value = estimate_distance(label_u, label_v)
        self.counters["combined"] += 1
        metrics.inc("cluster.client.combined")
        eventlog.debug(
            "cluster.client.combine", u=repr(u), v=repr(v), epoch=self.map.epoch
        )
        return {
            "id": req_id,
            "ok": True,
            "op": "DIST",
            "epsilon": self.map.epsilon,
            **estimate_field(value),
            "combined": True,
        }

    # -- batch routing ---------------------------------------------------
    async def _batch_call(self, payload: dict) -> dict:
        raw_pairs = payload.get("pairs") or []
        pairs: List[Pair] = [
            (self._decode(p[0], f"pairs[{i}][0]"), self._decode(p[1], f"pairs[{i}][1]"))
            for i, p in enumerate(raw_pairs)
        ]
        self._spread += 1
        # Group pairs by the replica set able to answer them, so one
        # sub-batch per answering node (with its failover candidates)
        # replaces N independent round trips.
        groups: Dict[tuple, List[int]] = {}
        orphans: List[int] = []  # no single node holds both shards
        for index, (u, v) in enumerate(pairs):
            candidates = self._intersection(self.map.shard_of(u), self.map.shard_of(v))
            if candidates:
                groups.setdefault(tuple(n.id for n in candidates), []).append(index)
            else:
                orphans.append(index)
        results: List[Optional[dict]] = [None] * len(pairs)

        async def run_group(node_ids: tuple, indexes: List[int]) -> None:
            sub = {
                "op": "BATCH",
                "pairs": [wire_pair(*pairs[i]) for i in indexes],
            }
            try:
                response = await self._try_routed(
                    sub, lambda: [self.map.node(nid) for nid in node_ids]
                )
            except RequestFailed as exc:
                response = None
                eventlog.debug("cluster.client.batch.failed", code=exc.code)
            if response is not None:
                items = response.get("results", [])
                for slot, item in zip(indexes, items):
                    results[slot] = item
            # Anything unanswered (routed path dead, or a short reply)
            # degrades to per-pair combine.
            await asyncio.gather(
                *(
                    run_single(i)
                    for i in indexes
                    if results[i] is None
                )
            )

        async def run_single(index: int) -> None:
            u, v = pairs[index]
            try:
                response = await self._combine_dist(u, v)
            except RequestFailed as exc:
                results[index] = {
                    "ok": False,
                    "error": {"code": exc.code, "message": str(exc)},
                }
                return
            except ClientError as exc:
                results[index] = {
                    "ok": False,
                    "error": {"code": "unavailable", "message": str(exc)},
                }
                return
            results[index] = {
                "ok": True,
                **{
                    key: response[key]
                    for key in ("estimate", "unreachable")
                    if key in response
                },
            }

        await asyncio.gather(
            *(run_group(node_ids, indexes) for node_ids, indexes in groups.items()),
            *(run_single(index) for index in orphans),
        )
        return {
            "id": payload.get("id"),
            "ok": True,
            "op": "BATCH",
            "epsilon": self.map.epsilon,
            "results": results,
        }

    # -- cluster-wide reads ----------------------------------------------
    async def _stats_call(self, payload: dict) -> dict:
        """Fan STATS out to every node and aggregate the counters the
        way a single-server caller expects (summed), keeping the
        per-node payloads alongside."""
        async def one(node: NodeInfo):
            try:
                return node.id, await self._rc.call(
                    {"op": "STATS"}, addresses=[node.address]
                )
            except (ClientError, RequestFailed):
                return node.id, None

        responses = await asyncio.gather(*(one(n) for n in self.map.nodes))
        counters: Dict[str, int] = {}
        nodes: Dict[str, Optional[dict]] = {}
        live = 0
        for node_id, response in responses:
            nodes[node_id] = response
            if response is None:
                continue
            live += 1
            for key, value in (response.get("counters") or {}).items():
                if isinstance(value, (int, float)) and not isinstance(value, bool):
                    counters[key] = counters.get(key, 0) + value
        return {
            "id": payload.get("id"),
            "ok": True,
            "op": "STATS",
            "cluster": {"epoch": self.map.epoch, "nodes": live},
            "counters": counters,
            "nodes": nodes,
        }

    # -- delta fan-out -----------------------------------------------------
    async def _delta_call(self, payload: dict) -> dict:
        """Fan a DELTA out across the cluster.

        ``apply`` goes to *every* node (mirroring the STATS fan-out):
        each node applies the slice of the delta its owned shards
        cover, so the whole cluster advances to the delta's epoch
        together.  Nodes that are down simply miss this epoch — their
        next push answers ``stale_delta`` and the operator resyncs them
        from the journal.  ``status`` goes to any live node.
        """
        action = str(payload.get("action", "status")).lower()
        if action != "apply":
            return await self._rc.call(payload)

        async def one(node: NodeInfo):
            try:
                return node.id, await self._rc.call(
                    payload, addresses=[node.address]
                )
            except RequestFailed as exc:
                return node.id, {
                    "ok": False,
                    "error": {"code": exc.code, "message": str(exc)},
                }
            except ClientError as exc:
                return node.id, {
                    "ok": False,
                    "error": {"code": "unavailable", "message": str(exc)},
                }

        responses = await asyncio.gather(*(one(n) for n in self.map.nodes))
        nodes: Dict[str, dict] = {}
        applied = 0
        failed = 0
        epoch = None
        for node_id, response in responses:
            nodes[node_id] = response
            if response.get("ok"):
                if response.get("applied"):
                    applied += 1
                if isinstance(response.get("epoch"), int):
                    epoch = max(epoch or 0, response["epoch"])
            else:
                failed += 1
        self.counters["delta_pushes"] = self.counters.get("delta_pushes", 0) + 1
        metrics.inc("cluster.client.delta.pushes")
        eventlog.info(
            "cluster.client.delta.push",
            epoch=epoch,
            applied=applied,
            failed=failed,
        )
        return {
            "id": payload.get("id"),
            "ok": failed == 0,
            "op": "DELTA",
            "epoch": epoch,
            "applied": applied > 0 and failed == 0,
            "applied_nodes": applied,
            "failed_nodes": failed,
            "nodes": nodes,
        }

    # -- map refresh ------------------------------------------------------
    async def _refresh(self, exc=None) -> None:
        """The resilient client's ``on_refresh`` hook: learn a newer
        map from any live node and adopt it.  Failing to refresh is
        not an error — the retry/re-route machinery decides what
        happens next."""
        self.counters["map_refreshes"] += 1
        metrics.inc("cluster.client.map.refreshes")
        try:
            response = await self._rc.call({"op": "MAP", "action": "get"})
        except (ClientError, RequestFailed):
            return
        wire_map = response.get("map")
        if not wire_map:
            return
        try:
            fresh = ClusterMap.from_dict(wire_map)
        except ClusterMapError:
            return
        if fresh.epoch > self.map.epoch:
            self.install_map(fresh)

    def install_map(self, fresh: ClusterMap) -> None:
        """Adopt *fresh* and register any nodes it introduces."""
        self.map = fresh
        for node in fresh.nodes:
            self._rc.ensure_address(node.address)
        self.counters["map_installs"] += 1
        metrics.gauge("cluster.client.map.epoch", fresh.epoch)
        eventlog.info("cluster.client.map.install", epoch=fresh.epoch)
