"""(k, alpha)-doubling separators (Section 5.3, Theorem 8).

A 3D mesh has no O(1)-path separator — its balanced separators are 2D
planes — but a middle plane of a mesh is an *isometric* subgraph of
doubling dimension ~2, so 3D meshes are (1, 2)-doubling separable.
This module implements:

* :func:`doubling_dimension_estimate` — an empirical doubling
  dimension: the log of the max number of r-balls a greedy cover needs
  for a sampled 2r-ball.
* :func:`grid3d_doubling_decomposition` — the recursive middle-plane
  decomposition of an axis-aligned mesh (the separator of each box is
  the median plane perpendicular to its longest axis).
* :class:`DoublingOracle` — Theorem 8's data structure specialized to
  meshes: per decomposition level, each vertex stores distances to the
  plane's hierarchical net points near it; queries combine net points
  shared by both endpoints.

The general Talwar-net machinery for arbitrary doubling separators is
out of scope (see DESIGN.md); the mesh specialization exercises the
same code path the theorem describes: net-based (1+eps) labels on a
bounded-doubling separator.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Hashable, List, Optional, Set, Tuple

from repro.graphs.graph import Graph
from repro.graphs.shortest_paths import dijkstra
from repro.util.errors import GraphError
from repro.util.rng import SeedLike, ensure_rng
from repro.util.sizing import SizeReport

Vertex = Hashable
INF = float("inf")


def doubling_dimension_estimate(
    graph: Graph,
    num_samples: int = 12,
    seed: SeedLike = 0,
) -> float:
    """Empirical doubling dimension alpha of a graph metric.

    For sampled centers x and radii r, greedily covers the ball
    B(x, 2r) with balls of radius r and reports log2 of the largest
    cover size observed.  An estimate (greedy covers are within a
    constant of optimal), adequate for classifying separator subgraphs.
    """
    rng = ensure_rng(seed)
    vertices = sorted(graph.vertices(), key=repr)
    if len(vertices) < 2:
        return 0.0
    worst = 1
    for _ in range(num_samples):
        x = vertices[rng.randrange(len(vertices))]
        dist, _ = dijkstra(graph, x)
        reach = [d for d in dist.values() if d > 0]
        if not reach:
            continue
        r = rng.choice(reach) / 2
        if r <= 0:
            continue
        ball = {v for v, d in dist.items() if d <= 2 * r}
        worst = max(worst, _greedy_cover_count(graph, ball, r))
    return math.log2(worst)


def _greedy_cover_count(graph: Graph, ball: Set[Vertex], radius: float) -> int:
    uncovered = set(ball)
    count = 0
    while uncovered:
        center = min(uncovered, key=repr)
        dist, _ = dijkstra(graph, center, cutoff=radius)
        covered = {v for v, d in dist.items() if d <= radius}
        newly = uncovered & covered
        if not newly:
            newly = {center}
        uncovered -= newly
        count += 1
    return count


# ----------------------------------------------------------------------
# Middle-plane decomposition of 3D meshes
# ----------------------------------------------------------------------

Coord = Tuple[int, int, int]


@dataclass
class DoublingNode:
    """One box of the recursive plane decomposition."""

    node_id: int
    vertices: frozenset
    separator: frozenset  # the median plane (an isometric 2D submesh)
    axis: int  # axis the plane is perpendicular to
    plane_value: int
    parent: Optional[int]
    depth: int
    children: List[int] = field(default_factory=list)


@dataclass
class DoublingSeparator:
    """A (k, alpha)-doubling decomposition: P1' with isometric
    low-doubling separator subgraphs instead of shortest paths."""

    graph: Graph
    nodes: List[DoublingNode] = field(default_factory=list)
    home: Dict[Vertex, int] = field(default_factory=dict)

    @property
    def depth(self) -> int:
        return max((n.depth for n in self.nodes), default=0)

    def root_path(self, v: Vertex) -> List[int]:
        chain: List[int] = []
        current: Optional[int] = self.home[v]
        while current is not None:
            chain.append(current)
            current = self.nodes[current].parent
        chain.reverse()
        return chain


def grid3d_doubling_decomposition(graph: Graph) -> DoublingSeparator:
    """Recursive middle-plane decomposition of a 3D mesh.

    Vertices must be (i, j, k) integer tuples (as produced by
    :func:`repro.generators.grid_3d`).  Each node's separator is the
    median plane perpendicular to the box's longest axis — an isometric
    submesh of doubling dimension about 2 — and the two child boxes
    each hold at most half the vertices.
    """
    for v in graph.vertices():
        if not (isinstance(v, tuple) and len(v) == 3):
            raise GraphError("grid3d_doubling_decomposition needs (i,j,k) vertices")
    decomposition = DoublingSeparator(graph=graph)
    all_vertices = frozenset(graph.vertices())
    pending: List[Tuple[frozenset, Optional[int], int]] = [(all_vertices, None, 0)]
    while pending:
        box, parent, depth = pending.pop()
        node = _split_box(decomposition, box, parent, depth)
        if parent is not None:
            decomposition.nodes[parent].children.append(node.node_id)
        for v in node.separator:
            decomposition.home[v] = node.node_id
        remaining = box - node.separator
        from repro.graphs.components import connected_components

        for comp in connected_components(graph, within=remaining):
            pending.append((frozenset(comp), node.node_id, depth + 1))
    return decomposition


def _split_box(
    decomposition: DoublingSeparator,
    box: frozenset,
    parent: Optional[int],
    depth: int,
) -> DoublingNode:
    spans = []
    for axis in range(3):
        values = sorted({v[axis] for v in box})
        spans.append((len(values), axis, values))
    _, axis, values = max(spans)
    median = values[len(values) // 2]
    plane = frozenset(v for v in box if v[axis] == median)
    node = DoublingNode(
        node_id=len(decomposition.nodes),
        vertices=box,
        separator=plane,
        axis=axis,
        plane_value=median,
        parent=parent,
        depth=depth,
    )
    decomposition.nodes.append(node)
    return node


# ----------------------------------------------------------------------
# Theorem 8 oracle for meshes
# ----------------------------------------------------------------------


class DoublingOracle:
    """(1+eps)-approximate distance oracle for 3D meshes via plane nets.

    For each node (box) on a vertex's root path, the vertex stores
    distances (inside the box) to the separator plane's net points:
    for every scale s, plane vertices on the 2^s-grid within distance
    ``(8/eps) * 2^s`` of the vertex.  A true shortest path between u
    and v inside their lowest common box crosses the plane at some x;
    the net point next to x at the scale matching eps*d is stored by
    both endpoints, giving a (1+eps) estimate.
    """

    def __init__(self, graph: Graph, epsilon: float = 0.25) -> None:
        if epsilon <= 0:
            raise ValueError("epsilon must be positive")
        self.graph = graph
        self.epsilon = epsilon
        self.decomposition = grid3d_doubling_decomposition(graph)
        self.labels: Dict[Vertex, Dict[Tuple[int, Vertex], float]] = {}
        self._build()

    def _build(self) -> None:
        # Error analysis: if the true path crosses the plane at x and
        # 2^s <= eps * d(u,x) / 4 < 2^{s+1}, the net point next to x at
        # scale s costs at most 4 * 2^s <= eps * d extra, and lies
        # within (8/eps + 2) * 2^s of both endpoints.
        eps = self.epsilon
        reach_factor = 8.0 / eps + 2.0
        for v in self.graph.vertices():
            label: Dict[Tuple[int, Vertex], float] = {}
            for node_id in self.decomposition.root_path(v):
                node = self.decomposition.nodes[node_id]
                dist, _ = dijkstra(self.graph, v, allowed=node.vertices)
                max_scale = max(
                    1, math.ceil(math.log2(max(2.0, max(dist.values()) + 1)))
                )
                for s in range(max_scale + 1):
                    spacing = 1 << s
                    cutoff = reach_factor * spacing
                    for p in node.separator:
                        if p not in dist or dist[p] > cutoff:
                            continue
                        if _on_net(p, node.axis, spacing):
                            label[(node_id, p)] = dist[p]
            self.labels[v] = label

    def query(self, u: Vertex, v: Vertex) -> float:
        if u == v:
            return 0.0
        lu, lv = self.labels[u], self.labels[v]
        if len(lv) < len(lu):
            lu, lv = lv, lu
        best = INF
        for key, du in lu.items():
            dv = lv.get(key)
            if dv is not None and du + dv < best:
                best = du + dv
        return best

    def size_report(self) -> SizeReport:
        return SizeReport.from_counts(
            (v, 2 * len(label)) for v, label in self.labels.items()
        )


def _on_net(p: Coord, axis: int, spacing: int) -> bool:
    """Whether plane vertex p is on the 2D net of the given spacing
    (its two in-plane coordinates are multiples of the spacing)."""
    coords = [p[i] for i in range(3) if i != axis]
    return all(c % spacing == 0 for c in coords)


# ----------------------------------------------------------------------
# General metric nets (no coordinates needed)
# ----------------------------------------------------------------------


def greedy_net(graph: Graph, subset, spacing: float) -> List[Vertex]:
    """A *spacing*-net of the metric induced on *subset*: a maximal set
    of vertices pairwise more than *spacing* apart, so every subset
    vertex is within *spacing* of some net point.

    Greedy in a stable order; for doubling-dimension-alpha subsets the
    net has the packing bounds Talwar's construction [42] relies on.
    """
    remaining = set(subset)
    net: List[Vertex] = []
    for v in sorted(subset, key=repr):
        if v not in remaining:
            continue
        net.append(v)
        dist, _ = dijkstra(graph, v, allowed=set(subset), cutoff=spacing)
        remaining -= set(dist)
    return net


class MetricNetOracle:
    """Theorem 8 in its general form: (1+eps) labels over any
    :class:`DoublingSeparator`, using greedy metric nets of each
    separator subgraph instead of coordinate nets.

    For every node on a vertex's root path and every net scale 2^s,
    the vertex stores its distance (inside the node) to the net points
    within ``(8/eps + 2) * 2^s``.  Because the separator is isometric
    and doubling, each scale contributes O((1/eps)^alpha) points.
    """

    def __init__(self, graph: Graph, decomposition: DoublingSeparator, epsilon: float = 0.25) -> None:
        if epsilon <= 0:
            raise ValueError("epsilon must be positive")
        self.graph = graph
        self.decomposition = decomposition
        self.epsilon = epsilon
        self._nets: Dict[int, List[List[Vertex]]] = {}
        self.labels: Dict[Vertex, Dict[Tuple[int, Vertex], float]] = {}
        self._build()

    def _build(self) -> None:
        reach_factor = 8.0 / self.epsilon + 2.0
        # The finest scale must lie below the minimum pairwise distance
        # so the scale-0 net is the whole separator (short queries then
        # see the exact crossing vertex); the coarsest must reach the
        # node diameter.  The number of scales is O(log Delta).
        min_weight = min((w for _, _, w in self.graph.edges()), default=1.0)
        base = min_weight / 2.0
        # Nets per node, shared by every vertex of the node.
        self._scale_spacing: Dict[int, List[float]] = {}
        for node in self.decomposition.nodes:
            separator = node.separator
            if not separator:
                self._nets[node.node_id] = []
                self._scale_spacing[node.node_id] = []
                continue
            anchor = next(iter(separator))
            inside, _ = dijkstra(self.graph, anchor, allowed=set(node.vertices))
            diameter = max(inside.values(), default=0.0)
            max_scale = max(
                1, math.ceil(math.log2(max(2.0, 2 * diameter / base + 1)))
            )
            spacings = [base * (1 << s) for s in range(max_scale + 1)]
            self._nets[node.node_id] = [
                greedy_net(self.graph, separator, spacing)
                for spacing in spacings
            ]
            self._scale_spacing[node.node_id] = spacings

        for v in self.graph.vertices():
            label: Dict[Tuple[int, Vertex], float] = {}
            for node_id in self.decomposition.root_path(v):
                node = self.decomposition.nodes[node_id]
                dist, _ = dijkstra(self.graph, v, allowed=set(node.vertices))
                spacings = self._scale_spacing[node_id]
                for net, spacing in zip(self._nets[node_id], spacings):
                    cutoff = reach_factor * spacing
                    for p in net:
                        d = dist.get(p)
                        if d is not None and d <= cutoff:
                            label[(node_id, p)] = min(
                                d, label.get((node_id, p), INF)
                            )
            self.labels[v] = label

    def query(self, u: Vertex, v: Vertex) -> float:
        if u == v:
            return 0.0
        lu, lv = self.labels[u], self.labels[v]
        if len(lv) < len(lu):
            lu, lv = lv, lu
        best = INF
        for key, du in lu.items():
            dv = lv.get(key)
            if dv is not None and du + dv < best:
                best = du + dv
        return best

    def size_report(self) -> SizeReport:
        return SizeReport.from_counts(
            (v, 2 * len(label)) for v, label in self.labels.items()
        )
