"""Compact routing over the path-separator decomposition.

The paper's third object-location application: a labeled routing
scheme with poly-logarithmic tables.  Construction, per separator path
Q of phase residual J:

* an *anchor forest*: the multi-source shortest-path forest of J
  rooted at Q's vertices (every vertex stores one next-hop toward the
  path, its anchor's position, and its distance to the path);
* *interval labels* on the anchor forest, so packets can descend from
  an anchor to any vertex of its subtree (classic tree routing);
* *path links*: on-path vertices store their predecessor/successor on
  Q.

A packet from u to v picks the shared (node, phase, path) key whose
``d_J(u,Q) + d_Q(anchor_u, anchor_v) + d_J(v,Q)`` estimate is best,
ascends u's forest to the path, walks the path to v's anchor, and
descends to v.  Every decision uses only the current vertex's table
and v's O(k log n)-word label.

Deviation from the paper, documented in DESIGN.md: the paper sketches
stretch-(1+eps) routing via Thorup's connection machinery; this
anchor-based scheme has a provable worst-case stretch of 3 (each leg
is within a factor of the corresponding leg through the true crossing
vertex) while keeping the same polylog space, and its *measured*
stretch — reported by experiment E5 — is close to 1.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass, field
from typing import Dict, Hashable, List, Optional, Tuple

from repro.core.decomposition import DecompositionTree, PathKey, build_decomposition
from repro.core.engines import SeparatorEngine
from repro.graphs.graph import Graph
from repro.graphs.shortest_paths import multi_source_forest
from repro.obs import metrics, span
from repro.treerouting.interval import dfs_intervals
from repro.util.errors import GraphError
from repro.util.sizing import SizeReport

Vertex = Hashable
INF = float("inf")


@dataclass
class RoutingEntry:
    """Per-(vertex, key) routing state — O(degree-in-forest) words."""

    anchor_pos: int  # position index of the nearest path vertex
    anchor_prefix: float  # its prefix (distance along the path)
    dist_to_path: float
    parent_hop: Optional[Vertex]  # next hop toward the path (None if on it)
    on_path_index: Optional[int]  # position if this vertex is on the path
    path_prev: Optional[Vertex] = None
    path_next: Optional[Vertex] = None
    interval: Tuple[int, int] = (0, 0)
    child_starts: List[int] = field(default_factory=list)
    child_hops: List[Vertex] = field(default_factory=list)

    @property
    def words(self) -> int:
        base = 7  # anchor pos+prefix, dist, parent hop, path index, prev, next
        return base + 2 + 2 * len(self.child_hops)


@dataclass
class RoutingLabel:
    """The target label a packet carries: per shared key, where the
    target hangs off the path."""

    vertex: Vertex
    entries: Dict[PathKey, Tuple[int, float, float, int]] = field(default_factory=dict)
    # entry: (anchor_pos, anchor_prefix, dist_to_path, dfs_in)

    @property
    def words(self) -> int:
        return 4 * len(self.entries) + len(self.entries)


class CompactRoutingScheme:
    """Labeled compact routing on a k-path separable graph."""

    def __init__(self, graph: Graph, tree: DecompositionTree) -> None:
        self.graph = graph
        self.tree = tree
        self.tables: Dict[Vertex, Dict[PathKey, RoutingEntry]] = {
            v: {} for v in graph.vertices()
        }
        self.labels: Dict[Vertex, RoutingLabel] = {
            v: RoutingLabel(vertex=v) for v in graph.vertices()
        }
        self._build()

    # ------------------------------------------------------------------
    @classmethod
    def build(
        cls,
        graph: Graph,
        engine: Optional[SeparatorEngine] = None,
        tree: Optional[DecompositionTree] = None,
    ) -> "CompactRoutingScheme":
        if tree is None:
            tree = build_decomposition(graph, engine=engine)
        return cls(graph, tree)

    def _build(self) -> None:
        with span("routing.build", n=self.graph.num_vertices):
            for node in self.tree.nodes:
                for phase_idx, residual in node.residual_sets():
                    phase = node.separator.phases[phase_idx]
                    for path_idx, path in enumerate(phase.paths):
                        key = (node.node_id, phase_idx, path_idx)
                        self._build_key(key, path, residual)

    def _build_key(self, key: PathKey, path: List[Vertex], residual) -> None:
        metrics.inc("routing.keys_built")
        prefix = self.tree.path_prefix(key)
        dist, origin, parent = multi_source_forest(
            self.graph, path, allowed=residual
        )
        pos_of = {v: i for i, v in enumerate(path)}
        # A vertex may sit on two paths of the same phase; the forest
        # treats every path vertex as a source regardless.
        children: Dict[Vertex, List[Vertex]] = {v: [] for v in dist}
        for v, p in parent.items():
            if p is not None:
                children[p].append(v)

        # Interval-label the forest: one DFS per path root with a
        # running offset so labels are unique within the key.
        intervals: Dict[Vertex, Tuple[int, int]] = {}
        offset = 0
        for root in path:
            if root in intervals:
                continue  # shared vertex of two same-phase paths
            local = dfs_intervals(children, root)
            for v, (lo, hi) in local.items():
                intervals[v] = (lo + offset, hi + offset)
            offset += len(local)

        for v in dist:
            if v not in intervals:
                continue
            on_path = pos_of.get(v)
            anchor = v if on_path is not None else origin[v]
            anchor_pos = pos_of.get(anchor)
            if anchor_pos is None:
                # Anchor is a path vertex of a sibling path sharing this
                # forest source set; skip — v will be reachable through
                # that sibling path's key instead.
                continue
            lo, hi = intervals[v]
            entry = RoutingEntry(
                anchor_pos=anchor_pos,
                anchor_prefix=prefix[anchor_pos],
                dist_to_path=dist[v],
                parent_hop=parent[v],
                on_path_index=on_path,
                path_prev=path[on_path - 1] if on_path not in (None, 0) else None,
                path_next=(
                    path[on_path + 1]
                    if on_path is not None and on_path + 1 < len(path)
                    else None
                ),
                interval=(lo, hi),
            )
            kids = sorted(children.get(v, []), key=lambda c: intervals[c][0])
            entry.child_starts = [intervals[c][0] for c in kids]
            entry.child_hops = kids
            self.tables[v][key] = entry
            self.labels[v].entries[key] = (
                anchor_pos,
                prefix[anchor_pos],
                dist[v],
                lo,
            )

    # ------------------------------------------------------------------
    def select_key(self, u: Vertex, v: Vertex) -> Optional[PathKey]:
        """The shared key with the best anchor-route estimate."""
        lu, lv = self.labels[u].entries, self.labels[v].entries
        if len(lv) < len(lu):
            small, big = lv, lu
        else:
            small, big = lu, lv
        best_key = None
        best_est = INF
        for key, entry_s in small.items():
            entry_b = big.get(key)
            if entry_b is None:
                continue
            _, pre_s, d_s, _ = entry_s
            _, pre_b, d_b, _ = entry_b
            est = d_s + abs(pre_s - pre_b) + d_b
            if est < best_est:
                best_est = est
                best_key = key
        return best_key

    def route(self, source: Vertex, target: Vertex) -> List[Vertex]:
        """Simulate a packet; returns the hop sequence source..target.

        Every step consults only the current vertex's table plus the
        target's routing label carried in the header.
        """
        if source not in self.tables or target not in self.tables:
            raise GraphError("source and target must be graph vertices")
        if source == target:
            return [source]
        key = self.select_key(source, target)
        if key is None:
            raise GraphError(
                f"no shared routing key between {source!r} and {target!r} "
                f"(different components?)"
            )
        t_anchor_pos, _, _, t_dfs = self.labels[target].entries[key]
        hops = [source]
        current = source
        guard = 4 * self.graph.num_vertices + 8

        # Stage 1: ascend to the path.
        while self.tables[current][key].on_path_index is None:
            current = self.tables[current][key].parent_hop
            hops.append(current)
            guard -= 1
            if guard < 0:
                raise GraphError("routing loop in ascend stage")

        # Stage 2: walk the path to the target's anchor.
        while self.tables[current][key].on_path_index != t_anchor_pos:
            entry = self.tables[current][key]
            nxt = (
                entry.path_next
                if entry.on_path_index < t_anchor_pos
                else entry.path_prev
            )
            if nxt is None:
                raise GraphError("walked off the separator path (corrupt tables)")
            current = nxt
            hops.append(current)
            guard -= 1
            if guard < 0:
                raise GraphError("routing loop in walk stage")

        # Stage 3: descend the anchor subtree to the target.
        while True:
            entry = self.tables[current][key]
            lo, hi = entry.interval
            if t_dfs == lo:
                break
            if not (lo <= t_dfs < hi):
                raise GraphError("target interval not below anchor (corrupt tables)")
            idx = bisect.bisect_right(entry.child_starts, t_dfs) - 1
            current = entry.child_hops[idx]
            hops.append(current)
            guard -= 1
            if guard < 0:
                raise GraphError("routing loop in descend stage")
        if metrics.enabled:
            metrics.inc("routing.route.count")
            metrics.observe("routing.route.hops", len(hops) - 1)
        return hops

    def route_cost(self, hops: List[Vertex]) -> float:
        return sum(self.graph.weight(a, b) for a, b in zip(hops, hops[1:]))

    # ------------------------------------------------------------------
    def table_report(self) -> SizeReport:
        """Per-vertex routing-table sizes in words (experiment E5)."""
        return SizeReport.from_counts(
            (v, sum(e.words for e in entries.values()))
            for v, entries in self.tables.items()
        )

    def label_report(self) -> SizeReport:
        return SizeReport.from_counts(
            (v, label.words) for v, label in self.labels.items()
        )
