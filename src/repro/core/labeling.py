"""Theorem 2: (1+eps)-approximate distance labeling.

Each vertex v receives a label holding, for every node H on its
decomposition-tree root path and every phase residual J of H it
belongs to, an epsilon-cover portal list per separator path of that
phase.  Distances are then estimated from *two labels alone*:

    d_hat(u, v) = min over shared (node, phase, path) keys of
                  min over portal pairs (c1, c2) of
                  d_J(u, c1) + d_Q(c1, c2) + d_J(v, c2)

Correctness sketch (the paper's argument): the true shortest path R
first touches the separator system at some node H, phase i; R then
lies in the residual J and is a shortest path of J crossing some
separator path Q of phase i at a vertex x.  Both endpoints hold
(1+eps)-cover portals for (H, i, Q), so the estimate is between
d(u, v) and (1+eps) d(u, v).
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass, field
from multiprocessing import get_context
from typing import Dict, Hashable, List, Optional, Tuple

from repro.core.decomposition import (
    DecompositionTree,
    PathKey,
    phase_portal_distance_maps,
)
from repro.core.portals import epsilon_cover_portals_at, min_portal_pair
from repro.graphs.graph import Graph
from repro.obs import metrics, record_span, span
from repro.util.errors import GraphError
from repro.util.rng import SeedLike, derive_seed
from repro.util.sizing import PORTAL_ENTRY_WORDS, SizeReport

Vertex = Hashable
PortalEntry = Tuple[float, float]  # (prefix position on the path, distance)
INF = float("inf")


@dataclass
class VertexLabel:
    """The distance label of one vertex: portal lists keyed by
    (node_id, phase_index, path_index)."""

    vertex: Vertex
    entries: Dict[PathKey, List[PortalEntry]] = field(default_factory=dict)

    @property
    def num_portals(self) -> int:
        return sum(len(v) for v in self.entries.values())

    @property
    def words(self) -> int:
        """Label size in the paper's word model (see repro.util.sizing)."""
        return self.num_portals * PORTAL_ENTRY_WORDS + len(self.entries)


def estimate_distance(label_u: VertexLabel, label_v: VertexLabel) -> float:
    """Distributed (1+eps)-approximate distance query from two labels.

    Returns ``inf`` if the labels share no separator path (which for
    labels of the same connected graph cannot happen unless u = v is
    false in different components).
    """
    if label_u.vertex == label_v.vertex:
        return 0.0
    a, b = label_u.entries, label_v.entries
    if len(b) < len(a):
        a, b = b, a
    best = INF
    scans = 0
    for key, entries_a in a.items():
        entries_b = b.get(key)
        if entries_b is None:
            continue
        scans += 1
        cand = min_portal_pair(entries_a, entries_b)
        if cand < best:
            best = cand
    if metrics.enabled:
        metrics.inc("oracle.query.count")
        metrics.inc("oracle.query.portal_scans", scans)
    return best


class DistanceLabeling:
    """The full labeling of a graph (Theorem 2's distributed form)."""

    def __init__(
        self,
        graph: Graph,
        tree: DecompositionTree,
        epsilon: float,
        labels: Dict[Vertex, VertexLabel],
    ) -> None:
        self.graph = graph
        self.tree = tree
        self.epsilon = epsilon
        self.labels = labels

    def label(self, v: Vertex) -> VertexLabel:
        try:
            return self.labels[v]
        except KeyError:
            raise GraphError(f"vertex {v!r} has no label") from None

    def estimate(self, u: Vertex, v: Vertex) -> float:
        """(1+eps)-approximate distance between u and v."""
        return estimate_distance(self.label(u), self.label(v))

    def size_report(self) -> SizeReport:
        """Per-vertex label sizes in words (experiment E3's measurement)."""
        return SizeReport.from_counts(
            (v, label.words) for v, label in self.labels.items()
        )


# One unit's output: (vertex, path key, portal entries) triples plus the
# number of batched Dijkstra sources the unit consumed.
UnitEntries = List[Tuple[Vertex, PathKey, List[PortalEntry]]]

# Read-only (graph, tree, epsilon, flat context-or-None) shared with
# forked pool workers.  Set in the parent right before the fork so
# children inherit it by copy-on-write instead of pickling the graph
# per task.
_WORKER_STATE: Optional[
    Tuple[Graph, DecompositionTree, float, Optional[object]]
] = None


def build_labeling(
    graph: Graph,
    tree: DecompositionTree,
    epsilon: float = 0.25,
    parallel: Optional[int] = None,
    seed: SeedLike = 0,
    backend: Optional[str] = None,
) -> DistanceLabeling:
    """Construct the Theorem 2 labeling from a decomposition tree.

    Construction is *batched per level*: for every (node, phase) of the
    tree, one :func:`~repro.graphs.shortest_paths.batched_dijkstra`
    pass from the phase's separator-path vertices yields ``d_J(x, v)``
    for every vertex v of the residual at once (undirected symmetry),
    and an epsilon-cover portal selection per (vertex, path) turns the
    rows into label entries.  Separator paths are much smaller than the
    residuals they split, so this replaces the naive one-Dijkstra-per-
    (vertex, phase) loop with a pass whose search count is the number
    of separator vertices — the dominant construction win.

    Parameters
    ----------
    parallel:
        Number of worker processes; ``None``/``0``/``1`` builds
        serially.  (node, phase) units are distributed across workers
        deterministically and merged in unit order, so the result —
        including its ``dump_labeling`` byte encoding — is identical to
        a serial build.  Requires the ``fork`` start method (falls back
        to serial where unavailable).
    seed:
        Only used to derive per-worker child seeds (via
        :func:`repro.util.rng.derive_seed`) that reseed each worker's
        inherited global RNG state; label construction itself is
        deterministic.
    backend:
        ``"dict"`` (the reference kernels), ``"flat"`` (the CSR/flat
        array kernels of :mod:`repro.core.flat` — bit-identical output,
        much faster on large units), or ``None``/``"auto"`` to use flat
        whenever numpy + scipy are importable.
    """
    if epsilon <= 0:
        raise ValueError("epsilon must be positive")
    from repro.core import flat as flat_core  # circular-safe lazy import

    resolved = flat_core.resolve_backend(backend)
    jobs = int(parallel) if parallel else 1
    with span(
        "labeling.build",
        n=graph.num_vertices,
        epsilon=epsilon,
        jobs=jobs,
        backend=resolved,
    ):
        fctx = (
            flat_core.FlatBuildContext(graph, tree)
            if resolved == "flat"
            else None
        )
        units = tree.phase_units()
        # Prefill in graph order so the label dict's iteration order (and
        # therefore the serialized byte layout) never depends on how the
        # units were scheduled.
        labels: Dict[Vertex, VertexLabel] = {
            v: VertexLabel(vertex=v) for v in graph.vertices()
        }
        jobs = min(jobs, len(units)) if units else 1
        if jobs > 1:
            produced = _build_units_parallel(
                graph, tree, epsilon, jobs, seed, fctx
            )
        else:
            produced = _build_units_serial(graph, tree, epsilon, fctx)
        metrics.gauge("labeling.jobs", jobs)
        for unit_idx, entries, num_sources, seconds in produced:
            node = tree.nodes[units[unit_idx][0]]
            if metrics.enabled:
                metrics.inc("labeling.batches")
                metrics.inc("labeling.dijkstra_runs", num_sources)
                metrics.inc(
                    "labeling.level.dijkstra_runs", num_sources, level=node.depth
                )
                metrics.observe("labeling.batch_seconds", seconds)
                metrics.observe("labeling.batch_sources", num_sources)
            for v, key, portal_entries in entries:
                metrics.inc("labeling.portals", len(portal_entries))
                labels[v].entries[key] = portal_entries
        labeling = DistanceLabeling(graph, tree, epsilon, labels)
        if metrics.enabled:
            metrics.inc("labeling.vertices", len(labels))
            report = labeling.size_report()
            metrics.gauge("labeling.words", report.total_words)
            for words in report.per_vertex.values():
                metrics.observe("labeling.label_words", words)
    return labeling


def _unit_entries(
    graph: Graph,
    tree: DecompositionTree,
    node_id: int,
    phase_idx: int,
    residual,
    epsilon: float,
) -> Tuple[UnitEntries, int]:
    """Label entries contributed by one (node, phase) unit.

    The vertices needing entries for a unit are exactly the residual's
    members: every v in J has this node on its root path, and v appears
    in residual J_i precisely for the phases the per-vertex loop of the
    paper's construction would process.  Iteration order over the
    residual does not influence the output — entries are keyed by
    (vertex, path) and merged per vertex — so no sorting is needed.
    """
    dist_maps = phase_portal_distance_maps(
        graph, tree, node_id, phase_idx, residual
    )
    phase = tree.nodes[node_id].separator.phases[phase_idx]
    out: UnitEntries = []
    for path_idx, path in enumerate(phase.paths):
        key = (node_id, phase_idx, path_idx)
        prefix = tree.path_prefix(key)
        rows = [dist_maps[x] for x in path]
        for v in residual:
            pos_dist = [row.get(v, INF) for row in rows]
            portals = epsilon_cover_portals_at(prefix, pos_dist, epsilon)
            if portals:
                out.append(
                    (v, key, [(prefix[i], d) for i, d in portals])
                )
    return out, len(dist_maps)


def _compute_unit(
    graph: Graph,
    tree: DecompositionTree,
    node_id: int,
    phase_idx: int,
    residual,
    epsilon: float,
    fctx,
) -> Tuple[UnitEntries, int]:
    """One unit through the selected kernel: the flat CSR path when a
    :class:`repro.core.flat.FlatBuildContext` is in hand, the dict
    reference otherwise.  Outputs are bit-identical either way."""
    if fctx is not None:
        from repro.core.flat import flat_unit_entries

        return flat_unit_entries(fctx, node_id, phase_idx, residual, epsilon)
    return _unit_entries(graph, tree, node_id, phase_idx, residual, epsilon)


def _build_units_serial(
    graph: Graph, tree: DecompositionTree, epsilon: float, fctx=None
) -> List[Tuple[int, UnitEntries, int, float]]:
    results = []
    for unit_idx, (node_id, phase_idx, residual) in enumerate(tree.phase_units()):
        started = time.perf_counter()
        entries, num_sources = _compute_unit(
            graph, tree, node_id, phase_idx, residual, epsilon, fctx
        )
        results.append(
            (unit_idx, entries, num_sources, time.perf_counter() - started)
        )
    return results


def _assign_chunks(
    tree: DecompositionTree, jobs: int
) -> List[List[int]]:
    """Deterministic longest-processing-time assignment of unit indices
    to *jobs* buckets, balancing on |residual| * (separator size) — the
    leading term of a unit's batched-Dijkstra cost."""
    units = tree.phase_units()
    costs = []
    for unit_idx, (node_id, phase_idx, residual) in enumerate(units):
        phase = tree.nodes[node_id].separator.phases[phase_idx]
        sep = sum(len(path) for path in phase.paths)
        costs.append((len(residual) * max(1, sep), unit_idx))
    costs.sort(key=lambda pair: (-pair[0], pair[1]))
    buckets: List[List[int]] = [[] for _ in range(jobs)]
    loads = [0.0] * jobs
    for cost, unit_idx in costs:
        target = loads.index(min(loads))
        buckets[target].append(unit_idx)
        loads[target] += cost
    return buckets


def _worker_init(
    graph: Graph, tree: DecompositionTree, epsilon: float, fctx=None
) -> None:
    global _WORKER_STATE
    _WORKER_STATE = (graph, tree, epsilon, fctx)


def _worker_chunk(task):
    """Build every unit of one chunk inside a worker process."""
    worker_idx, unit_idxs, child_seed = task
    assert _WORKER_STATE is not None
    graph, tree, epsilon, fctx = _WORKER_STATE
    # Hygiene for anything in the worker that touches the global RNG:
    # replace the state inherited from the parent's fork (identical in
    # every sibling) with an independent, derived child stream.
    random.seed(child_seed)
    units = tree.phase_units()
    started = time.perf_counter()
    results = []
    for unit_idx in unit_idxs:
        node_id, phase_idx, residual = units[unit_idx]
        unit_started = time.perf_counter()
        entries, num_sources = _compute_unit(
            graph, tree, node_id, phase_idx, residual, epsilon, fctx
        )
        results.append(
            (unit_idx, entries, num_sources, time.perf_counter() - unit_started)
        )
    return worker_idx, results, time.perf_counter() - started


def _build_units_parallel(
    graph: Graph,
    tree: DecompositionTree,
    epsilon: float,
    jobs: int,
    seed: SeedLike,
    fctx=None,
) -> List[Tuple[int, UnitEntries, int, float]]:
    global _WORKER_STATE
    try:
        ctx = get_context("fork")
    except ValueError:
        # No fork start method (e.g. some non-POSIX platforms): the
        # read-only shared state cannot be inherited cheaply, so build
        # serially rather than pickle the graph to every worker.
        return _build_units_serial(graph, tree, epsilon, fctx)
    chunks = _assign_chunks(tree, jobs)
    tasks = [
        (worker_idx, unit_idxs, derive_seed(seed, "labeling.worker", worker_idx))
        for worker_idx, unit_idxs in enumerate(chunks)
        if unit_idxs
    ]
    # The flat context (CSR arrays + scratch) is built pre-fork, so the
    # children inherit it copy-on-write like the graph itself.
    _WORKER_STATE = (graph, tree, epsilon, fctx)
    try:
        with ctx.Pool(processes=len(tasks), initializer=_worker_init,
                      initargs=(graph, tree, epsilon, fctx)) as pool:
            outcomes = pool.map(_worker_chunk, tasks)
    finally:
        _WORKER_STATE = None
    produced: List[Tuple[int, UnitEntries, int, float]] = []
    for worker_idx, results, seconds in sorted(outcomes, key=lambda o: o[0]):
        record_span(
            "labeling.worker",
            int(seconds * 1e9),
            worker=worker_idx,
            units=len(results),
            sources=sum(num_sources for _, _, num_sources, _ in results),
        )
        metrics.observe("labeling.worker_seconds", seconds)
        produced.extend(results)
    # Unit order, not arrival order, decides the merge: byte-identical
    # output to a serial build regardless of scheduling.
    produced.sort(key=lambda item: item[0])
    return produced
