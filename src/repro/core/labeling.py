"""Theorem 2: (1+eps)-approximate distance labeling.

Each vertex v receives a label holding, for every node H on its
decomposition-tree root path and every phase residual J of H it
belongs to, an epsilon-cover portal list per separator path of that
phase.  Distances are then estimated from *two labels alone*:

    d_hat(u, v) = min over shared (node, phase, path) keys of
                  min over portal pairs (c1, c2) of
                  d_J(u, c1) + d_Q(c1, c2) + d_J(v, c2)

Correctness sketch (the paper's argument): the true shortest path R
first touches the separator system at some node H, phase i; R then
lies in the residual J and is a shortest path of J crossing some
separator path Q of phase i at a vertex x.  Both endpoints hold
(1+eps)-cover portals for (H, i, Q), so the estimate is between
d(u, v) and (1+eps) d(u, v).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Hashable, List, Tuple

from repro.core.decomposition import DecompositionTree, PathKey
from repro.core.portals import epsilon_cover_portals, min_portal_pair
from repro.graphs.graph import Graph
from repro.graphs.shortest_paths import dijkstra
from repro.obs import metrics, span
from repro.util.errors import GraphError
from repro.util.sizing import PORTAL_ENTRY_WORDS, SizeReport

Vertex = Hashable
PortalEntry = Tuple[float, float]  # (prefix position on the path, distance)
INF = float("inf")


@dataclass
class VertexLabel:
    """The distance label of one vertex: portal lists keyed by
    (node_id, phase_index, path_index)."""

    vertex: Vertex
    entries: Dict[PathKey, List[PortalEntry]] = field(default_factory=dict)

    @property
    def num_portals(self) -> int:
        return sum(len(v) for v in self.entries.values())

    @property
    def words(self) -> int:
        """Label size in the paper's word model (see repro.util.sizing)."""
        return self.num_portals * PORTAL_ENTRY_WORDS + len(self.entries)


def estimate_distance(label_u: VertexLabel, label_v: VertexLabel) -> float:
    """Distributed (1+eps)-approximate distance query from two labels.

    Returns ``inf`` if the labels share no separator path (which for
    labels of the same connected graph cannot happen unless u = v is
    false in different components).
    """
    if label_u.vertex == label_v.vertex:
        return 0.0
    a, b = label_u.entries, label_v.entries
    if len(b) < len(a):
        a, b = b, a
    best = INF
    scans = 0
    for key, entries_a in a.items():
        entries_b = b.get(key)
        if entries_b is None:
            continue
        scans += 1
        cand = min_portal_pair(entries_a, entries_b)
        if cand < best:
            best = cand
    if metrics.enabled:
        metrics.inc("oracle.query.count")
        metrics.inc("oracle.query.portal_scans", scans)
    return best


class DistanceLabeling:
    """The full labeling of a graph (Theorem 2's distributed form)."""

    def __init__(
        self,
        graph: Graph,
        tree: DecompositionTree,
        epsilon: float,
        labels: Dict[Vertex, VertexLabel],
    ) -> None:
        self.graph = graph
        self.tree = tree
        self.epsilon = epsilon
        self.labels = labels

    def label(self, v: Vertex) -> VertexLabel:
        try:
            return self.labels[v]
        except KeyError:
            raise GraphError(f"vertex {v!r} has no label") from None

    def estimate(self, u: Vertex, v: Vertex) -> float:
        """(1+eps)-approximate distance between u and v."""
        return estimate_distance(self.label(u), self.label(v))

    def size_report(self) -> SizeReport:
        """Per-vertex label sizes in words (experiment E3's measurement)."""
        return SizeReport.from_counts(
            (v, label.words) for v, label in self.labels.items()
        )


def build_labeling(
    graph: Graph,
    tree: DecompositionTree,
    epsilon: float = 0.25,
) -> DistanceLabeling:
    """Construct the Theorem 2 labeling from a decomposition tree.

    For each vertex v and each node H on its root path: one Dijkstra
    per phase residual J that still contains v, followed by an
    epsilon-cover portal selection on every separator path of the
    phase.  Runs in roughly O(n log n * Dijkstra) total because
    component sizes halve down the tree.
    """
    if epsilon <= 0:
        raise ValueError("epsilon must be positive")
    with span("labeling.build", n=graph.num_vertices, epsilon=epsilon):
        # Residual sets depend only on the node, not the vertex: compute
        # them once instead of per label (a large constant-factor win).
        residual_cache = {
            node.node_id: list(node.residual_sets()) for node in tree.nodes
        }
        labels: Dict[Vertex, VertexLabel] = {}
        for v in graph.vertices():
            labels[v] = _build_vertex_label(graph, tree, v, epsilon, residual_cache)
        labeling = DistanceLabeling(graph, tree, epsilon, labels)
        if metrics.enabled:
            metrics.inc("labeling.vertices", len(labels))
            report = labeling.size_report()
            metrics.gauge("labeling.words", report.total_words)
            for words in report.per_vertex.values():
                metrics.observe("labeling.label_words", words)
    return labeling


def _build_vertex_label(
    graph: Graph,
    tree: DecompositionTree,
    v: Vertex,
    epsilon: float,
    residual_cache,
) -> VertexLabel:
    label = VertexLabel(vertex=v)
    home_node, home_phase, _, _ = tree.home[v]
    for node_id in tree.root_path(v):
        node = tree.nodes[node_id]
        for phase_idx, residual in residual_cache[node_id]:
            if node_id == home_node and phase_idx > home_phase:
                break
            if v not in residual:
                break
            dist, _ = dijkstra(graph, v, allowed=residual)
            if metrics.enabled:
                metrics.inc("labeling.dijkstra_runs")
                metrics.inc("labeling.level.dijkstra_runs", level=node.depth)
            phase = node.separator.phases[phase_idx]
            for path_idx, path in enumerate(phase.paths):
                key = (node_id, phase_idx, path_idx)
                prefix = tree.path_prefix(key)
                portals = epsilon_cover_portals(path, prefix, dist, epsilon)
                if portals:
                    metrics.inc("labeling.portals", len(portals))
                    label.entries[key] = [
                        (prefix[i], d) for i, d in portals
                    ]
    return label
