"""Flat-array core: CSR adjacency and array-backed labels.

The dict-of-dict :class:`~repro.graphs.graph.Graph` and per-vertex
``VertexLabel`` objects are the *reference* implementation — obviously
correct, pleasant to debug, and the byte-level source of truth for
every serialized artifact.  This module is the *performance* core: the
same two hot kernels (batched per-unit Dijkstra during construction,
the label ``estimate`` combine during serving) ported onto index-based
flat arrays.

* :class:`CSRGraph` — compressed-sparse-row adjacency with a stable
  vertex<->index mapping.  Indexing goes through
  :func:`~repro.core.serialize.canonical_vertex`, so ``1`` and ``1.0``
  resolve to one index, exactly like the shard router and the binary
  vertex codec (the PR 7 canonical-key rule).
* :func:`flat_unit_entries` — one (node, phase) unit of label
  construction: an induced sub-CSR over the residual, one multi-source
  C Dijkstra pass, and a vectorized epsilon-cover scan that walks path
  *positions* (O(path length) array ops) instead of per-vertex Python
  loops.
* :class:`FlatLabel` — one vertex's label as sorted integer key codes
  plus interleaved ``array('d')`` ``(position, distance)`` runs, built
  either from a ``VertexLabel`` or straight off a ``/2`` record's bytes
  (:meth:`repro.core.binfmt.BinaryLabelReader.get_flat`).
* :func:`flat_estimate` — the Theorem-2 combine as a sorted-run
  intersection scan over two ``FlatLabel``s instead of dict probes.

Equivalence contract (fenced by ``tests/core/test_flat_differential.py``
and the property suite): for every graph the flat backend produces the
*bit-identical* labeling, serialized bytes (both codecs), estimates and
delta-application results as the dict backend.  The argument is that
both kernels compute the same float expressions in the same order:
Dijkstra distances are the unique float fixed point of
``d[v] = min_u fl(d[u] + w(u, v))`` for positive weights regardless of
settling order, and the cover scan / portal merge below replicate the
reference arithmetic operation for operation.

numpy + scipy are optional extras: :func:`resolve_backend` falls back
to (or the caller pins) the dict backend when they are missing.
"""

from __future__ import annotations

from array import array
from typing import Dict, Hashable, List, Optional, Sequence, Tuple

from repro.core.labeling import VertexLabel
from repro.core.serialize import canonical_vertex
from repro.graphs.graph import Graph
from repro.obs import metrics
from repro.util.errors import GraphError, ReproError
from repro.util.sizing import PORTAL_ENTRY_WORDS

try:  # soft dependency: the flat backend needs numpy + scipy
    import numpy as _np
    from scipy.sparse import csr_matrix as _csr_matrix
    from scipy.sparse.csgraph import dijkstra as _csgraph_dijkstra

    _IMPORT_ERROR: Optional[BaseException] = None
except ImportError as exc:  # pragma: no cover - exercised via monkeypatch
    _np = None
    _csr_matrix = None
    _csgraph_dijkstra = None
    _IMPORT_ERROR = exc

Vertex = Hashable
PathKey = Tuple[int, int, int]
INF = float("inf")

__all__ = [
    "BACKENDS",
    "CSRGraph",
    "FlatBackendUnavailable",
    "FlatBuildContext",
    "FlatLabel",
    "encode_path_key",
    "flat_available",
    "flat_distance_maps",
    "flat_estimate",
    "flat_phase_distance_maps",
    "flat_unit_entries",
    "resolve_backend",
]

BACKENDS = ("auto", "dict", "flat")


class FlatBackendUnavailable(ReproError):
    """``backend="flat"`` was pinned but numpy/scipy are not importable."""


def flat_available() -> bool:
    """True when the flat backend's soft dependencies import."""
    return _np is not None


def resolve_backend(backend: Optional[str]) -> str:
    """Normalize a backend request to ``"flat"`` or ``"dict"``.

    ``None``/``"auto"`` picks the flat backend whenever its
    dependencies are importable — safe because the flat kernels are
    byte-identical to the dict reference — and the dict backend
    otherwise.  Pinning ``"flat"`` on a host without numpy/scipy is an
    error rather than a silent fallback.
    """
    if backend is None or backend == "auto":
        return "flat" if flat_available() else "dict"
    if backend == "dict":
        return "dict"
    if backend == "flat":
        if not flat_available():
            raise FlatBackendUnavailable(
                f"backend 'flat' needs numpy and scipy: {_IMPORT_ERROR}"
            )
        return "flat"
    raise ValueError(
        f"unknown backend {backend!r} (expected one of {', '.join(BACKENDS)})"
    )


def _require_flat() -> None:
    if not flat_available():
        raise FlatBackendUnavailable(
            f"the flat core needs numpy and scipy: {_IMPORT_ERROR}"
        )


# -- CSR adjacency --------------------------------------------------------

class CSRGraph:
    """Compressed-sparse-row view of a :class:`Graph`.

    ``verts[i]`` is the vertex object of index ``i`` (graph insertion
    order, so anything derived from CSR iteration reproduces the dict
    backend's ordering); ``index`` maps the *canonical* form of each
    vertex back to its index.  Both directions of every undirected edge
    are stored, so ``indices[indptr[i]:indptr[i+1]]`` (with parallel
    ``weights``) is the full neighborhood of ``i``.
    """

    __slots__ = ("verts", "index", "indptr", "indices", "weights")

    def __init__(self, verts, index, indptr, indices, weights) -> None:
        self.verts = verts
        self.index = index
        self.indptr = indptr
        self.indices = indices
        self.weights = weights

    @classmethod
    def from_graph(cls, graph: Graph) -> "CSRGraph":
        _require_flat()
        verts: List[Vertex] = list(graph.vertices())
        index: Dict[Vertex, int] = {}
        for i, v in enumerate(verts):
            key = canonical_vertex(v)
            if key in index:
                raise GraphError(
                    f"vertices {verts[index[key]]!r} and {v!r} canonicalize "
                    f"to the same key {key!r}"
                )
            index[key] = i
        n = len(verts)
        adj = graph._adj
        indptr = _np.zeros(n + 1, dtype=_np.int64)
        for i, v in enumerate(verts):
            indptr[i + 1] = indptr[i] + len(adj[v])
        num_arcs = int(indptr[-1])
        indices = _np.empty(num_arcs, dtype=_np.int64)
        weights = _np.empty(num_arcs, dtype=_np.float64)
        pos = 0
        for v in verts:
            for u, w in adj[v].items():
                indices[pos] = index[canonical_vertex(u)]
                weights[pos] = w
                pos += 1
        return cls(verts, index, indptr, indices, weights)

    @property
    def num_vertices(self) -> int:
        return len(self.verts)

    @property
    def num_edges(self) -> int:
        return len(self.indices) // 2

    def index_of(self, v: Vertex) -> int:
        """The index of *v*; ``1`` and ``1.0`` resolve identically."""
        try:
            return self.index[v]
        except KeyError:
            pass
        try:
            return self.index[canonical_vertex(v)]
        except KeyError:
            raise GraphError(f"vertex {v!r} not in graph") from None

    def vertex_of(self, i: int) -> Vertex:
        return self.verts[i]

    def __contains__(self, v: Vertex) -> bool:
        try:
            self.index_of(v)
        except GraphError:
            return False
        return True

    def neighbors(self, v: Vertex) -> List[Tuple[Vertex, float]]:
        """``(neighbor, weight)`` pairs of *v* in adjacency order."""
        i = self.index_of(v)
        lo, hi = int(self.indptr[i]), int(self.indptr[i + 1])
        verts = self.verts
        return [
            (verts[int(self.indices[k])], float(self.weights[k]))
            for k in range(lo, hi)
        ]

    def set_weight(self, u: Vertex, v: Vertex, weight: float) -> None:
        """Reweight the existing edge ``u -- v`` in place (both arcs).

        The incremental-relabel path keeps a long-lived CSR view in
        lock-step with the dict graph it mirrors; a reweight touches
        two arc slots instead of rebuilding the whole O(m) structure.
        Like :func:`~repro.dynamic.rebuild.incremental_relabel`, this
        is reweight-only — a missing edge is a structural change and
        raises.
        """
        iu, iv = self.index_of(u), self.index_of(v)
        w = float(weight)
        indptr, indices = self.indptr, self.indices
        for a, b in ((iu, iv), (iv, iu)):
            lo, hi = int(indptr[a]), int(indptr[a + 1])
            hit = _np.nonzero(indices[lo:hi] == b)[0]
            if hit.size == 0:
                raise GraphError(f"no edge {u!r} -- {v!r}")
            self.weights[lo + int(hit[0])] = w

    def to_graph(self) -> Graph:
        """Reconstruct a dict-backed graph (round-trip testing)."""
        g = Graph()
        for v in self.verts:
            g.add_vertex(v)
        indptr, indices, weights = self.indptr, self.indices, self.weights
        for i, v in enumerate(self.verts):
            for k in range(int(indptr[i]), int(indptr[i + 1])):
                j = int(indices[k])
                if i < j:
                    g.add_edge(v, self.verts[j], float(weights[k]))
        return g


# -- flat label storage ---------------------------------------------------

_KEY_SPAN = 1 << 32
_KEY_BIAS = 1 << 31
_I32_MIN = -(1 << 31)
_I32_MAX = (1 << 31) - 1


def encode_path_key(key: PathKey) -> int:
    """One path key as a single integer whose numeric order equals the
    tuple order (the binary codec's i32 component range)."""
    node_id, phase_idx, path_idx = key
    if not (
        _I32_MIN <= phase_idx <= _I32_MAX and _I32_MIN <= path_idx <= _I32_MAX
    ):
        raise GraphError(f"path key {key!r} outside the flat key range")
    return (
        (node_id + _KEY_BIAS) * _KEY_SPAN + (phase_idx + _KEY_BIAS)
    ) * _KEY_SPAN + (path_idx + _KEY_BIAS)


#: Pruning slack for :func:`flat_estimate` (see the error-bound note
#: there): ~8000 ulps — astronomically wider than the worst-case float
#: drift of a three-addition candidate, still tight enough to prune
#: keys whose portals are even fractionally farther than the best.
_PRUNE_SLACK = 2.0 ** -40


class FlatLabel:
    """One vertex's label as flat arrays.

    Storage order (``keys``/``offs``/``runs``) is the entry order of
    the source — a ``VertexLabel``'s dict order or a ``/2`` record's
    field order — so :meth:`to_label` reproduces the reference object
    exactly and serialization stays byte-identical.  ``runs`` holds the
    portal entries of all keys concatenated as interleaved
    ``(position, distance)`` float pairs; key ``k`` (storage order)
    spans ``runs[2*offs[k] : 2*offs[k+1]]``.

    The query side is order-free: ``key_set`` (integer key codes, for
    C-speed set intersection) and ``spans`` mapping each code to
    ``(run tuple, min distance, pruning slack)``, where the run tuple
    is the key's slice of ``runs`` with the floats boxed once (the
    merge loop reads each float several times; tuple reads reuse the
    box, array reads re-box every time) and the two scalars feed the
    exact pruning bound in :func:`flat_estimate`.
    """

    __slots__ = (
        "vertex", "keys", "offs", "runs", "key_set", "spans", "_label"
    )

    def __init__(
        self,
        vertex: Vertex,
        keys: Tuple[PathKey, ...],
        offs: Sequence[int],
        runs: array,
    ) -> None:
        self.vertex = vertex
        self.keys = keys
        self.offs = offs
        self.runs = runs
        spans: Dict[int, Tuple[Tuple[float, ...], float, float]] = {}
        for k, key in enumerate(keys):
            lo, hi = 2 * offs[k], 2 * offs[k + 1]
            mind = INF
            mag = 0.0
            for i in range(lo, hi, 2):
                d = runs[i + 1]
                if d < mind:
                    mind = d
                m = d + runs[i]
                if m > mag:
                    mag = m
            spans[encode_path_key(key)] = (
                tuple(runs[lo:hi]),
                mind,
                mag * _PRUNE_SLACK,
            )
        self.spans = spans
        self.key_set = frozenset(spans)
        self._label: Optional[VertexLabel] = None

    @classmethod
    def from_label(cls, label: VertexLabel) -> "FlatLabel":
        offs = [0]
        runs = array("d")
        append = runs.append
        for portals in label.entries.values():
            for pos, dist in portals:
                append(pos)
                append(dist)
            offs.append(len(runs) // 2)
        return cls(label.vertex, tuple(label.entries), offs, runs)

    def to_label(self) -> VertexLabel:
        """The dict form, memoized: repeated calls return one object so
        LRU identity semantics match the dict backend's."""
        cached = self._label
        if cached is not None:
            return cached
        runs, offs = self.runs, self.offs
        entries: Dict[PathKey, List[Tuple[float, float]]] = {}
        for k, key in enumerate(self.keys):
            lo, hi = 2 * offs[k], 2 * offs[k + 1]
            entries[key] = [(runs[i], runs[i + 1]) for i in range(lo, hi, 2)]
        cached = VertexLabel(vertex=self.vertex, entries=entries)
        self._label = cached
        return cached

    @property
    def num_portals(self) -> int:
        return self.offs[-1]

    @property
    def words(self) -> int:
        """Same word-model accounting as :attr:`VertexLabel.words`."""
        return self.num_portals * PORTAL_ENTRY_WORDS + len(self.keys)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"FlatLabel({self.vertex!r}, keys={len(self.keys)}, "
            f"portals={self.num_portals})"
        )


def flat_estimate(label_u: FlatLabel, label_v: FlatLabel) -> float:
    """:func:`~repro.core.labeling.estimate_distance` over flat labels.

    Key intersection is one C-level set operation; each shared key runs
    the same sorted merge as
    :func:`~repro.core.portals.min_portal_pair` directly on the
    interleaved runs — identical float expressions in identical order,
    so the result is bit-equal to the dict kernel's (``inf`` when no
    key is shared; the running minimum is order-independent because
    updates are strict).

    Shared keys are visited deepest-first (descending key code: deeper
    tree nodes hold the closer portals, so the first merges give a
    near-final ``best``) and a key is skipped outright when even its
    best conceivable candidate cannot beat ``best``.  The skip is
    *exact*, not heuristic: every candidate is the three-addition float
    evaluation of ``d_u + d_v + |p_u - p_v| >= min_d_u + min_d_v``,
    whose accumulated rounding is below ``3 ulp`` of the operand
    magnitudes, bounded here by ``max(d + p)`` per run; the pruning
    threshold subtracts :data:`_PRUNE_SLACK` (thousands of ulps) of
    that magnitude, so no candidate a skipped key could produce is ever
    below ``best``.
    """
    if label_u.vertex == label_v.vertex:
        return 0.0
    a, b = label_u, label_v
    if len(b.key_set) < len(a.key_set):
        a, b = b, a
    shared = a.key_set & b.key_set
    best = INF
    if shared:
        sa, sb = a.spans, b.spans
        for code in sorted(shared, reverse=True):
            ra, ma, slack_a = sa[code]
            rb, mb, slack_b = sb[code]
            if ma + mb - slack_a - slack_b >= best:
                continue
            pe = len(ra)
            qe = len(rb)
            if pe == 2 and qe == 2:
                # Single portal on both sides: the merge below reduces
                # to exactly one candidate with these exact expressions.
                pa = ra[0]
                pb = rb[0]
                if pa <= pb:
                    cand = ((ra[1] - pa) + rb[1]) + pb
                else:
                    cand = ((rb[1] - pb) + ra[1]) + pa
                if cand < best:
                    best = cand
                continue
            p = q = 0
            best_u = INF  # min over a-portals seen so far of (d - pos)
            best_v = INF  # min over b-portals seen so far of (d - pos)
            while p < pe or q < qe:
                if q >= qe or (p < pe and ra[p] <= rb[q]):
                    pos = ra[p]
                    d = ra[p + 1]
                    p += 2
                    cand = best_v + d + pos
                    if cand < best:
                        best = cand
                    du = d - pos
                    if du < best_u:
                        best_u = du
                else:
                    pos = rb[q]
                    d = rb[q + 1]
                    q += 2
                    cand = best_u + d + pos
                    if cand < best:
                        best = cand
                    dv = d - pos
                    if dv < best_v:
                        best_v = dv
    if metrics.enabled:
        metrics.inc("oracle.query.count")
        metrics.inc("oracle.query.portal_scans", len(shared))
    return best


# -- construction kernel --------------------------------------------------

#: Residuals smaller than this run the reference dict kernel instead:
#: the outputs are identical either way, and below this size the
#: numpy/scipy per-call overhead costs more than the whole unit
#: (measured crossover ~32 on the E3/E4 graph families).
SMALL_RESIDUAL = 32


class FlatBuildContext:
    """Per-build state shared by every (node, phase) unit: the CSR view
    of the graph, the decomposition tree, and a reusable global->local
    index scratch (allocating an O(n) map per unit would make small
    units quadratic in aggregate).  Built once in the parent process
    (before any fork), so parallel workers inherit it by copy-on-write
    like the rest of the worker state."""

    __slots__ = ("graph", "csr", "tree", "_g2l")

    def __init__(self, graph: Graph, tree) -> None:
        self.graph = graph
        self.csr = CSRGraph.from_graph(graph)
        self.tree = tree
        self._g2l = _np.full(self.csr.num_vertices, -1, dtype=_np.int64)


def _induced_distances(ctx: FlatBuildContext, src_idx, allowed):
    """Multi-source Dijkstra distances inside the induced subgraph.

    *allowed* is the sorted array of global vertex indices of the
    residual; *src_idx* the (deduped, phase-ordered) global indices of
    the separator-path vertices.  Returns the ``len(src_idx) x
    len(allowed)`` float64 distance matrix in local (allowed-position)
    columns — ``inf`` for unreachable, bit-identical to the pure-Python
    :func:`~repro.graphs.shortest_paths.batched_dijkstra` because
    Dijkstra's float distances are a unique fixed point under positive
    weights.
    """
    csr = ctx.csr
    m = len(allowed)
    g2l = ctx._g2l
    g2l[allowed] = _np.arange(m, dtype=_np.int64)
    try:
        starts = csr.indptr[allowed]
        counts = csr.indptr[allowed + 1] - starts
        total = int(counts.sum())
        # Gather the concatenated neighborhoods of the allowed vertices:
        # position k of the gather belongs to row `row_ids[k]` and reads
        # the row's `k - row_start`-th arc.
        row_ids = _np.repeat(_np.arange(m, dtype=_np.int64), counts)
        within = _np.arange(total, dtype=_np.int64) - _np.repeat(
            _np.cumsum(counts) - counts, counts
        )
        gather = _np.repeat(starts, counts) + within
        cols_local = g2l[csr.indices[gather]]
        keep = cols_local >= 0
        sub = _csr_matrix(
            (csr.weights[gather][keep], (row_ids[keep], cols_local[keep])),
            shape=(m, m),
        )
        sources = g2l[src_idx]
    finally:
        g2l[allowed] = -1
    return _csgraph_dijkstra(sub, directed=True, indices=sources)


def _cover_portals_matrix(dist_t, prefix, epsilon):
    """Epsilon-cover portal selection for every residual vertex of one
    path at once.

    *dist_t* is the ``m x L`` matrix ``d_J(v, path[idx])`` (rows =
    residual vertices in local order, columns = path positions) and
    *prefix* the path's cumulative-distance row.  This is exactly
    :func:`~repro.core.portals.epsilon_cover_portals_at` per row, with
    the outer per-vertex Python loop turned inside out: one pass over
    path *positions*, each step a vectorized update of every row's scan
    state.  The float expressions match the reference scan operation
    for operation (see the inline notes), so the chosen portals and
    their stored distances are bit-identical.

    Returns ``(chosen, any_finite)``: a boolean ``m x L`` selection
    matrix and the rows that reached the path at all.
    """
    np = _np
    m, L = dist_t.shape
    finite = np.isfinite(dist_t)
    any_finite = finite.any(axis=1)
    # closest = min(reached, key=(dist, index)): argmin takes the first
    # occurrence of the minimum, i.e. the lowest index among ties.
    closest = np.argmin(np.where(finite, dist_t, INF), axis=1)
    rows = np.arange(m)
    chosen = np.zeros((m, L), dtype=bool)
    chosen[rows[any_finite], closest[any_finite]] = True

    eps1 = 1.0 + epsilon
    for direction in (1, -1):
        cur_val = dist_t[rows, closest]
        cur_pref = prefix[closest]
        idxs = range(1, L) if direction == 1 else range(L - 2, -1, -1)
        for idx in idxs:
            dx = dist_t[:, idx]
            # Reference: via = pos_dist[current] + abs(prefix[idx] -
            # prefix[current]); chosen when via > (1 + eps) * dx.  The
            # abs() collapses to a signed difference per direction
            # (prefix is monotone), which is bit-equal because IEEE
            # negation is exact.
            if direction == 1:
                active = finite[:, idx] & (closest < idx)
                via = cur_val + (prefix[idx] - cur_pref)
            else:
                active = finite[:, idx] & (idx < closest)
                via = cur_val + (cur_pref - prefix[idx])
            trigger = active & (via > eps1 * dx)
            if trigger.any():
                chosen[trigger, idx] = True
                cur_val = np.where(trigger, dx, cur_val)
                cur_pref = np.where(trigger, prefix[idx], cur_pref)
    return chosen, any_finite


def flat_unit_entries(
    ctx: FlatBuildContext,
    node_id: int,
    phase_idx: int,
    residual,
    epsilon: float,
):
    """The flat twin of ``labeling._unit_entries``: label entries
    contributed by one (node, phase) unit, as ``(vertex, key, portal
    entries)`` triples plus the batched source count.

    Entry values are materialized back to Python floats via bulk
    ``tolist`` conversions (exact for float64), so downstream
    serialization sees the same objects the dict kernel produces.
    Units below :data:`SMALL_RESIDUAL` delegate to the reference dict
    kernel — same output, lower constant.
    """
    if len(residual) < SMALL_RESIDUAL:
        from repro.core.labeling import _unit_entries

        return _unit_entries(
            ctx.graph, ctx.tree, node_id, phase_idx, residual, epsilon
        )
    np = _np
    csr, tree = ctx.csr, ctx.tree
    phase = tree.nodes[node_id].separator.phases[phase_idx]
    index_of = csr.index_of
    src_idx: List[int] = []
    seen = set()
    for path in phase.paths:
        for x in path:
            if x not in residual:
                # Mirrors batched_dijkstra's source validation.
                raise GraphError(f"source {x!r} not in the allowed set")
            i = index_of(x)
            if i not in seen:
                seen.add(i)
                src_idx.append(i)
    if not src_idx:
        return [], 0
    allowed = np.fromiter(
        (index_of(v) for v in residual), dtype=np.int64, count=len(residual)
    )
    allowed.sort()
    src_arr = np.asarray(src_idx, dtype=np.int64)
    dist = _induced_distances(ctx, src_arr, allowed)
    src_row = {g: r for r, g in enumerate(src_idx)}

    verts = csr.verts
    vert_ids = allowed.tolist()
    out = []
    for path_idx, path in enumerate(phase.paths):
        key = (node_id, phase_idx, path_idx)
        prefix = tree.path_prefix(key)
        path_rows = np.asarray(
            [src_row[index_of(x)] for x in path], dtype=np.int64
        )
        dist_t = np.ascontiguousarray(dist[path_rows].T)
        prefix_arr = np.asarray(prefix, dtype=np.float64)
        chosen, _ = _cover_portals_matrix(dist_t, prefix_arr, epsilon)
        sel_rows, sel_cols = np.nonzero(chosen)
        counts = np.bincount(sel_rows, minlength=len(vert_ids)).tolist()
        cols = sel_cols.tolist()
        dists = dist_t[sel_rows, sel_cols].tolist()
        ptr = 0
        for j, count in enumerate(counts):
            if count:
                out.append(
                    (
                        verts[vert_ids[j]],
                        key,
                        [
                            (prefix[cols[k]], dists[k])
                            for k in range(ptr, ptr + count)
                        ],
                    )
                )
                ptr += count
    return out, len(src_idx)


def flat_distance_maps(
    ctx: FlatBuildContext, sources, allowed
) -> Dict[Vertex, Dict[Vertex, float]]:
    """The flat twin of
    :func:`~repro.graphs.shortest_paths.batched_dijkstra` restricted to
    *allowed*: ``{source: {vertex: distance}}`` with one entry per
    distinct source and only reached vertices in each map.

    Distances come from the same induced-subgraph C Dijkstra as
    :func:`flat_unit_entries` and are bit-identical to the pure-Python
    reference (unique float fixed point under positive weights);
    unreachable vertices are *omitted* rather than stored as ``inf``,
    matching the reference dict shape, so the incremental-relabel fold
    (`m.get(v, INF)` probes, in-place row mutation) works on either.
    """
    csr = ctx.csr
    index_of = csr.index_of
    src_idx: List[int] = []
    src_list: List[Vertex] = []
    seen = set()
    for s in sources:
        if s not in csr:
            raise GraphError(f"source {s!r} not in graph")
        if s not in allowed:
            raise GraphError(f"source {s!r} not in the allowed set")
        i = index_of(s)
        if i not in seen:
            seen.add(i)
            src_idx.append(i)
            src_list.append(s)
    np = _np
    allowed_arr = np.fromiter(
        (index_of(v) for v in allowed), dtype=np.int64, count=len(allowed)
    )
    allowed_arr.sort()
    dist = _induced_distances(
        ctx, np.asarray(src_idx, dtype=np.int64), allowed_arr
    )
    verts = csr.verts
    vert_ids = allowed_arr.tolist()
    maps: Dict[Vertex, Dict[Vertex, float]] = {}
    for r, s in enumerate(src_list):
        row = dist[r]
        finite = np.isfinite(row)
        cols = np.nonzero(finite)[0].tolist()
        vals = row[finite].tolist()
        maps[s] = {verts[vert_ids[c]]: vals[k] for k, c in enumerate(cols)}
    return maps


def flat_phase_distance_maps(
    ctx: FlatBuildContext, node_id: int, phase_idx: int, residual
) -> Dict[Vertex, Dict[Vertex, float]]:
    """The flat twin of
    :func:`~repro.core.decomposition.phase_portal_distance_maps`:
    ``d_J(x, .)`` for every separator-path vertex x of one (node,
    phase) unit, bit-identical to the reference (source order is the
    same paths-then-position dedup walk, so the returned dict iterates
    identically too)."""
    phase = ctx.tree.nodes[node_id].separator.phases[phase_idx]
    sources: List[Vertex] = []
    seen = set()
    for path in phase.paths:
        for x in path:
            if x not in seen:
                seen.add(x)
                sources.append(x)
    return flat_distance_maps(ctx, sources, residual)
