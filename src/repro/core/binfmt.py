"""``repro-distance-labels/2`` — the packed binary label codec.

The JSON codec (:mod:`repro.core.serialize`, format ``/1``) is the
debug format: human-readable, but a serve node must parse the whole
file before answering its first query, and at millions of vertices the
text blows the label footprint up ~5x over the word model (E12).
This module is the production codec: fixed-width little-endian
records, a per-shard offset index in the header, and an ``mmap``-backed
reader, so opening a multi-GB shard is O(1) — map the file, read 80
bytes of header — and each query touches only the pages holding the
two labels it needs.  The OS page cache does the rest.

Grounded in "Compact I/O-Efficient Representation of Separable Graphs"
(arXiv 1811.06749): separable graphs admit compact locality-friendly
layouts, and our records keep the *source* (decomposition) order — the
natural layout key — while the hash index carries the shard-local
lookup structure on the side.

File layout (all integers little-endian)::

    header (80 bytes)
      0   8s   magic  b"RDLBLv2\\n"   (the /2 format stamp)
      8   u32  reserved (0)
      12  u32  num_shards
      16  u64  num_labels
      24  f64  epsilon
      32  u64  shard_dir_off
      40  u64  hash_idx_off
      48  u64  offset_idx_off
      56  u64  records_off
      64  u64  total_words              (word-model accounting, sizing.py)
      72  u64  file_size                (integrity check)
    shard directory
      (num_shards+1) x u64  slot boundaries into the hash index
      num_shards     x u64  per-shard words (precomputed accounting)
    hash index — num_labels x (u32 crc32(shard_key), u32 record_id),
      grouped by shard, sorted by (crc32, shard_key bytes) within each
      shard, so lookup is one binary search over a slot range
    offset index — (num_labels+1) x u64 record byte offsets relative to
      records_off; record i spans [off[i], off[i+1])
    records — one per label, in SOURCE order (so /2 -> /1 reproduces the
      original JSON byte-for-byte)::

        vertex   tagged encoding (below)
        u32      num_entries
        entries  each: i32 node_id, i32 phase_idx, i32 path_idx,
                 u32 num_portals, num_portals x (f64 pos, f64 dist)

Vertex encodings are *canonical*: numeric vertices are reduced with
:func:`repro.core.serialize.canonical_vertex` (integral floats become
ints) before encoding, so the hash index, the binary vertex table, and
:func:`repro.serve.store.shard_key` all agree on one key per
numerically-equal vertex family.  Tags::

    0x01 int64   i64
    0x02 float   f64           (never integral: canonicalized away)
    0x03 str     u32 len + utf-8 bytes
    0x04 tuple   u32 count + elements
    0x05 bigint  u32 len + two's-complement little-endian bytes
                 (ints outside the i64 range)
"""

from __future__ import annotations

import math
import mmap
import struct
import sys
import zlib
from array import array
from pathlib import Path
from typing import Dict, Hashable, Iterator, List, Optional, Tuple, Union

from repro.core.labeling import VertexLabel
from repro.core.serialize import (
    SerializationError,
    canonical_vertex,
    shard_key_bytes,
)
from repro.util.sizing import PORTAL_ENTRY_WORDS

Vertex = Hashable

__all__ = [
    "MAGIC",
    "BinaryLabelReader",
    "decode_vertex_binary",
    "encode_label_binary",
    "encode_vertex_binary",
    "is_binary_labels",
    "pack_labeling",
    "read_labeling_binary",
    "write_labeling_binary",
]

#: First 8 bytes of every /2 file — the binary twin of the JSON
#: ``"format": "repro-distance-labels/2"`` stamp.
MAGIC = b"RDLBLv2\n"

_HEADER = struct.Struct("<8sIIQdQQQQQQ")
HEADER_BYTES = _HEADER.size  # 80

_U32 = struct.Struct("<I")
_U64 = struct.Struct("<Q")
_I64 = struct.Struct("<q")
_F64 = struct.Struct("<d")
_HASH_ENTRY = struct.Struct("<II")
_ENTRY_KEY = struct.Struct("<iiiI")  # node_id, phase_idx, path_idx, num_portals
_PORTAL = struct.Struct("<dd")

_TAG_INT = 0x01
_TAG_FLOAT = 0x02
_TAG_STR = 0x03
_TAG_TUPLE = 0x04
_TAG_BIGINT = 0x05

_I64_MIN = -(1 << 63)
_I64_MAX = (1 << 63) - 1
_I32_MIN = -(1 << 31)
_I32_MAX = (1 << 31) - 1

#: ``array('d').frombytes`` reads the record's portal region verbatim,
#: which is only the f64 values themselves on little-endian hosts.
_LITTLE_ENDIAN = sys.byteorder == "little"


# -- vertex codec ---------------------------------------------------------

def encode_vertex_binary(v: Vertex, out: bytearray) -> None:
    """Append the tagged canonical encoding of *v* to *out*.

    Canonicalization happens here (not in the caller) so every binary
    vertex encoding — record field and hash-index key alike — is the
    one canonical form per numerically-equal vertex family.
    """
    v = canonical_vertex(v)
    if isinstance(v, bool) or v is None:
        raise SerializationError(f"unsupported vertex type {type(v).__name__}")
    if isinstance(v, int):
        if _I64_MIN <= v <= _I64_MAX:
            out.append(_TAG_INT)
            out += _I64.pack(v)
        else:
            raw = v.to_bytes(
                (v.bit_length() + 8) // 8, "little", signed=True
            )
            out.append(_TAG_BIGINT)
            out += _U32.pack(len(raw))
            out += raw
        return
    if isinstance(v, float):
        out.append(_TAG_FLOAT)
        out += _F64.pack(v)
        return
    if isinstance(v, str):
        raw = v.encode("utf-8")
        out.append(_TAG_STR)
        out += _U32.pack(len(raw))
        out += raw
        return
    if isinstance(v, tuple):
        out.append(_TAG_TUPLE)
        out += _U32.pack(len(v))
        for item in v:
            encode_vertex_binary(item, out)
        return
    raise SerializationError(f"unsupported vertex type {type(v).__name__}")


def decode_vertex_binary(buf, pos: int) -> Tuple[Vertex, int]:
    """Decode one tagged vertex at *pos*; returns ``(vertex, next_pos)``."""
    try:
        tag = buf[pos]
    except IndexError:
        raise SerializationError("truncated vertex encoding") from None
    pos += 1
    try:
        if tag == _TAG_INT:
            return _I64.unpack_from(buf, pos)[0], pos + 8
        if tag == _TAG_FLOAT:
            return _F64.unpack_from(buf, pos)[0], pos + 8
        if tag == _TAG_STR:
            (length,) = _U32.unpack_from(buf, pos)
            pos += 4
            raw = bytes(buf[pos : pos + length])
            if len(raw) != length:
                raise SerializationError("truncated vertex encoding")
            return raw.decode("utf-8"), pos + length
        if tag == _TAG_TUPLE:
            (count,) = _U32.unpack_from(buf, pos)
            pos += 4
            items = []
            for _ in range(count):
                item, pos = decode_vertex_binary(buf, pos)
                items.append(item)
            return tuple(items), pos
        if tag == _TAG_BIGINT:
            (length,) = _U32.unpack_from(buf, pos)
            pos += 4
            raw = bytes(buf[pos : pos + length])
            if len(raw) != length:
                raise SerializationError("truncated vertex encoding")
            return int.from_bytes(raw, "little", signed=True), pos + length
    except struct.error:
        raise SerializationError("truncated vertex encoding") from None
    except UnicodeDecodeError as exc:
        raise SerializationError(f"malformed vertex string: {exc}") from None
    raise SerializationError(f"unknown vertex tag 0x{tag:02x}")


# -- label records --------------------------------------------------------

def encode_label_binary(label: VertexLabel) -> bytes:
    """One label as a /2 record (vertex + portal-entry arrays).

    Entry order is the label dict's insertion order, so a /1 -> /2 ->
    /1 round trip reproduces the original JSON byte-for-byte.
    Non-finite portal distances are a bug upstream of serialization
    (the wire protocol forbids them) and raise here, same as the JSON
    codec.
    """
    out = bytearray()
    encode_vertex_binary(label.vertex, out)
    out += _U32.pack(len(label.entries))
    for key, portals in label.entries.items():
        node_id, phase_idx, path_idx = key
        for part in key:
            if not isinstance(part, int) or not (_I32_MIN <= part <= _I32_MAX):
                raise SerializationError(
                    f"path key {key!r} of vertex {label.vertex!r} does not "
                    f"fit i32 fields"
                )
        out += _ENTRY_KEY.pack(node_id, phase_idx, path_idx, len(portals))
        for pos, dist in portals:
            if not (math.isfinite(pos) and math.isfinite(dist)):
                raise SerializationError(
                    f"non-finite portal distance in label of vertex "
                    f"{label.vertex!r} (path key {key!r}): ({pos!r}, {dist!r})"
                )
            out += _PORTAL.pack(pos, dist)
    return bytes(out)


def _decode_label(buf, start: int, end: int) -> VertexLabel:
    """Decode the record spanning ``buf[start:end]``."""
    vertex, pos = decode_vertex_binary(buf, start)
    try:
        (num_entries,) = _U32.unpack_from(buf, pos)
        pos += 4
        entries: Dict[Tuple[int, int, int], List[Tuple[float, float]]] = {}
        for _ in range(num_entries):
            node_id, phase_idx, path_idx, num_portals = _ENTRY_KEY.unpack_from(
                buf, pos
            )
            pos += _ENTRY_KEY.size
            portals = []
            for _ in range(num_portals):
                portals.append(_PORTAL.unpack_from(buf, pos))
                pos += _PORTAL.size
            entries[(node_id, phase_idx, path_idx)] = portals
    except struct.error:
        raise SerializationError(
            f"truncated label record for vertex {vertex!r}"
        ) from None
    if pos != end:
        raise SerializationError(
            f"label record for vertex {vertex!r} has {end - pos} stray bytes"
        )
    return VertexLabel(vertex=vertex, entries=entries)


def _decode_label_flat(buf, start: int, end: int):
    """Decode the record spanning ``buf[start:end]`` straight into a
    :class:`repro.core.flat.FlatLabel` — no per-entry dict, no per-portal
    tuples.

    On little-endian hosts the portal region of each entry is the
    file's own interleaved ``(f64 pos, f64 dist)`` layout, so the runs
    array is filled with one ``frombytes`` per entry.  Truncation and
    stray-byte errors match :func:`_decode_label` exactly.
    """
    from repro.core.flat import FlatLabel

    vertex, pos = decode_vertex_binary(buf, start)
    keys: List[Tuple[int, int, int]] = []
    offs = [0]
    runs = array("d")
    try:
        (num_entries,) = _U32.unpack_from(buf, pos)
        pos += 4
        for _ in range(num_entries):
            node_id, phase_idx, path_idx, num_portals = _ENTRY_KEY.unpack_from(
                buf, pos
            )
            pos += _ENTRY_KEY.size
            run_end = pos + _PORTAL.size * num_portals
            if run_end > end:
                raise SerializationError(
                    f"truncated label record for vertex {vertex!r}"
                )
            if _LITTLE_ENDIAN:
                runs.frombytes(buf[pos:run_end])
            else:  # pragma: no cover - big-endian hosts only
                for _ in range(num_portals):
                    p, d = _PORTAL.unpack_from(buf, pos)
                    runs.append(p)
                    runs.append(d)
                    pos += _PORTAL.size
            pos = run_end
            keys.append((node_id, phase_idx, path_idx))
            offs.append(len(runs) // 2)
    except struct.error:
        raise SerializationError(
            f"truncated label record for vertex {vertex!r}"
        ) from None
    if pos != end:
        raise SerializationError(
            f"label record for vertex {vertex!r} has {end - pos} stray bytes"
        )
    return FlatLabel(vertex, tuple(keys), offs, runs)


def _label_words(label: VertexLabel) -> int:
    return label.num_portals * PORTAL_ENTRY_WORDS + len(label.entries)


# -- writer ---------------------------------------------------------------

def pack_labeling(labeling, num_shards: int = 8) -> bytes:
    """Serialize a labeling (anything with ``.epsilon`` and ``.labels``)
    to one /2 blob.

    Records keep the labeling's own order; the shard directory and hash
    index are layered on the side so the mmap reader can route and
    binary-search without touching the records region.
    """
    if num_shards < 1:
        raise SerializationError(f"num_shards must be >= 1, got {num_shards}")
    epsilon = float(labeling.epsilon)
    if not math.isfinite(epsilon):
        raise SerializationError(f"non-finite epsilon {epsilon!r}")
    labels = list(labeling.labels.values())

    records: List[bytes] = []
    offsets = [0]
    seen: Dict[Vertex, int] = {}
    total_words = 0
    shard_words = [0] * num_shards
    # (shard, crc32, key bytes, record id) per label, for the index.
    index_rows: List[Tuple[int, int, bytes, int]] = []
    for record_id, label in enumerate(labels):
        canon = canonical_vertex(label.vertex)
        if canon in seen:
            raise SerializationError(
                f"duplicate label for vertex {label.vertex!r}"
            )
        seen[canon] = record_id
        record = encode_label_binary(label)
        records.append(record)
        offsets.append(offsets[-1] + len(record))
        key = shard_key_bytes(canon)
        crc = zlib.crc32(key)
        shard = crc % num_shards
        words = _label_words(label)
        total_words += words
        shard_words[shard] += words
        index_rows.append((shard, crc, key, record_id))

    index_rows.sort(key=lambda row: (row[0], row[1], row[2]))
    bounds = [0] * (num_shards + 1)
    for shard, _, _, _ in index_rows:
        bounds[shard + 1] += 1
    for shard in range(num_shards):
        bounds[shard + 1] += bounds[shard]

    shard_dir = bytearray()
    for bound in bounds:
        shard_dir += _U64.pack(bound)
    for words in shard_words:
        shard_dir += _U64.pack(words)
    hash_idx = bytearray()
    for _, crc, _, record_id in index_rows:
        hash_idx += _HASH_ENTRY.pack(crc, record_id)
    offset_idx = bytearray()
    for offset in offsets:
        offset_idx += _U64.pack(offset)

    shard_dir_off = HEADER_BYTES
    hash_idx_off = shard_dir_off + len(shard_dir)
    offset_idx_off = hash_idx_off + len(hash_idx)
    records_off = offset_idx_off + len(offset_idx)
    file_size = records_off + offsets[-1]
    header = _HEADER.pack(
        MAGIC,
        0,
        num_shards,
        len(labels),
        epsilon,
        shard_dir_off,
        hash_idx_off,
        offset_idx_off,
        records_off,
        total_words,
        file_size,
    )
    return b"".join(
        [header, bytes(shard_dir), bytes(hash_idx), bytes(offset_idx), *records]
    )


def write_labeling_binary(
    labeling, path: Union[str, Path], num_shards: int = 8
) -> int:
    """Pack *labeling* to *path*; returns the number of bytes written."""
    blob = pack_labeling(labeling, num_shards=num_shards)
    Path(path).write_bytes(blob)
    return len(blob)


def is_binary_labels(source: Union[bytes, bytearray, memoryview]) -> bool:
    """True when *source* starts with the /2 magic."""
    return bytes(source[: len(MAGIC)]) == MAGIC


# -- mmap reader ----------------------------------------------------------

class BinaryLabelReader:
    """Zero-copy view over one /2 file.

    Opening maps the file and reads 80 bytes — O(1) regardless of
    label count.  :meth:`get` routes through the shard directory,
    binary-searches the shard's hash-index slots, and decodes only the
    one record it lands on; the untouched rest of the file stays on
    disk until the OS pages it in.

    Also accepts a ``bytes`` blob directly (tests, in-memory round
    trips) — same layout, no mapping.
    """

    def __init__(self, source: Union[str, Path, bytes, bytearray]) -> None:
        self._mmap: Optional[mmap.mmap] = None
        self._file = None
        self.source: Optional[str] = None
        if isinstance(source, (bytes, bytearray)):
            self._buf = memoryview(bytes(source))
        else:
            self.source = str(source)
            self._file = open(source, "rb")
            try:
                self._mmap = mmap.mmap(
                    self._file.fileno(), 0, access=mmap.ACCESS_READ
                )
            except (ValueError, OSError) as exc:
                self._file.close()
                raise SerializationError(
                    f"cannot map labels file {self.source!r}: {exc}"
                ) from None
            self._buf = memoryview(self._mmap)
        try:
            self._parse_header()
        except SerializationError:
            self.close()
            raise

    def _parse_header(self) -> None:
        buf = self._buf
        if len(buf) < HEADER_BYTES:
            raise SerializationError(
                "not a repro-distance-labels/2 file (too short for a header)"
            )
        (
            magic,
            _reserved,
            self.num_shards,
            self.num_labels,
            self.epsilon,
            self._shard_dir_off,
            self._hash_idx_off,
            self._offset_idx_off,
            self._records_off,
            self.total_words,
            file_size,
        ) = _HEADER.unpack_from(buf, 0)
        if magic != MAGIC:
            raise SerializationError(
                f"not a repro-distance-labels/2 file (magic {magic!r})"
            )
        if file_size != len(buf):
            raise SerializationError(
                f"truncated or padded labels file: header says {file_size} "
                f"bytes, file has {len(buf)}"
            )
        if self.num_shards < 1:
            raise SerializationError("labels file declares zero shards")
        dir_end = self._shard_dir_off + 8 * (2 * self.num_shards + 1)
        hash_end = self._hash_idx_off + _HASH_ENTRY.size * self.num_labels
        off_end = self._offset_idx_off + 8 * (self.num_labels + 1)
        if not (
            HEADER_BYTES
            <= self._shard_dir_off
            <= dir_end
            <= self._hash_idx_off
            <= hash_end
            <= self._offset_idx_off
            <= off_end
            <= self._records_off
            <= len(buf)
        ):
            raise SerializationError("labels file header regions overlap")
        if self._shard_bound(self.num_shards) != self.num_labels:
            raise SerializationError(
                "shard directory does not cover every label"
            )

    # -- accessors --------------------------------------------------------
    @property
    def mapped_bytes(self) -> int:
        return len(self._buf)

    def _shard_bound(self, shard: int) -> int:
        return _U64.unpack_from(self._buf, self._shard_dir_off + 8 * shard)[0]

    def shard_labels(self, shard: int) -> int:
        """Label count of one shard (from the directory, no decode)."""
        return self._shard_bound(shard + 1) - self._shard_bound(shard)

    def shard_words(self, shard: int) -> int:
        """Word-model size of one shard (precomputed at pack time)."""
        off = self._shard_dir_off + 8 * (self.num_shards + 1) + 8 * shard
        return _U64.unpack_from(self._buf, off)[0]

    def _record_span(self, record_id: int) -> Tuple[int, int]:
        base = self._offset_idx_off + 8 * record_id
        start = _U64.unpack_from(self._buf, base)[0]
        end = _U64.unpack_from(self._buf, base + 8)[0]
        if not (start <= end and self._records_off + end <= len(self._buf)):
            raise SerializationError(
                f"record {record_id} spans outside the file"
            )
        return self._records_off + start, self._records_off + end

    def decode_record(self, record_id: int) -> VertexLabel:
        """Materialize one :class:`VertexLabel` by record id."""
        if not 0 <= record_id < self.num_labels:
            raise SerializationError(f"record id {record_id} out of range")
        start, end = self._record_span(record_id)
        return _decode_label(self._buf, start, end)

    def decode_record_flat(self, record_id: int):
        """Materialize one record as a
        :class:`repro.core.flat.FlatLabel` (no dict/tuple fan-out)."""
        if not 0 <= record_id < self.num_labels:
            raise SerializationError(f"record id {record_id} out of range")
        start, end = self._record_span(record_id)
        return _decode_label_flat(self._buf, start, end)

    def record_vertex(self, record_id: int) -> Vertex:
        """Decode only the vertex field of one record (skips portals)."""
        start, _ = self._record_span(record_id)
        vertex, _ = decode_vertex_binary(self._buf, start)
        return vertex

    def shard_of(self, v: Vertex) -> int:
        return zlib.crc32(shard_key_bytes(canonical_vertex(v))) % self.num_shards

    def _find_record(self, v: Vertex) -> Optional[int]:
        """Record id of *v*'s label, or None — decoding only vertex
        fields of same-crc candidates."""
        canon = canonical_vertex(v)
        key = shard_key_bytes(canon)
        crc = zlib.crc32(key)
        shard = crc % self.num_shards
        lo, hi = self._shard_bound(shard), self._shard_bound(shard + 1)
        buf = self._buf
        base = self._hash_idx_off
        while lo < hi:  # leftmost slot with hash >= crc
            mid = (lo + hi) // 2
            if _U32.unpack_from(buf, base + 8 * mid)[0] < crc:
                lo = mid + 1
            else:
                hi = mid
        end = self._shard_bound(shard + 1)
        while lo < end:
            slot_crc, record_id = _HASH_ENTRY.unpack_from(buf, base + 8 * lo)
            if slot_crc != crc:
                return None
            if self.record_vertex(record_id) == canon:
                return record_id
            lo += 1
        return None

    def get(self, v: Vertex) -> Optional[VertexLabel]:
        """The label of *v*, or None — decoding only candidate records."""
        record_id = self._find_record(v)
        if record_id is None:
            return None
        return self.decode_record(record_id)

    def get_flat(self, v: Vertex):
        """The label of *v* as a :class:`repro.core.flat.FlatLabel`,
        or None.  Same routing as :meth:`get`, flat decode."""
        record_id = self._find_record(v)
        if record_id is None:
            return None
        return self.decode_record_flat(record_id)

    def iter_vertices(self) -> Iterator[Vertex]:
        """Vertices in record (source) order, portals left undecoded."""
        for record_id in range(self.num_labels):
            yield self.record_vertex(record_id)

    def iter_labels(self) -> Iterator[VertexLabel]:
        """Fully decoded labels in record (source) order."""
        for record_id in range(self.num_labels):
            yield self.decode_record(record_id)

    # -- lifecycle ---------------------------------------------------------
    def close(self) -> None:
        buf, self._buf = self._buf, memoryview(b"")
        buf.release()
        if self._mmap is not None:
            self._mmap.close()
            self._mmap = None
        if self._file is not None:
            self._file.close()
            self._file = None

    def __enter__(self) -> "BinaryLabelReader":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def read_labeling_binary(source: Union[str, Path, bytes]):
    """Eagerly materialize a /2 file as a :class:`RemoteLabels`.

    This is the offline-query path (``repro query labels.bin U V``):
    decode every record in source order — so a subsequent JSON dump
    reproduces the original /1 file byte-for-byte — refusing duplicate
    vertices the way the JSON loader does.
    """
    from repro.core.serialize import RemoteLabels

    with BinaryLabelReader(source) as reader:
        labels: Dict[Vertex, VertexLabel] = {}
        for label in reader.iter_labels():
            if label.vertex in labels:
                raise SerializationError(
                    f"duplicate label for vertex {label.vertex!r}"
                )
            labels[label.vertex] = label
        return RemoteLabels(float(reader.epsilon), labels)
