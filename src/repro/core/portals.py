"""Portal (landmark) selection along separator paths.

Two selection rules are implemented:

* :func:`epsilon_cover_portals` — the Thorup-style rule behind
  Theorem 2: for a vertex v and a separator path Q of the residual
  graph J, pick a subset C of Q such that every x in Q is
  (1+eps)-covered: some c in C has
  ``d_J(v,c) + d_Q(c,x) <= (1+eps) * d_J(v,x)``.
  The greedy scan below enforces that invariant pointwise, so the
  cover property holds *by construction* (it is also re-checked by the
  property-based tests).

* :func:`claim1_landmarks` — the paper's own Section 4 rule used by
  the small-world augmentation: offsets ``(i/2)*d`` for i in 0..10 and
  ``2^i * d`` for i in 0..ceil(log2 Delta) on both sides of the
  closest vertex x_c, giving the 3/4-contraction of Claim 1.

:func:`min_portal_pair` evaluates a query across two portal lists on
the same path in linear time.
"""

from __future__ import annotations

import bisect
import math
from typing import Dict, Hashable, List, Sequence, Tuple

Vertex = Hashable
# A portal entry: (prefix position along the path, distance from the vertex).
PortalEntry = Tuple[float, float]
INF = float("inf")


def epsilon_cover_portals(
    path: Sequence[Vertex],
    prefix: Sequence[float],
    dist: Dict[Vertex, float],
    epsilon: float,
) -> List[Tuple[int, float]]:
    """Select portals of *path* for a vertex with distance map *dist*.

    Parameters
    ----------
    path, prefix:
        The separator path and its cumulative-distance prefix.
    dist:
        ``d_J(v, .)`` for the relevant residual graph J; path vertices
        missing from *dist* are unreachable in J and need no cover.
    epsilon:
        The stretch slack; must be positive.

    Returns
    -------
    Sorted list of ``(position_index, distance)`` pairs.
    """
    return epsilon_cover_portals_at(
        prefix, [dist.get(x, INF) for x in path], epsilon
    )


def epsilon_cover_portals_at(
    prefix: Sequence[float],
    pos_dist: Sequence[float],
    epsilon: float,
) -> List[Tuple[int, float]]:
    """Positional form of :func:`epsilon_cover_portals`.

    *pos_dist* gives ``d_J(v, path[i])`` per path position (``inf``
    for unreachable positions).  This is the shape the batched
    per-level distance maps produce (one distance row per vertex), so
    label construction can select portals without materializing a
    vertex-keyed dict per path.  Selection is identical to the
    dict-based form: same greedy scan, same portals.
    """
    if epsilon <= 0:
        raise ValueError("epsilon must be positive")
    reached = [i for i, dx in enumerate(pos_dist) if dx < INF]
    if not reached:
        return []
    closest = min(reached, key=lambda i: (pos_dist[i], i))
    chosen = {closest}

    # Scan outwards from the closest vertex in both directions,
    # adding a portal whenever the current one no longer covers.
    for direction in (1, -1):
        current = closest
        idx = closest + direction
        while (direction == 1 and idx <= reached[-1]) or (
            direction == -1 and idx >= reached[0]
        ):
            dx = pos_dist[idx]
            if dx < INF:
                via = pos_dist[current] + abs(prefix[idx] - prefix[current])
                if via > (1 + epsilon) * dx:
                    chosen.add(idx)
                    current = idx
            idx += direction
    return sorted((i, pos_dist[i]) for i in chosen)


def claim1_landmarks(
    path: Sequence[Vertex],
    prefix: Sequence[float],
    dist: Dict[Vertex, float],
    aspect_ratio: float,
) -> List[int]:
    """The paper's landmark rule L(Q) (Section 4).

    Let x_c be the vertex of Q closest to v and d its distance.  On
    each side of x_c, add the first vertex at path-distance at least
    ``(i/2)*d`` for i = 0..10 and at least ``2^i * d`` for
    i = 0..ceil(log2 Delta).  Claim 1: for every x on Q some landmark
    l satisfies ``d_Q(l, x) <= (3/4) d_J(v, x)``.

    Returns the landmark *position indices* on the path.
    """
    reached = [i for i, x in enumerate(path) if dist.get(x, INF) < INF]
    if not reached:
        return []
    c = min(reached, key=lambda i: (dist[path[i]], i))
    d = dist[path[c]]
    if d == 0:
        return [c]

    offsets = [(i / 2) * d for i in range(11)]
    log_delta = max(0, math.ceil(math.log2(max(2.0, aspect_ratio))))
    offsets.extend((2.0**i) * d for i in range(log_delta + 1))
    offsets = sorted(set(offsets))

    landmarks = {c}
    # prefix is monotone along the path, so the first vertex at
    # path-distance >= target on each side is found by bisection.
    for target in offsets:
        # Rightward: smallest i >= c with prefix[i] - prefix[c] >= target.
        i = bisect.bisect_left(prefix, prefix[c] + target, lo=c)
        if i < len(path):
            landmarks.add(i)
        # Leftward: largest i <= c with prefix[c] - prefix[i] >= target.
        j = bisect.bisect_right(prefix, prefix[c] - target, hi=c + 1) - 1
        if j >= 0:
            landmarks.add(j)
    return sorted(landmarks)


def min_portal_pair(
    entries_u: Sequence[PortalEntry],
    entries_v: Sequence[PortalEntry],
) -> float:
    """Best estimate ``min d_u(c1) + d_Q(c1, c2) + d_v(c2)`` over portal
    pairs on one path, in O(|C_u| + |C_v|) by a sorted merge.

    ``d_Q(c1, c2)`` is the absolute prefix difference.  Entries must be
    sorted by prefix position (as produced by the cover functions).
    Returns ``inf`` when either list is empty.
    """
    if not entries_u or not entries_v:
        return INF
    best = INF
    i = j = 0
    best_u = INF  # min over u-portals seen so far of (d_u - pos)
    best_v = INF  # min over v-portals seen so far of (d_v - pos)
    while i < len(entries_u) or j < len(entries_v):
        take_u = j >= len(entries_v) or (
            i < len(entries_u) and entries_u[i][0] <= entries_v[j][0]
        )
        if take_u:
            pos, d = entries_u[i]
            i += 1
            if best_v + d + pos < best:
                best = best_v + d + pos
            if d - pos < best_u:
                best_u = d - pos
        else:
            pos, d = entries_v[j]
            j += 1
            if best_u + d + pos < best:
                best = best_u + d + pos
            if d - pos < best_v:
                best_v = d - pos
    return best
