"""Separator engines: algorithms that *find* k-path separators.

The paper's Theorem 1 is existential (via the Robertson-Seymour
structure theorem, which has no practical implementation); these
engines construct Definition-1 separators directly:

* :class:`TreeCentroidEngine` — trees: the centroid vertex is a 1-path
  separator (the paper's K3-free example).
* :class:`CenterBagEngine` — bounded treewidth: a center bag (Lemma 1)
  is a strong (w+1)-path separator of single-vertex paths (Theorem 7).
* :class:`FundamentalCycleEngine` — planar-style graphs: two or three
  root paths of a shortest-path tree, the Lipton-Tarjan/Thorup [44]
  strong 3-path construction evaluated by explicit balance checks.
* :class:`GreedyPeelingEngine` — any graph: repeatedly peel the root
  path (a residual shortest path) that best balances the largest
  component.  Always yields a valid Definition-1 separator; the
  measured k is the experimental quantity of Theorem 1.
* :class:`StrongGreedyEngine` — single-phase ("strong") mode for the
  Section 5.2 lower-bound experiments.

Every engine returns a :class:`PathSeparator` whose ``validate`` method
re-checks (P1)/(P3) independently.
"""

from __future__ import annotations

import hashlib
from abc import ABC, abstractmethod
from typing import AbstractSet, Hashable, List, Optional, Set, Tuple

from repro.core.separator import PathSeparator, SeparatorPhase, singleton_separator
from repro.graphs.components import connected_components
from repro.graphs.graph import Graph
from repro.graphs.ops import induced_subgraph
from repro.graphs.shortest_paths import ShortestPathTree, dijkstra_tree
from repro.treedecomp.center import center_bag
from repro.treedecomp.heuristics import (
    decomposition_from_elimination,
    mcs_order,
    min_degree_order,
    min_fill_order,
)
from repro.obs import metrics
from repro.util.errors import GraphError
from repro.util.rng import SeedLike, derive_seed, ensure_rng, seed_fingerprint

Vertex = Hashable


def _traced_dijkstra_tree(graph: Graph, root, allowed) -> ShortestPathTree:
    """dijkstra_tree + the ``engine.dijkstra_trees`` counter."""
    metrics.inc("engine.dijkstra_trees")
    return dijkstra_tree(graph, root, allowed=allowed)


class SeparatorEngine(ABC):
    """Interface: compute a path separator of ``graph[within]``."""

    @abstractmethod
    def find_separator(
        self, graph: Graph, within: Optional[AbstractSet[Vertex]] = None
    ) -> PathSeparator:
        """Return a separator S of the subgraph induced by *within*
        (the whole graph when *within* is None) satisfying (P1)+(P3)."""


# ----------------------------------------------------------------------
# Shared helpers
# ----------------------------------------------------------------------


def _stable_key(v) -> str:
    return f"{type(v).__name__}:{v!r}"


def _component_fingerprint(universe: AbstractSet[Vertex]) -> str:
    """Stable digest of a vertex set, insensitive to iteration order."""
    digest = hashlib.sha256()
    for key in sorted(_stable_key(v) for v in universe):
        digest.update(key.encode("utf-8"))
        digest.update(b"\x00")
    return digest.hexdigest()


def _component_rng(base_seed: int, engine: str, universe: AbstractSet[Vertex]):
    """Per-call RNG derived from a spawn key, not from shared state.

    Randomized engines used to consume one shared stream across
    ``find_separator`` calls, which made the decomposition depend on
    the order nodes happen to be expanded in — and would make forked
    worker processes that inherit the parent's RNG state produce
    correlated, irreproducible streams.  Deriving a child seed from
    ``(engine, component)`` makes each call's randomness a pure
    function of its inputs: order-independent, fork-safe, and
    byte-reproducible across runs.
    """
    return ensure_rng(
        derive_seed(base_seed, "engine", engine, _component_fingerprint(universe))
    )


def _universe(graph: Graph, within: Optional[AbstractSet[Vertex]]) -> Set[Vertex]:
    if within is None:
        return set(graph.vertices())
    return {v for v in within if v in graph}


def approx_center(graph: Graph, comp: AbstractSet[Vertex]) -> Vertex:
    """Approximate center of a component: midpoint of a double-sweep
    diametral path.  A good Dijkstra-tree root for balanced peeling."""
    start = min(comp, key=_stable_key)
    if len(comp) == 1:
        return start
    tree0 = _traced_dijkstra_tree(graph, start, allowed=comp)
    a = max(tree0.dist, key=lambda v: (tree0.dist[v], _stable_key(v)))
    tree_a = _traced_dijkstra_tree(graph, a, allowed=comp)
    b = max(tree_a.dist, key=lambda v: (tree_a.dist[v], _stable_key(v)))
    diam_path = tree_a.path_to(b)
    half = tree_a.dist[b] / 2
    for v in diam_path:
        if tree_a.dist[v] >= half:
            return v
    return diam_path[-1]


def _largest_within(graph: Graph, vertices: Set[Vertex]) -> int:
    comps = connected_components(graph, within=vertices)
    return len(comps[0]) if comps else 0


def _path_candidates(
    tree: ShortestPathTree,
    comp: AbstractSet[Vertex],
    num_candidates: int,
    rng,
) -> List[Vertex]:
    """Candidate path endpoints: the farthest vertex, deep leaves, and a
    random sample — a spread that works well across graph families."""
    reachable = [v for v in tree.dist if v in comp]
    if not reachable:
        return []
    picks: List[Vertex] = []
    seen: Set[Vertex] = set()

    def take(v: Vertex) -> None:
        if v not in seen:
            seen.add(v)
            picks.append(v)

    take(max(reachable, key=lambda v: (tree.dist[v], _stable_key(v))))
    leaves = [v for v in reachable if not tree.children.get(v)]
    leaves.sort(key=lambda v: (-tree.dist[v], _stable_key(v)))
    for v in leaves[: max(1, num_candidates // 2)]:
        take(v)
    pool = sorted(reachable, key=_stable_key)
    while len(picks) < num_candidates and len(seen) < len(reachable):
        take(pool[rng.randrange(len(pool))])
    return picks[:num_candidates]


# ----------------------------------------------------------------------
# Engines
# ----------------------------------------------------------------------


class TreeCentroidEngine(SeparatorEngine):
    """1-path separators for forests: the centroid vertex.

    Raises :class:`GraphError` when the induced subgraph has a cycle.
    """

    def find_separator(
        self, graph: Graph, within: Optional[AbstractSet[Vertex]] = None
    ) -> PathSeparator:
        metrics.inc("engine.calls", engine="centroid")
        universe = _universe(graph, within)
        if not universe:
            return PathSeparator()
        comps = connected_components(graph, within=universe)
        comp = comps[0]
        if len(comp) <= len(universe) / 2:
            return PathSeparator()
        edge_count = sum(
            1
            for u in comp
            for v in graph.neighbors(u)
            if v in comp and _stable_key(u) < _stable_key(v)
        )
        if edge_count != len(comp) - 1:
            raise GraphError("TreeCentroidEngine requires an acyclic (sub)graph")
        centroid = self._centroid(graph, comp)
        return singleton_separator([centroid])

    @staticmethod
    def _centroid(graph: Graph, comp: AbstractSet[Vertex]) -> Vertex:
        root = min(comp, key=_stable_key)
        tree = _traced_dijkstra_tree(graph, root, allowed=comp)
        sizes = tree.subtree_sizes()
        total = len(comp)
        v = root
        while True:
            heavy = None
            for c in tree.children.get(v, ()):
                if sizes[c] > total / 2:
                    heavy = c
                    break
            if heavy is None:
                return v
            v = heavy


class CenterBagEngine(SeparatorEngine):
    """Strong (w+1)-path separators via Lemma 1 center bags.

    Computes a tree decomposition of the induced subgraph with the
    chosen elimination heuristic (``'min_degree'``, ``'min_fill'``, or
    ``'mcs'`` — exact on chordal graphs such as k-trees) and emits the
    center bag as single-vertex paths (Theorem 7's construction).
    """

    _ORDERS = {
        "min_degree": min_degree_order,
        "min_fill": min_fill_order,
        "mcs": mcs_order,
    }

    def __init__(self, order: str = "min_degree") -> None:
        if order not in self._ORDERS:
            raise ValueError(f"unknown elimination order {order!r}")
        self.order_name = order
        self._order_fn = self._ORDERS[order]

    def find_separator(
        self, graph: Graph, within: Optional[AbstractSet[Vertex]] = None
    ) -> PathSeparator:
        metrics.inc("engine.calls", engine="centerbag")
        universe = _universe(graph, within)
        if not universe:
            return PathSeparator()
        comps = connected_components(graph, within=universe)
        comp = comps[0]
        if len(comp) <= len(universe) / 2:
            return PathSeparator()
        sub = induced_subgraph(graph, comp)
        td = decomposition_from_elimination(sub, self._order_fn(sub))
        bag = td.bags[center_bag(sub, td)]
        return singleton_separator(sorted(bag, key=_stable_key))


class GreedyPeelingEngine(SeparatorEngine):
    """General-purpose engine: peel residual shortest paths greedily.

    Each iteration roots a Dijkstra tree near the center of the current
    largest component of the residual graph, evaluates a handful of
    root paths by the balance they achieve, and removes the best one as
    its own phase.  Root paths of a residual Dijkstra tree are minimum
    cost paths of the residual graph, so (P1) holds by construction;
    the loop runs until (P3) holds.  ``num_paths`` of the result is the
    empirical k of Theorem 1.
    """

    def __init__(
        self,
        num_candidates: int = 16,
        max_paths: Optional[int] = None,
        seed: SeedLike = 0,
        vertex_weight: Optional[dict] = None,
    ) -> None:
        """*vertex_weight* switches (P3) to the paper's vertex-weighted
        variant: components are balanced by total weight, not count."""
        if num_candidates < 1:
            raise ValueError("num_candidates must be >= 1")
        self.num_candidates = num_candidates
        self.max_paths = max_paths
        self._seed = seed
        # Fingerprint once at construction; per-call child streams are
        # derived from this base so call order never matters.
        self._base_seed = seed_fingerprint(seed)
        self.vertex_weight = vertex_weight

    def _measure(self, vertices) -> float:
        if self.vertex_weight is None:
            return len(vertices)
        weight = self.vertex_weight
        return sum(weight.get(v, 0.0) for v in vertices)

    def find_separator(
        self, graph: Graph, within: Optional[AbstractSet[Vertex]] = None
    ) -> PathSeparator:
        metrics.inc("engine.calls", engine="greedy")
        universe = _universe(graph, within)
        rng = _component_rng(self._base_seed, "greedy", universe)
        half = self._measure(universe) / 2
        phases: List[SeparatorPhase] = []
        residual = set(universe)
        while True:
            comps = connected_components(graph, within=residual)
            if not comps:
                break
            comp = max(comps, key=self._measure)
            if self._measure(comp) <= half:
                break
            if self.max_paths is not None and len(phases) >= self.max_paths:
                raise GraphError(
                    f"GreedyPeelingEngine exceeded max_paths={self.max_paths} "
                    f"(heaviest component still {self._measure(comp)} "
                    f"of {self._measure(universe)})"
                )
            path = self._best_peel(graph, comp, rng)
            phases.append(SeparatorPhase(paths=[path]))
            residual -= set(path)
        return PathSeparator(phases=phases)

    def _best_peel(self, graph: Graph, comp: Set[Vertex], rng) -> List[Vertex]:
        root = approx_center(graph, comp)
        tree = _traced_dijkstra_tree(graph, root, allowed=comp)
        candidates = _path_candidates(tree, comp, self.num_candidates, rng)
        metrics.inc("engine.candidates_evaluated", len(candidates))
        best_path: Optional[List[Vertex]] = None
        best_score: Optional[Tuple[float, int]] = None
        for x in candidates:
            path = tree.path_to(x)
            rest = comp - set(path)
            rest_comps = connected_components(graph, within=rest)
            heaviest = max(
                (self._measure(c) for c in rest_comps), default=0.0
            )
            score = (heaviest, len(path))
            if best_score is None or score < best_score:
                best_score = score
                best_path = path
        assert best_path is not None
        return best_path


class FundamentalCycleEngine(SeparatorEngine):
    """Strong 2/3-path separators for planar-style graphs.

    Implements the Lipton-Tarjan fundamental-cycle idea on a
    shortest-path tree: for a non-tree edge {u, v}, the two root paths
    to u and v form a cycle with the edge; in a planar graph some such
    cycle is balanced.  We sample non-tree edges, evaluate balance
    explicitly (so the engine also works on near-planar inputs), and
    augment with a third root path when two do not suffice — exactly
    Thorup's "three shortest root paths" shape.  Falls back to greedy
    peeling phases if the graph refuses to split strongly.
    """

    def __init__(
        self,
        max_edge_samples: int = 64,
        num_third_candidates: int = 16,
        seed: SeedLike = 0,
    ) -> None:
        self.max_edge_samples = max_edge_samples
        self.num_third_candidates = num_third_candidates
        self._seed = seed
        self._base_seed = seed_fingerprint(seed)

    def find_separator(
        self, graph: Graph, within: Optional[AbstractSet[Vertex]] = None
    ) -> PathSeparator:
        metrics.inc("engine.calls", engine="cycle")
        universe = _universe(graph, within)
        rng = _component_rng(self._base_seed, "cycle", universe)
        half = len(universe) / 2
        comps = connected_components(graph, within=universe)
        if not comps or len(comps[0]) <= half:
            return PathSeparator()
        comp = comps[0]
        root = approx_center(graph, comp)
        tree = _traced_dijkstra_tree(graph, root, allowed=comp)

        nontree = self._nontree_edges(graph, tree, comp)
        metrics.inc("engine.nontree_edges_scanned", len(nontree))
        if not nontree:
            centroid = TreeCentroidEngine._centroid(graph, comp)
            return singleton_separator([centroid])
        if len(nontree) > self.max_edge_samples:
            nontree = [
                nontree[i]
                for i in sorted(rng.sample(range(len(nontree)), self.max_edge_samples))
            ]

        best: Optional[Tuple[int, List[List[Vertex]]]] = None
        for u, v in nontree:
            pu, pv = tree.path_to(u), tree.path_to(v)
            rest = comp - set(pu) - set(pv)
            score = _largest_within(graph, rest)
            if best is None or score < best[0]:
                best = (score, [pu, pv])
        assert best is not None
        score, paths = best
        if score <= half:
            return PathSeparator(phases=[SeparatorPhase(paths=paths)])

        # Third root path: aim into the largest remaining component.
        removed = set().union(*(set(p) for p in paths))
        sub_comps = connected_components(graph, within=comp - removed)
        target = sub_comps[0]
        sub_tree_candidates = _path_candidates(
            tree, target, self.num_third_candidates, rng
        )
        best3: Optional[Tuple[int, List[Vertex]]] = None
        for x in sub_tree_candidates:
            p3 = tree.path_to(x)
            rest = comp - removed - set(p3)
            s3 = _largest_within(graph, rest)
            if best3 is None or s3 < best3[0]:
                best3 = (s3, p3)
        if best3 is not None and best3[0] <= half:
            return PathSeparator(
                phases=[SeparatorPhase(paths=paths + [best3[1]])]
            )

        # Could not split strongly: finish with greedy-peeling phases.
        phases = [SeparatorPhase(paths=paths + ([best3[1]] if best3 else []))]
        residual = universe - set().union(*(set(p) for p in phases[0].paths))
        tail = GreedyPeelingEngine(seed=rng.getrandbits(32)).find_separator(
            graph, within=residual
        )
        # Rebase the tail's balance target onto the full universe.
        phases.extend(tail.phases)
        separator = PathSeparator(phases=phases)
        if separator.max_component_fraction(graph, within=universe) > 0.5:
            extra = GreedyPeelingEngine(seed=rng.getrandbits(32))
            residual2 = universe - separator.vertices()
            more = extra.find_separator(graph, within=residual2)
            separator.phases.extend(more.phases)
        return separator

    @staticmethod
    def _nontree_edges(
        graph: Graph, tree: ShortestPathTree, comp: AbstractSet[Vertex]
    ) -> List[Tuple[Vertex, Vertex]]:
        out = []
        for u in sorted(comp, key=_stable_key):
            for v in graph.neighbors(u):
                if v not in comp or _stable_key(v) <= _stable_key(u):
                    continue
                if tree.parent.get(u) == v or tree.parent.get(v) == u:
                    continue
                out.append((u, v))
        return out


class StrongGreedyEngine(SeparatorEngine):
    """Single-phase ("strong") separators: all paths are shortest paths
    of the *original* induced graph.

    Used for the Section 5.2 experiments: on ``mesh_with_universal``
    graphs every shortest path has at most 3 vertices, so the number of
    paths this engine needs grows as Omega(sqrt(n)) — the paper's
    Theorem 6.3 lower bound made visible.
    """

    def __init__(
        self,
        num_candidates: int = 16,
        max_paths: Optional[int] = None,
        seed: SeedLike = 0,
    ) -> None:
        self.num_candidates = num_candidates
        self.max_paths = max_paths
        self._seed = seed
        self._base_seed = seed_fingerprint(seed)

    def find_separator(
        self, graph: Graph, within: Optional[AbstractSet[Vertex]] = None
    ) -> PathSeparator:
        metrics.inc("engine.calls", engine="strong")
        universe = _universe(graph, within)
        rng = _component_rng(self._base_seed, "strong", universe)
        half = len(universe) / 2
        paths: List[List[Vertex]] = []
        removed: Set[Vertex] = set()
        while True:
            comps = connected_components(graph, within=universe - removed)
            if not comps or len(comps[0]) <= half:
                break
            if self.max_paths is not None and len(paths) >= self.max_paths:
                raise GraphError(
                    f"StrongGreedyEngine exceeded max_paths={self.max_paths}"
                )
            comp = comps[0]
            # Root anywhere in the stuck component, but the tree spans
            # the ORIGINAL induced graph so root paths are shortest in it.
            pool = sorted(comp, key=_stable_key)
            root = pool[rng.randrange(len(pool))]
            tree = _traced_dijkstra_tree(graph, root, allowed=universe)
            candidates = _path_candidates(tree, comp, self.num_candidates, rng)
            metrics.inc("engine.candidates_evaluated", len(candidates))
            best_path: Optional[List[Vertex]] = None
            best_score: Optional[Tuple[int, int]] = None
            for x in candidates:
                path = tree.path_to(x)
                rest = universe - removed - set(path)
                score = (_largest_within(graph, rest), len(path))
                if best_score is None or score < best_score:
                    best_score = score
                    best_path = path
            assert best_path is not None
            paths.append(best_path)
            removed.update(best_path)
        if not paths:
            return PathSeparator()
        return PathSeparator(phases=[SeparatorPhase(paths=paths)])


def auto_engine(
    graph: Graph,
    treewidth_threshold: int = 6,
    seed: SeedLike = 0,
) -> SeparatorEngine:
    """Pick a sensible engine for *graph*.

    Forests get the centroid engine; graphs whose min-degree heuristic
    width is small get center bags (strong separators of at most
    width+1 single-vertex paths); everything else gets greedy peeling.
    """
    n, m = graph.num_vertices, graph.num_edges
    if m <= max(0, n - 1):
        comps = connected_components(graph)
        if sum(len(c) for c in comps) - len(comps) == m:
            return TreeCentroidEngine()
    order = min_degree_order(graph)
    width = decomposition_from_elimination(graph, order).width
    if width <= treewidth_threshold:
        return CenterBagEngine(order="min_degree")
    return GreedyPeelingEngine(seed=seed)
