"""Small-worldization (Section 4, Theorem 3).

Implements Definitions 3-4 (augmentation distributions, one long-range
directed edge per vertex with weight d_G(v, u)) and the paper's
path-separator distribution: vertex v picks a uniform level tau of its
decomposition-tree root path, a uniform separator path Q of S(H_tau),
and a uniform landmark from the Claim-1 landmark set L(Q) built from
v's distances in the residual graph J.  Greedy routing over the
augmented graph then needs O(k^2 log^2 n log^2 Delta) expected hops.

Note 1 is automatic: when every separator path is a single vertex
(bounded-treewidth graphs), L(Q) degenerates to that vertex and the
log^2 Delta factor disappears.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Dict, Hashable, Iterable, List, Optional, Tuple

from repro.core.decomposition import DecompositionTree, build_decomposition
from repro.core.engines import SeparatorEngine
from repro.core.portals import claim1_landmarks
from repro.graphs.graph import Graph
from repro.graphs.shortest_paths import bidirectional_dijkstra, dijkstra
from repro.util.errors import GraphError
from repro.util.rng import SeedLike, ensure_rng

Vertex = Hashable
INF = float("inf")


@dataclass
class AugmentedGraph:
    """A base graph plus one directed long-range contact per vertex.

    The long edge (v, u) has weight d_G(v, u) per Definition 4; greedy
    hop counts do not depend on the weight, but stretch measurements
    do.
    """

    base: Graph
    long_edges: Dict[Vertex, Tuple[Vertex, float]] = field(default_factory=dict)

    def contacts(self, v: Vertex) -> List[Vertex]:
        """All vertices v can forward to: base neighbors + long contact."""
        out = list(self.base.neighbors(v))
        long = self.long_edges.get(v)
        if long is not None and long[0] != v:
            out.append(long[0])
        return out

    @property
    def num_long_edges(self) -> int:
        return len(self.long_edges)


class AugmentationDistribution(ABC):
    """Definition 3: for each vertex, a distribution over contacts."""

    @abstractmethod
    def sample_contact(self, graph: Graph, v: Vertex, rng) -> Optional[Vertex]:
        """Draw v's long-range contact (None = no usable contact)."""

    def augment(self, graph: Graph, seed: SeedLike = None) -> AugmentedGraph:
        """Definition 4: draw one contact per vertex independently."""
        rng = ensure_rng(seed)
        augmented = AugmentedGraph(base=graph)
        for v in graph.vertices():
            u = self.sample_contact(graph, v, rng)
            if u is None or u == v:
                continue
            weight, _ = bidirectional_dijkstra(graph, v, u)
            augmented.long_edges[v] = (u, weight)
        return augmented


class PathSeparatorAugmentation(AugmentationDistribution):
    """The paper's Section 4 distribution over decomposition landmarks."""

    def __init__(
        self,
        tree: DecompositionTree,
        aspect_ratio: Optional[float] = None,
        max_resamples: int = 8,
    ) -> None:
        self.tree = tree
        self.aspect_ratio = aspect_ratio or estimate_aspect_ratio(tree.graph)
        self.max_resamples = max_resamples

    @classmethod
    def build(
        cls,
        graph: Graph,
        engine: Optional[SeparatorEngine] = None,
        aspect_ratio: Optional[float] = None,
    ) -> "PathSeparatorAugmentation":
        return cls(build_decomposition(graph, engine=engine), aspect_ratio)

    def sample_contact(self, graph: Graph, v: Vertex, rng) -> Optional[Vertex]:
        root_path = self.tree.root_path(v)
        home_node, home_phase, _, _ = self.tree.home[v]
        for _ in range(self.max_resamples):
            node_id = root_path[rng.randrange(len(root_path))]
            node = self.tree.nodes[node_id]
            # Candidate paths: all separator paths of phases that still
            # contain v (all phases at ancestors; phases <= home phase
            # at the home node).
            keys: List[Tuple[int, int]] = []
            for phase_idx, phase in enumerate(node.separator.phases):
                if node_id == home_node and phase_idx > home_phase:
                    break
                for path_idx in range(len(phase.paths)):
                    keys.append((phase_idx, path_idx))
            if not keys:
                continue
            phase_idx, path_idx = keys[rng.randrange(len(keys))]
            residual = None
            for i, J in node.residual_sets():
                if i == phase_idx:
                    residual = J
                    break
            if residual is None or v not in residual:
                continue
            key = (node_id, phase_idx, path_idx)
            path = self.tree.path_vertices(key)
            prefix = self.tree.path_prefix(key)
            dist, _ = dijkstra(graph, v, allowed=residual)
            landmark_ids = claim1_landmarks(path, prefix, dist, self.aspect_ratio)
            if not landmark_ids:
                continue  # v cannot reach this path in J; redraw
            contact = path[landmark_ids[rng.randrange(len(landmark_ids))]]
            if contact == v:
                continue  # v drew itself (it sits on the path); redraw
            return contact
        return None


class ClosestSeparatorAugmentation(AugmentationDistribution):
    """Note 2's variant: contact the *closest* separator vertex.

    For unweighted graphs whose separators have diameter delta, the
    paper shows greedy routing then needs only O(log^2 n + delta log n)
    expected hops: after choosing a uniform level tau, v contacts the
    nearest vertex of the whole separator S(H_tau(v)) instead of a
    random geometric landmark.
    """

    def __init__(self, tree: DecompositionTree, max_resamples: int = 8) -> None:
        self.tree = tree
        self.max_resamples = max_resamples

    @classmethod
    def build(
        cls, graph: Graph, engine: Optional[SeparatorEngine] = None
    ) -> "ClosestSeparatorAugmentation":
        return cls(build_decomposition(graph, engine=engine))

    def sample_contact(self, graph: Graph, v: Vertex, rng) -> Optional[Vertex]:
        root_path = self.tree.root_path(v)
        for _ in range(self.max_resamples):
            node_id = root_path[rng.randrange(len(root_path))]
            node = self.tree.nodes[node_id]
            separator = node.separator.vertices() - {v}
            if not separator:
                continue
            dist, _ = dijkstra(graph, v, allowed=set(node.vertices))
            reachable = [
                (dist[u], repr(u), u) for u in separator if u in dist
            ]
            if not reachable:
                continue
            return min(reachable)[2]
        return None


def estimate_aspect_ratio(graph: Graph) -> float:
    """Delta = (max pairwise distance) / (min pairwise distance).

    Thin wrapper over :func:`repro.graphs.metrics.aspect_ratio` in its
    cheap double-sweep form — all the landmark rule needs (the value
    only controls the number of geometric offsets).
    """
    from repro.graphs.metrics import aspect_ratio

    if graph.num_edges == 0:
        return 1.0
    return aspect_ratio(graph, exact=False)


# ----------------------------------------------------------------------
# Greedy routing
# ----------------------------------------------------------------------


def greedy_route(
    augmented: AugmentedGraph,
    source: Vertex,
    target: Vertex,
    dist_to_target: Optional[Dict[Vertex, float]] = None,
    max_hops: Optional[int] = None,
) -> List[Vertex]:
    """Greedy routing: forward to the contact closest (in d_G) to the target.

    ``dist_to_target`` may be supplied to amortize the target-side
    Dijkstra across many sources.  Greedy always terminates on a
    connected graph: the neighbor on a shortest path is strictly
    closer.  Raises :class:`GraphError` if *max_hops* is exceeded.
    """
    if dist_to_target is None:
        dist_to_target, _ = dijkstra(augmented.base, target)
    if source not in dist_to_target:
        raise GraphError(f"{source!r} cannot reach {target!r}")
    hops = [source]
    current = source
    limit = max_hops if max_hops is not None else 4 * augmented.base.num_vertices
    while current != target:
        best = None
        best_d = dist_to_target[current]
        for c in augmented.contacts(current):
            d = dist_to_target.get(c, INF)
            if d < best_d:
                best_d = d
                best = c
        if best is None:
            raise GraphError(
                f"greedy routing stuck at {current!r} (should be impossible "
                f"on a connected graph)"
            )
        current = best
        hops.append(current)
        if len(hops) > limit:
            raise GraphError(f"greedy routing exceeded {limit} hops")
    return hops


class GreedyRouter:
    """Greedy-routing harness with per-target distance caching."""

    def __init__(self, augmented: AugmentedGraph, cache_size: int = 64) -> None:
        self.augmented = augmented
        self._cache: Dict[Vertex, Dict[Vertex, float]] = {}
        self._cache_size = cache_size

    def _dist_to(self, target: Vertex) -> Dict[Vertex, float]:
        if target not in self._cache:
            if len(self._cache) >= self._cache_size:
                self._cache.pop(next(iter(self._cache)))
            self._cache[target], _ = dijkstra(self.augmented.base, target)
        return self._cache[target]

    def hops(self, source: Vertex, target: Vertex) -> int:
        """Number of greedy hops from source to target."""
        return len(greedy_route(
            self.augmented, source, target, self._dist_to(target)
        )) - 1

    def mean_hops(self, pairs: Iterable[Tuple[Vertex, Vertex]]) -> float:
        total = 0
        count = 0
        for s, t in pairs:
            if s == t:
                continue
            total += self.hops(s, t)
            count += 1
        return total / count if count else 0.0
