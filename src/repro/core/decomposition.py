"""The decomposition tree of Section 4.

``T`` is a rooted tree whose root is G; the children of a node H are
the connected components of ``H \\ S(H)`` where S(H) is H's k-path
separator.  Because every component has at most |H|/2 vertices, the
depth is at most ``log2 n`` — the fact every object-location bound in
the paper rests on.

Every vertex of G is removed by exactly one separator, at exactly one
node: its *home*.  The home map, the per-node phase residuals, and the
per-path prefix (cumulative distance along each separator path) are
the data the labeling scheme (Theorem 2), the routing scheme, and the
small-world augmentation all consume.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import (
    AbstractSet,
    Dict,
    FrozenSet,
    Hashable,
    Iterator,
    List,
    Optional,
    Set,
    Tuple,
)

from repro.core.engines import SeparatorEngine, auto_engine
from repro.core.separator import PathSeparator
from repro.graphs.components import connected_components
from repro.graphs.graph import Graph
from repro.graphs.shortest_paths import batched_dijkstra
from repro.graphs.validation import require_connected
from repro.obs import metrics, span
from repro.util.errors import InvalidDecompositionError

Vertex = Hashable

# A vertex's home: (node_id, phase_index, path_index, position on path).
Home = Tuple[int, int, int, int]
# Key identifying one separator path globally.
PathKey = Tuple[int, int, int]


@dataclass
class DecompositionNode:
    """One node H of the decomposition tree."""

    node_id: int
    vertices: FrozenSet[Vertex]
    separator: PathSeparator
    parent: Optional[int]
    depth: int
    children: List[int] = field(default_factory=list)

    @property
    def size(self) -> int:
        return len(self.vertices)

    def residual_sets(self) -> Iterator[Tuple[int, Set[Vertex]]]:
        """Yield ``(phase_index, J)`` where J = H minus earlier phases —
        the graph each phase's paths are shortest paths of."""
        residual = set(self.vertices)
        for i, phase in enumerate(self.separator.phases):
            yield i, residual
            residual = residual - phase.vertices()


class DecompositionTree:
    """The full recursive decomposition of a connected graph."""

    def __init__(self, graph: Graph) -> None:
        self.graph = graph
        self.nodes: List[DecompositionNode] = []
        self.home: Dict[Vertex, Home] = {}
        self._prefix: Dict[PathKey, List[float]] = {}
        self._phase_units: Optional[
            List[Tuple[int, int, FrozenSet[Vertex]]]
        ] = None

    # ------------------------------------------------------------------
    @property
    def num_nodes(self) -> int:
        return len(self.nodes)

    @property
    def depth(self) -> int:
        """Maximum node depth (root = 0)."""
        return max((node.depth for node in self.nodes), default=0)

    @property
    def max_paths_per_node(self) -> int:
        """The empirical k: the largest number of separator paths any
        single node needed (property (P2)'s measured quantity)."""
        return max((node.separator.num_paths for node in self.nodes), default=0)

    def root(self) -> DecompositionNode:
        return self.nodes[0]

    def node_path(self, node_id: int) -> List[int]:
        """Node ids from the root down to *node_id* inclusive."""
        chain: List[int] = []
        current: Optional[int] = node_id
        while current is not None:
            chain.append(current)
            current = self.nodes[current].parent
        chain.reverse()
        return chain

    def root_path(self, v: Vertex) -> List[int]:
        """The paper's H_1(v), ..., H_r(v): every node containing v,
        root-down, ending at v's home node."""
        return self.node_path(self.home[v][0])

    def path_vertices(self, key: PathKey) -> List[Vertex]:
        node_id, phase_idx, path_idx = key
        return self.nodes[node_id].separator.phases[phase_idx].paths[path_idx]

    def path_prefix(self, key: PathKey) -> List[float]:
        """Cumulative distance along a separator path (prefix[0] = 0).

        ``|prefix[i] - prefix[j]|`` is the distance between path
        positions i and j *along the path*, which upper-bounds (and for
        a shortest path of the residual equals) their residual
        distance.
        """
        return self._prefix[key]

    def recompute_prefix(self, key: PathKey) -> List[float]:
        """Rebuild one path's prefix sums from the graph's *current*
        weights, replacing the cached value.

        The dynamic-update path (:mod:`repro.dynamic`) reweights edges
        of ``self.graph`` in place while holding the tree structure
        fixed; any path on which the edge's endpoints are consecutive
        reads that weight in its prefix and must be refreshed before
        labels are recomputed.
        """
        path = self.path_vertices(key)
        prefix = [0.0]
        for u, v in zip(path, path[1:]):
            prefix.append(prefix[-1] + self.graph.weight(u, v))
        self._prefix[key] = prefix
        return prefix

    def all_path_keys(self) -> Iterator[PathKey]:
        for node in self.nodes:
            for i, phase in enumerate(node.separator.phases):
                for j in range(len(phase.paths)):
                    yield (node.node_id, i, j)

    def phase_units(self) -> List[Tuple[int, int, FrozenSet[Vertex]]]:
        """Every ``(node_id, phase_index, residual)`` of the tree, in
        deterministic (node, phase) order.

        One unit is the batch granule of label construction: the
        vertices that need portal entries for a unit are exactly its
        residual's members, and all their per-path distances come from
        one :func:`~repro.graphs.shortest_paths.batched_dijkstra` pass
        (see :func:`phase_portal_distance_maps`).  Cached after the
        first call — forked labeling workers inherit the cache instead
        of recomputing it.
        """
        units = self._phase_units
        if units is None:
            units = [
                (node.node_id, phase_idx, frozenset(residual))
                for node in self.nodes
                for phase_idx, residual in node.residual_sets()
            ]
            self._phase_units = units
        return units

    def stats(self) -> Dict[str, float]:
        """Summary statistics used by experiment E1/E2 tables."""
        n = self.graph.num_vertices
        return {
            "n": n,
            "nodes": self.num_nodes,
            "depth": self.depth,
            "log2_n": math.log2(n) if n else 0.0,
            "max_paths_per_node": self.max_paths_per_node,
            "mean_paths_per_node": (
                sum(nd.separator.num_paths for nd in self.nodes) / self.num_nodes
                if self.nodes
                else 0.0
            ),
            "max_phases_per_node": max(
                (nd.separator.num_phases for nd in self.nodes), default=0
            ),
            "strong_fraction": (
                sum(1 for nd in self.nodes if nd.separator.is_strong) / self.num_nodes
                if self.nodes
                else 0.0
            ),
        }

    def to_dot(self, max_label_vertices: int = 4) -> str:
        """Graphviz DOT rendering of the decomposition tree.

        Each node shows its size and separator shape; handy for
        inspecting how an engine splits a graph
        (``dot -Tsvg tree.dot > tree.svg``).
        """
        lines = ["digraph decomposition {", "  node [shape=box];"]
        for node in self.nodes:
            sep = node.separator
            preview = ", ".join(
                repr(v) for v in list(sep.vertices())[:max_label_vertices]
            )
            if len(sep.vertices()) > max_label_vertices:
                preview += ", ..."
            label = (
                f"H{node.node_id}: |H|={node.size}\\n"
                f"{sep.num_paths} paths / {sep.num_phases} phases\\n"
                f"sep: {preview}"
            )
            label = label.replace('"', "'")
            lines.append(f'  n{node.node_id} [label="{label}"];')
            for child in node.children:
                lines.append(f"  n{node.node_id} -> n{child};")
        lines.append("}")
        return "\n".join(lines)

    # ------------------------------------------------------------------
    def validate(self, check_shortest: bool = True) -> None:
        """Re-verify the whole decomposition against the graph.

        Checks: every vertex has exactly one home; children of each node
        are exactly the components of ``H \\ S(H)`` and none exceeds
        |H|/2; depth <= log2(n) + 1; and optionally each separator's
        (P1) via :meth:`PathSeparator.validate`.
        """
        seen: Set[Vertex] = set()
        for node in self.nodes:
            sep_vertices = node.separator.vertices()
            overlap = sep_vertices & seen
            if overlap:
                raise InvalidDecompositionError(
                    f"vertex {next(iter(overlap))!r} removed by two separators"
                )
            seen.update(sep_vertices)
            if check_shortest:
                node.separator.validate(self.graph, within=node.vertices)
            remaining = set(node.vertices) - sep_vertices
            comps = connected_components(self.graph, within=remaining)
            child_sets = [frozenset(c) for c in comps]
            actual_children = [
                frozenset(self.nodes[c].vertices) for c in node.children
            ]
            if sorted(child_sets, key=sorted_key) != sorted(
                actual_children, key=sorted_key
            ):
                raise InvalidDecompositionError(
                    f"children of node {node.node_id} do not match the components "
                    f"of H minus its separator"
                )
            for child in child_sets:
                if len(child) > node.size / 2:
                    raise InvalidDecompositionError(
                        f"child of node {node.node_id} has {len(child)} vertices, "
                        f"more than half of {node.size}"
                    )
        if seen != set(self.graph.vertices()):
            raise InvalidDecompositionError("some vertices were never removed")
        n = self.graph.num_vertices
        if n and self.depth > math.log2(n) + 1:
            raise InvalidDecompositionError(
                f"depth {self.depth} exceeds log2({n}) + 1"
            )


def sorted_key(fs: FrozenSet) -> str:
    return repr(sorted(fs, key=repr))


def phase_portal_distance_maps(
    graph: Graph,
    tree: "DecompositionTree",
    node_id: int,
    phase_idx: int,
    residual: AbstractSet[Vertex],
) -> Dict[Vertex, Dict[Vertex, float]]:
    """Distance maps ``d_J(x, .)`` for every vertex x on the separator
    paths of one (node, phase), in one batched heap pass over the
    residual J.

    Because the graph is undirected, ``d_J(x, v)`` read from these maps
    equals the ``d_J(v, x)`` a per-vertex Dijkstra would produce, so
    portal selection for *every* vertex of J needs only this one batch
    instead of |J| truncated searches.
    """
    phase = tree.nodes[node_id].separator.phases[phase_idx]
    sources: List[Vertex] = []
    seen: Set[Vertex] = set()
    for path in phase.paths:
        for x in path:
            if x not in seen:
                seen.add(x)
                sources.append(x)
    return batched_dijkstra(graph, sources, allowed=residual)


def build_decomposition(
    graph: Graph,
    engine: Optional[SeparatorEngine] = None,
    validate: bool = False,
) -> DecompositionTree:
    """Build the decomposition tree of a connected weighted graph.

    Parameters
    ----------
    engine:
        The separator engine; ``auto_engine(graph)`` when omitted.
    validate:
        Re-verify every separator and the tree structure (slow; meant
        for tests).
    """
    require_connected(graph)
    if engine is None:
        engine = auto_engine(graph)
    tree = DecompositionTree(graph)
    if graph.num_vertices == 0:
        return tree

    with span(
        "decomposition.build",
        n=graph.num_vertices,
        engine=type(engine).__name__,
    ):
        pending: List[Tuple[FrozenSet[Vertex], Optional[int], int]] = [
            (frozenset(graph.vertices()), None, 0)
        ]
        while pending:
            vertices, parent, depth = pending.pop()
            separator = engine.find_separator(graph, within=vertices)
            sep_vertices = separator.vertices()
            if not sep_vertices:
                raise InvalidDecompositionError(
                    "engine returned an empty separator for a non-empty component"
                )
            node = DecompositionNode(
                node_id=len(tree.nodes),
                vertices=vertices,
                separator=separator,
                parent=parent,
                depth=depth,
            )
            tree.nodes.append(node)
            if parent is not None:
                tree.nodes[parent].children.append(node.node_id)
            if metrics.enabled:
                metrics.inc("decomposition.nodes")
                metrics.inc("decomposition.level.nodes", level=depth)
                metrics.inc("separator.paths_peeled", separator.num_paths)
                metrics.inc(
                    "decomposition.level.separator_vertices",
                    len(sep_vertices),
                    level=depth,
                )
                metrics.observe("decomposition.node_size", node.size)
                metrics.observe("separator.paths_per_node", separator.num_paths)

            for i, phase in enumerate(separator.phases):
                for j, path in enumerate(phase.paths):
                    key = (node.node_id, i, j)
                    prefix = [0.0]
                    for u, v in zip(path, path[1:]):
                        prefix.append(prefix[-1] + graph.weight(u, v))
                    tree._prefix[key] = prefix
                    for pos, v in enumerate(path):
                        # A vertex may appear on two paths of one phase
                        # ("two paths in the same P_i may intersect"); its
                        # home is the first occurrence.
                        if v not in tree.home:
                            tree.home[v] = (node.node_id, i, j, pos)

            remaining = set(vertices) - sep_vertices
            for comp in connected_components(graph, within=remaining):
                pending.append((frozenset(comp), node.node_id, depth + 1))

        metrics.gauge("decomposition.levels", tree.depth + 1)
        metrics.gauge("decomposition.max_paths_per_node", tree.max_paths_per_node)

    if validate:
        tree.validate()
    return tree
