"""The paper's contribution: k-path separators and the object-location
data structures built on them.

Public surface:

* :class:`PathSeparator`, :class:`SeparatorPhase` — the Definition 1
  object, with programmatic validation of properties (P1)-(P3).
* Separator engines (:mod:`repro.core.engines`) — compute k-path
  separators for trees, bounded-treewidth graphs, planar graphs, and
  arbitrary graphs (greedy peeling), plus *strong* single-phase mode.
* :class:`DecompositionTree` — the recursive decomposition of Section 4.
* :class:`DistanceLabeling` / :class:`PathSeparatorOracle` — Theorem 2.
* :class:`CompactRoutingScheme` — the stretch-(1+eps) routing scheme.
* Small-world augmentation and greedy routing — Theorem 3 / Section 4.
* Doubling separators — Section 5.3 / Theorem 8.
"""

from repro.core.decomposition import DecompositionNode, DecompositionTree, build_decomposition
from repro.core.doubling import (
    DoublingNode,
    DoublingOracle,
    MetricNetOracle,
    greedy_net,
    DoublingSeparator,
    doubling_dimension_estimate,
    grid3d_doubling_decomposition,
)
from repro.core.engines import (
    CenterBagEngine,
    FundamentalCycleEngine,
    GreedyPeelingEngine,
    SeparatorEngine,
    StrongGreedyEngine,
    TreeCentroidEngine,
    auto_engine,
)
from repro.core.flat import (
    BACKENDS,
    CSRGraph,
    FlatBackendUnavailable,
    FlatLabel,
    flat_available,
    flat_estimate,
    resolve_backend,
)
from repro.core.labeling import DistanceLabeling, VertexLabel, build_labeling
from repro.core.oracle import PathSeparatorOracle
from repro.core.portals import claim1_landmarks, epsilon_cover_portals, min_portal_pair
from repro.core.routing import CompactRoutingScheme
from repro.core.separator import PathSeparator, SeparatorPhase
from repro.core.serialize import (
    RemoteLabels,
    SerializationError,
    dump_labeling,
    load_labeling,
)
from repro.core.smallworld import (
    AugmentationDistribution,
    AugmentedGraph,
    ClosestSeparatorAugmentation,
    GreedyRouter,
    PathSeparatorAugmentation,
    estimate_aspect_ratio,
    greedy_route,
)

__all__ = [
    "AugmentationDistribution",
    "AugmentedGraph",
    "BACKENDS",
    "CSRGraph",
    "CenterBagEngine",
    "ClosestSeparatorAugmentation",
    "CompactRoutingScheme",
    "DecompositionNode",
    "DecompositionTree",
    "DistanceLabeling",
    "FlatBackendUnavailable",
    "FlatLabel",
    "DoublingNode",
    "DoublingOracle",
    "DoublingSeparator",
    "FundamentalCycleEngine",
    "GreedyPeelingEngine",
    "MetricNetOracle",
    "GreedyRouter",
    "PathSeparator",
    "PathSeparatorAugmentation",
    "PathSeparatorOracle",
    "RemoteLabels",
    "SeparatorEngine",
    "SerializationError",
    "SeparatorPhase",
    "StrongGreedyEngine",
    "TreeCentroidEngine",
    "VertexLabel",
    "auto_engine",
    "build_decomposition",
    "build_labeling",
    "claim1_landmarks",
    "doubling_dimension_estimate",
    "dump_labeling",
    "epsilon_cover_portals",
    "estimate_aspect_ratio",
    "flat_available",
    "flat_estimate",
    "greedy_net",
    "greedy_route",
    "load_labeling",
    "grid3d_doubling_decomposition",
    "min_portal_pair",
    "resolve_backend",
]
