"""Serialization of distance labels.

Theorem 2's labels are a *distributed* data structure: each vertex
ships its own label, and any two labels answer a distance query with
no further coordination.  This module gives them stable wire formats
so labels can actually be shipped:

* vertices of the kinds our generators produce (ints, floats, strings,
  and nested tuples of those) round-trip exactly;
* each label serializes independently (``encode_label`` /
  ``decode_label``), and a whole labeling bundles them with its
  epsilon (``dump_labeling`` / ``load_labeling``);
* ``wire_bits`` reports honest wire sizes next to the word-model
  accounting of :mod:`repro.util.sizing`.

Two codecs share the ``repro-distance-labels`` format family:

* ``/1`` — JSON, the debug codec, written and read here;
* ``/2`` — the packed binary codec of :mod:`repro.core.binfmt`
  (fixed-width records, per-shard offset index, mmap-able).

``dump_labeling(..., codec="binary")`` and ``load_labeling`` (which
sniffs the /2 magic) dispatch between them; every reader accepts
either transparently.
"""

from __future__ import annotations

import json
import math
from pathlib import Path
from typing import Dict, Hashable, Iterator, List, NamedTuple, Tuple, Union

from repro.core.labeling import VertexLabel, estimate_distance
from repro.util.errors import GraphError, ReproError

Vertex = Hashable

#: Wire-format family stamped into every dumped labeling.
LABELS_FORMAT_PREFIX = "repro-distance-labels"
#: The JSON (debug) codec version.
LABELS_FORMAT_VERSION = 1
#: The packed binary codec version (:mod:`repro.core.binfmt`).
LABELS_FORMAT_VERSION_BINARY = 2
#: Every version this build speaks (JSON /1, binary /2).
SUPPORTED_LABELS_VERSIONS = (LABELS_FORMAT_VERSION, LABELS_FORMAT_VERSION_BINARY)
#: The exact JSON ``"format"`` stamp, e.g. ``"repro-distance-labels/1"``.
LABELS_FORMAT = f"{LABELS_FORMAT_PREFIX}/{LABELS_FORMAT_VERSION}"
#: The binary codec's stamp (carried as the file magic, not JSON).
LABELS_FORMAT_BINARY = f"{LABELS_FORMAT_PREFIX}/{LABELS_FORMAT_VERSION_BINARY}"


class SerializationError(ReproError):
    """A value cannot be encoded, or a payload is malformed."""


class RemoteLabels(NamedTuple):
    """Loaded labels, graph-free, with the Theorem-2 query attached.

    This is what the *receiving* side of the wire holds: epsilon plus
    one label per vertex, and nothing else — no graph, no decomposition
    tree.  :meth:`estimate` runs the paper's combine step (minimum over
    shared separator paths of portal-pair sums) directly on two stored
    labels.

    A ``NamedTuple``, so the historical ``epsilon, labels =
    load_labeling(...)`` unpacking keeps working unchanged.
    """

    epsilon: float
    labels: Dict[Vertex, VertexLabel]

    def label(self, v: Vertex) -> VertexLabel:
        try:
            return self.labels[v]
        except KeyError:
            raise GraphError(f"vertex {v!r} has no label") from None

    def estimate(self, u: Vertex, v: Vertex) -> float:
        """(1+eps)-approximate distance from the two stored labels."""
        return estimate_distance(self.label(u), self.label(v))

    def vertices(self) -> Iterator[Vertex]:
        return iter(self.labels)

    @property
    def num_labels(self) -> int:
        return len(self.labels)


def encode_vertex(v):
    """Encode a vertex as JSON-safe data (tuples become tagged lists)."""
    if isinstance(v, bool) or v is None:
        raise SerializationError(f"unsupported vertex type {type(v).__name__}")
    if isinstance(v, (int, float, str)):
        return v
    if isinstance(v, tuple):
        return {"t": [encode_vertex(x) for x in v]}
    raise SerializationError(f"unsupported vertex type {type(v).__name__}")


def decode_vertex(data):
    """Inverse of :func:`encode_vertex` (bools are rejected on both
    sides, or they would silently decode as ints)."""
    if isinstance(data, bool):
        raise SerializationError(f"malformed vertex payload {data!r}")
    if isinstance(data, (int, float, str)):
        return data
    if isinstance(data, dict) and set(data) == {"t"} and isinstance(data["t"], list):
        return tuple(decode_vertex(x) for x in data["t"])
    raise SerializationError(f"malformed vertex payload {data!r}")


def canonical_vertex(v: Vertex) -> Vertex:
    """The canonical member of *v*'s numeric-equality family.

    ``1 == 1.0`` and they hash alike, so a label dict treats them as
    one vertex — but their wire encodings (``1`` vs ``1.0``) differ,
    which used to route them to *different shards*.  Anything that
    derives routing or identity from a vertex's encoding must
    canonicalize first: integral floats collapse to ints, recursively
    through tuples.  Non-numeric vertices pass through unchanged.
    """
    if isinstance(v, float) and not isinstance(v, bool):
        # inf/nan are not integral; is_integer() is False for both.
        if v.is_integer():
            return int(v)
        return v
    if isinstance(v, tuple):
        return tuple(canonical_vertex(x) for x in v)
    return v


def shard_key_bytes(v: Vertex) -> bytes:
    """Stable bytes identifying *v* across processes, runs, and codecs.

    The canonical JSON wire encoding of :func:`canonical_vertex`, so
    numerically-equal vertices (``1`` vs ``1.0``) produce identical
    keys.  Both the serve layer's shard router and the binary codec's
    hash index hash these bytes.
    """
    return json.dumps(
        encode_vertex(canonical_vertex(v)), separators=(",", ":"), sort_keys=True
    ).encode("utf-8")


def _encode_key(key: Tuple[int, int, int]) -> str:
    return f"{key[0]}:{key[1]}:{key[2]}"


def _decode_key(text: str) -> Tuple[int, int, int]:
    parts = text.split(":")
    if len(parts) != 3:
        raise SerializationError(f"malformed path key {text!r}")
    try:
        return (int(parts[0]), int(parts[1]), int(parts[2]))
    except ValueError:
        raise SerializationError(f"malformed path key {text!r}") from None


def encode_path_key(key: Tuple[int, int, int]) -> str:
    """A path key ``(node_id, phase, path)`` as its wire form ``"n:p:i"``
    — the same encoding label entries use, shared with the delta wire
    format of :mod:`repro.dynamic.rebuild`."""
    return _encode_key(key)


def decode_path_key(text: str) -> Tuple[int, int, int]:
    """Inverse of :func:`encode_path_key`."""
    return _decode_key(text)


def encode_label(label: VertexLabel) -> dict:
    """One vertex's label as a JSON-safe dict."""
    return {
        "v": encode_vertex(label.vertex),
        "e": {
            _encode_key(key): [[pos, dist] for pos, dist in entries]
            for key, entries in label.entries.items()
        },
    }


def decode_label(data: dict) -> VertexLabel:
    """Inverse of :func:`encode_label`."""
    try:
        vertex = decode_vertex(data["v"])
        raw_entries = data["e"]
    except (KeyError, TypeError):
        raise SerializationError(f"malformed label payload {data!r}") from None
    entries: Dict[Tuple[int, int, int], List[Tuple[float, float]]] = {}
    for key_text, pairs in raw_entries.items():
        entries[_decode_key(key_text)] = [
            (float(pos), float(dist)) for pos, dist in pairs
        ]
    return VertexLabel(vertex=vertex, entries=entries)


def check_labels_format(stamp) -> int:
    """Validate a payload's ``"format"`` stamp; returns its version.

    Distinguishes three failure modes so operators (and the serve layer,
    which refuses incompatible files at startup rather than mid-request)
    get actionable one-liners: a missing stamp, a stamp from some other
    format family, and a version this build does not speak.
    """
    if stamp is None:
        raise SerializationError("labels payload has no format stamp")
    if not isinstance(stamp, str) or "/" not in stamp:
        raise SerializationError(f"unknown format {stamp!r}")
    prefix, _, version_text = stamp.rpartition("/")
    if prefix != LABELS_FORMAT_PREFIX:
        raise SerializationError(f"unknown format {stamp!r}")
    try:
        version = int(version_text)
    except ValueError:
        raise SerializationError(f"unknown format {stamp!r}") from None
    if version not in SUPPORTED_LABELS_VERSIONS:
        raise SerializationError(
            f"unsupported labels format version {version} "
            f"(this build reads versions "
            f"{', '.join(map(str, SUPPORTED_LABELS_VERSIONS))})"
        )
    return version


def _find_non_finite(labeling) -> str:
    """Locate the first non-finite value for an actionable error message."""
    if not math.isfinite(labeling.epsilon):
        return f"epsilon is {labeling.epsilon!r}"
    for label in labeling.labels.values():
        for key, portals in label.entries.items():
            for pos, dist in portals:
                if not (math.isfinite(pos) and math.isfinite(dist)):
                    return (
                        f"label of vertex {label.vertex!r} (path key {key!r}) "
                        f"holds ({pos!r}, {dist!r})"
                    )
    return "a non-finite float"


def dump_labeling(
    labeling,
    path: Union[str, Path, None] = None,
    codec: str = "json",
    num_shards: int = 8,
):
    """Serialize a :class:`DistanceLabeling` (optionally to a file).

    Only the shippable state is stored — epsilon plus one label per
    vertex; the graph and the decomposition tree stay behind.

    ``codec="json"`` (default) writes ``repro-distance-labels/1`` and
    returns the JSON text; ``codec="binary"`` writes the packed ``/2``
    format of :mod:`repro.core.binfmt` and returns the blob as
    ``bytes`` (*num_shards* fixes the pack-time shard layout).

    Strict JSON only: a labeling holding a non-finite distance raises
    :class:`SerializationError` instead of silently writing
    ``Infinity`` — the exact token the serve protocol forbids on the
    wire — in either codec.
    """
    if codec == "binary":
        from repro.core import binfmt

        blob = binfmt.pack_labeling(labeling, num_shards=num_shards)
        if path is not None:
            Path(path).write_bytes(blob)
        return blob
    if codec != "json":
        raise SerializationError(
            f"unknown codec {codec!r} (choose 'json' or 'binary')"
        )
    payload = {
        "format": LABELS_FORMAT,
        "epsilon": labeling.epsilon,
        "labels": [encode_label(label) for label in labeling.labels.values()],
    }
    try:
        text = json.dumps(payload, separators=(",", ":"), allow_nan=False)
    except ValueError:
        raise SerializationError(
            f"labeling is not strict-JSON serializable: "
            f"{_find_non_finite(labeling)}"
        ) from None
    if path is not None:
        Path(path).write_text(text)
    return text


def load_labeling(source: Union[str, Path, bytes]) -> RemoteLabels:
    """Load labels dumped by :func:`dump_labeling`, either codec.

    Accepts a path (JSON or binary, sniffed by the /2 magic), a JSON
    string, or a ``bytes`` blob; returns a :class:`RemoteLabels` —
    deliberately *not* a :class:`DistanceLabeling`, because the loader
    has no graph.  Query with :meth:`RemoteLabels.estimate`, or unpack
    ``epsilon, labels = load_labeling(...)`` as before.

    A payload naming the same vertex twice is corrupt — silently
    keeping the last copy would drop labels — so duplicates raise
    :class:`SerializationError` naming the vertex, in either codec.
    """
    from repro.core import binfmt

    if isinstance(source, (bytes, bytearray)):
        if binfmt.is_binary_labels(source):
            return binfmt.read_labeling_binary(bytes(source))
        try:
            text = bytes(source).decode("utf-8")
        except UnicodeDecodeError as exc:
            raise SerializationError(f"undecodable labels payload: {exc}") from None
    elif isinstance(source, Path) or (
        isinstance(source, str) and not source.lstrip().startswith("{")
    ):
        path = Path(source)
        with open(path, "rb") as handle:
            head = handle.read(len(binfmt.MAGIC))
        if binfmt.is_binary_labels(head):
            return binfmt.read_labeling_binary(path)
        try:
            text = path.read_text()
        except UnicodeDecodeError as exc:
            raise SerializationError(f"undecodable labels payload: {exc}") from None
    else:
        text = source
    try:
        payload = json.loads(text)
    except json.JSONDecodeError as exc:
        raise SerializationError(f"invalid JSON: {exc}") from None
    if not isinstance(payload, dict):
        raise SerializationError("labels payload is not a JSON object")
    version = check_labels_format(payload.get("format"))
    if version != LABELS_FORMAT_VERSION:
        raise SerializationError(
            f"format {LABELS_FORMAT_PREFIX}/{version} is the packed binary "
            f"codec; a JSON payload may only claim {LABELS_FORMAT}"
        )
    if not isinstance(payload.get("labels"), list):
        raise SerializationError("labels payload has no label list")
    labels: Dict[Vertex, VertexLabel] = {}
    for item in payload["labels"]:
        label = decode_label(item)
        if label.vertex in labels:
            raise SerializationError(
                f"duplicate label for vertex {label.vertex!r}"
            )
        labels[label.vertex] = label
    return RemoteLabels(float(payload["epsilon"]), labels)


def wire_bits(label: VertexLabel, codec: str = "json") -> int:
    """Actual wire size of one encoded label, in bits.

    Strict JSON, like :func:`dump_labeling`: a non-finite distance
    raises rather than silently measuring an ``Infinity`` token no
    reader would accept.  ``codec="binary"`` measures the packed /2
    record instead.
    """
    if codec == "binary":
        from repro.core import binfmt

        return 8 * len(binfmt.encode_label_binary(label))
    try:
        return 8 * len(
            json.dumps(encode_label(label), separators=(",", ":"), allow_nan=False)
        )
    except ValueError:
        raise SerializationError(
            f"label of vertex {label.vertex!r} holds a non-finite distance"
        ) from None
