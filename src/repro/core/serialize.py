"""Serialization of distance labels.

Theorem 2's labels are a *distributed* data structure: each vertex
ships its own label, and any two labels answer a distance query with
no further coordination.  This module gives them a stable JSON wire
format so labels can actually be shipped:

* vertices of the kinds our generators produce (ints, floats, strings,
  and nested tuples of those) round-trip exactly;
* each label serializes independently (``encode_label`` /
  ``decode_label``), and a whole labeling bundles them with its
  epsilon (``dump_labeling`` / ``load_labeling``);
* ``wire_bits`` reports honest wire sizes next to the word-model
  accounting of :mod:`repro.util.sizing`.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, Hashable, Iterator, List, NamedTuple, Tuple, Union

from repro.core.labeling import VertexLabel, estimate_distance
from repro.util.errors import GraphError, ReproError

Vertex = Hashable

#: Wire-format family stamped into every dumped labeling.
LABELS_FORMAT_PREFIX = "repro-distance-labels"
#: The format version this build reads and writes.
LABELS_FORMAT_VERSION = 1
#: The exact ``"format"`` stamp, e.g. ``"repro-distance-labels/1"``.
LABELS_FORMAT = f"{LABELS_FORMAT_PREFIX}/{LABELS_FORMAT_VERSION}"


class SerializationError(ReproError):
    """A value cannot be encoded, or a payload is malformed."""


class RemoteLabels(NamedTuple):
    """Loaded labels, graph-free, with the Theorem-2 query attached.

    This is what the *receiving* side of the wire holds: epsilon plus
    one label per vertex, and nothing else — no graph, no decomposition
    tree.  :meth:`estimate` runs the paper's combine step (minimum over
    shared separator paths of portal-pair sums) directly on two stored
    labels.

    A ``NamedTuple``, so the historical ``epsilon, labels =
    load_labeling(...)`` unpacking keeps working unchanged.
    """

    epsilon: float
    labels: Dict[Vertex, VertexLabel]

    def label(self, v: Vertex) -> VertexLabel:
        try:
            return self.labels[v]
        except KeyError:
            raise GraphError(f"vertex {v!r} has no label") from None

    def estimate(self, u: Vertex, v: Vertex) -> float:
        """(1+eps)-approximate distance from the two stored labels."""
        return estimate_distance(self.label(u), self.label(v))

    def vertices(self) -> Iterator[Vertex]:
        return iter(self.labels)

    @property
    def num_labels(self) -> int:
        return len(self.labels)


def encode_vertex(v):
    """Encode a vertex as JSON-safe data (tuples become tagged lists)."""
    if isinstance(v, bool) or v is None:
        raise SerializationError(f"unsupported vertex type {type(v).__name__}")
    if isinstance(v, (int, float, str)):
        return v
    if isinstance(v, tuple):
        return {"t": [encode_vertex(x) for x in v]}
    raise SerializationError(f"unsupported vertex type {type(v).__name__}")


def decode_vertex(data):
    """Inverse of :func:`encode_vertex` (bools are rejected on both
    sides, or they would silently decode as ints)."""
    if isinstance(data, bool):
        raise SerializationError(f"malformed vertex payload {data!r}")
    if isinstance(data, (int, float, str)):
        return data
    if isinstance(data, dict) and set(data) == {"t"} and isinstance(data["t"], list):
        return tuple(decode_vertex(x) for x in data["t"])
    raise SerializationError(f"malformed vertex payload {data!r}")


def _encode_key(key: Tuple[int, int, int]) -> str:
    return f"{key[0]}:{key[1]}:{key[2]}"


def _decode_key(text: str) -> Tuple[int, int, int]:
    parts = text.split(":")
    if len(parts) != 3:
        raise SerializationError(f"malformed path key {text!r}")
    try:
        return (int(parts[0]), int(parts[1]), int(parts[2]))
    except ValueError:
        raise SerializationError(f"malformed path key {text!r}") from None


def encode_label(label: VertexLabel) -> dict:
    """One vertex's label as a JSON-safe dict."""
    return {
        "v": encode_vertex(label.vertex),
        "e": {
            _encode_key(key): [[pos, dist] for pos, dist in entries]
            for key, entries in label.entries.items()
        },
    }


def decode_label(data: dict) -> VertexLabel:
    """Inverse of :func:`encode_label`."""
    try:
        vertex = decode_vertex(data["v"])
        raw_entries = data["e"]
    except (KeyError, TypeError):
        raise SerializationError(f"malformed label payload {data!r}") from None
    entries: Dict[Tuple[int, int, int], List[Tuple[float, float]]] = {}
    for key_text, pairs in raw_entries.items():
        entries[_decode_key(key_text)] = [
            (float(pos), float(dist)) for pos, dist in pairs
        ]
    return VertexLabel(vertex=vertex, entries=entries)


def check_labels_format(stamp) -> int:
    """Validate a payload's ``"format"`` stamp; returns its version.

    Distinguishes three failure modes so operators (and the serve layer,
    which refuses incompatible files at startup rather than mid-request)
    get actionable one-liners: a missing stamp, a stamp from some other
    format family, and a version this build does not speak.
    """
    if stamp is None:
        raise SerializationError("labels payload has no format stamp")
    if not isinstance(stamp, str) or "/" not in stamp:
        raise SerializationError(f"unknown format {stamp!r}")
    prefix, _, version_text = stamp.rpartition("/")
    if prefix != LABELS_FORMAT_PREFIX:
        raise SerializationError(f"unknown format {stamp!r}")
    try:
        version = int(version_text)
    except ValueError:
        raise SerializationError(f"unknown format {stamp!r}") from None
    if version != LABELS_FORMAT_VERSION:
        raise SerializationError(
            f"unsupported labels format version {version} "
            f"(this build reads version {LABELS_FORMAT_VERSION})"
        )
    return version


def dump_labeling(labeling, path: Union[str, Path, None] = None) -> str:
    """Serialize a :class:`DistanceLabeling` to JSON (optionally to a file).

    Only the shippable state is stored — epsilon plus one label per
    vertex; the graph and the decomposition tree stay behind.
    """
    payload = {
        "format": LABELS_FORMAT,
        "epsilon": labeling.epsilon,
        "labels": [encode_label(label) for label in labeling.labels.values()],
    }
    text = json.dumps(payload, separators=(",", ":"))
    if path is not None:
        Path(path).write_text(text)
    return text


def load_labeling(source: Union[str, Path]) -> RemoteLabels:
    """Load labels dumped by :func:`dump_labeling`.

    Accepts a JSON string or a path; returns a :class:`RemoteLabels` —
    deliberately *not* a :class:`DistanceLabeling`, because the loader
    has no graph.  Query with :meth:`RemoteLabels.estimate`, or unpack
    ``epsilon, labels = load_labeling(...)`` as before.
    """
    if isinstance(source, Path) or (
        isinstance(source, str) and not source.lstrip().startswith("{")
    ):
        text = Path(source).read_text()
    else:
        text = source
    try:
        payload = json.loads(text)
    except json.JSONDecodeError as exc:
        raise SerializationError(f"invalid JSON: {exc}") from None
    if not isinstance(payload, dict):
        raise SerializationError("labels payload is not a JSON object")
    check_labels_format(payload.get("format"))
    if not isinstance(payload.get("labels"), list):
        raise SerializationError("labels payload has no label list")
    labels: Dict[Vertex, VertexLabel] = {}
    for item in payload["labels"]:
        label = decode_label(item)
        labels[label.vertex] = label
    return RemoteLabels(float(payload["epsilon"]), labels)


def wire_bits(label: VertexLabel) -> int:
    """Actual wire size of one encoded label, in bits."""
    return 8 * len(json.dumps(encode_label(label), separators=(",", ":")))
