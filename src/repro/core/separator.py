"""Definition 1: k-path separators.

A *k-path separator* of a weighted graph G is a subgraph
``S = P_0 ∪ P_1 ∪ ...`` where

* (P1) each *phase* P_i is a union of k_i minimum-cost paths of the
  residual graph ``G \\ (P_0 ∪ ... ∪ P_{i-1})``;
* (P2) ``sum_i k_i <= k``;
* (P3) every connected component of ``G \\ S`` has at most n/2
  vertices (and is recursively k-path separable — checked by the
  decomposition tree, not by a single separator).

This module holds the data type and a programmatic verifier for
(P1)-(P3); the algorithms that *find* separators live in
:mod:`repro.core.engines`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import AbstractSet, Hashable, List, Optional, Sequence, Set

from repro.graphs.components import connected_components
from repro.graphs.graph import Graph
from repro.graphs.shortest_paths import dijkstra
from repro.util.errors import InvalidSeparatorError

Vertex = Hashable
Path = List[Vertex]


@dataclass
class SeparatorPhase:
    """One phase P_i: a union of paths, each a minimum-cost path of the
    residual graph at the time the phase was extracted."""

    paths: List[Path] = field(default_factory=list)

    @property
    def num_paths(self) -> int:
        return len(self.paths)

    def vertices(self) -> Set[Vertex]:
        out: Set[Vertex] = set()
        for path in self.paths:
            out.update(path)
        return out

    def __iter__(self):
        return iter(self.paths)


@dataclass
class PathSeparator:
    """A Definition-1 separator: an ordered sequence of phases."""

    phases: List[SeparatorPhase] = field(default_factory=list)

    @property
    def num_phases(self) -> int:
        return len(self.phases)

    @property
    def num_paths(self) -> int:
        """The separator's k: total number of paths over all phases (P2)."""
        return sum(p.num_paths for p in self.phases)

    @property
    def is_strong(self) -> bool:
        """A separator is *strong* if it consists of a single phase P_0
        (all paths are shortest paths of the original graph)."""
        return self.num_phases <= 1

    def vertices(self) -> Set[Vertex]:
        out: Set[Vertex] = set()
        for phase in self.phases:
            out.update(phase.vertices())
        return out

    def all_paths(self) -> List[Path]:
        return [path for phase in self.phases for path in phase.paths]

    # ------------------------------------------------------------------
    def max_component_fraction(
        self,
        graph: Graph,
        within: Optional[AbstractSet[Vertex]] = None,
        vertex_weight: Optional[dict] = None,
    ) -> float:
        """Measure of the largest component of ``G \\ S`` over the total.

        The measure is vertex count, or the sum of *vertex_weight*
        when given (the paper's vertex-weighted variant of Theorem 1).
        """
        universe = set(within) if within is not None else set(graph.vertices())
        if not universe:
            return 0.0
        measure = _measure_fn(vertex_weight)
        total = measure(universe)
        if total <= 0:
            return 0.0
        remaining = universe - self.vertices()
        comps = connected_components(graph, within=remaining)
        if not comps:
            return 0.0
        return max(measure(c) for c in comps) / total

    def validate(
        self,
        graph: Graph,
        within: Optional[AbstractSet[Vertex]] = None,
        rel_tol: float = 1e-9,
        vertex_weight: Optional[dict] = None,
    ) -> None:
        """Verify (P1) and (P3) against *graph* (restricted to *within*).

        (P1): every path's vertices lie in the correct residual set,
        its consecutive edges exist, and its cost equals the shortest
        path distance between its endpoints *inside the residual set*.
        (P3): the largest remaining component has at most half the
        total measure — vertex count, or *vertex_weight* sums for the
        paper's vertex-weighted variant.  (P2) is a budget on k, which
        callers compare against ``num_paths`` themselves.

        Raises :class:`InvalidSeparatorError` on the first violation.
        """
        universe = set(within) if within is not None else set(graph.vertices())
        residual = set(universe)
        for i, phase in enumerate(self.phases):
            for j, path in enumerate(phase.paths):
                self._validate_path(graph, residual, path, i, j, rel_tol)
            residual -= phase.vertices()
        measure = _measure_fn(vertex_weight)
        comps = connected_components(graph, within=residual)
        half = measure(universe) / 2
        for comp in comps:
            if measure(comp) > half:
                raise InvalidSeparatorError(
                    f"(P3) violated: a remaining component has measure "
                    f"{measure(comp)}, allowed {half:.1f}"
                )

    def _validate_path(
        self,
        graph: Graph,
        residual: Set[Vertex],
        path: Path,
        phase_idx: int,
        path_idx: int,
        rel_tol: float,
    ) -> None:
        where = f"phase {phase_idx}, path {path_idx}"
        if not path:
            raise InvalidSeparatorError(f"{where}: empty path")
        for v in path:
            if v not in residual:
                raise InvalidSeparatorError(
                    f"{where}: vertex {v!r} not in the residual graph "
                    f"(already removed by an earlier phase, or outside the graph)"
                )
        if len(set(path)) != len(path):
            raise InvalidSeparatorError(f"{where}: path repeats a vertex")
        cost = 0.0
        for u, v in zip(path, path[1:]):
            if not graph.has_edge(u, v):
                raise InvalidSeparatorError(
                    f"{where}: consecutive vertices ({u!r}, {v!r}) are not adjacent"
                )
            cost += graph.weight(u, v)
        if len(path) == 1:
            return  # single vertices are trivially minimum-cost paths
        dist, _ = dijkstra(graph, path[0], allowed=residual)
        optimal = dist.get(path[-1])
        if optimal is None:
            raise InvalidSeparatorError(
                f"{where}: endpoints are disconnected in the residual graph"
            )
        if cost > optimal * (1 + rel_tol) + 1e-12:
            raise InvalidSeparatorError(
                f"(P1) violated at {where}: path cost {cost} exceeds the residual "
                f"shortest-path distance {optimal}"
            )


def _measure_fn(vertex_weight: Optional[dict]):
    """Component measure: count, or total vertex weight when given."""
    if vertex_weight is None:
        return len
    return lambda vertices: sum(vertex_weight.get(v, 0.0) for v in vertices)


def singleton_separator(vertices: Sequence[Vertex]) -> PathSeparator:
    """A strong separator consisting of single-vertex paths.

    This is how center bags become separators: "a single vertex being a
    trivial minimum cost path" (the paper's tree example).
    """
    phase = SeparatorPhase(paths=[[v] for v in vertices])
    return PathSeparator(phases=[phase])
