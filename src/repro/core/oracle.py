"""Theorem 2's centralized form: the (1+eps)-approximate distance oracle.

The oracle is the labeling stored centrally: O(k/eps * n log n) words
of space, O(k/eps * log n) query time, stretch in [1, 1+eps].
"""

from __future__ import annotations

from typing import Hashable, Optional

from repro.core.decomposition import DecompositionTree, build_decomposition
from repro.core.engines import SeparatorEngine
from repro.core.labeling import DistanceLabeling, build_labeling
from repro.graphs.graph import Graph
from repro.obs import span
from repro.util.rng import SeedLike
from repro.util.sizing import SizeReport

Vertex = Hashable


class PathSeparatorOracle:
    """(1+eps)-approximate distance oracle over a k-path separable graph.

    >>> from repro.generators import grid_2d
    >>> g = grid_2d(8)
    >>> oracle = PathSeparatorOracle.build(g, epsilon=0.25)
    >>> d = oracle.query((0, 0), (7, 7))
    >>> 14 <= d <= 14 * 1.25
    True
    """

    def __init__(self, labeling: DistanceLabeling) -> None:
        self.labeling = labeling
        self.graph = labeling.graph
        self.tree = labeling.tree
        self.epsilon = labeling.epsilon

    @classmethod
    def build(
        cls,
        graph: Graph,
        epsilon: float = 0.25,
        engine: Optional[SeparatorEngine] = None,
        tree: Optional[DecompositionTree] = None,
        parallel: Optional[int] = None,
        seed: SeedLike = 0,
        backend: Optional[str] = None,
    ) -> "PathSeparatorOracle":
        """Build the oracle: decomposition tree (unless given) + labels.

        ``parallel=N`` fans label construction out over N worker
        processes; the result is byte-identical to a serial build (see
        :func:`repro.core.labeling.build_labeling`).  ``seed`` only
        feeds per-worker child-seed derivation.  ``backend`` selects the
        label-construction kernels (``"dict"``/``"flat"``/``"auto"``).
        """
        with span("oracle.build", n=graph.num_vertices, epsilon=epsilon):
            if tree is None:
                tree = build_decomposition(graph, engine=engine)
            labeling = build_labeling(
                graph,
                tree,
                epsilon=epsilon,
                parallel=parallel,
                seed=seed,
                backend=backend,
            )
        return cls(labeling)

    def query(self, u: Vertex, v: Vertex) -> float:
        """(1+eps)-approximate distance; 0.0 when u == v."""
        return self.labeling.estimate(u, v)

    def space_words(self) -> int:
        """Total oracle space in the paper's word model."""
        return self.size_report().total_words

    def size_report(self) -> SizeReport:
        return self.labeling.size_report()

    def __repr__(self) -> str:
        return (
            f"PathSeparatorOracle(n={self.graph.num_vertices}, "
            f"epsilon={self.epsilon}, words={self.space_words()})"
        )
