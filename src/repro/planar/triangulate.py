"""Star triangulation of embedded planar graphs.

The Lipton-Tarjan cycle argument needs triangular faces.  Chord-based
triangulation of an arbitrary face can collide with existing edges, so
we use the always-safe *star* form: each face with more than three
sides receives a fresh virtual vertex connected to every face vertex.
Virtual vertices are returned so the separator machinery can keep
fundamental cycles inside the real graph.
"""

from __future__ import annotations

from typing import Hashable, List, Set, Tuple

from repro.planar.rotation import RotationSystem
from repro.graphs.graph import Graph

Vertex = Hashable
Triangle = Tuple[Vertex, Vertex, Vertex]


class StarVertex:
    """A virtual triangulation vertex (one per big face).

    A dedicated class (rather than, say, a string) so virtual vertices
    can never collide with caller vertex names.
    """

    __slots__ = ("face_index",)

    def __init__(self, face_index: int) -> None:
        self.face_index = face_index

    def __repr__(self) -> str:
        return f"StarVertex({self.face_index})"


def star_triangulate(
    graph: Graph,
    system: RotationSystem,
) -> Tuple[Graph, List[Triangle], Set[Vertex]]:
    """Triangulate every face of the embedding by star insertion.

    Returns ``(triangulated_graph, triangles, virtual_vertices)``:

    * the triangulated graph contains *graph* plus one
      :class:`StarVertex` per face of length > 3, joined to each of
      the face's vertices (weight 1 — weights of virtual edges are
      irrelevant, they never enter separator paths);
    * ``triangles`` lists every triangular face of the result (as
      vertex triples), which is exactly what the dual-tree machinery
      consumes;
    * ``virtual_vertices`` identifies the inserted stars.

    Faces of length 1-2 (bridges, isolated edges) also get a star so
    the triangle list covers the whole surface.
    """
    triangulated = graph.copy()
    triangles: List[Triangle] = []
    virtual: Set[Vertex] = set()
    for face_index, face in enumerate(system.faces()):
        corners = [u for u, _ in face]
        if len(face) == 3 and len(set(corners)) == 3:
            triangles.append((corners[0], corners[1], corners[2]))
            continue
        star = StarVertex(face_index)
        virtual.add(star)
        for u in set(corners):
            triangulated.add_edge(star, u, 1.0)
        for i, u in enumerate(corners):
            v = corners[(i + 1) % len(corners)]
            if u != v:
                triangles.append((u, v, star))
    return triangulated, triangles, virtual
