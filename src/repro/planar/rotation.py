"""Combinatorial embeddings: rotation systems and face traversal.

A *rotation system* fixes, for every vertex, the cyclic order of its
incident edges; for planar graphs this determines the embedding's
faces.  Faces are traced with the standard next-half-edge rule: after
arriving at v along (u, v), leave along (v, w) where w follows u in
v's cyclic order.  :meth:`RotationSystem.verify_euler` checks
``V - E + F = 1 + C`` (C connected components), which certifies that a
rotation system describes a genus-0 (planar) embedding.
"""

from __future__ import annotations

from typing import Dict, Hashable, List, Tuple

from repro.graphs.components import connected_components
from repro.graphs.graph import Graph
from repro.util.errors import GraphError

Vertex = Hashable
HalfEdge = Tuple[Vertex, Vertex]
Face = Tuple[HalfEdge, ...]


class NotPlanarError(GraphError):
    """The graph admits no planar embedding."""


class RotationSystem:
    """A cyclic neighbor order per vertex, with face traversal."""

    def __init__(self, order: Dict[Vertex, List[Vertex]]) -> None:
        self.order = order
        self._position: Dict[HalfEdge, int] = {}
        for v, neighbors in order.items():
            for i, u in enumerate(neighbors):
                self._position[(v, u)] = i

    @property
    def num_vertices(self) -> int:
        return len(self.order)

    @property
    def num_edges(self) -> int:
        return sum(len(nbrs) for nbrs in self.order.values()) // 2

    def next_half_edge(self, half_edge: HalfEdge) -> HalfEdge:
        """The half-edge following (u, v) on the same face boundary."""
        u, v = half_edge
        try:
            neighbors = self.order[v]
            idx = self._position[(v, u)]
        except KeyError:
            raise GraphError(f"({u!r}, {v!r}) is not a half-edge") from None
        w = neighbors[(idx + 1) % len(neighbors)]
        return (v, w)

    def faces(self) -> List[Face]:
        """All faces, each as a tuple of directed half-edges.

        Every half-edge belongs to exactly one face; a bridge's two
        directions appear on the same face.
        """
        remaining = {
            (v, u) for v, nbrs in self.order.items() for u in nbrs
        }
        out: List[Face] = []
        while remaining:
            start = next(iter(remaining))
            face: List[HalfEdge] = []
            current = start
            while True:
                face.append(current)
                remaining.discard(current)
                current = self.next_half_edge(current)
                if current == start:
                    break
            out.append(tuple(face))
        return out

    def verify_euler(self, graph: Graph) -> None:
        """Check the Euler relation; raises :class:`NotPlanarError` if
        the rotation system is not a plane embedding of *graph*.

        ``faces()`` counts each edge-bearing component's faces
        including its own outer boundary, so for a graph with C
        components of which E_c have edges the genus-0 requirement is
        ``V - E + F_computed = C + max(E_c, 0)`` with edgeless graphs
        satisfying ``V - E + 0 = C`` trivially.
        """
        if set(self.order) != set(graph.vertices()):
            raise GraphError("rotation system covers a different vertex set")
        for v in graph.vertices():
            if sorted(map(repr, self.order[v])) != sorted(
                map(repr, graph.neighbors(v))
            ):
                raise GraphError(f"rotation at {v!r} disagrees with the graph")
        components = connected_components(graph)
        edge_components = sum(1 for c in components if len(c) > 1)
        expected = len(components) + edge_components
        euler = graph.num_vertices - graph.num_edges + len(self.faces())
        if euler != expected:
            raise NotPlanarError(
                f"Euler characteristic {euler} != {expected}: "
                f"not a plane embedding"
            )


def embed_planar(graph: Graph, method: str = "dmp") -> RotationSystem:
    """Compute a planar rotation system of *graph*.

    ``method="dmp"`` (default) uses the package's own
    Demoucron-Malgrange-Pertuiset embedder
    (:mod:`repro.planar.dmp` — no external dependencies);
    ``method="networkx"`` delegates to networkx's planarity test,
    kept for cross-validation.  Either way the result is re-verified
    with Euler's formula.  Raises :class:`NotPlanarError` for
    non-planar graphs.
    """
    if method == "dmp":
        from repro.planar.dmp import dmp_embed

        return dmp_embed(graph)
    if method != "networkx":
        raise GraphError(f"unknown embedding method {method!r}")
    try:
        import networkx
    except ImportError as exc:  # pragma: no cover - environment-dependent
        raise GraphError(
            "embed_planar(method='networkx') requires networkx"
        ) from exc

    from repro.graphs.converters import to_networkx

    ok, embedding = networkx.check_planarity(to_networkx(graph))
    if not ok:
        raise NotPlanarError(f"{graph!r} is not planar")
    order = {
        v: list(embedding.neighbors_cw_order(v)) for v in graph.vertices()
    }
    system = RotationSystem(order)
    system.verify_euler(graph)
    return system


def is_planar(graph: Graph, method: str = "dmp") -> bool:
    """Whether *graph* is planar."""
    try:
        embed_planar(graph, method=method)
        return True
    except NotPlanarError:
        return False
