"""Planar embedding from scratch: the Demoucron-Malgrange-Pertuiset
(DMP) algorithm.

DMP incrementally grows a plane subgraph: start from any cycle (two
faces), and repeatedly take a *fragment* — a chord, or a component of
the unembedded part together with its attachment vertices — pick a
face whose boundary contains all of the fragment's attachments, and
embed one path of the fragment through that face, splitting it in two.
If some fragment fits in no face, the graph is not planar; otherwise
all edges eventually embed.  O(n^2) and fully self-contained (no
planarity library), which is the point: `repro.planar` works without
networkx, whose embedder remains available only for cross-validation.

The graph is processed block by block (a graph is planar iff every
biconnected component is), and the block rotations merge by
concatenation at articulation vertices; the resulting rotation system
is re-verified against Euler's formula before being returned.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, FrozenSet, Hashable, List, Optional, Set, Tuple

from repro.graphs.biconnected import biconnected_components
from repro.graphs.components import connected_components
from repro.graphs.graph import Graph
from repro.planar.rotation import NotPlanarError, RotationSystem
from repro.util.errors import GraphError

Vertex = Hashable
HalfEdge = Tuple[Vertex, Vertex]
FaceCycle = List[HalfEdge]


def dmp_embed(graph: Graph) -> RotationSystem:
    """Planar rotation system of *graph* via DMP.

    Raises :class:`NotPlanarError` when no plane embedding exists.
    Works on arbitrary graphs (disconnected, with bridges, isolated
    vertices); Euler-verified before returning.
    """
    rotation: Dict[Vertex, List[Vertex]] = {v: [] for v in graph.vertices()}
    blocks, _ = biconnected_components(graph)
    for block in blocks:
        block_rotation = _embed_block(block)
        for v, neighbors in block_rotation.items():
            rotation[v].extend(neighbors)
    system = RotationSystem(rotation)
    system.verify_euler(graph)
    return system


def _embed_block(block_edges: Set[FrozenSet[Vertex]]) -> Dict[Vertex, List[Vertex]]:
    block = Graph()
    for edge in block_edges:
        u, v = tuple(edge)
        block.add_edge(u, v)
    if block.num_edges == 1:
        u, v = tuple(next(iter(block_edges)))
        return {u: [v], v: [u]}

    cycle = _find_cycle(block)
    faces: List[FaceCycle] = [
        [(cycle[i], cycle[(i + 1) % len(cycle)]) for i in range(len(cycle))],
        [(cycle[(i + 1) % len(cycle)], cycle[i]) for i in reversed(range(len(cycle)))],
    ]
    embedded_vertices: Set[Vertex] = set(cycle)
    embedded_edges: Set[FrozenSet[Vertex]] = {
        frozenset((cycle[i], cycle[(i + 1) % len(cycle)]))
        for i in range(len(cycle))
    }

    while True:
        fragments = _fragments(block, embedded_vertices, embedded_edges)
        if not fragments:
            break
        face_vertex_sets = [
            frozenset(u for u, _ in face) for face in faces
        ]
        chosen: Optional[Tuple[int, List[int]]] = None  # (fragment idx, faces)
        for f_idx, (attachments, _) in enumerate(fragments):
            admissible = [
                i
                for i, vs in enumerate(face_vertex_sets)
                if attachments <= vs
            ]
            if not admissible:
                raise NotPlanarError(
                    "a fragment fits in no face: the graph is not planar"
                )
            if chosen is None or len(admissible) < len(chosen[1]):
                chosen = (f_idx, admissible)
                if len(admissible) == 1:
                    break
        assert chosen is not None
        attachments, interior = fragments[chosen[0]]
        face_index = chosen[1][0]
        path = _fragment_path(block, attachments, interior)
        _embed_path(faces, face_index, path)
        embedded_vertices.update(path)
        for a, b in zip(path, path[1:]):
            embedded_edges.add(frozenset((a, b)))

    return _rotation_from_faces(faces, block)


def _find_cycle(block: Graph) -> List[Vertex]:
    """Any simple cycle of a 2-connected block (DFS back edge)."""
    start = min(block.vertices(), key=repr)
    parent: Dict[Vertex, Optional[Vertex]] = {start: None}
    stack = [start]
    while stack:
        v = stack.pop()
        for w in sorted(block.neighbors(v), key=repr):
            if w not in parent:
                parent[w] = v
                stack.append(w)
            elif parent[v] != w:
                # Back/cross edge (v, w): walk both tails to their meet.
                ancestors = []
                x: Optional[Vertex] = v
                while x is not None:
                    ancestors.append(x)
                    x = parent[x]
                anc_pos = {u: i for i, u in enumerate(ancestors)}
                y: Optional[Vertex] = w
                tail: List[Vertex] = []
                while y is not None and y not in anc_pos:
                    tail.append(y)
                    y = parent[y]
                if y is None:
                    continue  # defensive; the root is always an ancestor
                # Cycle: meet -> ... -> v (tree), v -> w (this edge),
                # w -> ... -> child-of-meet (tree), closing at the meet.
                return list(reversed(ancestors[: anc_pos[y] + 1])) + tail
    raise GraphError("no cycle found in a supposed 2-connected block")


def _fragments(
    block: Graph,
    embedded_vertices: Set[Vertex],
    embedded_edges: Set[FrozenSet[Vertex]],
):
    """Fragments as ``(attachments, interior)`` pairs.

    ``interior`` is empty for chords (unembedded edges between two
    embedded vertices).
    """
    out = []
    seen_chords: Set[FrozenSet[Vertex]] = set()
    for u in embedded_vertices:
        for v in block.neighbors(u):
            if v in embedded_vertices:
                edge = frozenset((u, v))
                if edge not in embedded_edges and edge not in seen_chords:
                    seen_chords.add(edge)
                    out.append((frozenset(edge), frozenset()))
    outside = [v for v in block.vertices() if v not in embedded_vertices]
    for comp in connected_components(block, within=outside):
        attachments = {
            u
            for v in comp
            for u in block.neighbors(v)
            if u in embedded_vertices
        }
        out.append((frozenset(attachments), frozenset(comp)))
    return out


def _fragment_path(
    block: Graph,
    attachments: FrozenSet[Vertex],
    interior: FrozenSet[Vertex],
) -> List[Vertex]:
    """A path between two attachments with all interior vertices in the
    fragment (for chords: the edge itself)."""
    anchors = sorted(attachments, key=repr)
    if not interior:
        return [anchors[0], anchors[1]]
    a = anchors[0]
    others = set(anchors[1:])
    # The path must pass through the fragment's interior — a direct
    # a-to-other edge would be an (already handled or embedded) chord —
    # so the first hop is restricted to interior vertices.
    parent: Dict[Vertex, Optional[Vertex]] = {a: None}
    queue = deque()
    for w in sorted(block.neighbors(a), key=repr):
        if w in interior:
            parent[w] = a
            queue.append(w)
    while queue:
        v = queue.popleft()
        neighbors = (
            w
            for w in block.neighbors(v)
            if (w in interior or w in others) and w not in parent
        )
        for w in sorted(neighbors, key=repr):
            parent[w] = v
            if w in others:
                path = [w]
                x: Optional[Vertex] = v
                while x is not None:
                    path.append(x)
                    x = parent[x]
                path.reverse()
                return path
            queue.append(w)
    raise GraphError("fragment path not found (corrupt fragment)")


def _embed_path(faces: List[FaceCycle], face_index: int, path: List[Vertex]) -> None:
    """Split ``faces[face_index]`` along *path* (endpoints on the face)."""
    face = faces[face_index]
    sources = [u for u, _ in face]
    a, b = path[0], path[-1]
    i = sources.index(a)
    rotated = face[i:] + face[:i]
    rotated_sources = sources[i:] + sources[:i]
    j = rotated_sources.index(b)

    forward = [(path[k], path[k + 1]) for k in range(len(path) - 1)]
    backward = [(path[k + 1], path[k]) for k in reversed(range(len(path) - 1))]
    face_a = forward + rotated[j:]  # a -> b -> ... -> a
    face_b = backward + rotated[:j]  # b -> a -> ... -> b
    faces[face_index] = face_a
    faces.append(face_b)


def _rotation_from_faces(
    faces: List[FaceCycle], block: Graph
) -> Dict[Vertex, List[Vertex]]:
    """Recover the rotation system from the face set.

    In face traversal, half-edge (u, v) is followed by (v, w) exactly
    when w succeeds u in v's rotation; walking that successor relation
    at each vertex reconstructs the cyclic order.
    """
    successor: Dict[Vertex, Dict[Vertex, Vertex]] = {
        v: {} for v in block.vertices()
    }
    for face in faces:
        for (u, v), (v2, w) in zip(face, face[1:] + face[:1]):
            if v != v2:
                raise GraphError("corrupt face cycle")
            successor[v][u] = w
    rotation: Dict[Vertex, List[Vertex]] = {}
    for v in block.vertices():
        succ = successor[v]
        degree = block.degree(v)
        if len(succ) != degree:
            raise GraphError(f"face structure misses edges at {v!r}")
        start = next(iter(succ))
        order = [start]
        while len(order) < degree:
            nxt = succ[order[-1]]
            if nxt == start:
                raise GraphError(f"rotation at {v!r} is not a single cycle")
            order.append(nxt)
        rotation[v] = order
    return rotation
