"""Planar-graph substrate: embeddings, faces, and cycle separators.

Planar graphs are the class the paper generalizes *from*: Thorup [44]
showed they are strongly 3-path separable via fundamental-cycle
separators on shortest-path trees (the Lipton-Tarjan [33] argument).
This subpackage provides the embedding machinery — combinatorial
rotation systems, face traversal, Euler verification, star
triangulation — and :class:`PlanarCycleEngine`, a separator engine
that picks the fundamental cycle *deterministically* through the dual
tree (interior subtree weights) instead of sampling non-tree edges the
way :class:`repro.core.engines.FundamentalCycleEngine` does.

Planarity testing and embedding are self-contained: the default
embedder is our Demoucron-Malgrange-Pertuiset implementation
(:mod:`repro.planar.dmp`), cross-validated against networkx in the
tests (networkx remains available via ``embed_planar(method=
'networkx')`` but is no longer required).  Every embedding is
re-verified via Euler's formula.
"""

from repro.planar.dmp import dmp_embed
from repro.planar.lipton_tarjan import PlanarCycleEngine, balanced_fundamental_cycle
from repro.planar.rotation import (
    NotPlanarError,
    RotationSystem,
    embed_planar,
    is_planar,
)
from repro.planar.triangulate import star_triangulate

__all__ = [
    "NotPlanarError",
    "PlanarCycleEngine",
    "RotationSystem",
    "balanced_fundamental_cycle",
    "dmp_embed",
    "embed_planar",
    "is_planar",
    "star_triangulate",
]
