"""Lipton-Tarjan fundamental-cycle separators via the dual tree.

The classic argument: triangulate the embedded graph, take a spanning
tree T; the non-tree edges form a spanning tree of the *dual* (the
interdigitating-trees theorem), and some non-tree edge's fundamental
cycle — two T-paths plus the edge — encloses between 1/3 and 2/3 of
the weight.  With T a shortest-path tree rooted near the center, the
cycle's two root paths are exactly the "union of 2 minimum cost paths"
Thorup [44] and the paper's planar discussion use.

Implementation notes:

* big faces are star-triangulated with virtual vertices
  (:mod:`repro.planar.triangulate`); virtual vertices enter the
  spanning tree only as leaves and candidate non-tree edges incident
  to them are skipped, so emitted cycles live entirely in the real
  graph;
* interior weights from the dual tree are used to *rank* candidate
  edges (each real vertex is charged to one incident triangle, so the
  ranking is exact up to boundary vertices); the top candidates are
  then re-scored exactly by component flood-fill, keeping the choice
  deterministic and correct.
"""

from __future__ import annotations

from collections import deque
from typing import AbstractSet, Dict, FrozenSet, Hashable, List, Optional, Tuple

from repro.core.engines import TreeCentroidEngine, approx_center
from repro.core.separator import PathSeparator, SeparatorPhase
from repro.graphs.components import connected_components
from repro.graphs.graph import Graph
from repro.graphs.ops import induced_subgraph
from repro.graphs.shortest_paths import dijkstra_tree
from repro.planar.rotation import NotPlanarError, embed_planar
from repro.planar.triangulate import star_triangulate
from repro.util.errors import GraphError

Vertex = Hashable
UEdge = FrozenSet[Vertex]


def balanced_fundamental_cycle(
    graph: Graph,
    within: Optional[AbstractSet[Vertex]] = None,
    top_candidates: int = 12,
) -> List[List[Vertex]]:
    """The most balanced fundamental cycle of the largest component.

    Returns the cycle as two root paths of a shortest-path tree (each
    a minimum-cost path of ``graph[within]``), chosen via dual-tree
    interior weights.  Raises :class:`NotPlanarError` when the
    component is not planar and :class:`GraphError` when it is a tree
    (no cycle exists — callers should use a centroid instead).
    """
    universe = set(within) if within is not None else set(graph.vertices())
    comps = connected_components(graph, within=universe)
    if not comps:
        raise GraphError("balanced_fundamental_cycle on an empty graph")
    comp = comps[0]
    sub = induced_subgraph(graph, comp)
    if sub.num_edges <= sub.num_vertices - 1:
        raise GraphError("component is a tree: no fundamental cycle exists")

    system = embed_planar(sub)
    _, triangles, virtual = star_triangulate(sub, system)
    tree = dijkstra_tree(graph, approx_center(graph, comp), allowed=comp)

    tree_edges: set = set()
    for v, p in tree.parent.items():
        if p is not None:
            tree_edges.add(frozenset((v, p)))

    # Dual tree over triangles, crossing only real non-tree edges.
    edge_triangles: Dict[UEdge, List[int]] = {}
    for t_index, (a, b, c) in enumerate(triangles):
        for u, v in ((a, b), (b, c), (a, c)):
            edge_triangles.setdefault(frozenset((u, v)), []).append(t_index)

    # Charge every real vertex to one incident triangle.
    charge: Dict[int, int] = {}
    assigned: set = set()
    for t_index, tri in enumerate(triangles):
        for u in tri:
            if u not in virtual and u not in assigned:
                assigned.add(u)
                charge[t_index] = charge.get(t_index, 0) + 1

    parent_tri: Dict[int, Optional[int]] = {0: None}
    parent_edge: Dict[int, UEdge] = {}
    order: List[int] = [0]
    queue = deque([0])
    while queue:
        t = queue.popleft()
        for edge, sides in _incident(triangles[t], edge_triangles):
            if edge in tree_edges:
                continue
            for other in sides:
                if other != t and other not in parent_tri:
                    parent_tri[other] = t
                    parent_edge[other] = edge
                    order.append(other)
                    queue.append(other)

    subtree_weight: Dict[int, int] = {t: charge.get(t, 0) for t in parent_tri}
    for t in reversed(order):
        p = parent_tri[t]
        if p is not None:
            subtree_weight[p] += subtree_weight[t]

    total = len(comp)
    candidates: List[Tuple[float, UEdge]] = []
    for t, edge in parent_edge.items():
        u, v = tuple(edge)
        if u in virtual or v in virtual:
            continue  # keep the cycle in the real graph
        interior = subtree_weight[t]
        imbalance = abs(interior - total / 2)
        candidates.append((imbalance, edge))
    if not candidates:
        raise GraphError(
            "no real non-tree edge available (all cycles pass through "
            "triangulation vertices)"
        )
    candidates.sort(key=lambda item: (item[0], sorted(map(repr, item[1]))))

    best_paths: Optional[List[List[Vertex]]] = None
    best_score: Optional[int] = None
    for _, edge in candidates[:top_candidates]:
        u, v = tuple(edge)
        pu, pv = tree.path_to(u), tree.path_to(v)
        rest = comp - set(pu) - set(pv)
        rest_comps = connected_components(graph, within=rest)
        score = len(rest_comps[0]) if rest_comps else 0
        if best_score is None or score < best_score:
            best_score = score
            best_paths = [pu, pv]
    assert best_paths is not None
    return best_paths


def _incident(triangle, edge_triangles):
    a, b, c = triangle
    for u, v in ((a, b), (b, c), (a, c)):
        edge = frozenset((u, v))
        yield edge, edge_triangles[edge]


class PlanarCycleEngine:
    """Separator engine using dual-tree fundamental cycles.

    Each phase removes one balanced cycle (two shortest root paths of
    the residual component); phases repeat until every component holds
    at most half the vertices, which for planar inputs takes one or
    two phases (Thorup's strong 3-path bound says three *paths*).
    Non-planar inputs raise :class:`NotPlanarError`.
    """

    def __init__(self, top_candidates: int = 12, max_phases: int = 32) -> None:
        self.top_candidates = top_candidates
        self.max_phases = max_phases

    def find_separator(
        self, graph: Graph, within: Optional[AbstractSet[Vertex]] = None
    ) -> PathSeparator:
        universe = (
            {v for v in within if v in graph}
            if within is not None
            else set(graph.vertices())
        )
        if not universe:
            return PathSeparator()
        half = len(universe) / 2
        phases: List[SeparatorPhase] = []
        residual = set(universe)
        while True:
            comps = connected_components(graph, within=residual)
            if not comps or len(comps[0]) <= half:
                break
            if len(phases) >= self.max_phases:
                raise GraphError(
                    f"PlanarCycleEngine exceeded max_phases={self.max_phases}"
                )
            comp = comps[0]
            try:
                paths = balanced_fundamental_cycle(
                    graph, within=comp, top_candidates=self.top_candidates
                )
            except GraphError as exc:
                if isinstance(exc, NotPlanarError):
                    raise
                # Tree-like residual: a centroid finishes the job.
                centroid = TreeCentroidEngine._centroid(graph, comp)
                paths = [[centroid]]
            phases.append(SeparatorPhase(paths=paths))
            for path in paths:
                residual -= set(path)
        return PathSeparator(phases=phases)
