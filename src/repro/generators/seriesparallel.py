"""Series-parallel graphs (excluding K4), treewidth 2.

The paper notes series-parallel graphs are 3-path separable because
treewidth-2 graphs have 3-vertex separating bags.  The generator grows
a graph by the two SP-preserving local operations: edge subdivision
(series) and adding a disjoint 2-path between adjacent endpoints
(parallel), so the output is series-parallel by construction.
"""

from __future__ import annotations

from repro.graphs.graph import Graph
from repro.util.errors import GraphError
from repro.util.rng import SeedLike, ensure_rng


def series_parallel_graph(
    n: int,
    parallel_prob: float = 0.4,
    weight_range=None,
    seed: SeedLike = None,
) -> Graph:
    """Random series-parallel graph on ``0..n-1``.

    Starts from the single edge (0, 1).  Each step picks a random edge
    ``{u, v}``:

    * with probability ``1 - parallel_prob`` it is *subdivided*
      (series operation: ``u - x - v`` replaces the edge);
    * otherwise a new 2-path ``u - x - v`` is added in *parallel*
      (the original edge survives).

    Both operations preserve series-parallelness and add one vertex,
    so exactly ``n - 2`` steps are performed.
    """
    if n < 2:
        raise GraphError("series_parallel_graph requires n >= 2")
    if not 0.0 <= parallel_prob <= 1.0:
        raise GraphError("parallel_prob must be in [0, 1]")
    rng = ensure_rng(seed)
    g = Graph()
    g.add_edge(0, 1, _weight(rng, weight_range))
    edges = [(0, 1)]
    for x in range(2, n):
        idx = rng.randrange(len(edges))
        u, v = edges[idx]
        if rng.random() < parallel_prob:
            # Parallel: keep {u, v}, add the path u - x - v.
            g.add_edge(u, x, _weight(rng, weight_range))
            g.add_edge(x, v, _weight(rng, weight_range))
            edges.append((u, x))
            edges.append((x, v))
        else:
            # Series: replace {u, v} by u - x - v.
            g.remove_edge(u, v)
            g.add_edge(u, x, _weight(rng, weight_range))
            g.add_edge(x, v, _weight(rng, weight_range))
            edges[idx] = (u, x)
            edges.append((x, v))
    return g


def _weight(rng, weight_range) -> float:
    if weight_range is None:
        return 1.0
    lo, hi = weight_range
    return rng.uniform(lo, hi)
