"""The lower-bound constructions of Section 5.

* :func:`mesh_with_universal` — Theorem 6.3: a ``t x t`` mesh plus a
  universal vertex is K6-minor-free but every *strong* k-path
  separator needs k = Omega(sqrt(n)) (diameter 2 makes every shortest
  path contain at most 3 vertices).
* :func:`complete_bipartite` — Theorem 7: K_{r, n-r} has treewidth r
  and every k-path separator needs k >= r/2.
"""

from __future__ import annotations

from repro.graphs.graph import Graph
from repro.util.errors import GraphError
from repro.generators.grids import grid_2d


def complete_bipartite(r: int, s: int) -> Graph:
    """K_{r,s} with vertices ``('a', i)`` and ``('b', j)`` (unweighted)."""
    if r < 1 or s < 1:
        raise GraphError("complete_bipartite requires positive part sizes")
    g = Graph()
    for i in range(r):
        g.add_vertex(("a", i))
    for j in range(s):
        g.add_vertex(("b", j))
    for i in range(r):
        for j in range(s):
            g.add_edge(("a", i), ("b", j))
    return g


def mesh_with_universal(t: int) -> Graph:
    """``t x t`` unweighted mesh plus a universal hub vertex ``'hub'``.

    The graph is K6-minor-free (the mesh is K5-minor-free) and has
    diameter 2, so any union of k shortest paths covers at most 3k
    vertices — the heart of the paper's strong-separator lower bound.
    """
    if t < 2:
        raise GraphError("mesh_with_universal requires t >= 2")
    g = grid_2d(t, t)
    for r in range(t):
        for c in range(t):
            g.add_edge("hub", (r, c))
    return g
