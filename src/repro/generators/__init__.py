"""Graph-family generators.

Each generator returns a :class:`repro.graphs.Graph` (some also return
auxiliary structure such as a tree decomposition).  The families mirror
the classes the paper's narrative names: trees and outerplanar graphs
(1- and small-path separable), series-parallel graphs and k-trees
(bounded treewidth, Theorem 7), meshes and planar graphs (strongly
3-path separable, [44]), the lower-bound constructions of Section 5
(``mesh_with_universal``, ``complete_bipartite``, random regular sparse
graphs), 3D meshes for the doubling extension, and synthetic road
networks as a realistic weighted planar workload.
"""

from repro.generators.bipartite import complete_bipartite, mesh_with_universal
from repro.generators.grids import (
    cycle_graph,
    grid_2d,
    grid_3d,
    path_graph,
    torus_2d,
)
from repro.generators.ktree import k_tree, partial_k_tree
from repro.generators.planar import (
    outerplanar_graph,
    random_delaunay_graph,
    random_planar_graph,
)
from repro.generators.random_graphs import (
    default_gnp_p,
    gnp_random_graph,
    preferential_attachment_graph,
)
from repro.generators.roads import road_network
from repro.generators.seriesparallel import series_parallel_graph
from repro.generators.special import hypercube, random_regular_graph
from repro.generators.trees import (
    balanced_tree,
    caterpillar_tree,
    random_tree,
    spider_tree,
)

__all__ = [
    "balanced_tree",
    "caterpillar_tree",
    "complete_bipartite",
    "cycle_graph",
    "default_gnp_p",
    "gnp_random_graph",
    "grid_2d",
    "grid_3d",
    "hypercube",
    "k_tree",
    "mesh_with_universal",
    "outerplanar_graph",
    "partial_k_tree",
    "path_graph",
    "preferential_attachment_graph",
    "random_delaunay_graph",
    "random_planar_graph",
    "random_regular_graph",
    "random_tree",
    "road_network",
    "series_parallel_graph",
    "spider_tree",
    "torus_2d",
]
