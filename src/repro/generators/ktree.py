"""k-trees and partial k-trees: the bounded-treewidth families.

Theorem 7 of the paper: treewidth-r graphs are strongly (r+1)-path
separable (every center bag is a union of single-vertex "paths").  The
generators here return the witnessing tree decomposition alongside the
graph so the separator engine can use it directly instead of running a
heuristic.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.graphs.graph import Graph
from repro.util.errors import GraphError
from repro.util.rng import SeedLike, ensure_rng


def k_tree(n: int, k: int, weight_range=None, seed: SeedLike = None) -> Tuple[Graph, List[frozenset]]:
    """Random k-tree on ``0..n-1`` plus its natural tree decomposition bags.

    Construction: start from the clique on ``0..k`` and repeatedly
    attach a new vertex to a uniformly random existing k-clique.  The
    returned bags are the (k+1)-cliques created along the way, which
    form a width-k tree decomposition.
    """
    if k < 1:
        raise GraphError("k_tree requires k >= 1")
    if n < k + 1:
        raise GraphError(f"k_tree requires n >= k + 1 = {k + 1}")
    rng = ensure_rng(seed)
    g = Graph()
    base = list(range(k + 1))
    for i in base:
        g.add_vertex(i)
    for i in base:
        for j in base:
            if i < j:
                g.add_edge(i, j, _weight(rng, weight_range))
    bags: List[frozenset] = [frozenset(base)]
    # k-cliques available for attachment: all k-subsets of the base clique.
    cliques: List[Tuple[int, ...]] = [
        tuple(base[:i] + base[i + 1 :]) for i in range(k + 1)
    ]
    for v in range(k + 1, n):
        clique = cliques[rng.randrange(len(cliques))]
        for u in clique:
            g.add_edge(u, v, _weight(rng, weight_range))
        bag = frozenset(clique) | {v}
        bags.append(bag)
        members = list(clique) + [v]
        for i in range(len(members)):
            cliques.append(tuple(members[:i] + members[i + 1 :]))
    return g, bags


def partial_k_tree(
    n: int,
    k: int,
    edge_keep_prob: float = 0.7,
    weight_range=None,
    seed: SeedLike = None,
) -> Tuple[Graph, List[frozenset]]:
    """Random connected partial k-tree (treewidth <= k) with its bags.

    Edges of a random k-tree are dropped independently with probability
    ``1 - edge_keep_prob``; a spanning tree of the k-tree is always
    kept so the result stays connected.  The k-tree's bags remain a
    valid decomposition of the subgraph.
    """
    if not 0.0 <= edge_keep_prob <= 1.0:
        raise GraphError("edge_keep_prob must be in [0, 1]")
    rng = ensure_rng(seed)
    full, bags = k_tree(n, k, weight_range=weight_range, seed=rng)
    keep = Graph()
    for v in full.vertices():
        keep.add_vertex(v)
    # Protect one spanning structure: vertex v > k keeps its edge to the
    # lowest-numbered member of its attachment clique; base clique keeps a path.
    protected = set()
    for v in range(1, min(k + 1, n)):
        protected.add((v - 1, v))
    for bag in bags[1:]:
        v = max(bag)
        anchor = min(bag - {v})
        protected.add((anchor, v))
    for u, v, w in full.edges():
        key = (min(u, v), max(u, v))
        if key in protected or rng.random() < edge_keep_prob:
            keep.add_edge(u, v, w)
    return keep, bags


def _weight(rng, weight_range) -> float:
    if weight_range is None:
        return 1.0
    lo, hi = weight_range
    return rng.uniform(lo, hi)
