"""Mesh, torus, path, and cycle generators.

Grids are the paper's running examples: an unweighted rectangular mesh
is 1-path separable (the middle row), and a 3D mesh is the motivating
example for the doubling-separator extension of Section 5.3.  Vertices
are coordinate tuples so geometric structure stays visible to callers.
"""

from __future__ import annotations

from typing import Optional

from repro.graphs.graph import Graph
from repro.util.errors import GraphError
from repro.util.rng import SeedLike, ensure_rng


def _edge_weight(rng, weight_range) -> float:
    if weight_range is None:
        return 1.0
    lo, hi = weight_range
    return rng.uniform(lo, hi)


def path_graph(n: int, weight_range=None, seed: SeedLike = None) -> Graph:
    """Path on vertices ``0..n-1``."""
    if n < 1:
        raise GraphError("path_graph requires n >= 1")
    rng = ensure_rng(seed)
    g = Graph()
    g.add_vertex(0)
    for i in range(n - 1):
        g.add_edge(i, i + 1, _edge_weight(rng, weight_range))
    return g


def cycle_graph(n: int, weight_range=None, seed: SeedLike = None) -> Graph:
    """Cycle on vertices ``0..n-1`` (n >= 3)."""
    if n < 3:
        raise GraphError("cycle_graph requires n >= 3")
    rng = ensure_rng(seed)
    g = path_graph(n, weight_range=weight_range, seed=rng)
    g.add_edge(n - 1, 0, _edge_weight(rng, weight_range))
    return g


def grid_2d(
    rows: int,
    cols: Optional[int] = None,
    weight_range=None,
    seed: SeedLike = None,
) -> Graph:
    """``rows x cols`` mesh with vertices ``(r, c)``.

    With ``weight_range=(lo, hi)`` each edge gets an independent uniform
    weight, which is how the benchmarks realize a target aspect ratio.
    """
    if cols is None:
        cols = rows
    if rows < 1 or cols < 1:
        raise GraphError("grid_2d requires positive dimensions")
    rng = ensure_rng(seed)
    g = Graph()
    for r in range(rows):
        for c in range(cols):
            g.add_vertex((r, c))
    for r in range(rows):
        for c in range(cols):
            if r + 1 < rows:
                g.add_edge((r, c), (r + 1, c), _edge_weight(rng, weight_range))
            if c + 1 < cols:
                g.add_edge((r, c), (r, c + 1), _edge_weight(rng, weight_range))
    return g


def torus_2d(
    rows: int,
    cols: Optional[int] = None,
    weight_range=None,
    seed: SeedLike = None,
) -> Graph:
    """2D torus (mesh with wraparound); genus-1, still minor-free friendly."""
    if cols is None:
        cols = rows
    if rows < 3 or cols < 3:
        raise GraphError("torus_2d requires dimensions >= 3")
    rng = ensure_rng(seed)
    g = Graph()
    for r in range(rows):
        for c in range(cols):
            g.add_edge((r, c), ((r + 1) % rows, c), _edge_weight(rng, weight_range))
            g.add_edge((r, c), (r, (c + 1) % cols), _edge_weight(rng, weight_range))
    return g


def grid_3d(
    x: int,
    y: Optional[int] = None,
    z: Optional[int] = None,
    weight_range=None,
    seed: SeedLike = None,
) -> Graph:
    """3D mesh with vertices ``(i, j, k)``.

    Not O(1)-path separable (its balanced separators are 2D planes),
    which is why it drives the (k, alpha)-doubling experiments.
    """
    if y is None:
        y = x
    if z is None:
        z = x
    if x < 1 or y < 1 or z < 1:
        raise GraphError("grid_3d requires positive dimensions")
    rng = ensure_rng(seed)
    g = Graph()
    for i in range(x):
        for j in range(y):
            for k in range(z):
                g.add_vertex((i, j, k))
    for i in range(x):
        for j in range(y):
            for k in range(z):
                if i + 1 < x:
                    g.add_edge((i, j, k), (i + 1, j, k), _edge_weight(rng, weight_range))
                if j + 1 < y:
                    g.add_edge((i, j, k), (i, j + 1, k), _edge_weight(rng, weight_range))
                if k + 1 < z:
                    g.add_edge((i, j, k), (i, j, k + 1), _edge_weight(rng, weight_range))
    return g
