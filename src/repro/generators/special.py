"""Expander-like and structured sparse families.

Random regular graphs are the Theorem 5 family: sparse graphs on which
no small-k path separator can exist (every (1+eps)-approximate scheme
needs Omega(sqrt(n))-bit labels), so the separator engine's measured k
must grow polynomially — the negative control of experiment E8.
"""

from __future__ import annotations

from typing import List

from repro.graphs.graph import Graph
from repro.util.errors import GraphError
from repro.util.rng import SeedLike, ensure_rng


def hypercube(dim: int) -> Graph:
    """The *dim*-dimensional hypercube on ``2**dim`` integer vertices."""
    if dim < 1:
        raise GraphError("hypercube requires dim >= 1")
    g = Graph()
    size = 1 << dim
    for v in range(size):
        g.add_vertex(v)
    for v in range(size):
        for b in range(dim):
            u = v ^ (1 << b)
            if u > v:
                g.add_edge(v, u)
    return g


def random_regular_graph(n: int, degree: int, seed: SeedLike = None, max_tries: int = 200) -> Graph:
    """Random *degree*-regular simple graph via the pairing model.

    Half-edges are matched uniformly at random; matchings producing
    self-loops or parallel edges are rejected and retried, which for
    the small degrees used here succeeds quickly.  The sampled graph is
    returned even if disconnected (callers wanting connectivity should
    retry — for degree >= 3 the graph is connected w.h.p.).
    """
    if degree < 1 or degree >= n:
        raise GraphError("random_regular_graph requires 1 <= degree < n")
    if (n * degree) % 2 != 0:
        raise GraphError("n * degree must be even")
    rng = ensure_rng(seed)
    stubs_template: List[int] = [v for v in range(n) for _ in range(degree)]
    for _ in range(max_tries):
        stubs = stubs_template[:]
        rng.shuffle(stubs)
        edges = set()
        ok = True
        for i in range(0, len(stubs), 2):
            u, v = stubs[i], stubs[i + 1]
            if u == v or (min(u, v), max(u, v)) in edges:
                ok = False
                break
            edges.add((min(u, v), max(u, v)))
        if ok:
            g = Graph()
            for v in range(n):
                g.add_vertex(v)
            for u, v in edges:
                g.add_edge(u, v)
            return g
    raise GraphError(
        f"failed to sample a simple {degree}-regular graph on {n} vertices "
        f"after {max_tries} tries"
    )
