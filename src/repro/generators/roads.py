"""Synthetic road networks: the realistic weighted-planar workload.

Road networks are the canonical practical instance of the paper's
setting — planar (hence 3-path separable), weighted, and with a large
aspect ratio.  We synthesize them as a sparsified grid whose edges get
travel-time weights, with a sparse set of cheap "highway" rows and
columns creating the long-range shortcuts real networks have.
"""

from __future__ import annotations

from repro.generators.grids import grid_2d

from repro.graphs.graph import Graph
from repro.util.errors import GraphError
from repro.util.rng import SeedLike, ensure_rng


def road_network(
    rows: int,
    cols: int = 0,
    removal_prob: float = 0.15,
    highway_every: int = 8,
    highway_speedup: float = 4.0,
    seed: SeedLike = None,
) -> Graph:
    """Generate a connected road-like planar graph on a ``rows x cols`` grid.

    Parameters
    ----------
    removal_prob:
        Probability each street edge is removed (removal is skipped when
        it would disconnect the network).
    highway_every:
        Every ``highway_every``-th row and column is a highway.
    highway_speedup:
        Highway edges are this factor cheaper than local streets.
    """
    if cols <= 0:
        cols = rows
    if rows < 2 or cols < 2:
        raise GraphError("road_network requires at least a 2x2 grid")
    if highway_every < 1:
        raise GraphError("highway_every must be >= 1")
    rng = ensure_rng(seed)

    g = grid_2d(rows, cols, weight_range=(1.0, 3.0), seed=rng)

    # Promote highway rows/columns: cheap, fast edges.
    for (u, v, w) in list(g.edges()):
        (r1, c1), (r2, c2) = u, v
        on_highway_row = r1 == r2 and r1 % highway_every == 0
        on_highway_col = c1 == c2 and c1 % highway_every == 0
        if on_highway_row or on_highway_col:
            g.add_edge(u, v, max(1e-6, w / highway_speedup))

    # Sparsify the local streets, preserving connectivity.
    candidates = [
        (u, v)
        for (u, v, _) in g.edges()
        if not _is_highway_edge(u, v, highway_every)
    ]
    rng.shuffle(candidates)
    for u, v in candidates:
        if rng.random() >= removal_prob:
            continue
        w = g.weight(u, v)
        g.remove_edge(u, v)
        if not _still_locally_connected(g, u, v):
            g.add_edge(u, v, w)
    return g


def _is_highway_edge(u, v, highway_every: int) -> bool:
    (r1, c1), (r2, c2) = u, v
    return (r1 == r2 and r1 % highway_every == 0) or (
        c1 == c2 and c1 % highway_every == 0
    )


def _still_locally_connected(g: Graph, u, v) -> bool:
    # Targeted BFS from u until v is found.  After removing a grid edge
    # the endpoints are almost always reconnected within a couple of
    # hops, so this is near-constant time in practice.
    from collections import deque

    seen = {u}
    queue = deque([u])
    while queue:
        x = queue.popleft()
        for y in g.neighbors(x):
            if y == v:
                return True
            if y not in seen:
                seen.add(y)
                queue.append(y)
    return False
