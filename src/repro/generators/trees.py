"""Tree generators.

Trees exclude K3 and are 1-path separable (the centroid vertex is a
trivial minimum-cost path), making them the smallest sanity class for
every algorithm in the package.
"""

from __future__ import annotations

from repro.graphs.graph import Graph
from repro.util.errors import GraphError
from repro.util.rng import SeedLike, ensure_rng


def _weight(rng, weight_range) -> float:
    if weight_range is None:
        return 1.0
    lo, hi = weight_range
    return rng.uniform(lo, hi)


def random_tree(n: int, weight_range=None, seed: SeedLike = None) -> Graph:
    """Uniform random recursive tree on ``0..n-1``.

    Vertex ``i`` attaches to a uniformly random earlier vertex, giving
    trees with logarithmic expected depth — a good generic workload.
    """
    if n < 1:
        raise GraphError("random_tree requires n >= 1")
    rng = ensure_rng(seed)
    g = Graph()
    g.add_vertex(0)
    for i in range(1, n):
        parent = rng.randrange(i)
        g.add_edge(parent, i, _weight(rng, weight_range))
    return g


def balanced_tree(branching: int, depth: int, weight_range=None, seed: SeedLike = None) -> Graph:
    """Complete *branching*-ary tree of the given *depth* (depth 0 = one vertex)."""
    if branching < 1 or depth < 0:
        raise GraphError("balanced_tree requires branching >= 1 and depth >= 0")
    rng = ensure_rng(seed)
    g = Graph()
    g.add_vertex(0)
    frontier = [0]
    next_id = 1
    for _ in range(depth):
        new_frontier = []
        for parent in frontier:
            for _ in range(branching):
                g.add_edge(parent, next_id, _weight(rng, weight_range))
                new_frontier.append(next_id)
                next_id += 1
        frontier = new_frontier
    return g


def caterpillar_tree(spine: int, legs_per_vertex: int = 2, weight_range=None, seed: SeedLike = None) -> Graph:
    """A spine path with *legs_per_vertex* leaves hanging off each spine vertex.

    Caterpillars are pathwidth-1 and exercise the long-separator-path
    case: the centroid separator of a caterpillar can be the whole
    spine when used in strong mode.
    """
    if spine < 1 or legs_per_vertex < 0:
        raise GraphError("caterpillar_tree requires spine >= 1 and legs >= 0")
    rng = ensure_rng(seed)
    g = Graph()
    g.add_vertex(0)
    for i in range(spine - 1):
        g.add_edge(i, i + 1, _weight(rng, weight_range))
    next_id = spine
    for i in range(spine):
        for _ in range(legs_per_vertex):
            g.add_edge(i, next_id, _weight(rng, weight_range))
            next_id += 1
    return g


def spider_tree(legs: int, leg_length: int, weight_range=None, seed: SeedLike = None) -> Graph:
    """*legs* disjoint paths of *leg_length* edges glued at a hub vertex 0.

    Spiders have a unique centroid (the hub) and unbounded doubling
    dimension as ``legs`` grows, so they separate "path separable" from
    "doubling" behaviour in tests.
    """
    if legs < 1 or leg_length < 1:
        raise GraphError("spider_tree requires legs >= 1 and leg_length >= 1")
    rng = ensure_rng(seed)
    g = Graph()
    g.add_vertex(0)
    next_id = 1
    for _ in range(legs):
        prev = 0
        for _ in range(leg_length):
            g.add_edge(prev, next_id, _weight(rng, weight_range))
            prev = next_id
            next_id += 1
    return g
