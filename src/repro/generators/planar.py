"""Planar-graph generators.

Planar graphs (excluding K5 and K3,3) are the headline application
class: Thorup [44] showed they are strongly 3-path separable, and the
paper generalizes his object-location machinery from exactly this
class.  The main generator triangulates random points (Delaunay, via
scipy when available) to get realistically irregular weighted planar
graphs; a pure-Python stacked-triangulation fallback keeps the package
usable without scipy.
"""

from __future__ import annotations

import math
from typing import Dict, List, Tuple

from repro.graphs.graph import Graph
from repro.util.errors import GraphError
from repro.util.rng import SeedLike, ensure_rng

Point = Tuple[float, float]


def random_delaunay_graph(
    n: int,
    seed: SeedLike = None,
    scale: float = 1000.0,
) -> Tuple[Graph, Dict[int, Point]]:
    """Delaunay triangulation of *n* uniform points in a ``scale x scale`` square.

    Edge weights are Euclidean lengths, so shortest paths look like
    road distances.  Returns ``(graph, positions)``.  Requires scipy;
    see :func:`random_planar_graph` for a dependency-free alternative.
    """
    if n < 3:
        raise GraphError("random_delaunay_graph requires n >= 3")
    try:
        from scipy.spatial import Delaunay
    except ImportError as exc:  # pragma: no cover - depends on environment
        raise GraphError("random_delaunay_graph requires scipy") from exc

    rng = ensure_rng(seed)
    points: List[Point] = [
        (rng.uniform(0, scale), rng.uniform(0, scale)) for _ in range(n)
    ]
    tri = Delaunay(points)
    g = Graph()
    for i in range(n):
        g.add_vertex(i)
    for simplex in tri.simplices:
        a, b, c = (int(x) for x in simplex)
        for u, v in ((a, b), (b, c), (a, c)):
            if not g.has_edge(u, v):
                g.add_edge(u, v, _euclid(points[u], points[v]))
    positions = {i: points[i] for i in range(n)}
    return g, positions


def random_planar_graph(
    n: int,
    edge_keep_prob: float = 0.85,
    weight_range=(1.0, 10.0),
    seed: SeedLike = None,
) -> Graph:
    """Random connected planar graph without external dependencies.

    Builds a stacked triangulation (insert each new vertex into a
    random triangular face, connecting to its three corners — planar by
    construction) and then sparsifies: each non-bridge-protected edge
    is kept with probability *edge_keep_prob*, with a spanning set
    always retained so the result stays connected.
    """
    if n < 3:
        raise GraphError("random_planar_graph requires n >= 3")
    if not 0.0 <= edge_keep_prob <= 1.0:
        raise GraphError("edge_keep_prob must be in [0, 1]")
    rng = ensure_rng(seed)

    full = Graph()
    for i in range(3):
        full.add_vertex(i)
    for u, v in ((0, 1), (1, 2), (0, 2)):
        full.add_edge(u, v, _weight(rng, weight_range))
    faces: List[Tuple[int, int, int]] = [(0, 1, 2)]
    protected = {(0, 1), (1, 2)}
    for v in range(3, n):
        face = faces[rng.randrange(len(faces))]
        a, b, c = face
        for u in face:
            full.add_edge(u, v, _weight(rng, weight_range))
        protected.add((min(a, v), max(a, v)))
        faces.remove(face)
        faces.extend([(a, b, v), (b, c, v), (a, c, v)])

    g = Graph()
    for v in full.vertices():
        g.add_vertex(v)
    for u, v, w in full.edges():
        key = (min(u, v), max(u, v))
        if key in protected or rng.random() < edge_keep_prob:
            g.add_edge(u, v, w)
    return g


def outerplanar_graph(
    n: int,
    chord_prob: float = 0.5,
    weight_range=None,
    seed: SeedLike = None,
) -> Graph:
    """Random outerplanar graph: an n-cycle plus non-crossing chords.

    Outerplanar graphs exclude K4 and K2,3; they sit between trees and
    planar graphs in the paper's hierarchy of examples.  Chords are
    drawn from a random triangulation of the polygon and kept with
    probability *chord_prob*.
    """
    if n < 3:
        raise GraphError("outerplanar_graph requires n >= 3")
    if not 0.0 <= chord_prob <= 1.0:
        raise GraphError("chord_prob must be in [0, 1]")
    rng = ensure_rng(seed)
    g = Graph()
    for i in range(n):
        g.add_edge(i, (i + 1) % n, _weight(rng, weight_range))

    def triangulate(lo: int, hi: int) -> None:
        # Triangulate the polygon arc lo..hi (indices along the cycle).
        if hi - lo < 2:
            return
        mid = rng.randrange(lo + 1, hi)
        for a, b in ((lo, mid), (mid, hi)):
            if b - a >= 2 and rng.random() < chord_prob:
                g.add_edge(a % n, b % n, _weight(rng, weight_range))
        triangulate(lo, mid)
        triangulate(mid, hi)

    triangulate(0, n - 1)
    return g


def _euclid(p: Point, q: Point) -> float:
    return max(1e-9, math.hypot(p[0] - q[0], p[1] - q[1]))


def _weight(rng, weight_range) -> float:
    if weight_range is None:
        return 1.0
    lo, hi = weight_range
    return rng.uniform(lo, hi)
