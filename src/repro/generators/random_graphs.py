"""Random and power-law graph families (the workload-diversity item).

Structured inputs (grids, k-trees, Delaunay) are kind to path
separators; these two families are the stress direction:

* :func:`gnp_random_graph` — the Erdős–Rényi model ``G(n, p)``.  Above
  the connectivity threshold ``p = ln(n)/n`` these graphs are locally
  tree-like but globally expander-ish, so "Vertex-separating path
  systems in random graphs" (arXiv 2408.01816) predicts path-separator
  systems need polynomially many paths — the measured ``max_paths_per
  _node`` under path-peeling should blow past what any structured
  family of the same size needs.  (The test suite checks exactly that
  prediction.)
* :func:`preferential_attachment_graph` — the Barabási–Albert model:
  power-law degrees via the repeated-endpoint trick, the standard
  proxy for social / web topologies and for skewed query traffic's
  favorite substrate (hubs concentrate load).

Both return ordinary weighted :class:`~repro.graphs.graph.Graph`\\ s on
integer vertices, so the whole pipeline — decomposition, labeling,
packing, serving — runs on them unchanged.
"""

from __future__ import annotations

import math

from repro.graphs.components import is_connected
from repro.graphs.graph import Graph
from repro.util.errors import GraphError
from repro.util.rng import SeedLike, ensure_rng


def _weight(rng, weight_range) -> float:
    if weight_range is None:
        return 1.0
    lo, hi = weight_range
    return rng.uniform(lo, hi)


def gnp_random_graph(
    n: int,
    p: float,
    seed: SeedLike = None,
    weight_range=None,
    connect: bool = False,
    max_tries: int = 200,
) -> Graph:
    """Erdős–Rényi ``G(n, p)`` on vertices ``0..n-1``.

    Each of the ``n(n-1)/2`` pairs is an edge independently with
    probability *p*.  With ``connect=True``, samples are redrawn until
    the graph is connected (fast for ``p`` above the ``ln(n)/n``
    threshold; :class:`~repro.util.errors.GraphError` after
    *max_tries* below it — the honest failure, not a silently patched
    graph).
    """
    if n < 1:
        raise GraphError("gnp_random_graph requires n >= 1")
    if not 0.0 <= p <= 1.0:
        raise GraphError(f"gnp_random_graph requires 0 <= p <= 1, got {p}")
    rng = ensure_rng(seed)
    for _ in range(max_tries):
        g = Graph()
        for v in range(n):
            g.add_vertex(v)
        for u in range(n):
            for v in range(u + 1, n):
                if rng.random() < p:
                    g.add_edge(u, v, _weight(rng, weight_range))
        if not connect or is_connected(g):
            return g
    raise GraphError(
        f"failed to sample a connected G({n}, {p}) after {max_tries} tries "
        f"(p is below the ~ln(n)/n = {math.log(max(n, 2)) / n:.4f} "
        f"connectivity threshold?)"
    )


def default_gnp_p(n: int) -> float:
    """The default edge probability for ``G(n, p)`` workloads:
    ``3 ln(n) / n``, comfortably above the connectivity threshold so
    ``connect=True`` succeeds in a try or two."""
    if n < 2:
        return 1.0
    return min(1.0, 3.0 * math.log(n) / n)


def preferential_attachment_graph(
    n: int,
    m: int = 3,
    seed: SeedLike = None,
    weight_range=None,
) -> Graph:
    """Barabási–Albert preferential attachment on ``0..n-1``.

    Vertices ``0..m-1`` start isolated; vertex ``m`` connects to all of
    them; every later vertex attaches to *m* distinct existing vertices
    chosen with probability proportional to current degree (the
    repeated-endpoint list trick: sampling uniformly from the flat list
    of all edge endpoints *is* degree-proportional sampling).  The
    result is connected by construction and has a power-law degree
    tail — the hubs that make skewed traffic skewed.
    """
    if n < 2:
        raise GraphError("preferential_attachment_graph requires n >= 2")
    if m < 1 or m >= n:
        raise GraphError(
            f"preferential_attachment_graph requires 1 <= m < n, got m={m}"
        )
    rng = ensure_rng(seed)
    g = Graph()
    for v in range(n):
        g.add_vertex(v)
    # Every edge contributes both endpoints; uniform choice from this
    # list is degree-proportional choice.
    endpoints = []
    for target in range(m):
        g.add_edge(m, target, _weight(rng, weight_range))
        endpoints.extend((m, target))
    for v in range(m + 1, n):
        targets = set()
        while len(targets) < m:
            targets.add(endpoints[rng.randrange(len(endpoints))])
        for target in sorted(targets):
            g.add_edge(v, target, _weight(rng, weight_range))
            endpoints.extend((v, target))
    return g
