"""Random-number-generator plumbing.

Every randomized routine in the package accepts a ``seed`` argument that
may be ``None`` (fresh entropy), an ``int`` (deterministic), or an
already-constructed :class:`random.Random` instance (shared stream).
:func:`ensure_rng` normalizes all three into a ``random.Random``.
"""

from __future__ import annotations

import random
from typing import Optional, Union

SeedLike = Union[None, int, random.Random]


def ensure_rng(seed: SeedLike = None) -> random.Random:
    """Return a ``random.Random`` for *seed*.

    ``None`` gives a freshly seeded generator, an ``int`` gives a
    deterministic generator, and an existing ``Random`` is returned
    unchanged so callers can share one stream across subroutines.
    """
    if isinstance(seed, random.Random):
        return seed
    return random.Random(seed)


def spawn_rng(rng: random.Random, salt: Optional[int] = None) -> random.Random:
    """Derive an independent child generator from *rng*.

    Useful when a routine wants reproducible sub-streams (e.g. one per
    vertex) without consuming an unpredictable amount of the parent
    stream.
    """
    base = rng.getrandbits(64)
    if salt is not None:
        base ^= salt * 0x9E3779B97F4A7C15 & (2**64 - 1)
    return random.Random(base)
