"""Random-number-generator plumbing.

Every randomized routine in the package accepts a ``seed`` argument that
may be ``None`` (fresh entropy), an ``int`` (deterministic), or an
already-constructed :class:`random.Random` instance (shared stream).
:func:`ensure_rng` normalizes all three into a ``random.Random``.
"""

from __future__ import annotations

import hashlib
import random
from typing import Optional, Union

SeedLike = Union[None, int, random.Random]


def seed_fingerprint(seed: SeedLike = None) -> int:
    """Collapse a :data:`SeedLike` into one 64-bit base integer.

    ``None`` draws fresh entropy; an ``int`` is used as-is; a
    ``random.Random`` contributes **one** draw from its stream.  Do
    this once (e.g. at engine construction) and derive all further
    child seeds from the returned integer with :func:`derive_seed`, so
    downstream randomness stops depending on call order or on state
    inherited across a process fork.
    """
    if isinstance(seed, random.Random):
        return seed.getrandbits(64)
    if seed is None:
        return random.SystemRandom().getrandbits(64)
    return int(seed)


def derive_seed(base: SeedLike, *key) -> int:
    """Stable 64-bit child seed for a spawn *key*.

    Hashes ``(fingerprint(base), key)`` — the same base and key always
    give the same child, and distinct keys give independent children,
    no matter how many siblings were derived in between.  This is what
    worker processes and per-component engine calls must use instead of
    sharing the parent's stream: a shared ``random.Random`` consumed
    from several workers (or in a different call order) silently breaks
    reproducibility, and a forked worker that keeps using inherited
    state produces streams correlated with its siblings'.
    """
    material = repr((seed_fingerprint(base), key)).encode("utf-8")
    return int.from_bytes(
        hashlib.sha256(material).digest()[:8], "big", signed=False
    )


def ensure_rng(seed: SeedLike = None) -> random.Random:
    """Return a ``random.Random`` for *seed*.

    ``None`` gives a freshly seeded generator, an ``int`` gives a
    deterministic generator, and an existing ``Random`` is returned
    unchanged so callers can share one stream across subroutines.
    """
    if isinstance(seed, random.Random):
        return seed
    return random.Random(seed)


def spawn_rng(rng: random.Random, salt: Optional[int] = None) -> random.Random:
    """Derive an independent child generator from *rng*.

    Useful when a routine wants reproducible sub-streams (e.g. one per
    vertex) without consuming an unpredictable amount of the parent
    stream.
    """
    base = rng.getrandbits(64)
    if salt is not None:
        base ^= salt * 0x9E3779B97F4A7C15 & (2**64 - 1)
    return random.Random(base)
