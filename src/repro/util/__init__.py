"""Shared utilities: RNG plumbing, size accounting, timing, tables.

These helpers are deliberately dependency-free so that every other
subpackage can import them without pulling in optional extras.
"""

from repro.util.errors import (
    GraphError,
    InvalidDecompositionError,
    InvalidSeparatorError,
    NotConnectedError,
    ReproError,
)
from repro.util.rng import derive_seed, ensure_rng, seed_fingerprint, spawn_rng
from repro.util.sizing import SizeReport, label_words, words_to_bits
from repro.util.tables import format_table
from repro.util.timer import Timer

__all__ = [
    "GraphError",
    "InvalidDecompositionError",
    "InvalidSeparatorError",
    "NotConnectedError",
    "ReproError",
    "SizeReport",
    "Timer",
    "derive_seed",
    "ensure_rng",
    "format_table",
    "label_words",
    "seed_fingerprint",
    "spawn_rng",
    "words_to_bits",
]
