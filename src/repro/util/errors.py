"""Exception hierarchy for the repro package.

All library-raised exceptions derive from :class:`ReproError` so that
callers can catch everything coming from this package with a single
``except`` clause while still being able to distinguish failure modes.
"""


class ReproError(Exception):
    """Base class for all errors raised by the repro package."""


class GraphError(ReproError):
    """A graph argument is malformed or an operation on it is invalid."""


class NotConnectedError(GraphError):
    """An operation that requires a connected graph received one that is not."""


class InvalidSeparatorError(ReproError):
    """A path separator violates one of the (P1)-(P3) properties of Definition 1."""


class InvalidDecompositionError(ReproError):
    """A tree decomposition or decomposition tree fails its validity conditions."""
