"""Plain-text table rendering for benchmark output.

The benchmark harnesses print the rows a paper table would contain;
this module renders them in aligned monospace so the output is directly
comparable run-to-run and diff-friendly.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence


def _render_cell(value) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000 or abs(value) < 0.01:
            return f"{value:.3g}"
        return f"{value:.3f}"
    return str(value)


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence],
    title: str = "",
) -> str:
    """Render *rows* under *headers* as an aligned ASCII table."""
    rendered: List[List[str]] = [[_render_cell(v) for v in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in rendered:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells but table has {len(headers)} columns"
            )
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def line(cells: Sequence[str]) -> str:
        return "  ".join(cell.rjust(widths[i]) for i, cell in enumerate(cells))

    out: List[str] = []
    if title:
        out.append(title)
    out.append(line(headers))
    out.append(line(["-" * w for w in widths]))
    out.extend(line(row) for row in rendered)
    return "\n".join(out)
