"""Minimal wall-clock timing helper used by examples and benchmarks."""

from __future__ import annotations

import time


class Timer:
    """Context manager measuring elapsed wall-clock seconds.

    >>> with Timer() as t:
    ...     sum(range(1000))
    500500
    >>> t.elapsed >= 0
    True
    """

    def __init__(self) -> None:
        self.start = 0.0
        self.elapsed = 0.0

    def __enter__(self) -> "Timer":
        self.start = time.perf_counter()
        return self

    def __exit__(self, *exc_info) -> None:
        self.elapsed = time.perf_counter() - self.start
