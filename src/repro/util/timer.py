"""Minimal wall-clock timing helper used by examples and benchmarks.

Also re-exported as :class:`repro.obs.Timer`; this module stays
dependency-free so either import path works.
"""

from __future__ import annotations

import time
from typing import List


class Timer:
    """Context manager measuring elapsed wall-clock seconds.

    Nanosecond-precision readings are kept alongside the float seconds
    (``elapsed_ns``, via :func:`time.perf_counter_ns`), and :meth:`lap`
    records split times while the timer is running.

    >>> with Timer() as t:
    ...     sum(range(1000))
    500500
    >>> t.elapsed >= 0
    True
    """

    def __init__(self) -> None:
        self.start = 0.0
        self.elapsed = 0.0
        self.start_ns = 0
        self.elapsed_ns = 0
        self.laps: List[float] = []
        self._last_lap_ns = 0

    def __enter__(self) -> "Timer":
        self.start_ns = time.perf_counter_ns()
        self.start = self.start_ns / 1e9
        self._last_lap_ns = self.start_ns
        self.laps = []
        return self

    def __exit__(self, *exc_info) -> None:
        self.elapsed_ns = time.perf_counter_ns() - self.start_ns
        self.elapsed = self.elapsed_ns / 1e9

    def lap(self) -> float:
        """Record and return the seconds since the previous lap (or since
        entry for the first lap).  Splits accumulate in :attr:`laps`."""
        now = time.perf_counter_ns()
        delta = (now - self._last_lap_ns) / 1e9
        self._last_lap_ns = now
        self.laps.append(delta)
        return delta
