"""Size accounting in the paper's word model.

The paper (footnote 2) measures space in *words*, where one word is a
block of Omega(omega + log n) bits (omega = bits per edge weight).  All
of our data structures report their size through this module so that
the benchmarks compare against the paper's bounds in the same units:

* a vertex identifier ............ 1 word
* a distance value ............... 1 word
* a (vertex, distance) pair ...... 2 words
* a tree-routing interval ........ 2 words

:func:`words_to_bits` converts when a bit-level figure is wanted.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Iterable

VERTEX_WORDS = 1
DISTANCE_WORDS = 1
PORTAL_ENTRY_WORDS = VERTEX_WORDS + DISTANCE_WORDS + 1  # id, distance, path offset
INTERVAL_WORDS = 2


def words_to_bits(words: float, n: int, max_weight: float = 1.0) -> float:
    """Convert a word count to bits for an *n*-vertex graph.

    One word is ``log2(n) + max(1, log2(max_weight))`` bits, matching
    the Omega(omega + log n) block of the paper's footnote 2.
    """
    if n < 2:
        raise ValueError("word size undefined for graphs with fewer than 2 vertices")
    weight_bits = max(1.0, math.log2(max(2.0, max_weight)))
    return words * (math.log2(n) + weight_bits)


def label_words(num_entries: int, words_per_entry: int = PORTAL_ENTRY_WORDS) -> int:
    """Size in words of a label holding *num_entries* portal entries."""
    return num_entries * words_per_entry


@dataclass
class SizeReport:
    """Aggregated size statistics over a collection of per-vertex labels.

    Attributes
    ----------
    per_vertex:
        Mapping from vertex to its label size in words.
    """

    per_vertex: Dict = field(default_factory=dict)

    def add(self, vertex, words: int) -> None:
        self.per_vertex[vertex] = self.per_vertex.get(vertex, 0) + words

    @property
    def total_words(self) -> int:
        return sum(self.per_vertex.values())

    @property
    def max_words(self) -> int:
        return max(self.per_vertex.values()) if self.per_vertex else 0

    @property
    def mean_words(self) -> float:
        if not self.per_vertex:
            return 0.0
        return self.total_words / len(self.per_vertex)

    def merge(self, other: "SizeReport") -> "SizeReport":
        merged = SizeReport(dict(self.per_vertex))
        for vertex, words in other.per_vertex.items():
            merged.add(vertex, words)
        return merged

    @classmethod
    def from_counts(cls, counts: Iterable) -> "SizeReport":
        """Build a report from an iterable of ``(vertex, words)`` pairs."""
        report = cls()
        for vertex, words in counts:
            report.add(vertex, words)
        return report
