"""Rendering for ``repro top``: a live view over the METRICS op.

``repro top HOST:PORT`` polls a running server's read-only METRICS
snapshot (:meth:`~repro.serve.server.OracleServer._metrics`) on an
interval and renders what an operator wants at a glance: request and
error rates, per-op latency percentiles, cache hit rate, per-shard
load, inflight/backpressure, and breaker / fault-plan state.  This
module is the pure half — snapshot dicts in, text out — so the
renderer is testable without a server or a terminal.

Rates are computed from **deltas between consecutive snapshots**
(the first tick shows totals only); per-op breakdowns appear when the
server was started with ``--metrics``, since only the registry carries
per-op counters and latency histograms.
"""

from __future__ import annotations

import re
from typing import Dict, List, Optional, Tuple

from repro.util.tables import format_table

__all__ = ["render_top", "split_metric_key"]

_KEY_RE = re.compile(r"^(?P<name>[^{]+)(?:\{(?P<labels>.*)\})?$")


def split_metric_key(key: str) -> Tuple[str, Dict[str, str]]:
    """``"serve.latency_ns{op=DIST}"`` -> ``("serve.latency_ns",
    {"op": "DIST"})``.  A key without labels gets an empty dict."""
    match = _KEY_RE.match(key)
    if match is None:
        return key, {}
    labels: Dict[str, str] = {}
    raw = match.group("labels")
    if raw:
        for part in raw.split(","):
            name, _, value = part.partition("=")
            labels[name.strip()] = value.strip()
    return match.group("name"), labels


def _rate(cur_val: float, prev_val: float, dt: Optional[float]) -> Optional[float]:
    if dt is None or dt <= 0:
        return None
    return max(0.0, cur_val - prev_val) / dt


def _fmt_rate(value: Optional[float]) -> str:
    return "-" if value is None else f"{value:.1f}"


def _counter_delta(cur: dict, prev: Optional[dict], *keys) -> Tuple[float, float]:
    """(current total, delta vs prev) for a nested counters path."""
    def dig(payload):
        node = payload
        for key in keys:
            if not isinstance(node, dict):
                return 0.0
            node = node.get(key, 0.0)
        return node if isinstance(node, (int, float)) else 0.0

    total = dig(cur)
    return total, total - (dig(prev) if prev else 0.0)


def _headline(cur: dict) -> str:
    rss_mb = (cur.get("rss_bytes") or 0) / (1024 * 1024)
    state = "draining" if cur.get("draining") else "serving"
    cache = cur.get("cache") or {}
    return (
        f"{state}  up {cur.get('uptime_s', 0.0):.1f}s  rss {rss_mb:.1f}MB  "
        f"inflight {cur.get('inflight', 0)}/{cur.get('peak_inflight', 0)} peak  "
        f"conns {cur.get('connections', 0)}  "
        f"cache {cache.get('size', 0)}/{cache.get('capacity', 0)}"
    )


def _throughput_rows(cur: dict, prev: Optional[dict], dt: Optional[float]) -> List[List]:
    requests, d_requests = _counter_delta(cur, prev, "counters", "requests")
    errors, d_errors = _counter_delta(cur, prev, "counters", "errors")
    hits, d_hits = _counter_delta(cur, prev, "counters", "cache_hits")
    misses, d_misses = _counter_delta(cur, prev, "counters", "cache_misses")
    lookups = d_hits + d_misses
    total_lookups = hits + misses
    hit_rate = d_hits / lookups if lookups else (
        hits / total_lookups if total_lookups else 0.0
    )
    return [
        ["requests", int(requests), _fmt_rate(_rate(requests, requests - d_requests, dt))],
        ["errors", int(errors), _fmt_rate(_rate(errors, errors - d_errors, dt))],
        ["cache hit rate", f"{hit_rate:.1%}", ""],
    ]


def _per_op_rows(cur: dict, prev: Optional[dict], dt: Optional[float]) -> List[List]:
    registry = cur.get("metrics") or {}
    prev_registry = (prev or {}).get("metrics") or {}
    counters = registry.get("counters", {})
    prev_counters = prev_registry.get("counters", {})
    histograms = registry.get("histograms", {})
    by_op: Dict[str, Dict] = {}
    for key, value in counters.items():
        name, labels = split_metric_key(key)
        if name == "serve.requests" and "op" in labels:
            delta = value - prev_counters.get(key, 0.0)
            by_op.setdefault(labels["op"], {})["qps"] = _rate(
                value, value - delta, dt
            )
    for key, hist in histograms.items():
        name, labels = split_metric_key(key)
        if name == "serve.latency_ns" and "op" in labels:
            entry = by_op.setdefault(labels["op"], {})
            entry["count"] = hist.get("count", 0)
            for q in ("p50", "p90", "p99"):
                entry[q] = hist.get(q, 0.0) / 1e6
    rows = []
    for op in sorted(by_op):
        entry = by_op[op]
        rows.append(
            [
                op,
                entry.get("count", 0),
                _fmt_rate(entry.get("qps")),
                f"{entry.get('p50', 0.0):.3f}",
                f"{entry.get('p90', 0.0):.3f}",
                f"{entry.get('p99', 0.0):.3f}",
            ]
        )
    return rows


def _shard_rows(cur: dict, prev: Optional[dict], dt: Optional[float]) -> List[List]:
    registry = cur.get("metrics") or {}
    counters = registry.get("counters", {})
    prev_counters = ((prev or {}).get("metrics") or {}).get("counters", {})
    queries: Dict[Tuple[str, str], Tuple[float, Optional[float]]] = {}
    for key, value in counters.items():
        name, labels = split_metric_key(key)
        if name == "serve.shard.queries" and "shard" in labels:
            delta = value - prev_counters.get(key, 0.0)
            queries[(labels.get("store", ""), labels["shard"])] = (
                value,
                _rate(value, value - delta, dt),
            )
    rows = []
    for store, labels_per_shard in sorted((cur.get("shards") or {}).items()):
        for index, num_labels in enumerate(labels_per_shard):
            total, qps = queries.get((store, str(index)), (None, None))
            rows.append(
                [
                    store,
                    index,
                    num_labels,
                    "-" if total is None else int(total),
                    _fmt_rate(qps),
                ]
            )
    return rows


def _fault_line(cur: dict) -> str:
    faults = cur.get("faults") or {}
    if not faults.get("enabled"):
        return "faults: off"
    injected = faults.get("injected") or {}
    detail = ", ".join(f"{k}={v}" for k, v in sorted(injected.items())) or "none yet"
    return (
        f"faults: ACTIVE  decisions {faults.get('decisions', 0)}  "
        f"injected {detail}"
    )


def render_top(
    cur: dict,
    prev: Optional[dict] = None,
    dt: Optional[float] = None,
    breakers: Optional[Dict[str, Dict]] = None,
) -> str:
    """One full ``repro top`` frame from a METRICS snapshot.

    *prev* and *dt* (seconds between the two snapshots) turn totals
    into rates; *breakers* is the polling client's own per-address
    breaker view (:meth:`ResilientClient.stats`)."""
    blocks = [_headline(cur)]
    blocks.append(
        format_table(
            ["metric", "total", "per_s"],
            _throughput_rows(cur, prev, dt),
            title="throughput",
        )
    )
    op_rows = _per_op_rows(cur, prev, dt)
    if op_rows:
        blocks.append(
            format_table(
                ["op", "count", "qps", "p50_ms", "p90_ms", "p99_ms"],
                op_rows,
                title="per-op latency (cumulative percentiles)",
            )
        )
    elif not cur.get("metrics_enabled"):
        blocks.append(
            "(per-op latency needs the server started with --metrics)"
        )
    shard_rows = _shard_rows(cur, prev, dt)
    if shard_rows:
        blocks.append(
            format_table(
                ["store", "shard", "labels", "queries", "qps"],
                shard_rows,
                title="per-shard load",
            )
        )
    blocks.append(_fault_line(cur))
    if breakers:
        blocks.append(
            format_table(
                ["address", "state", "opened"],
                [
                    [address, info.get("state", "?"), info.get("opened_total", 0)]
                    for address, info in sorted(breakers.items())
                ],
                title="client breakers",
            )
        )
    return "\n".join(blocks)
