"""``repro.serve`` — the online query layer of the oracle.

The paper's labels (Theorem 2) are small remote objects: any two of
them answer a (1+eps)-approximate distance query with no graph in
sight.  This package is the serving side of that claim — an asyncio
TCP service over sharded in-memory label stores, plus the resilient
client and load generator that measure it, clean and under faults:

* :mod:`repro.serve.store` — :class:`ShardedLabelStore` (eager, JSON
  ``/1``) and :class:`MappedLabelStore` (mmap'd, binary ``/2``, O(1)
  open + lazy decode) behind one interface, plus :class:`StoreCatalog`:
  labelings hash-sharded by vertex with O(1) lookup and per-shard size
  accounting.
* :mod:`repro.serve.protocol` — the newline-delimited JSON wire
  protocol (DIST / BATCH / LABEL / HEALTH / STATS / METRICS / FAULT /
  MAP / DELTA) with typed error replies and an optional per-request
  ``"trace"`` context field that joins server spans to the caller's
  trace.
* :mod:`repro.serve.server` — :class:`OracleServer`: per-connection
  read loops, request timeouts, semaphore backpressure, an optional
  LRU pair cache, graceful drain on shutdown, and a seedable
  fault-injection layer.
* :mod:`repro.serve.faults` — :class:`FaultPlan` / :class:`FaultInjector`:
  deterministic drop / delay / corrupt / unavailable / slow-drain
  faults, loadable from JSON and togglable at runtime via FAULT.
* :mod:`repro.serve.client` — :class:`ResilientClient`: per-attempt
  timeouts, capped exponential backoff with deterministic jitter,
  retry budgets, per-address circuit breakers, optional hedging —
  all preserving byte-exact answers.
* :mod:`repro.serve.loadgen` — closed-loop concurrent client
  reporting QPS + latency percentiles (and retry/hedge counts and,
  with ``slo_ms``, SLO attainment), with optional byte-exact
  verification against offline estimates.

CLI entry points: ``repro serve``, ``repro loadgen``, ``repro chaos``,
``repro top`` (live METRICS polling), and ``repro trace`` (cross-
process trace reassembly); the protocol and knobs are specified in
``docs/serving.md``, the telemetry formats in ``docs/observability.md``.
"""

from repro.serve.client import (
    CircuitBreaker,
    ClientError,
    RequestFailed,
    ResilientClient,
    RetryPolicy,
    parse_address,
)
from repro.serve.faults import (
    FAULT_KINDS,
    FaultInjector,
    FaultPlan,
    FaultPlanError,
    FaultRule,
    FaultStage,
)
from repro.serve.loadgen import (
    LoadgenError,
    LoadgenReport,
    read_pairs_file,
    run_loadgen,
    synthesize_pairs,
)
from repro.serve.protocol import (
    DELTA_ACTIONS,
    ERROR_CODES,
    FAULT_ACTIONS,
    OPS,
    TRANSIENT_CODES,
    ProtocolError,
    Request,
    encode_request,
    encode_response,
    error_response,
    ok_response,
    parse_request,
)
from repro.serve.server import DEFAULT_MAX_BATCH, MAX_LINE_BYTES, OracleServer
from repro.serve.store import (
    DEFAULT_NUM_SHARDS,
    LabelShard,
    MappedLabelStore,
    ShardedLabelStore,
    StoreCatalog,
)

__all__ = [
    "CircuitBreaker",
    "ClientError",
    "DEFAULT_MAX_BATCH",
    "DEFAULT_NUM_SHARDS",
    "DELTA_ACTIONS",
    "ERROR_CODES",
    "FAULT_ACTIONS",
    "FAULT_KINDS",
    "FaultInjector",
    "FaultPlan",
    "FaultPlanError",
    "FaultRule",
    "FaultStage",
    "LabelShard",
    "LoadgenError",
    "LoadgenReport",
    "MappedLabelStore",
    "MAX_LINE_BYTES",
    "OPS",
    "OracleServer",
    "ProtocolError",
    "Request",
    "RequestFailed",
    "ResilientClient",
    "RetryPolicy",
    "ShardedLabelStore",
    "StoreCatalog",
    "TRANSIENT_CODES",
    "encode_request",
    "encode_response",
    "error_response",
    "ok_response",
    "parse_address",
    "parse_request",
    "read_pairs_file",
    "run_loadgen",
    "synthesize_pairs",
]
