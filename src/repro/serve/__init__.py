"""``repro.serve`` — the online query layer of the oracle.

The paper's labels (Theorem 2) are small remote objects: any two of
them answer a (1+eps)-approximate distance query with no graph in
sight.  This package is the serving side of that claim — an asyncio
TCP service over sharded in-memory label stores, plus the load
generator that measures it:

* :mod:`repro.serve.store` — :class:`ShardedLabelStore` /
  :class:`StoreCatalog`: labelings hash-sharded by vertex with O(1)
  lookup and per-shard size accounting.
* :mod:`repro.serve.protocol` — the newline-delimited JSON wire
  protocol (DIST / BATCH / LABEL / HEALTH / STATS) with typed error
  replies.
* :mod:`repro.serve.server` — :class:`OracleServer`: per-connection
  read loops, request timeouts, semaphore backpressure, an optional
  LRU pair cache, and graceful drain on shutdown.
* :mod:`repro.serve.loadgen` — closed-loop concurrent client
  reporting QPS + latency percentiles, with optional byte-exact
  verification against offline estimates.

CLI entry points: ``repro serve`` and ``repro loadgen``; the protocol
and knobs are specified in ``docs/serving.md``.
"""

from repro.serve.loadgen import (
    LoadgenError,
    LoadgenReport,
    read_pairs_file,
    run_loadgen,
    synthesize_pairs,
)
from repro.serve.protocol import (
    ERROR_CODES,
    OPS,
    ProtocolError,
    Request,
    encode_request,
    encode_response,
    error_response,
    ok_response,
    parse_request,
)
from repro.serve.server import DEFAULT_MAX_BATCH, MAX_LINE_BYTES, OracleServer
from repro.serve.store import (
    DEFAULT_NUM_SHARDS,
    LabelShard,
    ShardedLabelStore,
    StoreCatalog,
)

__all__ = [
    "DEFAULT_MAX_BATCH",
    "DEFAULT_NUM_SHARDS",
    "ERROR_CODES",
    "LabelShard",
    "LoadgenError",
    "LoadgenReport",
    "MAX_LINE_BYTES",
    "OPS",
    "OracleServer",
    "ProtocolError",
    "Request",
    "ShardedLabelStore",
    "StoreCatalog",
    "encode_request",
    "encode_response",
    "error_response",
    "ok_response",
    "parse_request",
    "read_pairs_file",
    "run_loadgen",
    "synthesize_pairs",
]
