"""Deterministic fault injection for the query service.

A :class:`FaultPlan` describes *which* faults to inject and *how
often*; a :class:`FaultInjector` is the runtime that rolls the dice.
The server consults the injector once per response and applies the
resulting :class:`FaultDecision` at the write site (see
``OracleServer._write_response``), so faults land exactly where real
networks hurt: between a computed answer and the client reading it.

Fault kinds
-----------

========== ===========================================================
``drop``        compute the answer, never send it (client times out)
``delay``       sleep before replying (fixed / uniform / exponential)
``corrupt``     mangle the response bytes (``truncate`` cuts the line
                short, losing the newline; ``garble`` overwrites a
                slice with ``0xFF`` bytes, which can never appear in
                valid UTF-8 JSON — corruption is *detectable by
                construction*, a client can always tell)
``unavailable`` replace the answer with a transient ``unavailable``
                error (the canonical retry-me signal)
``slow_drain``  dribble the response out in small chunks with pauses
                (tail-latency torture for the client's read path)
========== ===========================================================

Determinism
-----------

Every decision is seeded: decision *n* draws from
``random.Random(derive_seed(plan.seed, "fault", n))``, so a plan
replayed against the same request arrival order injects the same
faults — chaos runs are reproducible, and two servers given the same
plan and traffic disagree only if their request interleaving does.

Plans are JSON (``repro serve --fault-plan plan.json``)::

    {"format": "repro-fault-plan/1",
     "seed": 7,
     "rules": [{"kind": "drop", "rate": 0.1},
               {"kind": "delay", "rate": 1.0, "delay_ms": 50}]}

or staged — each stage covers a fixed number of decisions (the last
stage runs forever), which is how ``repro chaos`` schedules escalating
conditions without wall-clock nondeterminism::

    {"format": "repro-fault-plan/1",
     "seed": 7,
     "stages": [{"requests": 100, "rules": [...]},
                {"rules": [...]}]}

A rule may scope itself with ``"ops": ["DIST", "BATCH"]``; the FAULT
admin op itself is never faulted, so an operator can always reach a
misbehaving server to turn the chaos off.
"""

from __future__ import annotations

import json
import random
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Optional, Sequence, Tuple, Union

from repro.obs import metrics
from repro.util.errors import ReproError
from repro.util.rng import derive_seed

__all__ = [
    "FAULT_KINDS",
    "FORMAT",
    "FaultDecision",
    "FaultInjector",
    "FaultPlan",
    "FaultPlanError",
    "FaultRule",
    "FaultStage",
]

FORMAT = "repro-fault-plan/1"

#: Every fault kind a rule may name.
FAULT_KINDS = ("drop", "delay", "corrupt", "unavailable", "slow_drain")

_DISTRIBUTIONS = ("fixed", "uniform", "exponential")
_CORRUPT_MODES = ("truncate", "garble")


class FaultPlanError(ReproError):
    """A fault plan that cannot be loaded or does not validate."""


def _require_number(payload: dict, key: str, default, *, minimum=None):
    value = payload.get(key, default)
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise FaultPlanError(f"{key!r} must be a number, got {value!r}")
    if minimum is not None and value < minimum:
        raise FaultPlanError(f"{key!r} must be >= {minimum}, got {value!r}")
    return float(value)


@dataclass(frozen=True)
class FaultRule:
    """One independent fault source: a kind, a rate, and its knobs."""

    kind: str
    rate: float
    ops: Optional[Tuple[str, ...]] = None  # None = every non-FAULT op
    delay_ms: float = 50.0       # delay: base latency
    jitter_ms: float = 0.0       # delay: extra uniform latency
    distribution: str = "fixed"  # delay: fixed | uniform | exponential
    mode: str = "truncate"       # corrupt: truncate | garble
    chunk_bytes: int = 64        # slow_drain: bytes per chunk
    interval_ms: float = 5.0     # slow_drain: pause between chunks

    @classmethod
    def from_dict(cls, payload) -> "FaultRule":
        if not isinstance(payload, dict):
            raise FaultPlanError(f"rule must be an object, got {payload!r}")
        kind = payload.get("kind")
        if kind not in FAULT_KINDS:
            raise FaultPlanError(
                f"unknown fault kind {kind!r}; expected one of "
                f"{', '.join(FAULT_KINDS)}"
            )
        rate = _require_number(payload, "rate", None, minimum=0.0)
        if rate > 1.0:
            raise FaultPlanError(f"'rate' must be in [0, 1], got {rate}")
        ops = payload.get("ops")
        if ops is not None:
            if not isinstance(ops, list) or not all(
                isinstance(op, str) for op in ops
            ):
                raise FaultPlanError(f"'ops' must be a list of strings: {ops!r}")
            ops = tuple(op.upper() for op in ops)
            if "FAULT" in ops:
                raise FaultPlanError("the FAULT admin op cannot be faulted")
        distribution = payload.get("distribution", "fixed")
        if distribution not in _DISTRIBUTIONS:
            raise FaultPlanError(
                f"unknown delay distribution {distribution!r}; expected one "
                f"of {', '.join(_DISTRIBUTIONS)}"
            )
        mode = payload.get("mode", "truncate")
        if mode not in _CORRUPT_MODES:
            raise FaultPlanError(
                f"unknown corrupt mode {mode!r}; expected one of "
                f"{', '.join(_CORRUPT_MODES)}"
            )
        chunk_bytes = _require_number(payload, "chunk_bytes", 64, minimum=1)
        return cls(
            kind=kind,
            rate=rate,
            ops=ops,
            delay_ms=_require_number(payload, "delay_ms", 50.0, minimum=0.0),
            jitter_ms=_require_number(payload, "jitter_ms", 0.0, minimum=0.0),
            distribution=distribution,
            mode=mode,
            chunk_bytes=int(chunk_bytes),
            interval_ms=_require_number(payload, "interval_ms", 5.0, minimum=0.0),
        )

    def to_dict(self) -> dict:
        payload = {"kind": self.kind, "rate": self.rate}
        if self.ops is not None:
            payload["ops"] = list(self.ops)
        if self.kind == "delay":
            payload.update(
                delay_ms=self.delay_ms,
                jitter_ms=self.jitter_ms,
                distribution=self.distribution,
            )
        elif self.kind == "corrupt":
            payload["mode"] = self.mode
        elif self.kind == "slow_drain":
            payload.update(
                chunk_bytes=self.chunk_bytes, interval_ms=self.interval_ms
            )
        return payload

    def applies_to(self, op: Optional[str]) -> bool:
        if op == "FAULT":
            return False
        return self.ops is None or op in self.ops


@dataclass(frozen=True)
class FaultStage:
    """A rule set active for *requests* decisions (None = forever)."""

    rules: Tuple[FaultRule, ...]
    requests: Optional[int] = None

    @classmethod
    def from_dict(cls, payload) -> "FaultStage":
        if not isinstance(payload, dict):
            raise FaultPlanError(f"stage must be an object, got {payload!r}")
        rules = payload.get("rules")
        if not isinstance(rules, list) or not rules:
            raise FaultPlanError("stage needs a non-empty 'rules' list")
        requests = payload.get("requests")
        if requests is not None:
            if isinstance(requests, bool) or not isinstance(requests, int):
                raise FaultPlanError(f"'requests' must be an int: {requests!r}")
            if requests < 1:
                raise FaultPlanError(f"'requests' must be >= 1: {requests!r}")
        return cls(
            rules=tuple(FaultRule.from_dict(rule) for rule in rules),
            requests=requests,
        )

    def to_dict(self) -> dict:
        payload: dict = {"rules": [rule.to_dict() for rule in self.rules]}
        if self.requests is not None:
            payload["requests"] = self.requests
        return payload


@dataclass(frozen=True)
class FaultPlan:
    """A validated, immutable fault schedule."""

    stages: Tuple[FaultStage, ...]
    seed: int = 0

    @classmethod
    def from_dict(cls, payload) -> "FaultPlan":
        if not isinstance(payload, dict):
            raise FaultPlanError(f"plan must be an object, got {payload!r}")
        stamp = payload.get("format", FORMAT)
        if stamp != FORMAT:
            raise FaultPlanError(
                f"unsupported fault-plan format {stamp!r}; this build reads {FORMAT}"
            )
        seed = payload.get("seed", 0)
        if isinstance(seed, bool) or not isinstance(seed, int):
            raise FaultPlanError(f"'seed' must be an int: {seed!r}")
        if "stages" in payload and "rules" in payload:
            raise FaultPlanError("give either 'rules' or 'stages', not both")
        if "stages" in payload:
            stages = payload["stages"]
            if not isinstance(stages, list) or not stages:
                raise FaultPlanError("'stages' must be a non-empty list")
            parsed = tuple(FaultStage.from_dict(stage) for stage in stages)
        elif "rules" in payload:
            parsed = (FaultStage.from_dict({"rules": payload["rules"]}),)
        else:
            raise FaultPlanError("plan needs 'rules' or 'stages'")
        return cls(stages=parsed, seed=seed)

    @classmethod
    def from_rules(cls, rules: Sequence[dict], seed: int = 0) -> "FaultPlan":
        """Build a single-stage plan from rule dicts (convenience)."""
        return cls.from_dict({"seed": seed, "rules": list(rules)})

    @classmethod
    def load(cls, path: Union[str, Path]) -> "FaultPlan":
        try:
            text = Path(path).read_text()
        except OSError as exc:
            raise FaultPlanError(f"cannot read fault plan {path}: {exc}") from None
        try:
            payload = json.loads(text)
        except json.JSONDecodeError as exc:
            raise FaultPlanError(f"{path} is not valid JSON: {exc}") from None
        return cls.from_dict(payload)

    def to_dict(self) -> dict:
        payload: dict = {"format": FORMAT, "seed": self.seed}
        if len(self.stages) == 1 and self.stages[0].requests is None:
            payload["rules"] = [rule.to_dict() for rule in self.stages[0].rules]
        else:
            payload["stages"] = [stage.to_dict() for stage in self.stages]
        return payload

    def stage_for(self, decision: int) -> Tuple[int, FaultStage]:
        """(index, stage) active for decision number *decision*."""
        remaining = decision
        for index, stage in enumerate(self.stages):
            if stage.requests is None or remaining < stage.requests:
                return index, stage
            remaining -= stage.requests
        return len(self.stages) - 1, self.stages[-1]


class FaultDecision:
    """What to do to one response — everything pre-drawn, so applying
    it needs no further randomness."""

    __slots__ = ("delay_s", "drop", "unavailable", "corrupt", "slow_drain")

    def __init__(self) -> None:
        self.delay_s = 0.0
        self.drop = False
        self.unavailable = False
        self.corrupt: Optional[Tuple[str, float]] = None  # (mode, position)
        self.slow_drain: Optional[Tuple[int, float]] = None  # (chunk, interval_s)

    def __bool__(self) -> bool:
        return bool(
            self.delay_s
            or self.drop
            or self.unavailable
            or self.corrupt
            or self.slow_drain
        )

    def apply_to_bytes(self, data: bytes) -> bytes:
        """Mangle encoded response bytes per the corrupt decision."""
        if self.corrupt is None or len(data) < 2:
            return data
        mode, position = self.corrupt
        if mode == "truncate":
            # Cut somewhere strictly inside the line: the newline is
            # always lost, so the client's readline can never mistake
            # the stump for a complete response.
            cut = 1 + int(position * (len(data) - 2))
            return data[:cut]
        # garble: overwrite a slice with 0xFF, which is never valid
        # UTF-8 — a garbled line always fails to decode client-side.
        at = int(position * max(1, len(data) - 4))
        return data[:at] + b"\xff\xff\xff" + data[at + 3 : ]


class FaultInjector:
    """Runtime fault state: the active plan, the decision counter, and
    per-kind injection counts.  Togglable (the FAULT admin op)."""

    def __init__(self, plan: Optional[FaultPlan] = None) -> None:
        self.plan = plan
        self.enabled = plan is not None
        self.decisions = 0
        self.injected: Dict[str, int] = {}

    @property
    def active(self) -> bool:
        return self.enabled and self.plan is not None

    # -- admin ----------------------------------------------------------
    def set_plan(self, plan: FaultPlan) -> None:
        """Install *plan* and enable it (decision counter restarts so
        the new plan's schedule begins at its first stage)."""
        self.plan = plan
        self.decisions = 0
        self.enabled = True

    def enable(self) -> None:
        if self.plan is None:
            raise FaultPlanError("no fault plan installed; use action 'set'")
        self.enabled = True

    def disable(self) -> None:
        self.enabled = False

    def clear(self) -> None:
        self.plan = None
        self.enabled = False

    def status(self) -> dict:
        """JSON-safe summary (the FAULT response payload / STATS block)."""
        stage_index = None
        if self.plan is not None:
            stage_index, _ = self.plan.stage_for(self.decisions)
        return {
            "enabled": self.enabled,
            "decisions": self.decisions,
            "injected": dict(sorted(self.injected.items())),
            "stage": stage_index,
            "plan": self.plan.to_dict() if self.plan is not None else None,
        }

    # -- the dice -------------------------------------------------------
    def decide(self, op: Optional[str]) -> Optional[FaultDecision]:
        """Roll every applicable rule for one response.

        Returns ``None`` for the (fast) clean path.  Decision *n* is a
        pure function of ``(plan.seed, n)`` — see the module docstring.
        """
        if not self.active or op == "FAULT":
            return None
        n = self.decisions
        self.decisions = n + 1
        _, stage = self.plan.stage_for(n)
        rules = [rule for rule in stage.rules if rule.applies_to(op)]
        if not rules:
            return None
        rng = random.Random(derive_seed(self.plan.seed, "fault", n))
        decision = FaultDecision()
        for rule in rules:
            if rng.random() >= rule.rate:
                continue
            self._count(rule.kind)
            if rule.kind == "drop":
                decision.drop = True
            elif rule.kind == "delay":
                decision.delay_s += self._draw_delay(rule, rng)
            elif rule.kind == "corrupt":
                decision.corrupt = (rule.mode, rng.random())
            elif rule.kind == "unavailable":
                decision.unavailable = True
            elif rule.kind == "slow_drain":
                decision.slow_drain = (rule.chunk_bytes, rule.interval_ms / 1e3)
        return decision if decision else None

    @staticmethod
    def _draw_delay(rule: FaultRule, rng: random.Random) -> float:
        if rule.distribution == "fixed":
            ms = rule.delay_ms
        elif rule.distribution == "uniform":
            ms = rule.delay_ms + rng.random() * rule.jitter_ms
        else:  # exponential with mean delay_ms
            ms = rng.expovariate(1.0 / rule.delay_ms) if rule.delay_ms else 0.0
        return ms / 1e3

    def _count(self, kind: str) -> None:
        self.injected[kind] = self.injected.get(kind, 0) + 1
        metrics.inc("serve.faults.injected", kind=kind)
