"""Asyncio distance-oracle query server.

:class:`OracleServer` binds a TCP port, reads newline-delimited JSON
requests (:mod:`repro.serve.protocol`), answers them from one or more
:class:`~repro.serve.store.ShardedLabelStore`\\ s, and degrades
predictably under misuse and load:

* **Backpressure** — at most ``max_inflight`` requests execute at
  once, enforced by a semaphore; excess requests queue on their
  connections instead of stampeding the estimate path.
* **Request timeout** — a single slow request gets a structured
  ``timeout`` error instead of wedging its connection.
* **Graceful drain** — :meth:`shutdown` (wired to SIGTERM/SIGINT by
  the CLI) stops accepting, lets every in-flight request finish and
  flush its response within ``drain_grace`` seconds, then closes the
  remaining connections.
* **Optional LRU cache** — keyed on the canonicalized (store, u, v)
  pair; the estimate is symmetric, so (u, v) and (v, u) share an
  entry.  A cached answer is the same float object that was computed,
  so cached and uncached responses are byte-identical.

Everything observable goes through :data:`repro.obs.metrics`
(``serve.*`` names — see docs/observability.md) *and* a small always-on
internal counter dict, so the STATS op works even when the global
registry is disabled.
"""

from __future__ import annotations

import asyncio
import time
from collections import OrderedDict
from typing import Dict, Hashable, Optional, Tuple

from repro.core.serialize import encode_label, encode_vertex
from repro.dynamic.rebuild import DeltaError, delta_from_dict
from repro.obs import eventlog, metrics, process_rss_bytes, record_span, span
from repro.obs.timeseries import TimeseriesWriter
from repro.obs.tracing import Span, tracing_active
from repro.serve.faults import FaultInjector, FaultPlan, FaultPlanError
from repro.serve.protocol import (
    ProtocolError,
    Request,
    encode_response,
    error_response,
    estimate_field,
    ok_response,
    parse_request,
)
from repro.serve.store import (
    ClusterStoreView,
    ShardNotOwned,
    ShardedLabelStore,
    StoreCatalog,
)
from repro.util.errors import GraphError

Vertex = Hashable

__all__ = ["DEFAULT_MAX_BATCH", "MAX_LINE_BYTES", "OracleServer"]

#: Hard cap on pairs per BATCH request; above it the client gets a
#: ``batch_too_large`` error instead of monopolizing an inflight slot.
DEFAULT_MAX_BATCH = 1024

#: Per-connection line limit (one request must fit in one buffered line).
MAX_LINE_BYTES = 1 << 20


class _LruCache:
    """Tiny LRU for canonicalized pair estimates (capacity 0 disables)."""

    __slots__ = ("capacity", "_data")

    def __init__(self, capacity: int) -> None:
        self.capacity = capacity
        self._data: "OrderedDict[tuple, float]" = OrderedDict()

    def get(self, key):
        found = self._data.get(key)
        if found is not None:
            self._data.move_to_end(key)
        return found

    def put(self, key, value: float) -> None:
        if self.capacity <= 0:
            return
        self._data[key] = value
        self._data.move_to_end(key)
        while len(self._data) > self.capacity:
            self._data.popitem(last=False)

    def clear(self) -> None:
        """Drop every entry (label delta applied: estimates may have
        changed, and a stale cached answer would violate the queries-
        see-old-or-new-never-a-mix consistency model)."""
        self._data.clear()

    def __len__(self) -> int:
        return len(self._data)


class OracleServer:
    """Serve DIST/BATCH/LABEL/HEALTH/STATS/METRICS/FAULT/MAP/DELTA over
    asyncio TCP.

    With a :class:`~repro.serve.faults.FaultPlan` attached (the
    ``fault_plan`` argument or the runtime FAULT op), responses pass
    through a deterministic fault layer on their way out — see
    :mod:`repro.serve.faults` and :meth:`_write_response`.
    """

    def __init__(
        self,
        catalog: StoreCatalog,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        cache_size: int = 0,
        max_inflight: int = 64,
        request_timeout: float = 30.0,
        drain_grace: float = 10.0,
        max_batch: int = DEFAULT_MAX_BATCH,
        fault_plan: Optional[FaultPlan] = None,
        timeseries: Optional[TimeseriesWriter] = None,
        cluster=None,
    ) -> None:
        if max_inflight < 1:
            raise ValueError(f"max_inflight must be >= 1, got {max_inflight}")
        self.catalog = catalog
        # Cluster membership (a repro.cluster.map.ClusterNodeState, but
        # duck-typed here — see ClusterStoreView for why).  When set,
        # the default store routes across every owned shard, data ops
        # are epoch-checked, and the MAP op accepts pushes.
        self.cluster = cluster
        self._cluster_view = (
            ClusterStoreView(catalog, cluster) if cluster is not None else None
        )
        self.host = host
        self.port = port
        self.request_timeout = request_timeout
        self.drain_grace = drain_grace
        self.max_batch = max_batch
        self.cache = _LruCache(cache_size)
        self.faults = FaultInjector(fault_plan)
        self.counters: Dict[str, int] = {
            "connections": 0,
            "requests": 0,
            "errors": 0,
            "cache_hits": 0,
            "cache_misses": 0,
            "deltas": 0,
        }
        self.peak_inflight = 0
        self._inflight = 0
        self._sema = asyncio.Semaphore(max_inflight)
        self._draining = False
        self._server: Optional[asyncio.AbstractServer] = None
        self._writers: set = set()
        # _active counts handle+flush units (not just dispatch): the
        # drain in shutdown() must wait until every in-flight response
        # has been *written*, not merely computed — see _serve_one.
        self._active = 0
        self._idle = asyncio.Event()
        self._idle.set()
        self._shutdown_requested = asyncio.Event()
        self._started_monotonic: Optional[float] = None
        # Live metrics plane: a TimeseriesWriter sampled on an asyncio
        # tick between start() and shutdown() (None = off).
        self.timeseries = timeseries
        self._timeseries_task: Optional[asyncio.Task] = None
        self._timeseries_stop: Optional[asyncio.Event] = None

    # -- lifecycle ------------------------------------------------------
    async def start(self) -> None:
        """Bind and start accepting connections (port 0 = ephemeral)."""
        self._server = await asyncio.start_server(
            self._on_connection, self.host, self.port, limit=MAX_LINE_BYTES
        )
        self.port = self._server.sockets[0].getsockname()[1]
        self._started_monotonic = time.monotonic()
        self._export_shard_gauges()
        if self.timeseries is not None:
            if self.timeseries.extra_gauges is None:
                self.timeseries.extra_gauges = self._live_gauges
            self._timeseries_stop = asyncio.Event()
            self._timeseries_task = asyncio.ensure_future(
                self.timeseries.run(self._timeseries_stop)
            )
        eventlog.info(
            "serve.start",
            host=self.host,
            port=self.port,
            stores=len(self.catalog),
            labels=self.catalog.num_labels,
        )
        if self.cluster is not None:
            metrics.gauge("serve.map.epoch", self.cluster.map.epoch)
        # The machine-readable bind announcement: with --port 0 this is
        # how a parent process (cluster up, tests) learns the real port.
        eventlog.info(
            "serve.ready",
            host=self.host,
            port=self.port,
            node=self.cluster.node_id if self.cluster is not None else None,
        )

    @property
    def address(self) -> Tuple[str, int]:
        return (self.host, self.port)

    def request_shutdown(self) -> None:
        """Signal-handler-safe trigger for :meth:`serve_until_shutdown`."""
        self._shutdown_requested.set()

    async def serve_until_shutdown(self) -> None:
        """Run until :meth:`request_shutdown` fires, then drain."""
        if self._server is None:
            await self.start()
        await self._shutdown_requested.wait()
        await self.shutdown()

    async def shutdown(self) -> None:
        """Drain and stop: no new connections, finish inflight work,
        then close whatever connections remain."""
        if self._draining:
            return
        self._draining = True
        eventlog.info(
            "serve.drain.begin",
            inflight=self._active,
            connections=len(self._writers),
        )
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        # Let inflight requests finish and flush within the grace
        # window; _on_connection loops exit on their own because
        # _draining is set.
        try:
            await asyncio.wait_for(self._idle.wait(), self.drain_grace)
        except asyncio.TimeoutError:
            pass
        for writer in list(self._writers):
            writer.close()
        for writer in list(self._writers):
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass
        self._writers.clear()
        if self._timeseries_task is not None:
            self._timeseries_stop.set()
            await self._timeseries_task
            self._timeseries_task = None
        eventlog.info(
            "serve.drain.end",
            requests=self.counters["requests"],
            errors=self.counters["errors"],
        )

    @property
    def draining(self) -> bool:
        return self._draining

    def _export_shard_gauges(self) -> None:
        for store in self.catalog:
            for shard in store.shards:
                metrics.gauge(
                    "serve.shard.labels",
                    shard.num_labels,
                    store=store.name,
                    shard=shard.index,
                )
                metrics.gauge(
                    "serve.shard.words",
                    shard.words,
                    store=store.name,
                    shard=shard.index,
                )
            metrics.gauge("serve.store.labels", store.num_labels, store=store.name)

    # -- connection handling --------------------------------------------
    async def _on_connection(self, reader, writer) -> None:
        self.counters["connections"] += 1
        metrics.inc("serve.connections")
        self._writers.add(writer)
        try:
            while not self._draining:
                try:
                    line = await reader.readline()
                except (ValueError, asyncio.LimitOverrunError):
                    # Line exceeded MAX_LINE_BYTES: the stream is no
                    # longer line-synchronized, so reply then close —
                    # the one case where an error ends the connection.
                    writer.write(
                        encode_response(
                            error_response(
                                None,
                                "bad_request",
                                f"request line exceeds {MAX_LINE_BYTES} bytes",
                            )
                        )
                    )
                    await writer.drain()
                    break
                if not line:
                    break
                if not line.strip():
                    continue
                await self._serve_one(line, writer)
        except (ConnectionError, OSError):
            pass  # client went away mid-write; nothing to clean up
        finally:
            self._writers.discard(writer)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _serve_one(self, line: bytes, writer) -> None:
        """Handle one request line and flush its response.

        The whole unit — dispatch *and* write — counts as one active
        operation, so :meth:`shutdown` cannot close the writer between
        a computed answer and its flush (the BATCH-drain race).

        With a span sink attached the whole unit runs under a
        ``serve.request`` span that adopts the request's propagated
        trace context; without one this branch is a single boolean
        check and the request takes the exact pre-tracing path.
        """
        self._active += 1
        self._idle.clear()
        try:
            if tracing_active():
                await self._serve_one_traced(line, writer)
            else:
                response, op = await self._handle_line(line)
                await self._write_response(writer, response, op)
        finally:
            self._active -= 1
            if self._active == 0:
                self._idle.set()

    async def _serve_one_traced(self, line: bytes, writer) -> None:
        """The traced twin of the :meth:`_serve_one` body.

        Parses first so the root ``serve.request`` span can adopt the
        trace context the client sent (joining the client's trace);
        the parse cost itself is replayed underneath as a
        ``serve.parse`` child.  A request with no (or malformed) trace
        context still gets a local span tree — it just carries no ids,
        so the JSONL sink skips it unless asked for all spans.
        """
        start_ns = time.monotonic_ns()
        request, parse_exc = self._parse_line(line)
        root = Span(
            "serve.request",
            context=request.trace if request is not None else None,
        )
        with root:
            record_span("serve.parse", time.monotonic_ns() - start_ns)
            response, op = await self._handle_parsed(request, parse_exc, start_ns)
            root.set_attribute("op", op)
            ok = bool(response.get("ok"))
            root.set_attribute("ok", ok)
            if not ok:
                root.error = response["error"]["code"]
            await self._write_response(writer, response, op)

    def _parse_line(self, line: bytes):
        """Parse one line; returns ``(request, None)`` or ``(None, exc)``."""
        try:
            return parse_request(line), None
        except ProtocolError as exc:
            return None, exc

    async def _handle_line(self, line: bytes) -> Tuple[dict, Optional[str]]:
        # Parse inline rather than via _parse_line: this is the
        # telemetry-off hot path and the helper frame is pure cost here.
        start_ns = time.monotonic_ns()
        try:
            request, parse_exc = parse_request(line), None
        except ProtocolError as exc:
            request, parse_exc = None, exc
        return await self._handle_parsed(request, parse_exc, start_ns)

    async def _handle_parsed(
        self,
        request: Optional[Request],
        parse_exc: Optional[ProtocolError],
        start_ns: int,
    ) -> Tuple[dict, Optional[str]]:
        self.counters["requests"] += 1
        req_id = None
        op = None
        try:
            if parse_exc is not None:
                raise parse_exc
            req_id = request.id
            op = request.op
            if self._draining:
                raise ProtocolError("draining", "server is shutting down")
            async with self._inflight_slot():
                result = await asyncio.wait_for(
                    self._dispatch(request), self.request_timeout
                )
            response = ok_response(req_id, result)
            metrics.inc("serve.requests", op=request.op)
        except ProtocolError as exc:
            if req_id is None:
                req_id = getattr(exc, "req_id", None)
            response = self._error(req_id, exc.code, str(exc))
        except asyncio.TimeoutError:
            response = self._error(
                req_id,
                "timeout",
                f"request exceeded {self.request_timeout}s deadline",
            )
        except Exception as exc:  # noqa: BLE001 - never drop the connection
            response = self._error(req_id, "internal", f"{type(exc).__name__}: {exc}")
        metrics.observe(
            "serve.latency_ns", time.monotonic_ns() - start_ns, op=op or "invalid"
        )
        return response, op

    async def _write_response(self, writer, response: dict, op: Optional[str]) -> None:
        """Encode and flush one response, applying any injected fault.

        This is the seam the fault layer lives behind: everything the
        network can do to a reply (lose it, delay it, mangle it, dribble
        it) happens here, after the answer is computed, exactly like a
        real lossy path between server and client.
        """
        fault = self.faults.decide(op)
        if fault is not None:
            eventlog.debug(
                "serve.fault",
                op=op,
                drop=fault.drop,
                unavailable=fault.unavailable,
                delay_ms=round(fault.delay_s * 1e3, 3),
                corrupt=fault.corrupt[0] if fault.corrupt else None,
                slow_drain=fault.slow_drain is not None,
            )
        if fault is not None and fault.unavailable:
            response = self._error(
                response.get("id"),
                "unavailable",
                "injected transient fault; safe to retry",
            )
        try:
            if tracing_active():
                with span("serve.encode"):
                    data = encode_response(response)
            else:
                data = encode_response(response)
        except ValueError:
            # A response that cannot be strict-JSON encoded (e.g. an
            # exotic id that slipped through parsing) must not kill the
            # connection: degrade to a typed internal error.
            self.counters["errors"] += 1
            metrics.inc("serve.errors", code="internal")
            data = encode_response(
                error_response(None, "internal", "response not serializable")
            )
        if fault is None:
            writer.write(data)
            await writer.drain()
            return
        with span(
            "serve.fault",
            drop=fault.drop,
            unavailable=fault.unavailable,
            delay_ms=round(fault.delay_s * 1e3, 3),
            corrupt=fault.corrupt[0] if fault.corrupt else None,
            slow_drain=fault.slow_drain is not None,
        ):
            if fault.delay_s > 0:
                await asyncio.sleep(fault.delay_s)
            if fault.drop:
                return
            data = fault.apply_to_bytes(data)
            if fault.slow_drain is not None:
                chunk_bytes, interval_s = fault.slow_drain
                for start in range(0, len(data), chunk_bytes):
                    writer.write(data[start : start + chunk_bytes])
                    await writer.drain()
                    if start + chunk_bytes < len(data):
                        await asyncio.sleep(interval_s)
                return
            writer.write(data)
            await writer.drain()

    def _error(self, req_id, code: str, message: str) -> dict:
        self.counters["errors"] += 1
        metrics.inc("serve.errors", code=code)
        return error_response(req_id, code, message)

    def _inflight_slot(self):
        return _InflightSlot(self)

    # -- dispatch -------------------------------------------------------
    async def _dispatch(self, request: Request) -> dict:
        """Answer one parsed request (the test suite's override point
        for injecting slow handlers)."""
        if request.op == "HEALTH":
            return self._health()
        if request.op == "STATS":
            return self._stats()
        if request.op == "METRICS":
            return self._metrics()
        if request.op == "FAULT":
            return self._fault_admin(request)
        if request.op == "MAP":
            return self._map_admin(request)
        if request.op == "DELTA":
            return self._delta_admin(request)
        if self.cluster is not None and request.epoch is not None:
            # Data ops stamped with a map epoch must agree with the
            # node's map; a disagreement means the client routed here
            # by an out-of-date (or too-new) map.  Unstamped requests
            # pass — plain clients can still talk to a cluster node.
            if request.epoch != self.cluster.map.epoch:
                raise ProtocolError(
                    "stale_map",
                    f"request routed by map epoch {request.epoch}, node is "
                    f"at {self.cluster.map.epoch}; refresh the map",
                )
        store = self._store_for(request)
        if request.op == "DIST":
            return self._dist(store, request.u, request.v)
        if request.op == "BATCH":
            return self._batch(store, request.pairs)
        if request.op == "LABEL":
            return self._label(store, request.v)
        raise ProtocolError("unknown_op", f"unknown op {request.op!r}")

    def _store_for(self, request: Request) -> ShardedLabelStore:
        if request.store is None and self._cluster_view is not None:
            return self._cluster_view
        try:
            return self.catalog.get(request.store)
        except KeyError:
            raise ProtocolError(
                "unknown_store",
                f"unknown store {request.store!r}; loaded: "
                f"{', '.join(self.catalog.names) or '(none)'}",
            ) from None

    def _estimate(self, store: ShardedLabelStore, u: Vertex, v: Vertex) -> float:
        # One flag read up front; span sites below branch on it instead
        # of entering no-op context managers (three saved frames per
        # request on the telemetry-off path).
        traced = tracing_active()
        key = None
        if self.cache.capacity > 0:
            a, b = u, v
            if repr(b) < repr(a):
                a, b = b, a
            key = (store.name, a, b)
            if traced:
                with span("serve.cache") as cache_span:
                    found = self.cache.get(key)
                    cache_span.set_attribute("hit", found is not None)
            else:
                found = self.cache.get(key)
            if found is not None:
                self.counters["cache_hits"] += 1
                metrics.inc("serve.cache.hit")
                return found
            self.counters["cache_misses"] += 1
            metrics.inc("serve.cache.miss")
        if metrics.enabled:
            # Per-shard load for the live metrics plane (`repro top`).
            # Guarded: shard_index hashes the vertex, which the
            # registry-off fast path should not pay for.
            metrics.inc(
                "serve.shard.queries",
                store=store.name,
                shard=store.shard_index(u),
            )
        try:
            if traced:
                with span("serve.estimate") as est_span:
                    est_span.set_attribute("store", store.name)
                    est_span.set_attribute("shard_u", store.shard_index(u))
                    est_span.set_attribute("shard_v", store.shard_index(v))
                    value = store.estimate(u, v)
            else:
                value = store.estimate(u, v)
        except ShardNotOwned as exc:
            raise ProtocolError("stale_map", str(exc)) from None
        except GraphError as exc:
            raise ProtocolError("unknown_vertex", str(exc)) from None
        if key is not None:
            self.cache.put(key, value)
            metrics.gauge("serve.cache.size", len(self.cache))
        return value

    def _dist(self, store: ShardedLabelStore, u: Vertex, v: Vertex) -> dict:
        fields = estimate_field(self._estimate(store, u, v))
        return {"op": "DIST", "epsilon": store.epsilon, **fields}

    def _batch(self, store: ShardedLabelStore, pairs) -> dict:
        if len(pairs) > self.max_batch:
            raise ProtocolError(
                "batch_too_large",
                f"{len(pairs)} pairs exceed the server cap of {self.max_batch}",
            )
        metrics.observe("serve.batch.pairs", len(pairs))
        results = []
        for u, v in pairs:
            try:
                results.append({"ok": True, **estimate_field(self._estimate(store, u, v))})
            except ProtocolError as exc:
                self.counters["errors"] += 1
                metrics.inc("serve.errors", code=exc.code)
                results.append(
                    {"ok": False, "error": {"code": exc.code, "message": str(exc)}}
                )
        return {"op": "BATCH", "epsilon": store.epsilon, "results": results}

    def _label(self, store: ShardedLabelStore, v: Vertex) -> dict:
        try:
            label = store.label(v)
        except ShardNotOwned as exc:
            raise ProtocolError("stale_map", str(exc)) from None
        except GraphError as exc:
            raise ProtocolError("unknown_vertex", str(exc)) from None
        return {
            "op": "LABEL",
            "v": encode_vertex(v),
            "shard": store.shard_index(v),
            "words": label.words,
            "num_portals": label.num_portals,
            "label": encode_label(label),
        }

    def _fault_admin(self, request: Request) -> dict:
        """The FAULT admin op: inspect / toggle / replace the fault
        plan at runtime.  Never itself subject to injection, so an
        operator can always shut the chaos off."""
        action = request.action or "status"
        try:
            if action == "set":
                self.faults.set_plan(FaultPlan.from_dict(request.plan))
            elif action == "enable":
                self.faults.enable()
            elif action == "disable":
                self.faults.disable()
            elif action == "clear":
                self.faults.clear()
        except FaultPlanError as exc:
            raise ProtocolError("bad_request", f"bad fault plan: {exc}") from None
        metrics.inc("serve.faults.admin", action=action)
        return {"op": "FAULT", **self.faults.status()}

    def _map_admin(self, request: Request) -> dict:
        """The MAP op: read or push the node's cluster map.

        ``get`` always answers — a non-cluster server returns a null
        map, so a cluster client probing a plain server learns the
        truth instead of an error.  ``set`` installs a pushed map iff
        its epoch is *strictly* newer than the current one; equal or
        older pushes get ``stale_map`` (the pusher is the stale party).
        Like every data-plane answer, MAP responses pass through the
        fault layer — a map push can be dropped or delayed by chaos.
        """
        action = request.action or "get"
        if action == "get":
            if self.cluster is None:
                return {"op": "MAP", "node": None, "epoch": None, "map": None}
            return {
                "op": "MAP",
                "node": self.cluster.node_id,
                "epoch": self.cluster.map.epoch,
                "map": self.cluster.map.to_dict(),
            }
        # action == "set"
        if self.cluster is None:
            raise ProtocolError(
                "bad_request", "this server is not cluster-aware; cannot accept a map"
            )
        # Imported here, not at module level: repro.cluster.client
        # imports repro.serve.client, so a top-level import back into
        # repro.cluster would cycle.
        from repro.cluster.map import ClusterMap, ClusterMapError

        try:
            pushed = ClusterMap.from_dict(request.map)
        except ClusterMapError as exc:
            raise ProtocolError("bad_request", f"bad cluster map: {exc}") from None
        if pushed.epoch <= self.cluster.map.epoch:
            raise ProtocolError(
                "stale_map",
                f"pushed map epoch {pushed.epoch} is not newer than the "
                f"node's epoch {self.cluster.map.epoch}",
            )
        try:
            self.cluster.install(pushed)
        except ClusterMapError as exc:
            raise ProtocolError(
                "bad_request", f"map does not include this node: {exc}"
            ) from None
        metrics.inc("serve.map.pushes")
        metrics.gauge("serve.map.epoch", self.cluster.map.epoch)
        eventlog.info(
            "serve.map.install",
            node=self.cluster.node_id,
            epoch=self.cluster.map.epoch,
        )
        return {
            "op": "MAP",
            "node": self.cluster.node_id,
            "epoch": self.cluster.map.epoch,
            "installed": True,
        }

    def _delta_admin(self, request: Request) -> dict:
        """The DELTA op: read or advance a store's label epoch.

        ``status`` reports where the store is; ``apply`` installs the
        delta iff its epoch is *exactly* ``label_epoch + 1``.  An epoch
        at or below the current one answers ``ok`` with ``noop`` (the
        push is a replay — applying would double-count, but the pusher
        is not wrong), and an epoch that skips ahead gets
        ``stale_delta``: this node is missing intermediate deltas and
        must be resynced from the journal, not papered over.

        Application is synchronous inside the event loop — no awaits
        between the gate and the final entry write — so an in-flight
        DIST/BATCH either completed before the delta or starts after
        it; no query ever reads a half-applied labeling.  The pair
        cache is cleared in the same critical section.
        """
        action = request.action or "status"
        store = self._store_for(request)
        epoch = getattr(store, "label_epoch", 0)
        if action == "status":
            return {
                "op": "DELTA",
                "store": store.name,
                "epoch": epoch,
                "applied_deltas": getattr(store, "applied_deltas", 0),
            }
        # action == "apply"
        try:
            delta = delta_from_dict(request.delta)
        except DeltaError as exc:
            raise ProtocolError("bad_request", f"bad delta: {exc}") from None
        if float(delta.epsilon) != float(store.epsilon):
            raise ProtocolError(
                "bad_request",
                f"delta epsilon {delta.epsilon} does not match store "
                f"{store.name!r} epsilon {store.epsilon}",
            )
        if delta.epoch <= epoch:
            return {
                "op": "DELTA",
                "store": store.name,
                "epoch": epoch,
                "applied": False,
                "noop": True,
            }
        if delta.epoch != epoch + 1:
            raise ProtocolError(
                "stale_delta",
                f"delta epoch {delta.epoch} skips ahead of label epoch "
                f"{epoch}; push the missing epochs first",
            )
        try:
            result = store.apply_delta(delta)
        except DeltaError as exc:
            raise ProtocolError(
                "bad_request", f"delta does not apply: {exc}"
            ) from None
        self.cache.clear()
        self.counters["deltas"] += 1
        metrics.inc("serve.delta.applies")
        metrics.inc(
            "serve.delta.changes", result["changes"] + result["removals"]
        )
        metrics.gauge("serve.delta.epoch", result["epoch"], store=store.name)
        eventlog.info(
            "serve.delta.install",
            store=store.name,
            epoch=result["epoch"],
            changes=result["changes"],
            removals=result["removals"],
            skipped=result.get("skipped", 0),
        )
        payload = {
            "op": "DELTA",
            "store": store.name,
            "epoch": result["epoch"],
            "applied": True,
            "changes": result["changes"],
            "removals": result["removals"],
        }
        if "skipped" in result:
            payload["skipped"] = result["skipped"]
        return payload

    def _cluster_block(self) -> dict:
        return {
            "node": self.cluster.node_id,
            "epoch": self.cluster.map.epoch,
            "owned_shards": sorted(self.cluster.owned),
            "num_shards": self.cluster.map.num_shards,
            "replication": self.cluster.map.replication,
            "nodes": len(self.cluster.map.nodes),
        }

    def _health(self) -> dict:
        return {
            "op": "HEALTH",
            "status": "draining" if self._draining else "serving",
            "stores": len(self.catalog),
            "labels": self.catalog.num_labels,
        }

    def _uptime(self) -> float:
        if self._started_monotonic is None:
            return 0.0
        return time.monotonic() - self._started_monotonic

    def _stats(self) -> dict:
        payload = {
            "op": "STATS",
            "uptime_s": round(self._uptime(), 3),
            "rss_bytes": process_rss_bytes(),
            "inflight": self._inflight,
            "peak_inflight": self.peak_inflight,
            "cache": {"size": len(self.cache), "capacity": self.cache.capacity},
            "counters": dict(self.counters),
            "stores": self.catalog.stats(),
            "faults": self.faults.status(),
        }
        if self.cluster is not None:
            payload["cluster"] = self._cluster_block()
        return payload

    def _metrics(self) -> dict:
        """The METRICS op: a read-only live snapshot shaped for polling
        (``repro top``).  Always-on internals come back regardless;
        the full registry snapshot (per-op latency histograms, cache
        hit counters, …) rides along when the global registry is
        enabled (``repro serve --metrics``)."""
        payload: dict = {
            "op": "METRICS",
            "time": round(time.time(), 3),
            "uptime_s": round(self._uptime(), 3),
            "rss_bytes": process_rss_bytes(),
            "inflight": self._inflight,
            "peak_inflight": self.peak_inflight,
            "connections": len(self._writers),
            "draining": self._draining,
            "cache": {"size": len(self.cache), "capacity": self.cache.capacity},
            "counters": dict(self.counters),
            "shards": {
                store.name: [shard.num_labels for shard in store.shards]
                for store in self.catalog
            },
            "stores": {
                store.name: {
                    "codec": store.codec,
                    "labels": store.num_labels,
                    "mapped_bytes": store.mapped_bytes,
                }
                for store in self.catalog
            },
            "faults": {
                "enabled": self.faults.enabled,
                "decisions": self.faults.decisions,
                "injected": dict(sorted(self.faults.injected.items())),
            },
            "metrics_enabled": metrics.enabled,
        }
        if self.cluster is not None:
            payload["cluster"] = self._cluster_block()
        if metrics.enabled:
            payload["metrics"] = metrics.snapshot()
        return payload

    def _live_gauges(self) -> Dict[str, float]:
        """Extra per-tick gauges for the timeseries writer: live server
        state the registry does not track continuously."""
        return {
            "serve.inflight": self._inflight,
            "serve.connections.open": len(self._writers),
            "serve.cache.size": len(self.cache),
            "proc.rss_bytes": process_rss_bytes(),
        }


class _InflightSlot:
    """Semaphore guard that also tracks inflight count / peak.

    Idle tracking lives in ``_serve_one`` (which covers the response
    write too), not here: releasing the slot when the answer is merely
    *computed* is what let shutdown race an in-flight BATCH flush.
    """

    __slots__ = ("_server",)

    def __init__(self, server: OracleServer) -> None:
        self._server = server

    async def __aenter__(self):
        server = self._server
        await server._sema.acquire()
        server._inflight += 1
        if server._inflight > server.peak_inflight:
            server.peak_inflight = server._inflight
            metrics.gauge_max("serve.inflight_peak", server._inflight)
        return self

    async def __aexit__(self, exc_type, exc, tb):
        server = self._server
        server._inflight -= 1
        server._sema.release()
        return False
