"""Sharded label stores for the query service.

One store holds one loaded labeling file, split into hash shards by
vertex.  Sharding buys nothing for a single process dict lookup — it
exists so the serving layer's *accounting* matches the deployment the
paper argues for (labels are small remote objects, spread across
machines): per-shard label counts and word sizes are first-class,
exported as ``serve.shard.*`` gauges, and the shard function is stable
across processes and runs (CRC-32 of the vertex's canonical wire
encoding, not Python's salted ``hash``), so a future multi-process
split serves exactly the shards this module reports.

Two store flavors behind one interface, picked by sniffing the file:

* :class:`ShardedLabelStore` — the JSON (``/1``) path: parse
  everything up front into per-shard dicts.
* :class:`MappedLabelStore` — the binary (``/2``) path: ``mmap`` the
  file, O(1) open, labels decoded lazily per lookup through a small
  LRU (see :mod:`repro.core.binfmt`).

A :class:`StoreCatalog` maps store names to stores; the server loads
one store per ``--labels`` file and routes requests by the optional
``"store"`` field.
"""

from __future__ import annotations

import zlib
from collections import OrderedDict
from pathlib import Path
from typing import Dict, Hashable, Iterator, List, Optional, Tuple, Union

from repro.core.binfmt import BinaryLabelReader, is_binary_labels
from repro.core.flat import FlatLabel, flat_estimate, resolve_backend
from repro.core.labeling import VertexLabel, estimate_distance
from repro.core.serialize import (
    RemoteLabels,
    load_labeling,
    shard_key_bytes,
)
from repro.dynamic.rebuild import (
    Change,
    DeltaError,
    LabelDelta,
    Removal,
    _insert_entry_sorted,
)
from repro.util.errors import GraphError, ReproError

Vertex = Hashable

__all__ = [
    "DEFAULT_NUM_SHARDS",
    "ClusterStoreView",
    "LabelShard",
    "MappedLabelStore",
    "ShardNotOwned",
    "ShardedLabelStore",
    "StoreCatalog",
    "shard_key",
]

DEFAULT_NUM_SHARDS = 8

#: Decoded-label LRU capacity of a :class:`MappedLabelStore` (labels,
#: not bytes); 0 decodes on every lookup.
DEFAULT_LABEL_CACHE = 4096


def shard_key(v: Vertex) -> bytes:
    """Stable bytes identifying *v* across processes and runs.

    Numeric vertices are canonicalized first (``1.0`` -> ``1``):
    ``1 == 1.0`` is one dict key, so it must be one shard key too —
    otherwise a label stored under ``1.0`` and queried as ``1`` can
    route to the wrong shard and miss.
    """
    return shard_key_bytes(v)


class LabelShard:
    """One hash shard: a plain dict plus its size accounting."""

    __slots__ = ("index", "labels", "words")

    def __init__(self, index: int) -> None:
        self.index = index
        self.labels: Dict[Vertex, VertexLabel] = {}
        self.words = 0

    def add(self, label: VertexLabel) -> None:
        self.labels[label.vertex] = label
        self.words += label.words

    @property
    def num_labels(self) -> int:
        return len(self.labels)


class ShardedLabelStore:
    """One labeling, hash-sharded by vertex, with O(1) label lookup.

    With ``backend="flat"`` (the default wherever
    :func:`repro.core.flat.resolve_backend` finds the flat core's
    dependencies) the DIST/BATCH hot path answers from a direct
    vertex -> :class:`~repro.core.flat.FlatLabel` index — skipping the
    per-query canonical-encode + CRC shard routing, which costs as much
    as the combine itself — via :func:`~repro.core.flat.flat_estimate`.
    Answers are bit-identical to the dict path; the sharded dicts stay
    the source of truth for LABEL, serialization, and accounting.
    """

    def __init__(
        self,
        name: str,
        epsilon: float,
        num_shards: int = DEFAULT_NUM_SHARDS,
        source: Optional[str] = None,
        backend: Optional[str] = None,
    ) -> None:
        if num_shards < 1:
            raise ValueError(f"num_shards must be >= 1, got {num_shards}")
        self.name = name
        self.epsilon = epsilon
        self.source = source
        self.backend = resolve_backend(backend)
        # vertex -> FlatLabel, memoized lazily by estimate() so load
        # time stays flat-free; entries for delta-touched vertices are
        # dropped and rebuilt on next query.
        self._flat: Optional[Dict[Vertex, FlatLabel]] = (
            {} if self.backend == "flat" else None
        )
        self.shards: List[LabelShard] = [LabelShard(i) for i in range(num_shards)]
        self.label_epoch = 0
        self.applied_deltas = 0

    # -- construction ---------------------------------------------------
    @classmethod
    def from_remote(
        cls,
        name: str,
        remote: RemoteLabels,
        num_shards: int = DEFAULT_NUM_SHARDS,
        source: Optional[str] = None,
        backend: Optional[str] = None,
    ) -> "ShardedLabelStore":
        store = cls(name, remote.epsilon, num_shards, source=source,
                    backend=backend)
        for label in remote.labels.values():
            store.shards[store.shard_index(label.vertex)].add(label)
        return store

    @classmethod
    def load(
        cls,
        path: Union[str, Path],
        num_shards: int = DEFAULT_NUM_SHARDS,
        name: Optional[str] = None,
        backend: Optional[str] = None,
    ):
        """Load a ``repro-distance-labels`` file into a store.

        The codec is sniffed: a binary (``/2``) file returns a
        :class:`MappedLabelStore` (O(1) open, lazy decode); a JSON
        (``/1``) file parses eagerly into a :class:`ShardedLabelStore`.
        Both answer the same store interface.

        Format validation happens here, at load time: a file with an
        unknown format version is refused before the server ever binds
        a port (:func:`repro.core.serialize.load_labeling` raises
        ``SerializationError``).
        """
        path = Path(path)
        with open(path, "rb") as handle:
            head = handle.read(8)
        if is_binary_labels(head):
            return MappedLabelStore(path, name=name, backend=backend)
        remote = load_labeling(path)
        return cls.from_remote(
            name or path.stem, remote, num_shards, source=str(path),
            backend=backend,
        )

    # -- lookup ---------------------------------------------------------
    def shard_index(self, v: Vertex) -> int:
        return zlib.crc32(shard_key(v)) % len(self.shards)

    def label(self, v: Vertex) -> VertexLabel:
        try:
            return self.shards[self.shard_index(v)].labels[v]
        except KeyError:
            raise GraphError(
                f"vertex {v!r} has no label in store {self.name!r}"
            ) from None

    def __contains__(self, v: Vertex) -> bool:
        return v in self.shards[self.shard_index(v)].labels

    def estimate(self, u: Vertex, v: Vertex) -> float:
        """Theorem-2 combine step on two stored labels; exactly
        :meth:`RemoteLabels.estimate` on the same inputs (bit-identical
        between backends)."""
        flat = self._flat
        if flat is None:
            return estimate_distance(self.label(u), self.label(v))
        fu = flat.get(u)
        if fu is None:
            # self.label raises the store's canonical missing-vertex
            # error for truly absent vertices.
            fu = flat[u] = FlatLabel.from_label(self.label(u))
        fv = flat.get(v)
        if fv is None:
            fv = flat[v] = FlatLabel.from_label(self.label(v))
        return flat_estimate(fu, fv)

    def vertices(self) -> Iterator[Vertex]:
        for shard in self.shards:
            yield from shard.labels

    # -- dynamic updates ------------------------------------------------
    def apply_label_changes(
        self,
        changes: List[Change],
        removals: List[Removal],
        require_vertices: bool = True,
    ) -> Tuple[int, int]:
        """Apply raw entry changes/removals to the sharded dicts,
        keeping per-shard word accounting exact.  No epoch logic here —
        that is :meth:`apply_delta`'s job."""
        applied_changes = 0
        for vx, key, portals in changes:
            shard = self.shards[self.shard_index(vx)]
            label = shard.labels.get(vx)
            if label is None:
                if require_vertices:
                    raise DeltaError(
                        f"delta names vertex {vx!r} with no label in "
                        f"store {self.name!r}"
                    )
                continue
            before = label.words
            _insert_entry_sorted(label.entries, key, list(portals))
            shard.words += label.words - before
            if self._flat is not None:
                self._flat.pop(vx, None)
            applied_changes += 1
        applied_removals = 0
        for vx, key in removals:
            shard = self.shards[self.shard_index(vx)]
            label = shard.labels.get(vx)
            if label is None:
                if require_vertices:
                    raise DeltaError(
                        f"delta names vertex {vx!r} with no label in "
                        f"store {self.name!r}"
                    )
                continue
            before = label.words
            if label.entries.pop(key, None) is not None:
                shard.words += label.words - before
                if self._flat is not None:
                    self._flat.pop(vx, None)
                applied_removals += 1
        return applied_changes, applied_removals

    def apply_delta(self, delta: LabelDelta) -> dict:
        """Install the next epoch's label delta.

        Strict: the delta must carry exactly ``label_epoch + 1`` and
        the store's epsilon.  Idempotence for replays (epoch <= current)
        and gap detection are the server's policy layer
        (:meth:`repro.serve.server.OracleServer`), which answers
        ``ok/noop`` and ``stale_delta`` respectively.
        """
        if float(delta.epsilon) != float(self.epsilon):
            raise DeltaError(
                f"delta epsilon {delta.epsilon} differs from store "
                f"epsilon {self.epsilon}"
            )
        expected = self.label_epoch + 1
        if delta.epoch != expected:
            raise DeltaError(
                f"delta epoch {delta.epoch} out of sequence "
                f"(store {self.name!r} expects {expected})"
            )
        changes, removals = self.apply_label_changes(
            delta.changes, delta.removals
        )
        self.label_epoch = delta.epoch
        self.applied_deltas += 1
        return {
            "epoch": self.label_epoch,
            "changes": changes,
            "removals": removals,
        }

    # -- accounting -----------------------------------------------------
    @property
    def codec(self) -> str:
        return "json"

    @property
    def mapped_bytes(self) -> int:
        """Bytes of file mapped into the process (0: fully parsed)."""
        return 0

    @property
    def num_shards(self) -> int:
        return len(self.shards)

    @property
    def num_labels(self) -> int:
        return sum(shard.num_labels for shard in self.shards)

    @property
    def total_words(self) -> int:
        return sum(shard.words for shard in self.shards)

    def stats(self) -> dict:
        """JSON-ready per-store breakdown (the STATS op's payload)."""
        return {
            "epsilon": self.epsilon,
            "labels": self.num_labels,
            "words": self.total_words,
            "codec": self.codec,
            "backend": self.backend,
            "mapped_bytes": self.mapped_bytes,
            "source": self.source,
            "label_epoch": self.label_epoch,
            "applied_deltas": self.applied_deltas,
            "shards": [
                {"labels": shard.num_labels, "words": shard.words}
                for shard in self.shards
            ],
        }


class MappedShard:
    """One shard of a mapped store: the accounting view.

    Counts and words come from the file's shard directory — reading
    them decodes nothing — so STATS and the ``serve.shard.*`` gauges
    cost the same as the eager store's.
    """

    __slots__ = ("index", "_reader")

    def __init__(self, index: int, reader: BinaryLabelReader) -> None:
        self.index = index
        self._reader = reader

    @property
    def num_labels(self) -> int:
        return self._reader.shard_labels(self.index)

    @property
    def words(self) -> int:
        return self._reader.shard_words(self.index)


class MappedLabelStore:
    """One ``/2`` labeling served straight off its ``mmap``.

    Opening is O(1) in the label count: map the file, read the header.
    A lookup routes through the file's shard directory and hash index
    and decodes exactly one record; a small LRU keeps hot labels
    materialized so repeated queries don't re-decode.  The shard
    layout is the one baked in at pack time (``repro pack --shards``),
    so every process mapping this file agrees on routing.

    Same interface as :class:`ShardedLabelStore`; the server does not
    know which one it is holding.

    With ``backend="flat"`` (the auto default when available) the LRU
    holds :class:`~repro.core.flat.FlatLabel` objects decoded straight
    off the record bytes (:meth:`~repro.core.binfmt.BinaryLabelReader
    .get_flat`), ``estimate`` runs the flat combine, and ``label``
    materializes a dict label on demand — byte-identical in every
    observable reply.
    """

    def __init__(
        self,
        path: Union[str, Path],
        name: Optional[str] = None,
        label_cache: int = DEFAULT_LABEL_CACHE,
        backend: Optional[str] = None,
    ) -> None:
        path = Path(path)
        self.reader = BinaryLabelReader(path)
        self.name = name or path.stem
        self.epsilon = float(self.reader.epsilon)
        self.source = str(path)
        self.backend = resolve_backend(backend)
        self.shards: List[MappedShard] = [
            MappedShard(i, self.reader) for i in range(self.reader.num_shards)
        ]
        self._cache_capacity = label_cache
        # The decoded-label LRU: VertexLabel values on the dict
        # backend, FlatLabel values on the flat backend.
        self._cache: "OrderedDict[Vertex, object]" = OrderedDict()
        # Labels rewritten by applied deltas: the mmap'd file is
        # immutable, so updated labels live here and win over the
        # reader.  Never evicted (delta footprints are small).
        self._overlay: Dict[Vertex, VertexLabel] = {}
        # Flat mirror of the overlay, refreshed after every mutation,
        # so the flat estimate path sees delta-applied labels.
        self._overlay_flat: Dict[Vertex, FlatLabel] = {}
        self._overlay_words_delta = 0
        self.label_epoch = 0
        self.applied_deltas = 0

    # -- lookup ---------------------------------------------------------
    def shard_index(self, v: Vertex) -> int:
        return self.reader.shard_of(v)

    def _flat_label(self, v: Vertex) -> FlatLabel:
        found = self._overlay_flat.get(v)
        if found is not None:
            return found
        found = self._cache.get(v)
        if found is not None:
            self._cache.move_to_end(v)
            return found
        label = self.reader.get_flat(v)
        if label is None:
            raise GraphError(
                f"vertex {v!r} has no label in store {self.name!r}"
            ) from None
        if self._cache_capacity > 0:
            self._cache[v] = label
            while len(self._cache) > self._cache_capacity:
                self._cache.popitem(last=False)
        return label

    def label(self, v: Vertex) -> VertexLabel:
        found = self._overlay.get(v)
        if found is not None:
            return found
        if self.backend == "flat":
            # Storage order is preserved through FlatLabel, so this
            # reconstruction is the record's exact dict decode.
            return self._flat_label(v).to_label()
        found = self._cache.get(v)
        if found is not None:
            self._cache.move_to_end(v)
            return found
        label = self.reader.get(v)
        if label is None:
            raise GraphError(
                f"vertex {v!r} has no label in store {self.name!r}"
            ) from None
        if self._cache_capacity > 0:
            self._cache[v] = label
            while len(self._cache) > self._cache_capacity:
                self._cache.popitem(last=False)
        return label

    def __contains__(self, v: Vertex) -> bool:
        return (
            v in self._overlay
            or v in self._cache
            or self.reader.get(v) is not None
        )

    def estimate(self, u: Vertex, v: Vertex) -> float:
        if self.backend == "flat":
            return flat_estimate(self._flat_label(u), self._flat_label(v))
        return estimate_distance(self.label(u), self.label(v))

    def vertices(self) -> Iterator[Vertex]:
        """Vertices in record order (portals stay undecoded)."""
        return self.reader.iter_vertices()

    # -- dynamic updates ------------------------------------------------
    def _materialize(self, v: Vertex) -> Optional[VertexLabel]:
        """The overlay copy of *v*'s label, creating it from a fresh
        record decode on first touch.  Decodes from the reader (not the
        LRU) so the overlay owns its object, then drops any stale LRU
        entry so lookups see the overlay."""
        label = self._overlay.get(v)
        if label is None:
            label = self.reader.get(v)
            if label is None:
                return None
            self._overlay[v] = label
            if self.backend == "flat":
                self._overlay_flat[v] = FlatLabel.from_label(label)
        self._cache.pop(v, None)
        return label

    def apply_label_changes(
        self,
        changes: List[Change],
        removals: List[Removal],
        require_vertices: bool = True,
    ) -> Tuple[int, int]:
        """Apply entry changes by copying touched labels into the
        overlay; the mapped file stays untouched.  Word accounting for
        the store total rides in ``_overlay_words_delta`` (the per-shard
        directory still reports pack-time words — see :meth:`stats`)."""
        applied_changes = 0
        for vx, key, portals in changes:
            label = self._materialize(vx)
            if label is None:
                if require_vertices:
                    raise DeltaError(
                        f"delta names vertex {vx!r} with no label in "
                        f"store {self.name!r}"
                    )
                continue
            before = label.words
            _insert_entry_sorted(label.entries, key, list(portals))
            self._overlay_words_delta += label.words - before
            if self.backend == "flat":
                self._overlay_flat[vx] = FlatLabel.from_label(label)
            applied_changes += 1
        applied_removals = 0
        for vx, key in removals:
            label = self._materialize(vx)
            if label is None:
                if require_vertices:
                    raise DeltaError(
                        f"delta names vertex {vx!r} with no label in "
                        f"store {self.name!r}"
                    )
                continue
            before = label.words
            if label.entries.pop(key, None) is not None:
                self._overlay_words_delta += label.words - before
                if self.backend == "flat":
                    self._overlay_flat[vx] = FlatLabel.from_label(label)
                applied_removals += 1
        return applied_changes, applied_removals

    def apply_delta(self, delta: LabelDelta) -> dict:
        """Same contract as :meth:`ShardedLabelStore.apply_delta`."""
        if float(delta.epsilon) != float(self.epsilon):
            raise DeltaError(
                f"delta epsilon {delta.epsilon} differs from store "
                f"epsilon {self.epsilon}"
            )
        expected = self.label_epoch + 1
        if delta.epoch != expected:
            raise DeltaError(
                f"delta epoch {delta.epoch} out of sequence "
                f"(store {self.name!r} expects {expected})"
            )
        changes, removals = self.apply_label_changes(
            delta.changes, delta.removals
        )
        self.label_epoch = delta.epoch
        self.applied_deltas += 1
        return {
            "epoch": self.label_epoch,
            "changes": changes,
            "removals": removals,
        }

    # -- accounting -----------------------------------------------------
    @property
    def codec(self) -> str:
        return "binary"

    @property
    def mapped_bytes(self) -> int:
        return self.reader.mapped_bytes

    @property
    def cached_labels(self) -> int:
        return len(self._cache)

    @property
    def num_shards(self) -> int:
        return len(self.shards)

    @property
    def num_labels(self) -> int:
        return self.reader.num_labels

    @property
    def total_words(self) -> int:
        return self.reader.total_words + self._overlay_words_delta

    def stats(self) -> dict:
        return {
            "epsilon": self.epsilon,
            "labels": self.num_labels,
            "words": self.total_words,
            "codec": self.codec,
            "backend": self.backend,
            "mapped_bytes": self.mapped_bytes,
            "cached_labels": self.cached_labels,
            "source": self.source,
            "label_epoch": self.label_epoch,
            "applied_deltas": self.applied_deltas,
            "overlay_labels": len(self._overlay),
            # Per-shard rows are the pack-time directory; overlay words
            # are accounted in the store total only.
            "shards": [
                {"labels": shard.num_labels, "words": shard.words}
                for shard in self.shards
            ],
        }

    def close(self) -> None:
        self._cache.clear()
        self._overlay.clear()
        self._overlay_flat.clear()
        self.reader.close()


class StoreCatalog:
    """Named stores; the first one registered is the default."""

    def __init__(self) -> None:
        self._stores: Dict[str, ShardedLabelStore] = {}
        self._default: Optional[str] = None

    def add(self, store: ShardedLabelStore) -> ShardedLabelStore:
        name = store.name
        if name in self._stores:
            # Two --labels files with the same stem: disambiguate by
            # position so both stay addressable.
            suffix = 2
            while f"{name}.{suffix}" in self._stores:
                suffix += 1
            name = f"{name}.{suffix}"
            store.name = name
        self._stores[name] = store
        if self._default is None:
            self._default = name
        return store

    def get(self, name: Optional[str]) -> ShardedLabelStore:
        """The named store, or the default when *name* is None.

        Raises :class:`KeyError` with the unknown name (the server maps
        this to an ``unknown_store`` error reply).
        """
        if name is None:
            if self._default is None:
                raise KeyError("no stores loaded")
            return self._stores[self._default]
        return self._stores[name]

    def __len__(self) -> int:
        return len(self._stores)

    def __iter__(self) -> Iterator[ShardedLabelStore]:
        return iter(self._stores.values())

    @property
    def names(self) -> List[str]:
        return list(self._stores)

    @property
    def num_labels(self) -> int:
        return sum(store.num_labels for store in self)

    def stats(self) -> dict:
        return {name: store.stats() for name, store in self._stores.items()}


class ShardNotOwned(ReproError):
    """A vertex routed to this node whose shard the node does not hold.

    In a cluster this means the client's map disagrees with the node's
    actual data placement — the server answers ``stale_map`` so the
    client refreshes and re-routes, instead of the misleading
    ``unknown_vertex`` (the vertex may well have a label, elsewhere).
    """

    def __init__(self, v: Vertex, shard: int, node_id: str) -> None:
        super().__init__(
            f"shard {shard} (vertex {v!r}) is not held by node {node_id!r}"
        )
        self.vertex = v
        self.shard = shard
        self.node_id = node_id


class ClusterStoreView:
    """The cluster-routing facade over a node's per-shard stores.

    On a cluster node each loaded pack file is one *global* shard,
    registered in the catalog under its ``shard-%04d`` stem.  This view
    answers the plain store interface by first routing a vertex to its
    global shard via the cluster map's hash, then delegating to that
    shard's store — so the default-store path of a cluster server
    transparently spans every shard the node holds, and a vertex the
    node does *not* hold raises :class:`ShardNotOwned` rather than
    guessing.

    ``cluster_state`` is duck-typed (anything with ``node_id``, a
    ``map`` exposing ``shard_of``/``epsilon``, an ``owned`` shard set,
    and ``store_name``) so this module never imports
    :mod:`repro.cluster` — the cluster client imports the serve client,
    and a module-level import back the other way would cycle.
    """

    def __init__(self, catalog: StoreCatalog, cluster_state) -> None:
        self.catalog = catalog
        self.cluster = cluster_state
        self.name = f"cluster:{cluster_state.node_id}"
        epsilons = {store.epsilon for store in catalog}
        self.epsilon = (
            epsilons.pop() if len(epsilons) == 1
            else float(cluster_state.map.epsilon)
        )
        self.label_epoch = 0
        self.applied_deltas = 0

    def shard_index(self, v: Vertex) -> int:
        """The *global* shard of *v* (cluster routing, not the pack
        file's internal hash buckets)."""
        return self.cluster.map.shard_of(v)

    def _store_of(self, v: Vertex):
        shard = self.cluster.map.shard_of(v)
        if shard not in self.cluster.owned:
            raise ShardNotOwned(v, shard, self.cluster.node_id)
        try:
            return self.catalog.get(self.cluster.store_name(shard))
        except KeyError:
            raise ShardNotOwned(v, shard, self.cluster.node_id) from None

    def label(self, v: Vertex) -> VertexLabel:
        return self._store_of(v).label(v)

    def __contains__(self, v: Vertex) -> bool:
        try:
            return v in self._store_of(v)
        except ShardNotOwned:
            return False

    def estimate(self, u: Vertex, v: Vertex) -> float:
        """The same Theorem-2 combine as a single store — both labels
        are fetched through shard routing first."""
        return estimate_distance(self.label(u), self.label(v))

    def vertices(self) -> Iterator[Vertex]:
        for shard in sorted(self.cluster.owned):
            try:
                store = self.catalog.get(self.cluster.store_name(shard))
            except KeyError:
                continue
            yield from store.vertices()

    # -- dynamic updates ------------------------------------------------
    def apply_delta(self, delta: LabelDelta) -> dict:
        """Apply the node-owned slice of a whole-graph delta.

        The pusher fans the *same* delta out to every node; each node
        keeps only the entries whose vertex routes (via the cluster
        map's shard hash) to a shard it owns, and delegates them to the
        owning shard's store.  The view tracks its own ``label_epoch``
        — one update sequence per node, regardless of how many shard
        packs it holds.
        """
        if float(delta.epsilon) != float(self.epsilon):
            raise DeltaError(
                f"delta epsilon {delta.epsilon} differs from store "
                f"epsilon {self.epsilon}"
            )
        expected = self.label_epoch + 1
        if delta.epoch != expected:
            raise DeltaError(
                f"delta epoch {delta.epoch} out of sequence "
                f"(node {self.cluster.node_id!r} expects {expected})"
            )
        by_store: Dict[str, Tuple[List[Change], List[Removal]]] = {}
        skipped = 0

        def slice_of(vx):
            nonlocal skipped
            shard = self.cluster.map.shard_of(vx)
            if shard not in self.cluster.owned:
                skipped += 1
                return None
            name = self.cluster.store_name(shard)
            try:
                self.catalog.get(name)
            except KeyError:
                skipped += 1
                return None
            return by_store.setdefault(name, ([], []))

        for vx, key, portals in delta.changes:
            entry = slice_of(vx)
            if entry is not None:
                entry[0].append((vx, key, portals))
        for vx, key in delta.removals:
            entry = slice_of(vx)
            if entry is not None:
                entry[1].append((vx, key))
        changes = removals = 0
        for name, (store_changes, store_removals) in by_store.items():
            c, r = self.catalog.get(name).apply_label_changes(
                store_changes, store_removals
            )
            changes += c
            removals += r
        self.label_epoch = delta.epoch
        self.applied_deltas += 1
        return {
            "epoch": self.label_epoch,
            "changes": changes,
            "removals": removals,
            "skipped": skipped,
        }

    # -- accounting -----------------------------------------------------
    @property
    def codec(self) -> str:
        return "cluster"

    @property
    def mapped_bytes(self) -> int:
        return sum(store.mapped_bytes for store in self.catalog)

    @property
    def num_shards(self) -> int:
        return self.cluster.map.num_shards

    @property
    def num_labels(self) -> int:
        return self.catalog.num_labels

    @property
    def total_words(self) -> int:
        return sum(store.total_words for store in self.catalog)

    def stats(self) -> dict:
        return {
            "epsilon": self.epsilon,
            "labels": self.num_labels,
            "words": self.total_words,
            "codec": self.codec,
            "node": self.cluster.node_id,
            "epoch": self.cluster.map.epoch,
            "label_epoch": self.label_epoch,
            "applied_deltas": self.applied_deltas,
            "owned_shards": sorted(self.cluster.owned),
            "cluster_shards": self.num_shards,
        }
