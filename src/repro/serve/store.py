"""Sharded in-memory label stores for the query service.

One :class:`ShardedLabelStore` holds one loaded labeling file, split
into hash shards by vertex.  Sharding buys nothing for a single
process dict lookup — it exists so the serving layer's *accounting*
matches the deployment the paper argues for (labels are small remote
objects, spread across machines): per-shard label counts and word
sizes are first-class, exported as ``serve.shard.*`` gauges, and the
shard function is stable across processes and runs (CRC-32 of the
vertex's wire encoding, not Python's salted ``hash``), so a future
multi-process split serves exactly the shards this module reports.

A :class:`StoreCatalog` maps store names to stores; the server loads
one store per ``--labels`` file and routes requests by the optional
``"store"`` field.
"""

from __future__ import annotations

import json
import zlib
from pathlib import Path
from typing import Dict, Hashable, Iterator, List, Optional, Union

from repro.core.labeling import VertexLabel, estimate_distance
from repro.core.serialize import RemoteLabels, encode_vertex, load_labeling
from repro.util.errors import GraphError

Vertex = Hashable

__all__ = [
    "DEFAULT_NUM_SHARDS",
    "LabelShard",
    "ShardedLabelStore",
    "StoreCatalog",
    "shard_key",
]

DEFAULT_NUM_SHARDS = 8


def shard_key(v: Vertex) -> bytes:
    """Stable bytes identifying *v* across processes and runs."""
    return json.dumps(
        encode_vertex(v), separators=(",", ":"), sort_keys=True
    ).encode("utf-8")


class LabelShard:
    """One hash shard: a plain dict plus its size accounting."""

    __slots__ = ("index", "labels", "words")

    def __init__(self, index: int) -> None:
        self.index = index
        self.labels: Dict[Vertex, VertexLabel] = {}
        self.words = 0

    def add(self, label: VertexLabel) -> None:
        self.labels[label.vertex] = label
        self.words += label.words

    @property
    def num_labels(self) -> int:
        return len(self.labels)


class ShardedLabelStore:
    """One labeling, hash-sharded by vertex, with O(1) label lookup."""

    def __init__(
        self,
        name: str,
        epsilon: float,
        num_shards: int = DEFAULT_NUM_SHARDS,
        source: Optional[str] = None,
    ) -> None:
        if num_shards < 1:
            raise ValueError(f"num_shards must be >= 1, got {num_shards}")
        self.name = name
        self.epsilon = epsilon
        self.source = source
        self.shards: List[LabelShard] = [LabelShard(i) for i in range(num_shards)]

    # -- construction ---------------------------------------------------
    @classmethod
    def from_remote(
        cls,
        name: str,
        remote: RemoteLabels,
        num_shards: int = DEFAULT_NUM_SHARDS,
        source: Optional[str] = None,
    ) -> "ShardedLabelStore":
        store = cls(name, remote.epsilon, num_shards, source=source)
        for label in remote.labels.values():
            store.shards[store.shard_index(label.vertex)].add(label)
        return store

    @classmethod
    def load(
        cls,
        path: Union[str, Path],
        num_shards: int = DEFAULT_NUM_SHARDS,
        name: Optional[str] = None,
    ) -> "ShardedLabelStore":
        """Load a ``repro-distance-labels`` file into a sharded store.

        Format validation happens here, at load time: a file with an
        unknown format version is refused before the server ever binds
        a port (:func:`repro.core.serialize.load_labeling` raises
        ``SerializationError``).
        """
        path = Path(path)
        remote = load_labeling(path)
        return cls.from_remote(
            name or path.stem, remote, num_shards, source=str(path)
        )

    # -- lookup ---------------------------------------------------------
    def shard_index(self, v: Vertex) -> int:
        return zlib.crc32(shard_key(v)) % len(self.shards)

    def label(self, v: Vertex) -> VertexLabel:
        try:
            return self.shards[self.shard_index(v)].labels[v]
        except KeyError:
            raise GraphError(
                f"vertex {v!r} has no label in store {self.name!r}"
            ) from None

    def __contains__(self, v: Vertex) -> bool:
        return v in self.shards[self.shard_index(v)].labels

    def estimate(self, u: Vertex, v: Vertex) -> float:
        """Theorem-2 combine step on two stored labels; exactly
        :meth:`RemoteLabels.estimate` on the same inputs."""
        return estimate_distance(self.label(u), self.label(v))

    def vertices(self) -> Iterator[Vertex]:
        for shard in self.shards:
            yield from shard.labels

    # -- accounting -----------------------------------------------------
    @property
    def num_shards(self) -> int:
        return len(self.shards)

    @property
    def num_labels(self) -> int:
        return sum(shard.num_labels for shard in self.shards)

    @property
    def total_words(self) -> int:
        return sum(shard.words for shard in self.shards)

    def stats(self) -> dict:
        """JSON-ready per-store breakdown (the STATS op's payload)."""
        return {
            "epsilon": self.epsilon,
            "labels": self.num_labels,
            "words": self.total_words,
            "source": self.source,
            "shards": [
                {"labels": shard.num_labels, "words": shard.words}
                for shard in self.shards
            ],
        }


class StoreCatalog:
    """Named stores; the first one registered is the default."""

    def __init__(self) -> None:
        self._stores: Dict[str, ShardedLabelStore] = {}
        self._default: Optional[str] = None

    def add(self, store: ShardedLabelStore) -> ShardedLabelStore:
        name = store.name
        if name in self._stores:
            # Two --labels files with the same stem: disambiguate by
            # position so both stay addressable.
            suffix = 2
            while f"{name}.{suffix}" in self._stores:
                suffix += 1
            name = f"{name}.{suffix}"
            store.name = name
        self._stores[name] = store
        if self._default is None:
            self._default = name
        return store

    def get(self, name: Optional[str]) -> ShardedLabelStore:
        """The named store, or the default when *name* is None.

        Raises :class:`KeyError` with the unknown name (the server maps
        this to an ``unknown_store`` error reply).
        """
        if name is None:
            if self._default is None:
                raise KeyError("no stores loaded")
            return self._stores[self._default]
        return self._stores[name]

    def __len__(self) -> int:
        return len(self._stores)

    def __iter__(self) -> Iterator[ShardedLabelStore]:
        return iter(self._stores.values())

    @property
    def names(self) -> List[str]:
        return list(self._stores)

    @property
    def num_labels(self) -> int:
        return sum(store.num_labels for store in self)

    def stats(self) -> dict:
        return {name: store.stats() for name, store in self._stores.items()}
