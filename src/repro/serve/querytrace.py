"""Query-trace record/replay — the ``repro-querytrace/1`` format.

A trace captures the exact query mix a loadgen run sent so a later run
(on another store, another engine, another day) can replay the same
pairs in the same order and produce comparable numbers.  ``repro
loadgen --record-trace FILE`` writes one; ``--replay FILE`` reads one
back in place of synthesis.

The format is line-delimited JSON, one header then one record per
query pair:

    {"format": "repro-querytrace/1", "count": 2, ...meta...}
    [3, 17]
    ["left", {"t": [4, 4]}]

Endpoints are stored through :func:`~repro.core.serialize.encode_vertex`
/ :func:`~repro.core.serialize.decode_vertex`, so integer and string
vertices round-trip exactly — the replayed pair is the recorded pair,
not a stringified cousin.  Loading is strict: a missing or wrong
header, a malformed record, or a count that disagrees with the body is
a :class:`TraceError`, never a silently shortened workload.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Hashable, List, Optional, Sequence, Tuple, Union

from repro.core.serialize import SerializationError, decode_vertex, encode_vertex
from repro.util.errors import ReproError

Vertex = Hashable
Pair = Tuple[Vertex, Vertex]

TRACE_FORMAT = "repro-querytrace/1"

__all__ = [
    "TRACE_FORMAT",
    "TraceError",
    "read_trace",
    "write_trace",
]


class TraceError(ReproError):
    """A query-trace file cannot be written or is not a valid trace."""


def write_trace(
    path: Union[str, Path],
    pairs: Sequence[Pair],
    meta: Optional[dict] = None,
) -> int:
    """Write *pairs* to *path* as a ``repro-querytrace/1`` file.

    *meta* entries (seed, zipf exponent, source labels file...) are
    merged into the header for provenance; they must be JSON-encodable
    and may not shadow the ``format`` / ``count`` keys.  Returns the
    number of pairs written.
    """
    header = {"format": TRACE_FORMAT, "count": len(pairs)}
    if meta:
        for key in ("format", "count"):
            if key in meta:
                raise TraceError(f"trace meta may not override {key!r}")
        header.update(meta)
    lines = [json.dumps(header, sort_keys=True)]
    for u, v in pairs:
        lines.append(json.dumps([encode_vertex(u), encode_vertex(v)]))
    Path(path).write_text("\n".join(lines) + "\n")
    return len(pairs)


def read_trace(path: Union[str, Path]) -> List[Pair]:
    """Read a ``repro-querytrace/1`` file back into a pair list.

    Strict: the header must carry the exact format tag, every record
    must be a two-element JSON array, and the header ``count`` must
    match the number of records — a truncated trace is an error here,
    not a quietly smaller benchmark.
    """
    try:
        text = Path(path).read_text()
    except OSError as exc:
        raise TraceError(f"cannot read trace {path}: {exc}") from exc
    lines = [line for line in text.splitlines() if line.strip()]
    if not lines:
        raise TraceError(f"{path}: empty trace file")
    try:
        header = json.loads(lines[0])
    except json.JSONDecodeError as exc:
        raise TraceError(f"{path}: bad trace header: {exc}") from exc
    if not isinstance(header, dict) or header.get("format") != TRACE_FORMAT:
        raise TraceError(
            f"{path}: not a {TRACE_FORMAT} file "
            f"(header format: {header.get('format') if isinstance(header, dict) else header!r})"
        )
    count = header.get("count")
    if not isinstance(count, int) or isinstance(count, bool) or count < 0:
        raise TraceError(f"{path}: trace count must be a non-negative int, got {count!r}")
    pairs: List[Pair] = []
    for lineno, line in enumerate(lines[1:], start=2):
        try:
            record = json.loads(line)
        except json.JSONDecodeError as exc:
            raise TraceError(f"{path}:{lineno}: bad trace record: {exc}") from exc
        if not isinstance(record, list) or len(record) != 2:
            raise TraceError(
                f"{path}:{lineno}: trace record must be [u, v], got {record!r}"
            )
        try:
            pairs.append((decode_vertex(record[0]), decode_vertex(record[1])))
        except SerializationError as exc:
            raise TraceError(f"{path}:{lineno}: {exc}") from exc
    if len(pairs) != count:
        raise TraceError(
            f"{path}: header says {count} pairs but file has {len(pairs)}"
        )
    return pairs
