"""Wire protocol of the query service: newline-delimited JSON.

One request per line, one response line per request, in order.  A
request is a JSON object with an ``"op"`` and op-specific fields::

    {"id": 1, "op": "DIST",  "u": 0, "v": 41}
    {"id": 2, "op": "BATCH", "pairs": [[0, 1], [2, 3]]}
    {"id": 3, "op": "LABEL", "v": 7}
    {"id": 4, "op": "HEALTH"}
    {"id": 5, "op": "STATS"}
    {"id": 6, "op": "METRICS"}
    {"id": 7, "op": "MAP"}

``"id"`` is optional opaque client state echoed back verbatim;
``"store"`` optionally names one of the server's label stores (the
default store answers when absent); ``"trace"`` optionally carries a
distributed trace context (``{"id": hex16, "span": hex16}``, see
:mod:`repro.obs.context`) that the server's spans adopt — advisory,
so a malformed context is ignored rather than rejected.  Vertices use
the same JSON
encoding as the labels file itself (:func:`repro.core.serialize
.encode_vertex`): ints, floats, strings, and ``{"t": [...]}``-tagged
tuples.

Responses are ``{"id": ..., "ok": true, ...}`` on success and
``{"id": ..., "ok": false, "error": {"code": ..., "message": ...}}``
on failure.  Every failure mode a client can trigger — unparseable
JSON, an unknown op, a vertex with no label — produces a structured
error response on the same connection; the server never answers a bad
request by dropping the connection.  Estimates are JSON numbers except
for unreachable pairs (disconnected inputs), which come back as
``{"estimate": null, "unreachable": true}`` so the payload stays
strict JSON (no ``Infinity`` literals on the wire).

This module is transport-free: parsing and rendering only, shared by
:mod:`repro.serve.server` and :mod:`repro.serve.loadgen`.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass, field
from typing import Hashable, List, Optional, Tuple

from repro.core.serialize import SerializationError, decode_vertex, encode_vertex
from repro.obs.context import TraceContext
from repro.util.errors import ReproError

Vertex = Hashable

__all__ = [
    "DELTA_ACTIONS",
    "ERROR_CODES",
    "FAULT_ACTIONS",
    "MAP_ACTIONS",
    "OPS",
    "ProtocolError",
    "Request",
    "TRANSIENT_CODES",
    "encode_request",
    "encode_response",
    "error_response",
    "estimate_field",
    "ok_response",
    "parse_request",
    "wire_pair",
]

#: Ops the service speaks, in documentation order.  FAULT is the admin
#: op of the fault-injection layer (:mod:`repro.serve.faults`);
#: METRICS is the read-only live-metrics snapshot behind ``repro top``;
#: MAP reads or pushes the node's cluster map (:mod:`repro.cluster`);
#: DELTA reads or advances the node's label epoch with an incremental
#: label delta (:mod:`repro.dynamic`).
OPS = (
    "DIST", "BATCH", "LABEL", "HEALTH", "STATS", "METRICS", "FAULT", "MAP",
    "DELTA",
)

#: FAULT actions a client may request.
FAULT_ACTIONS = ("status", "enable", "disable", "set", "clear")

#: MAP actions: ``get`` returns the node's current cluster map (null on
#: a non-cluster server), ``set`` pushes a strictly newer one.
MAP_ACTIONS = ("get", "set")

#: DELTA actions: ``status`` reports the store's label epoch, ``apply``
#: installs the next epoch's label delta (epoch-gated like MAP ``set``).
DELTA_ACTIONS = ("status", "apply")

#: Every error code a response can carry (see docs/serving.md).
ERROR_CODES = (
    "bad_request",     # unparseable line / malformed fields
    "unknown_op",      # op is not one of OPS
    "unknown_store",   # "store" names no loaded labeling
    "unknown_vertex",  # vertex has no label in the store
    "batch_too_large", # BATCH pairs exceed the server cap
    "timeout",         # per-request deadline exceeded
    "unavailable",     # transient refusal (injected fault); retry
    "draining",        # server is shutting down, retry elsewhere
    "internal",        # unexpected server-side failure
    "stale_map",       # client routed by an out-of-date cluster map
    "stale_delta",     # DELTA apply skipped an epoch; resync the journal
)

#: Error codes a client may safely retry: the request never produced an
#: answer, so re-sending it cannot change what the answer will be.
#: ``stale_map`` is deliberately NOT here — retrying the same request at
#: the same node cannot succeed; the client must refresh its map first
#: (the ``refresh_codes`` path of :class:`repro.serve.client
#: .ResilientClient`).  ``stale_delta`` is likewise excluded: the pusher
#: must supply the missing intermediate deltas, not re-send this one.
TRANSIENT_CODES = frozenset({"timeout", "unavailable", "draining", "internal"})


class ProtocolError(ReproError):
    """A request that cannot be served, with its wire error code.

    ``req_id`` carries the request id when parsing got far enough to
    read one, so even a rejected request gets its id echoed back.
    """

    def __init__(self, code: str, message: str, req_id=None) -> None:
        assert code in ERROR_CODES, code
        super().__init__(message)
        self.code = code
        self.req_id = req_id


@dataclass
class Request:
    """One parsed request line."""

    op: str
    id: object = None
    store: Optional[str] = None
    u: Optional[Vertex] = None
    v: Optional[Vertex] = None
    pairs: List[Tuple[Vertex, Vertex]] = field(default_factory=list)
    action: Optional[str] = None  # FAULT / MAP admin action
    plan: Optional[dict] = None   # FAULT "set" payload
    trace: Optional[TraceContext] = None  # propagated trace context
    epoch: Optional[int] = None   # cluster-map epoch the client routed by
    map: Optional[dict] = None    # MAP "set" payload
    delta: Optional[dict] = None  # DELTA "apply" payload (raw wire dict)


def _decode_wire_vertex(data, what: str) -> Vertex:
    try:
        return decode_vertex(data)
    except SerializationError:
        raise ProtocolError(
            "bad_request", f"malformed vertex in {what!r}: {data!r}"
        ) from None


def _reject_constant(name: str):
    # json.loads accepts NaN/Infinity by default; they could never be
    # echoed back (responses are strict JSON), so refuse them up front.
    raise ProtocolError("bad_request", f"non-finite number {name} in request")


def _ensure_finite(data) -> None:
    """Reject non-finite floats anywhere in a parsed payload.

    ``json.loads("1e999")`` silently overflows to ``inf`` without going
    through ``parse_constant``, and an ``inf`` smuggled into ``"id"``
    (echoed verbatim) would make the *response* unencodable — a
    fuzz-found way to kill a connection.  One recursive scan keeps every
    reply strict-JSON-safe.
    """
    if isinstance(data, float) and not math.isfinite(data):
        raise ProtocolError("bad_request", "non-finite number in request")
    elif isinstance(data, list):
        for item in data:
            _ensure_finite(item)
    elif isinstance(data, dict):
        for value in data.values():
            _ensure_finite(value)


def parse_request(raw) -> Request:
    """Parse one request line (bytes or str) into a :class:`Request`.

    Raises :class:`ProtocolError` (always with code ``bad_request`` or
    ``unknown_op``) instead of returning partial state.
    """
    if isinstance(raw, (bytes, bytearray)):
        try:
            raw = raw.decode("utf-8")
        except UnicodeDecodeError:
            raise ProtocolError("bad_request", "request is not UTF-8") from None
    try:
        payload = json.loads(raw, parse_constant=_reject_constant)
    except json.JSONDecodeError as exc:
        raise ProtocolError("bad_request", f"invalid JSON: {exc}") from None
    if not isinstance(payload, dict):
        raise ProtocolError("bad_request", "request is not a JSON object")
    _ensure_finite(payload)

    req_id = payload.get("id")
    try:
        return _parse_ops(payload, req_id)
    except ProtocolError as exc:
        exc.req_id = req_id
        raise


def _parse_ops(payload: dict, req_id) -> Request:
    op = payload.get("op")
    if not isinstance(op, str):
        raise ProtocolError("bad_request", "request has no \"op\" string")
    op = op.upper()
    if op not in OPS:
        raise ProtocolError(
            "unknown_op", f"unknown op {op!r}; expected one of {', '.join(OPS)}"
        )
    store = payload.get("store")
    if store is not None and not isinstance(store, str):
        raise ProtocolError("bad_request", "\"store\" must be a string")
    # Trace context is advisory: a malformed one is dropped (None), not
    # rejected — observability must never cost a request its answer.
    trace = (
        TraceContext.from_wire(payload["trace"]) if "trace" in payload else None
    )
    epoch = payload.get("epoch")
    if epoch is not None and (isinstance(epoch, bool) or not isinstance(epoch, int)):
        raise ProtocolError("bad_request", "\"epoch\" must be an integer")
    request = Request(op=op, id=req_id, store=store, trace=trace, epoch=epoch)

    if op == "DIST":
        for name in ("u", "v"):
            if name not in payload:
                raise ProtocolError("bad_request", f"DIST needs field {name!r}")
        request.u = _decode_wire_vertex(payload["u"], "u")
        request.v = _decode_wire_vertex(payload["v"], "v")
    elif op == "BATCH":
        pairs = payload.get("pairs")
        if not isinstance(pairs, list):
            raise ProtocolError("bad_request", "BATCH needs a \"pairs\" list")
        for i, pair in enumerate(pairs):
            if not isinstance(pair, list) or len(pair) != 2:
                raise ProtocolError(
                    "bad_request", f"pairs[{i}] is not a [u, v] pair"
                )
            request.pairs.append(
                (
                    _decode_wire_vertex(pair[0], f"pairs[{i}][0]"),
                    _decode_wire_vertex(pair[1], f"pairs[{i}][1]"),
                )
            )
    elif op == "LABEL":
        if "v" not in payload:
            raise ProtocolError("bad_request", "LABEL needs field 'v'")
        request.v = _decode_wire_vertex(payload["v"], "v")
    elif op == "FAULT":
        action = payload.get("action", "status")
        if not isinstance(action, str):
            raise ProtocolError("bad_request", "FAULT \"action\" must be a string")
        action = action.lower()
        if action not in FAULT_ACTIONS:
            raise ProtocolError(
                "bad_request",
                f"unknown FAULT action {action!r}; expected one of "
                f"{', '.join(FAULT_ACTIONS)}",
            )
        if action == "set":
            plan = payload.get("plan")
            if not isinstance(plan, dict):
                raise ProtocolError(
                    "bad_request", "FAULT set needs a \"plan\" object"
                )
            request.plan = plan
        request.action = action
    elif op == "MAP":
        action = payload.get("action", "get")
        if not isinstance(action, str):
            raise ProtocolError("bad_request", "MAP \"action\" must be a string")
        action = action.lower()
        if action not in MAP_ACTIONS:
            raise ProtocolError(
                "bad_request",
                f"unknown MAP action {action!r}; expected one of "
                f"{', '.join(MAP_ACTIONS)}",
            )
        if action == "set":
            cluster_map = payload.get("map")
            if not isinstance(cluster_map, dict):
                raise ProtocolError(
                    "bad_request", "MAP set needs a \"map\" object"
                )
            request.map = cluster_map
        request.action = action
    elif op == "DELTA":
        action = payload.get("action", "status")
        if not isinstance(action, str):
            raise ProtocolError("bad_request", "DELTA \"action\" must be a string")
        action = action.lower()
        if action not in DELTA_ACTIONS:
            raise ProtocolError(
                "bad_request",
                f"unknown DELTA action {action!r}; expected one of "
                f"{', '.join(DELTA_ACTIONS)}",
            )
        if action == "apply":
            delta = payload.get("delta")
            if not isinstance(delta, dict):
                raise ProtocolError(
                    "bad_request", "DELTA apply needs a \"delta\" object"
                )
            request.delta = delta
        request.action = action
    # HEALTH, STATS, and METRICS carry no operands.
    return request


def estimate_field(value: float) -> dict:
    """Render one estimate as response fields (strict-JSON safe)."""
    if math.isfinite(value):
        return {"estimate": value}
    return {"estimate": None, "unreachable": True}


def ok_response(req_id, payload: dict) -> dict:
    return {"id": req_id, "ok": True, **payload}


def error_response(req_id, code: str, message: str) -> dict:
    assert code in ERROR_CODES, code
    return {"id": req_id, "ok": False, "error": {"code": code, "message": message}}


def encode_response(response: dict) -> bytes:
    """One response line, newline-terminated.

    ``allow_nan=False`` guarantees strict JSON: anything non-finite must
    have gone through :func:`estimate_field` first.  Field order is the
    construction order, so identical responses are byte-identical —
    the cache-determinism tests rely on this.
    """
    return (
        json.dumps(response, separators=(",", ":"), allow_nan=False) + "\n"
    ).encode("utf-8")


def encode_request(payload: dict) -> bytes:
    """Client-side twin of :func:`encode_response` (used by the loadgen)."""
    return (
        json.dumps(payload, separators=(",", ":"), allow_nan=False) + "\n"
    ).encode("utf-8")


def wire_pair(u: Vertex, v: Vertex) -> list:
    """A ``[u, v]`` pair in wire encoding (for BATCH requests)."""
    return [encode_vertex(u), encode_vertex(v)]
