"""Concurrent load generator for the query service.

Drives an :class:`~repro.serve.server.OracleServer` the way real
clients would: *C* concurrent workers, each pulling query pairs off
one shared work queue and blocking on a response before sending the
next (closed-loop load).  Pairs are either synthesized from a labels
file (uniform or Zipf-skewed u ≠ v sampling, seeded) or replayed from a whitespace
``u v`` pairs file — the same format ``repro query --pairs-file``
reads.

All traffic goes through one shared
:class:`~repro.serve.client.ResilientClient`, so the loadgen measures
the system a real deployment would run: retries, backoff, circuit
breaking, and (optionally) hedging are in the loop, and the report
carries the retry/hedge counts next to QPS and latency percentiles
(client-side, nanoseconds, one sample per request *including* its
retries).  With the default policy (``retries=0``) the client adds a
single attempt and no waiting — the clean-network numbers are the
same as before.

The report can be exported as a ``repro-bench/1`` record — ``repro
loadgen --bench-out BENCH_serve.json`` / ``repro chaos --bench-out
BENCH_chaos.json`` is how serving (and serving-under-faults) joins the
repo's perf trajectory next to ``BENCH_baseline.json``.

With ``verify=``, every served estimate is compared against the
offline :meth:`RemoteLabels.estimate` on the same labels file;
mismatches (any difference at all — the server must be byte-faithful,
not approximately right, even when the answer was retried or hedged)
are counted and reported.

A run where *nothing* completes (the server refuses all traffic, say)
is still a report, not a traceback: every metric reads zero, the
errors count says how many queries failed, and the CLI exits non-zero.
"""

from __future__ import annotations

import asyncio
import random
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Hashable, List, Optional, Sequence, Tuple, Union

from repro.core.serialize import RemoteLabels, encode_vertex
from repro.obs import Histogram, metrics
from repro.serve.client import ClientError, RequestFailed, ResilientClient, RetryPolicy
from repro.serve.protocol import wire_pair
from repro.util.errors import ReproError

Vertex = Hashable
Pair = Tuple[Vertex, Vertex]

__all__ = [
    "LoadgenReport",
    "read_pairs_file",
    "run_loadgen",
    "synthesize_pairs",
]


class LoadgenError(ReproError):
    """The load generator cannot run (bad pairs file, no vertices...)."""


def synthesize_pairs(
    vertices: Sequence[Vertex],
    count: int,
    seed: int = 0,
    zipf: Optional[float] = None,
) -> List[Pair]:
    """*count* pairs with ``u != v`` (repeats across pairs OK).

    With ``zipf=None`` sampling is uniform.  With ``zipf=s`` each
    endpoint is drawn independently from a Zipf(s) distribution over
    the vertices in sorted-by-repr order (rank *r* gets weight
    ``1/(r+1)**s``) — the skewed traffic shape real workloads have,
    which is what makes server pair caches and hot-shard replicas
    earn their keep.  Deterministic in (vertices, count, seed, zipf).
    """
    ordered = sorted(vertices, key=repr)
    if len(ordered) < 2:
        raise LoadgenError("need at least two labeled vertices to sample pairs")
    if zipf is not None and zipf < 0:
        raise LoadgenError(f"zipf exponent must be >= 0, got {zipf}")
    rng = random.Random(seed)
    if zipf is None:
        draw = lambda: ordered[rng.randrange(len(ordered))]  # noqa: E731
    else:
        import bisect

        cumulative: List[float] = []
        total = 0.0
        for rank in range(len(ordered)):
            total += 1.0 / (rank + 1) ** zipf
            cumulative.append(total)

        def draw() -> Vertex:
            return ordered[bisect.bisect_left(cumulative, rng.random() * total)]

    pairs: List[Pair] = []
    while len(pairs) < count:
        u = draw()
        v = draw()
        if u != v:
            pairs.append((u, v))
    return pairs


def _parse_token(token: str) -> Vertex:
    try:
        return int(token)
    except ValueError:
        return token


def read_pairs_file(path: Union[str, Path], stream=None) -> List[Pair]:
    """Read ``u v`` pairs, one per line; blank lines and ``#`` comments
    are skipped.  Pass ``stream`` to read stdin instead of a path."""
    lines = stream.read().splitlines() if stream is not None else (
        Path(path).read_text().splitlines()
    )
    pairs: List[Pair] = []
    for lineno, line in enumerate(lines, start=1):
        text = line.strip()
        if not text or text.startswith("#"):
            continue
        tokens = text.split()
        if len(tokens) != 2:
            raise LoadgenError(
                f"{path}:{lineno}: expected 'u v', got {text!r}"
            )
        pairs.append((_parse_token(tokens[0]), _parse_token(tokens[1])))
    if not pairs:
        raise LoadgenError(f"{path}: no pairs found")
    return pairs


@dataclass
class LoadgenReport:
    """What one loadgen run observed, client-side.

    Every accessor is total: with zero completed requests all rates
    and percentiles read 0.0 (never a ZeroDivisionError, never an
    ``-inf`` leaking into a bench record).
    """

    sent: int = 0
    ok: int = 0
    errors: int = 0
    mismatches: int = 0
    retries: int = 0
    hedges: int = 0
    giveups: int = 0
    breaker_opens: int = 0
    elapsed_s: float = 0.0
    concurrency: int = 0
    batch: int = 1
    slo_ms: Optional[float] = None  # per-request latency objective
    slo_hits: int = 0               # requests answered OK within slo_ms
    slo_total: int = 0              # requests measured against the SLO
    cache_probed: bool = False      # STATS probe before/after succeeded
    cache_hits: int = 0             # server-side pair-cache hits (delta)
    cache_misses: int = 0           # server-side pair-cache misses (delta)
    latency_ns: Histogram = field(default_factory=Histogram)
    error_samples: List[str] = field(default_factory=list)

    @property
    def qps(self) -> float:
        return self.ok / self.elapsed_s if self.elapsed_s > 0 else 0.0

    @property
    def error_rate(self) -> float:
        total = self.ok + self.errors
        return self.errors / total if total else 0.0

    @property
    def slo_attainment(self) -> float:
        """Fraction of requests answered OK within ``slo_ms`` (0.0 with
        no SLO or no traffic — never a ZeroDivisionError)."""
        return self.slo_hits / self.slo_total if self.slo_total else 0.0

    @property
    def cache_hit_rate(self) -> float:
        """Server pair-cache hit rate over this run (0.0 unprobed)."""
        total = self.cache_hits + self.cache_misses
        return self.cache_hits / total if total else 0.0

    def latency_ms(self, q: float) -> float:
        return self.latency_ns.percentile(q) / 1e6

    def _max_ms(self) -> float:
        # Histogram.max is -inf before the first observation.
        return self.latency_ns.max / 1e6 if self.latency_ns.count else 0.0

    def rows(self) -> List[List]:
        """Table rows for the CLI / bench record."""
        return [
            ["queries_ok", self.ok],
            ["errors", self.errors],
            ["error_rate", round(self.error_rate, 4)],
            ["mismatches", self.mismatches],
            ["retries", self.retries],
            ["hedges", self.hedges],
            ["giveups", self.giveups],
            ["concurrency", self.concurrency],
            ["batch", self.batch],
            ["elapsed_s", round(self.elapsed_s, 3)],
            ["qps", round(self.qps, 1)],
            ["p50_ms", round(self.latency_ms(50), 3)],
            ["p90_ms", round(self.latency_ms(90), 3)],
            ["p99_ms", round(self.latency_ms(99), 3)],
            ["max_ms", round(self._max_ms(), 3)],
        ] + (
            []
            if self.slo_ms is None
            else [
                ["slo_ms", self.slo_ms],
                ["slo_attainment", round(self.slo_attainment, 4)],
            ]
        ) + (
            [["cache_hit_rate", round(self.cache_hit_rate, 4)]]
            if self.cache_probed
            else []
        )

    def meta(self) -> dict:
        """Flat summary for ``repro-bench/1`` ``meta`` (BENCH_serve.json)."""
        payload = {
            "queries_ok": self.ok,
            "errors": self.errors,
            "error_rate": round(self.error_rate, 6),
            "mismatches": self.mismatches,
            "retries": self.retries,
            "hedges": self.hedges,
            "giveups": self.giveups,
            "breaker_opens": self.breaker_opens,
            "concurrency": self.concurrency,
            "batch": self.batch,
            "elapsed_s": round(self.elapsed_s, 4),
            "qps": round(self.qps, 2),
            "latency_ms": {
                "p50": round(self.latency_ms(50), 4),
                "p90": round(self.latency_ms(90), 4),
                "p99": round(self.latency_ms(99), 4),
                "max": round(self._max_ms(), 4),
                "mean": round(self.latency_ns.mean / 1e6, 4),
            },
        }
        if self.slo_ms is not None:
            payload["slo"] = {
                "ms": self.slo_ms,
                "attainment": round(self.slo_attainment, 6),
                "hits": self.slo_hits,
                "total": self.slo_total,
            }
        if self.cache_probed:
            payload["server_cache"] = {
                "hits": self.cache_hits,
                "misses": self.cache_misses,
                "hit_rate": round(self.cache_hit_rate, 6),
            }
        return payload


async def run_loadgen(
    host: str,
    port: int,
    pairs: Sequence[Pair],
    *,
    concurrency: int = 4,
    batch: int = 1,
    store: Optional[str] = None,
    verify: Optional[RemoteLabels] = None,
    request_timeout: float = 30.0,
    retries: int = 0,
    attempt_timeout: Optional[float] = None,
    hedge_after: Optional[float] = None,
    seed: int = 0,
    slo_ms: Optional[float] = None,
    client: Optional[ResilientClient] = None,
    report: Optional[LoadgenReport] = None,
) -> LoadgenReport:
    """Replay *pairs* against ``host:port`` and measure from the client.

    ``batch > 1`` groups that many pairs into one BATCH request (one
    latency sample covers the whole group, retries included);
    ``batch == 1`` sends plain DIST requests.  ``retries`` extra
    attempts per request (with deterministic backoff seeded by *seed*),
    ``attempt_timeout`` per-attempt deadline (defaults to
    *request_timeout*), and ``hedge_after`` seconds of silence before a
    hedged second attempt are all forwarded to the shared
    :class:`~repro.serve.client.ResilientClient`.  A request that still
    fails after its retries is an error row, never an exception — even
    when *every* request fails the caller gets a zeros-and-errors
    report back.

    Pass ``client`` to reuse a caller-owned :class:`ResilientClient`
    (the retry knobs above are then ignored and the client is left
    open); otherwise one is built and closed here.  Pass ``report`` to
    have the run fill in a caller-owned :class:`LoadgenReport` — a
    chaos driver can then watch ``report.sent`` tick up and time its
    kill mid-run.

    ``slo_ms`` declares a per-request latency objective: the report
    then carries SLO attainment — the fraction of requests that
    completed OK within that many milliseconds, retries and hedges
    included (a request that errored out counts against the SLO).
    """
    if concurrency < 1:
        raise LoadgenError(f"concurrency must be >= 1, got {concurrency}")
    if batch < 1:
        raise LoadgenError(f"batch must be >= 1, got {batch}")
    if retries < 0:
        raise LoadgenError(f"retries must be >= 0, got {retries}")
    if slo_ms is not None and slo_ms <= 0:
        raise LoadgenError(f"slo_ms must be > 0, got {slo_ms}")
    if report is None:
        report = LoadgenReport()
    report.concurrency = concurrency
    report.batch = batch
    report.slo_ms = slo_ms
    queue: "asyncio.Queue[List[Pair]]" = asyncio.Queue()
    for start in range(0, len(pairs), batch):
        queue.put_nowait(list(pairs[start : start + batch]))

    owns_client = client is None
    if client is None:
        policy = RetryPolicy(
            attempts=retries + 1,
            attempt_timeout=attempt_timeout or request_timeout,
            hedge_after=hedge_after,
        )
        client = ResilientClient(
            [(host, port)], policy=policy, store=store, seed=seed
        )

    def check(u: Vertex, v: Vertex, served) -> None:
        if verify is None:
            return
        expected = verify.estimate(u, v)
        # Serialized floats round-trip exactly, so equality is exact.
        if served != expected:
            report.mismatches += 1
            _note(report, f"mismatch d({u!r},{v!r}): served {served!r} != {expected!r}")

    async def worker() -> None:
        while True:
            try:
                group = queue.get_nowait()
            except asyncio.QueueEmpty:
                return
            if len(group) == 1 and batch == 1:
                (u, v) = group[0]
                payload = {
                    "op": "DIST",
                    "u": encode_vertex(u),
                    "v": encode_vertex(v),
                }
            else:
                payload = {
                    "op": "BATCH",
                    "pairs": [wire_pair(u, v) for u, v in group],
                }
            start_ns = time.monotonic_ns()
            try:
                response = await client.call(payload)
            except (RequestFailed, ClientError) as exc:
                report.latency_ns.observe(time.monotonic_ns() - start_ns)
                report.sent += len(group)
                report.errors += len(group)
                if slo_ms is not None:
                    report.slo_total += 1  # a failed request misses the SLO
                _note(report, f"{type(exc).__name__}: {exc}")
                continue
            request_ns = time.monotonic_ns() - start_ns
            report.latency_ns.observe(request_ns)
            report.sent += len(group)
            if slo_ms is not None:
                report.slo_total += 1
                if request_ns <= slo_ms * 1e6:
                    report.slo_hits += 1
            if payload["op"] == "DIST":
                report.ok += 1
                check(group[0][0], group[0][1], response.get("estimate"))
            else:
                for (u, v), item in zip(group, response.get("results", [])):
                    if isinstance(item, dict) and item.get("ok"):
                        report.ok += 1
                        check(u, v, item.get("estimate"))
                    else:
                        report.errors += 1
                        _note(report, f"batch item error: {item!r}")

    async def cache_counters() -> Optional[Tuple[int, int]]:
        # Best-effort probe of the server pair cache; a server that
        # refuses STATS (or predates the counters) just means no
        # cache_hit_rate in the report, never a failed run.
        try:
            response = await client.call({"op": "STATS"})
        except (RequestFailed, ClientError):
            return None
        counters = response.get("counters")
        if not isinstance(counters, dict):
            return None
        hits = counters.get("cache_hits")
        misses = counters.get("cache_misses")
        if isinstance(hits, int) and isinstance(misses, int):
            return hits, misses
        return None

    before = await cache_counters()
    start = time.monotonic()
    try:
        await asyncio.gather(*(worker() for _ in range(concurrency)))
    finally:
        report.elapsed_s = time.monotonic() - start
        client_stats = client.stats()
        report.retries = client_stats["counters"]["retries"]
        report.hedges = client_stats["counters"]["hedges"]
        report.giveups = client_stats["counters"]["giveups"]
        report.breaker_opens = sum(
            b["opened_total"] for b in client_stats["breakers"].values()
        )
        if before is not None:
            after = await cache_counters()
            if after is not None:
                report.cache_probed = True
                report.cache_hits = after[0] - before[0]
                report.cache_misses = after[1] - before[1]
        if owns_client:
            await client.close()
    metrics.gauge("loadgen.qps", report.qps)
    metrics.gauge("loadgen.errors", report.errors)
    return report


def _note(report: LoadgenReport, message: str, cap: int = 10) -> None:
    """Keep the first few error details for the operator."""
    if len(report.error_samples) < cap:
        report.error_samples.append(message)
