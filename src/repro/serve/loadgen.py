"""Concurrent load generator for the query service.

Drives an :class:`~repro.serve.server.OracleServer` the way real
clients would: *C* concurrent TCP connections, each pulling query
pairs off one shared work queue and blocking on a response before
sending the next (closed-loop load).  Pairs are either synthesized
from a labels file (uniform u ≠ v sampling, seeded) or replayed from
a whitespace ``u v`` pairs file — the same format ``repro query
--pairs-file`` reads.

The report carries QPS and latency percentiles (measured client-side,
per request, in nanoseconds via :class:`repro.obs.Histogram`) and can
be exported as a ``repro-bench/1`` record — ``repro loadgen
--bench-out BENCH_serve.json`` is how serving joins the repo's perf
trajectory next to ``BENCH_baseline.json``.

With ``verify=``, every served estimate is compared against the
offline :meth:`RemoteLabels.estimate` on the same labels file;
mismatches (any difference at all — the server must be byte-faithful,
not approximately right) are counted and reported.
"""

from __future__ import annotations

import asyncio
import random
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Hashable, List, Optional, Sequence, Tuple, Union

from repro.core.serialize import RemoteLabels, encode_vertex
from repro.obs import Histogram, metrics
from repro.serve.protocol import encode_request, wire_pair
from repro.util.errors import ReproError

Vertex = Hashable
Pair = Tuple[Vertex, Vertex]

__all__ = [
    "LoadgenReport",
    "read_pairs_file",
    "run_loadgen",
    "synthesize_pairs",
]


class LoadgenError(ReproError):
    """The load generator cannot run (bad pairs file, no vertices...)."""


def synthesize_pairs(
    vertices: Sequence[Vertex], count: int, seed: int = 0
) -> List[Pair]:
    """*count* uniform pairs with ``u != v`` (repeats across pairs OK)."""
    ordered = sorted(vertices, key=repr)
    if len(ordered) < 2:
        raise LoadgenError("need at least two labeled vertices to sample pairs")
    rng = random.Random(seed)
    pairs: List[Pair] = []
    while len(pairs) < count:
        u = ordered[rng.randrange(len(ordered))]
        v = ordered[rng.randrange(len(ordered))]
        if u != v:
            pairs.append((u, v))
    return pairs


def _parse_token(token: str) -> Vertex:
    try:
        return int(token)
    except ValueError:
        return token


def read_pairs_file(path: Union[str, Path], stream=None) -> List[Pair]:
    """Read ``u v`` pairs, one per line; blank lines and ``#`` comments
    are skipped.  Pass ``stream`` to read stdin instead of a path."""
    lines = stream.read().splitlines() if stream is not None else (
        Path(path).read_text().splitlines()
    )
    pairs: List[Pair] = []
    for lineno, line in enumerate(lines, start=1):
        text = line.strip()
        if not text or text.startswith("#"):
            continue
        tokens = text.split()
        if len(tokens) != 2:
            raise LoadgenError(
                f"{path}:{lineno}: expected 'u v', got {text!r}"
            )
        pairs.append((_parse_token(tokens[0]), _parse_token(tokens[1])))
    if not pairs:
        raise LoadgenError(f"{path}: no pairs found")
    return pairs


@dataclass
class LoadgenReport:
    """What one loadgen run observed, client-side."""

    sent: int = 0
    ok: int = 0
    errors: int = 0
    mismatches: int = 0
    elapsed_s: float = 0.0
    concurrency: int = 0
    batch: int = 1
    latency_ns: Histogram = field(default_factory=Histogram)
    error_samples: List[str] = field(default_factory=list)

    @property
    def qps(self) -> float:
        return self.ok / self.elapsed_s if self.elapsed_s > 0 else 0.0

    def latency_ms(self, q: float) -> float:
        return self.latency_ns.percentile(q) / 1e6

    def rows(self) -> List[List]:
        """Table rows for the CLI / bench record."""
        return [
            ["queries_ok", self.ok],
            ["errors", self.errors],
            ["mismatches", self.mismatches],
            ["concurrency", self.concurrency],
            ["batch", self.batch],
            ["elapsed_s", round(self.elapsed_s, 3)],
            ["qps", round(self.qps, 1)],
            ["p50_ms", round(self.latency_ms(50), 3)],
            ["p90_ms", round(self.latency_ms(90), 3)],
            ["p99_ms", round(self.latency_ms(99), 3)],
            ["max_ms", round(self.latency_ns.max / 1e6, 3) if self.ok else 0.0],
        ]

    def meta(self) -> dict:
        """Flat summary for ``repro-bench/1`` ``meta`` (BENCH_serve.json)."""
        return {
            "queries_ok": self.ok,
            "errors": self.errors,
            "mismatches": self.mismatches,
            "concurrency": self.concurrency,
            "batch": self.batch,
            "elapsed_s": round(self.elapsed_s, 4),
            "qps": round(self.qps, 2),
            "latency_ms": {
                "p50": round(self.latency_ms(50), 4),
                "p90": round(self.latency_ms(90), 4),
                "p99": round(self.latency_ms(99), 4),
                "max": round(self.latency_ns.max / 1e6, 4) if self.ok else 0.0,
                "mean": round(self.latency_ns.mean / 1e6, 4),
            },
        }


async def run_loadgen(
    host: str,
    port: int,
    pairs: Sequence[Pair],
    *,
    concurrency: int = 4,
    batch: int = 1,
    store: Optional[str] = None,
    verify: Optional[RemoteLabels] = None,
    request_timeout: float = 30.0,
) -> LoadgenReport:
    """Replay *pairs* against ``host:port`` and measure from the client.

    ``batch > 1`` groups that many pairs into one BATCH request (one
    latency sample covers the whole group); ``batch == 1`` sends plain
    DIST requests.
    """
    if concurrency < 1:
        raise LoadgenError(f"concurrency must be >= 1, got {concurrency}")
    if batch < 1:
        raise LoadgenError(f"batch must be >= 1, got {batch}")
    report = LoadgenReport(concurrency=concurrency, batch=batch)
    queue: "asyncio.Queue[List[Pair]]" = asyncio.Queue()
    for start in range(0, len(pairs), batch):
        queue.put_nowait(list(pairs[start : start + batch]))

    def check(u: Vertex, v: Vertex, served) -> None:
        if verify is None:
            return
        expected = verify.estimate(u, v)
        # Serialized floats round-trip exactly, so equality is exact.
        if served != expected:
            report.mismatches += 1
            _note(report, f"mismatch d({u!r},{v!r}): served {served!r} != {expected!r}")

    async def worker(worker_id: int) -> None:
        reader, writer = await asyncio.open_connection(host, port)
        next_id = 0
        try:
            while True:
                try:
                    group = queue.get_nowait()
                except asyncio.QueueEmpty:
                    return
                next_id += 1
                req_id = f"{worker_id}.{next_id}"
                if len(group) == 1 and batch == 1:
                    (u, v) = group[0]
                    payload = {
                        "id": req_id,
                        "op": "DIST",
                        "u": encode_vertex(u),
                        "v": encode_vertex(v),
                    }
                else:
                    payload = {
                        "id": req_id,
                        "op": "BATCH",
                        "pairs": [wire_pair(u, v) for u, v in group],
                    }
                if store is not None:
                    payload["store"] = store
                start_ns = time.monotonic_ns()
                writer.write(encode_request(payload))
                await writer.drain()
                line = await asyncio.wait_for(reader.readline(), request_timeout)
                report.latency_ns.observe(time.monotonic_ns() - start_ns)
                report.sent += len(group)
                if not line:
                    report.errors += len(group)
                    _note(report, "connection closed mid-run")
                    return
                response = _parse_response(line, report, group)
                if response is None:
                    continue
                if payload["op"] == "DIST":
                    report.ok += 1
                    check(group[0][0], group[0][1], response.get("estimate"))
                else:
                    for (u, v), item in zip(group, response.get("results", [])):
                        if isinstance(item, dict) and item.get("ok"):
                            report.ok += 1
                            check(u, v, item.get("estimate"))
                        else:
                            report.errors += 1
                            _note(report, f"batch item error: {item!r}")
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    start = time.monotonic()
    results = await asyncio.gather(
        *(worker(i) for i in range(concurrency)), return_exceptions=True
    )
    report.elapsed_s = time.monotonic() - start
    failures = [r for r in results if isinstance(r, BaseException)]
    if failures and report.ok == 0:
        # Nothing got through at all (server down, port wrong): surface
        # the root cause instead of a report full of zeros.
        raise failures[0]
    for outcome in failures:
        report.errors += 1
        _note(report, f"worker failed: {type(outcome).__name__}: {outcome}")
    metrics.gauge("loadgen.qps", report.qps)
    metrics.gauge("loadgen.errors", report.errors)
    return report


def _parse_response(line: bytes, report: LoadgenReport, group) -> Optional[dict]:
    import json

    try:
        response = json.loads(line)
    except json.JSONDecodeError:
        report.errors += len(group)
        _note(report, f"unparseable response: {line[:120]!r}")
        return None
    if not isinstance(response, dict) or not response.get("ok"):
        report.errors += len(group)
        error = response.get("error") if isinstance(response, dict) else None
        _note(report, f"error response: {error!r}")
        return None
    return response


def _note(report: LoadgenReport, message: str, cap: int = 10) -> None:
    """Keep the first few error details for the operator."""
    if len(report.error_samples) < cap:
        report.error_samples.append(message)
