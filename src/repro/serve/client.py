"""Resilient client for the oracle query service.

:class:`ResilientClient` is the client the serving layer deserves on a
bad network: per-attempt timeouts, capped exponential backoff with
deterministic jitter, a retry budget, one circuit breaker per shard
address, and optional request hedging for tail latency.  It is what
``repro loadgen``, ``repro chaos``, and ``repro query --remote`` use.

Correctness stance: every retried, hedged, or failed-over answer is
**byte-identical** to the answer a fault-free run would have produced.
That is free here — the ops the client retries (DIST/BATCH/LABEL, all
reads of an immutable labeling) are idempotent, and the server's
responses are deterministic bytes — but the client still has to *not
wreck it*, which constrains the design in two ways:

* A failed attempt poisons its connection (a reply might still arrive
  later and pair with the wrong request), so the connection is closed
  and the retry opens a fresh one.  Responses are matched to requests
  by the echoed ``id``; a mismatch is treated as a transport failure.
* Only errors in :data:`~repro.serve.protocol.TRANSIENT_CODES` (and
  transport failures) are retried.  A ``bad_request`` or
  ``unknown_vertex`` reply is the *answer*, not a failure, and is
  raised as :class:`RequestFailed` immediately.

Determinism: backoff jitter for call *n*, attempt *a* is drawn from
``random.Random(derive_seed(seed, "backoff", n, a))`` — replaying a
workload with the same seed produces the same backoff schedule.

The circuit breaker is per *address* (one logical shard endpoint in a
future multi-process deployment): ``closed`` passes traffic, ``open``
fails fast, and after ``reset_after`` seconds a single ``half_open``
probe decides between closing and re-opening.  A client holding
several addresses rotates across the ones whose breakers admit it.
"""

from __future__ import annotations

import asyncio
import json
import random
import time
from dataclasses import dataclass
from typing import Dict, Hashable, List, Optional, Sequence, Tuple, Union

from repro.core.serialize import encode_vertex
from repro.obs import NOOP_SPAN, current_span, eventlog, metrics, span, tracing_active
from repro.obs.context import TraceContext, trace_id_for
from repro.obs.tracing import Span
from repro.serve.protocol import TRANSIENT_CODES, encode_request, wire_pair
from repro.util.errors import ReproError
from repro.util.rng import derive_seed

Vertex = Hashable
Address = Tuple[str, int]

__all__ = [
    "CircuitBreaker",
    "ClientError",
    "RequestFailed",
    "ResilientClient",
    "RetryAfterRefresh",
    "RetryPolicy",
    "parse_address",
]


class ClientError(ReproError):
    """The request could not be served within the retry policy."""


class RequestFailed(ClientError):
    """The server answered with a permanent (non-retryable) error."""

    def __init__(self, code: str, message: str, response: dict) -> None:
        super().__init__(f"{code}: {message}")
        self.code = code
        self.response = response


class _TransportError(Exception):
    """Internal: this attempt failed in a retryable way."""


class RetryAfterRefresh(_TransportError):
    """The server's typed error says the *client's state* is wrong
    (e.g. ``stale_map``: it routed by an out-of-date cluster map).

    Neither transient (the same request at the same node keeps
    failing) nor permanent (refreshing makes it succeed), this is the
    third error class the transient/permanent split was missing: the
    client must run its ``on_refresh`` callback, then retry.  The
    answering server is healthy — its breaker records a success.
    """

    def __init__(self, code: str, message: str, response: dict) -> None:
        super().__init__(f"{code}: {message}")
        self.code = code
        self.response = response


def parse_address(spec: Union[str, Address]) -> Address:
    """``"host:port"`` (or an ``(host, port)`` pair) -> ``(host, port)``."""
    if isinstance(spec, tuple):
        host, port = spec
        return str(host), int(port)
    host, sep, port = spec.rpartition(":")
    if not sep or not host:
        raise ClientError(f"address must look like HOST:PORT, got {spec!r}")
    try:
        return host, int(port)
    except ValueError:
        raise ClientError(f"bad port in address {spec!r}") from None


@dataclass(frozen=True)
class RetryPolicy:
    """How hard to try before giving up on one request."""

    attempts: int = 3               # total attempts (1 = no retries)
    attempt_timeout: float = 1.0    # per-attempt deadline, seconds
    backoff_base: float = 0.05      # first retry waits ~base seconds
    backoff_cap: float = 2.0        # exponential growth is clamped here
    hedge_after: Optional[float] = None  # launch a 2nd attempt after this many
                                         # seconds of silence (None = off)
    retry_budget: Optional[int] = None   # max retries+hedges per client
                                         # lifetime (None = unlimited)

    def __post_init__(self) -> None:
        if self.attempts < 1:
            raise ClientError(f"attempts must be >= 1, got {self.attempts}")
        if self.attempt_timeout <= 0:
            raise ClientError(
                f"attempt_timeout must be > 0, got {self.attempt_timeout}"
            )

    def backoff_delay(self, seed: int, call: int, attempt: int) -> float:
        """Deterministic full-jitter backoff before retry *attempt*."""
        ceiling = min(self.backoff_cap, self.backoff_base * (2 ** (attempt - 1)))
        rng = random.Random(derive_seed(seed, "backoff", call, attempt))
        # Full jitter on [ceiling/2, ceiling]: desynchronizes retry
        # storms while keeping the wait bounded away from zero.
        return ceiling * (0.5 + 0.5 * rng.random())


class CircuitBreaker:
    """Per-address closed / open / half-open breaker.

    ``failure_threshold`` *consecutive* failures open it; after
    ``reset_after`` seconds one half-open probe is admitted — success
    closes the breaker, failure re-opens it (and restarts the clock).
    """

    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half_open"

    def __init__(
        self,
        failure_threshold: int = 5,
        reset_after: float = 1.0,
        clock=time.monotonic,
    ) -> None:
        if failure_threshold < 1:
            raise ClientError(
                f"failure_threshold must be >= 1, got {failure_threshold}"
            )
        self.failure_threshold = failure_threshold
        self.reset_after = reset_after
        self._clock = clock
        self._failures = 0
        self._opened_at = 0.0
        self._open = False
        self._probing = False
        self.opened_total = 0

    @property
    def state(self) -> str:
        if not self._open:
            return self.CLOSED
        if self._clock() - self._opened_at >= self.reset_after:
            return self.HALF_OPEN
        return self.OPEN

    def allow(self) -> bool:
        """May a request go to this address right now?

        In half-open this *claims* the single probe slot: the caller
        must follow up with :meth:`record_success`,
        :meth:`record_failure`, or :meth:`release_probe`, or the
        breaker would stay open forever.
        """
        state = self.state
        if state == self.CLOSED:
            return True
        if state == self.HALF_OPEN and not self._probing:
            self._probing = True  # exactly one probe at a time
            return True
        return False

    def peek(self) -> bool:
        """Non-consuming :meth:`allow`: would a request be admitted,
        without claiming the half-open probe slot?"""
        state = self.state
        if state == self.CLOSED:
            return True
        return state == self.HALF_OPEN and not self._probing

    def release_probe(self) -> None:
        """Give back a probe slot claimed by :meth:`allow` whose
        attempt ended without a recorded outcome (e.g. cancelled)."""
        self._probing = False

    def record_success(self) -> None:
        self._failures = 0
        self._open = False
        self._probing = False

    def record_failure(self) -> None:
        was_half_open = self.state == self.HALF_OPEN
        self._probing = False
        self._failures += 1
        if was_half_open or (
            not self._open and self._failures >= self.failure_threshold
        ):
            self._open = True
            self._opened_at = self._clock()
            self.opened_total += 1
            metrics.inc("client.breaker.opened")


class _Connection:
    __slots__ = ("reader", "writer", "next_id")

    def __init__(self, reader, writer) -> None:
        self.reader = reader
        self.writer = writer
        self.next_id = 0


class ResilientClient:
    """Retry / backoff / breaker / hedging front-end to one or more
    :class:`~repro.serve.server.OracleServer` addresses.

    Safe for concurrent use from many tasks: connections are pooled per
    address, each concurrent call borrowing its own.  Construct, call
    :meth:`dist` / :meth:`batch` / :meth:`call`, then :meth:`close`.
    """

    def __init__(
        self,
        addresses: Sequence[Union[str, Address]],
        *,
        policy: Optional[RetryPolicy] = None,
        store: Optional[str] = None,
        seed: int = 0,
        breaker_threshold: int = 5,
        breaker_reset: float = 1.0,
        refresh_codes: frozenset = frozenset(),
        on_refresh=None,
    ) -> None:
        parsed = [parse_address(spec) for spec in addresses]
        if not parsed:
            raise ClientError("need at least one server address")
        self.addresses: List[Address] = parsed
        self.policy = policy or RetryPolicy()
        self.store = store
        self.seed = seed
        # Error codes that mean "refresh client state, then retry"
        # (raised internally as RetryAfterRefresh).  ``on_refresh`` is
        # an async callable invoked once per such error before the
        # retry; with no callback the error is still retried — the
        # refresh is whatever the next attempt naturally does.
        self.refresh_codes = frozenset(refresh_codes)
        self.on_refresh = on_refresh
        self.counters: Dict[str, int] = {
            "requests": 0,
            "attempts": 0,
            "retries": 0,
            "hedges": 0,
            "hedge_wins": 0,
            "transient_failures": 0,
            "refreshes": 0,
            "giveups": 0,
            "breaker_skips": 0,
        }
        self._breaker_threshold = breaker_threshold
        self._breaker_reset = breaker_reset
        self._breakers: Dict[Address, CircuitBreaker] = {
            address: CircuitBreaker(breaker_threshold, breaker_reset)
            for address in parsed
        }
        self._pool: Dict[Address, List[_Connection]] = {a: [] for a in parsed}
        self._budget = (
            None if self.policy.retry_budget is None else self.policy.retry_budget
        )
        self._calls = 0

    # -- public ops -----------------------------------------------------
    async def dist(self, u: Vertex, v: Vertex, *, store: Optional[str] = None) -> dict:
        """One DIST round trip; returns the full ok-response dict."""
        return await self.call(
            {"op": "DIST", "u": encode_vertex(u), "v": encode_vertex(v)},
            store=store,
        )

    async def batch(
        self, pairs: Sequence[Tuple[Vertex, Vertex]], *, store: Optional[str] = None
    ) -> dict:
        """One BATCH round trip over *pairs*."""
        return await self.call(
            {"op": "BATCH", "pairs": [wire_pair(u, v) for u, v in pairs]},
            store=store,
        )

    async def call(
        self,
        payload: dict,
        *,
        store: Optional[str] = None,
        addresses: Optional[Sequence[Union[str, Address]]] = None,
    ) -> dict:
        """Send *payload* until it succeeds or the policy is exhausted.

        The ``"id"`` field is owned by the client (one fresh id per
        attempt, echoed back and checked); everything else is sent as
        given.  Returns the decoded ok-response.  Raises
        :class:`RequestFailed` on a permanent server error and
        :class:`ClientError` when attempts, budget, or breakers run out.

        *addresses* restricts this one call to a subset of endpoints —
        the cluster client's routing hook: retries rotate and hedges
        race across *that replica set* only, while breakers and
        connection pools stay shared client-wide.  Unknown addresses
        are adopted (:meth:`ensure_address`) on the fly.
        """
        store = store if store is not None else self.store
        if store is not None:
            payload = {**payload, "store": store}
        candidates: Optional[List[Address]] = None
        if addresses is not None:
            candidates = [self.ensure_address(spec) for spec in addresses]
            if not candidates:
                raise ClientError("empty address subset for call")
        call_index = self._calls
        self._calls += 1
        self.counters["requests"] += 1
        if not tracing_active():
            return await self._call_attempts(payload, call_index, candidates)
        # One root span per logical request.  The trace id is a pure
        # function of (seed, call_index) — see repro.obs.context — so a
        # replayed workload produces byte-identical ids, and the
        # context the attempts put on the wire lets the server's spans
        # join this same trace.
        root = Span(
            "client.request",
            {"op": payload.get("op"), "call": call_index},
            context=TraceContext(trace_id_for(self.seed, call_index)),
        )
        with root:
            try:
                result = await self._call_attempts(payload, call_index, candidates)
            except ClientError:
                root.set_attribute("outcome", "failed")
                raise
            root.set_attribute("outcome", "ok")
            return result

    async def _call_attempts(
        self,
        payload: dict,
        call_index: int,
        candidates: Optional[List[Address]] = None,
    ) -> dict:
        last_failure = "no attempt made"
        refreshed = False
        for attempt in range(self.policy.attempts):
            if attempt > 0:
                if not self._spend_budget():
                    self.counters["giveups"] += 1
                    metrics.inc("client.retries.exhausted")
                    raise ClientError(
                        f"retry budget exhausted after {attempt} attempt(s): "
                        f"{last_failure}"
                    )
                self.counters["retries"] += 1
                metrics.inc("client.retries")
                eventlog.debug(
                    "client.retry", call=call_index, attempt=attempt,
                    reason=last_failure,
                )
                # A refresh retry goes straight back out: backoff is
                # for overload, and a state mismatch is not overload.
                if not refreshed:
                    delay = self.policy.backoff_delay(
                        self.seed, call_index, attempt
                    )
                    if delay > 0:
                        await asyncio.sleep(delay)
            refreshed = False
            address = self._pick_address(call_index + attempt, candidates)
            if address is None:
                self.counters["breaker_skips"] += 1
                metrics.inc("client.breaker.skipped")
                last_failure = "all circuit breakers open"
                continue
            try:
                if attempt == 0 and self.policy.hedge_after is not None:
                    return await self._hedged(
                        address, payload, call_index, candidates
                    )
                kind = "initial" if attempt == 0 else "retry"
                return await self._attempt(address, payload, kind=kind)
            except RetryAfterRefresh as exc:
                self.counters["refreshes"] += 1
                metrics.inc("client.refreshes", code=exc.code)
                eventlog.debug(
                    "client.refresh", call=call_index, code=exc.code,
                    reason=str(exc),
                )
                last_failure = str(exc)
                if self.on_refresh is not None:
                    await self.on_refresh(exc)
                refreshed = True
                continue
            except _TransportError as exc:
                self.counters["transient_failures"] += 1
                last_failure = str(exc)
                continue
        self.counters["giveups"] += 1
        metrics.inc("client.retries.exhausted")
        eventlog.warn(
            "client.giveup", call=call_index, attempts=self.policy.attempts,
            reason=last_failure,
        )
        raise ClientError(
            f"request failed after {self.policy.attempts} attempt(s): "
            f"{last_failure}"
        )

    async def close(self) -> None:
        """Close every pooled connection."""
        for pool in self._pool.values():
            while pool:
                await self._discard(pool.pop())

    def stats(self) -> dict:
        """Counters plus per-address breaker states (JSON-safe)."""
        return {
            "counters": dict(self.counters),
            "breakers": {
                f"{host}:{port}": {
                    "state": breaker.state,
                    "opened_total": breaker.opened_total,
                }
                for (host, port), breaker in self._breakers.items()
            },
        }

    # -- attempt machinery ----------------------------------------------
    def _spend_budget(self) -> bool:
        if self._budget is None:
            return True
        if self._budget <= 0:
            return False
        self._budget -= 1
        return True

    def ensure_address(self, spec: Union[str, Address]) -> Address:
        """Adopt *spec* as a known endpoint (breaker + pool) if it is
        not one already; returns the parsed address.  How a refreshed
        cluster map introduces nodes the client was not born with."""
        address = parse_address(spec)
        if address not in self._breakers:
            self.addresses.append(address)
            self._breakers[address] = CircuitBreaker(
                self._breaker_threshold, self._breaker_reset
            )
            self._pool[address] = []
        return address

    def _pick_address(
        self, rotation: int, candidates: Optional[List[Address]] = None
    ) -> Optional[Address]:
        """First address (rotating) whose breaker admits traffic."""
        pool = self.addresses if candidates is None else candidates
        n = len(pool)
        for offset in range(n):
            address = pool[(rotation + offset) % n]
            # peek(), not allow(): claiming the half-open probe slot
            # here would leak it — _attempt() is the one claimant.
            if self._breakers[address].peek():
                return address
        return None

    async def _hedged(
        self,
        address: Address,
        payload: dict,
        call_index: int,
        candidates: Optional[List[Address]] = None,
    ) -> dict:
        """First attempt with a hedge: if the primary is silent for
        ``hedge_after`` seconds, race a second attempt; first success
        wins, the loser is cancelled.  Byte-exactness is preserved —
        both attempts would return identical bytes."""
        primary = asyncio.ensure_future(self._attempt(address, payload))
        done, _ = await asyncio.wait({primary}, timeout=self.policy.hedge_after)
        if done:
            return primary.result()  # may raise _TransportError / RequestFailed
        if not self._spend_budget():
            return await primary
        self.counters["hedges"] += 1
        metrics.inc("client.hedges")
        eventlog.debug(
            "client.hedge", call=call_index,
            hedge_after_ms=round(self.policy.hedge_after * 1e3, 3),
        )
        backup_address = self._pick_address(call_index + 1, candidates) or address
        backup = asyncio.ensure_future(
            self._attempt(backup_address, payload, kind="hedge")
        )
        pending = {primary, backup}
        first_error: Optional[BaseException] = None
        try:
            while pending:
                done, pending = await asyncio.wait(
                    pending, return_when=asyncio.FIRST_COMPLETED
                )
                for task in done:
                    try:
                        result = task.result()
                    except (_TransportError, RequestFailed) as exc:
                        # Prefer the most informative loser: a permanent
                        # answer beats a refresh signal beats a plain
                        # transport failure.
                        if (
                            first_error is None
                            or isinstance(exc, RequestFailed)
                            or (
                                isinstance(exc, RetryAfterRefresh)
                                and not isinstance(first_error, RequestFailed)
                            )
                        ):
                            first_error = exc
                        continue
                    if task is backup:
                        self.counters["hedge_wins"] += 1
                        metrics.inc("client.hedge_wins")
                    opened = current_span()
                    if opened is not None and opened.name == "client.request":
                        opened.set_attribute(
                            "winner", "hedge" if task is backup else "primary"
                        )
                    return result
            assert first_error is not None
            raise first_error
        finally:
            for task in (primary, backup):
                if not task.done():
                    task.cancel()
                    try:
                        await task
                    except (
                        asyncio.CancelledError,
                        _TransportError,
                        RequestFailed,
                    ):
                        pass

    async def _attempt(
        self, address: Address, payload: dict, kind: str = "initial"
    ) -> dict:
        """One attempt against one address, under the attempt timeout.

        Success / failure feeds the address's breaker.  Raises
        :class:`_TransportError` for anything retryable.

        With tracing on, each attempt is a ``client.attempt`` child
        span tagged with the address, its *kind* (initial / retry /
        hedge), and the breaker state it saw — a cancelled losing
        hedge still closes its span (tagged ``cancelled``) — and the
        attempt's own span id goes on the wire as the trace context,
        so the server's ``serve.request`` nests under the exact
        attempt that reached it.
        """
        if not tracing_active():
            return await self._attempt_inner(address, payload, None)
        with span(
            "client.attempt",
            address=f"{address[0]}:{address[1]}",
            kind=kind,
            breaker=self._breakers[address].state,
        ) as attempt_span:
            context = None
            if attempt_span is not NOOP_SPAN and attempt_span.trace_id is not None:
                context = TraceContext(
                    attempt_span.trace_id, attempt_span.span_id
                )
            try:
                return await self._attempt_inner(address, payload, context)
            except asyncio.CancelledError:
                attempt_span.set_attribute("cancelled", True)
                raise

    async def _attempt_inner(
        self, address: Address, payload: dict, context: Optional[TraceContext]
    ) -> dict:
        breaker = self._breakers[address]
        if not breaker.allow():
            raise _TransportError(f"breaker open for {address[0]}:{address[1]}")
        self.counters["attempts"] += 1
        metrics.inc("client.attempts")
        try:
            try:
                response = await asyncio.wait_for(
                    self._roundtrip(address, payload, context),
                    self.policy.attempt_timeout,
                )
            except asyncio.TimeoutError:
                breaker.record_failure()
                raise _TransportError(
                    f"attempt timed out after {self.policy.attempt_timeout}s"
                ) from None
            except (ConnectionError, OSError) as exc:
                breaker.record_failure()
                raise _TransportError(f"{type(exc).__name__}: {exc}") from None
            except _TransportError:
                breaker.record_failure()
                raise
            if response.get("ok"):
                breaker.record_success()
                return response
            error = response.get("error") if isinstance(response, dict) else None
            code = (error or {}).get("code", "internal")
            message = (error or {}).get("message", "")
            if code in self.refresh_codes:
                # The server answered definitively — it is healthy, so
                # its breaker records success — but *our* state (not
                # the request) is what it rejected.  Refresh and retry.
                breaker.record_success()
                raise RetryAfterRefresh(code, message, response)
            if code in TRANSIENT_CODES:
                # The server is reachable but declined this attempt; that
                # still counts against the breaker — a server stuck
                # answering `unavailable` deserves fail-fast too.
                breaker.record_failure()
                raise _TransportError(f"transient server error {code}: {message}")
            breaker.record_success()  # a permanent answer is a healthy server
            raise RequestFailed(code, message, response)
        finally:
            # record_success/record_failure already freed the probe
            # slot; this covers exits that recorded nothing (a losing
            # hedge cancelled mid-flight, an unexpected error) so a
            # claimed half-open probe can never be leaked.
            breaker.release_probe()

    async def _roundtrip(
        self,
        address: Address,
        payload: dict,
        context: Optional[TraceContext] = None,
    ) -> dict:
        """Borrow a connection, do one request/response, return it.

        Any failure — including cancellation by a timeout or a losing
        hedge — discards the connection: a late reply on a reused
        socket would desynchronize the request/response pairing.
        """
        conn = await self._acquire(address)
        try:
            conn.next_id += 1
            rid = f"r{conn.next_id}.{id(conn) & 0xFFFF:x}"
            request = {**payload, "id": rid}
            if context is not None:
                request["trace"] = context.to_wire()
            conn.writer.write(encode_request(request))
            await conn.writer.drain()
            line = await conn.reader.readline()
            if not line:
                raise _TransportError("connection closed by server")
            try:
                response = json.loads(line)
            except (UnicodeDecodeError, json.JSONDecodeError):
                raise _TransportError(
                    f"unparseable response: {line[:80]!r}"
                ) from None
            if not isinstance(response, dict) or response.get("id") != rid:
                raise _TransportError("response desynchronized (wrong id)")
        except BaseException:
            await self._discard(conn)
            raise
        self._pool[address].append(conn)
        return response

    async def _acquire(self, address: Address) -> _Connection:
        pool = self._pool[address]
        if pool:
            return pool.pop()
        reader, writer = await asyncio.open_connection(*address)
        metrics.inc("client.connections")
        return _Connection(reader, writer)

    async def _discard(self, conn: _Connection) -> None:
        conn.writer.close()
        try:
            await conn.writer.wait_closed()
        except (ConnectionError, OSError):
            pass
