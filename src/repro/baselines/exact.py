"""Exact distance computation: the ground truth every experiment uses."""

from __future__ import annotations

from typing import Dict, Hashable

from repro.graphs.graph import Graph
from repro.graphs.shortest_paths import dijkstra

Vertex = Hashable


def all_pairs_shortest_paths(graph: Graph) -> Dict[Vertex, Dict[Vertex, float]]:
    """Full APSP by n Dijkstra runs — O(n m log n); small graphs only."""
    return {v: dijkstra(graph, v)[0] for v in graph.vertices()}


class ExactOracle:
    """Exact distances with per-source caching.

    The first query from a source costs one Dijkstra; subsequent
    queries from the same source are dictionary lookups.  This is the
    "no data structure" baseline: zero preprocessing, full query cost.
    """

    def __init__(self, graph: Graph, cache_size: int = 128) -> None:
        self.graph = graph
        self._cache: Dict[Vertex, Dict[Vertex, float]] = {}
        self._cache_size = cache_size

    def query(self, u: Vertex, v: Vertex) -> float:
        if u == v:
            return 0.0
        source = u if u in self._cache else (v if v in self._cache else u)
        target = v if source == u else u
        if source not in self._cache:
            if len(self._cache) >= self._cache_size:
                self._cache.pop(next(iter(self._cache)))
            self._cache[source], _ = dijkstra(self.graph, source)
        return self._cache[source].get(target, float("inf"))

    def query_uncached(self, u: Vertex, v: Vertex) -> float:
        """One fresh Dijkstra per call — the honest per-query baseline
        cost used in timing comparisons."""
        if u == v:
            return 0.0
        dist, _ = dijkstra(self.graph, u)
        return dist.get(v, float("inf"))
