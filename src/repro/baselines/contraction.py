"""Contraction hierarchies (Geisberger et al. 2008).

The de-facto practical exact distance oracle for road networks, and
the strongest baseline to put next to the paper's (1+eps) oracle on
the road workloads: CH answers exactly with tiny queries but has no
worst-case guarantees outside hierarchy-friendly graphs, while the
path-separator oracle trades an eps for guarantees on every minor-free
graph.

Implementation: classic lazy-update contraction with the
edge-difference + deleted-neighbors priority, witness searches with a
cost cutoff, and bidirectional upward Dijkstra queries.  Undirected
graphs only (matching the rest of the package).
"""

from __future__ import annotations

import heapq
from typing import Dict, Hashable, List, Set, Tuple

from repro.graphs.graph import Graph
from repro.util.errors import GraphError
from repro.util.sizing import SizeReport

Vertex = Hashable
INF = float("inf")


class ContractionHierarchy:
    """Exact point-to-point oracle via vertex contraction."""

    def __init__(self, graph: Graph, hop_limit: int = 32) -> None:
        """Preprocess *graph*.

        ``hop_limit`` caps the witness searches (standard practice):
        a missed witness only adds a redundant shortcut, never breaks
        correctness.
        """
        self.graph = graph
        self.rank: Dict[Vertex, int] = {}
        # Working adjacency including shortcuts (weights only).
        self._adj: Dict[Vertex, Dict[Vertex, float]] = {
            v: dict(graph.neighbor_items(v)) for v in graph.vertices()
        }
        self.num_shortcuts = 0
        self._contract_all(hop_limit)
        # Upward adjacency for queries: neighbors with higher rank.
        self.upward: Dict[Vertex, List[Tuple[Vertex, float]]] = {
            v: [
                (u, w)
                for u, w in self._adj[v].items()
                if self.rank[u] > self.rank[v]
            ]
            for v in self._adj
        }
        self.last_settled = 0

    # ------------------------------------------------------------------
    # Preprocessing
    # ------------------------------------------------------------------
    def _priority(self, v: Vertex, deleted: Dict[Vertex, int], hop_limit: int) -> float:
        shortcuts = len(self._needed_shortcuts(v, hop_limit))
        degree = len(self._adj[v])
        return (shortcuts - degree) + 0.5 * deleted.get(v, 0)

    def _needed_shortcuts(
        self, v: Vertex, hop_limit: int
    ) -> List[Tuple[Vertex, Vertex, float]]:
        neighbors = list(self._adj[v].items())
        out: List[Tuple[Vertex, Vertex, float]] = []
        for i, (u, wu) in enumerate(neighbors):
            for x, wx in neighbors[i + 1 :]:
                via = wu + wx
                if not self._witness_exists(u, x, v, via, hop_limit):
                    out.append((u, x, via))
        return out

    def _witness_exists(
        self, source: Vertex, target: Vertex, skip: Vertex, budget: float, hop_limit: int
    ) -> bool:
        """Is there a path source->target avoiding *skip* of cost <= budget?"""
        direct = self._adj[source].get(target)
        if direct is not None and direct <= budget:
            return True
        dist = {source: 0.0}
        hops = {source: 0}
        heap = [(0.0, 0, source)]
        counter = 1
        settled: Set[Vertex] = set()
        while heap:
            d, _, u = heapq.heappop(heap)
            if u in settled:
                continue
            settled.add(u)
            if u == target:
                return d <= budget
            if hops[u] >= hop_limit:
                continue
            for x, w in self._adj[u].items():
                if x == skip or x in settled:
                    continue
                nd = d + w
                if nd > budget:
                    continue
                if nd < dist.get(x, INF):
                    dist[x] = nd
                    hops[x] = hops[u] + 1
                    heapq.heappush(heap, (nd, counter, x))
                    counter += 1
        return False

    def _contract_all(self, hop_limit: int) -> None:
        deleted: Dict[Vertex, int] = {}
        heap: List[Tuple[float, str, Vertex]] = []
        for v in self._adj:
            heapq.heappush(heap, (self._priority(v, deleted, hop_limit), repr(v), v))
        next_rank = 0
        while heap:
            _, _, v = heapq.heappop(heap)
            if v in self.rank:
                continue
            # Lazy update: re-evaluate; if no longer minimal, requeue.
            current = self._priority(v, deleted, hop_limit)
            if heap and current > heap[0][0]:
                heapq.heappush(heap, (current, repr(v), v))
                continue
            shortcuts = self._needed_shortcuts(v, hop_limit)
            for u, x, weight in shortcuts:
                existing = self._adj[u].get(x)
                if existing is None or weight < existing:
                    self._adj[u][x] = weight
                    self._adj[x][u] = weight
                    self.num_shortcuts += 1
            self.rank[v] = next_rank
            next_rank += 1
            for u in self._adj[v]:
                if u not in self.rank:
                    deleted[u] = deleted.get(u, 0) + 1
            # Remove v from the *working* graph (keep its adjacency for
            # the upward graph).
            for u in list(self._adj[v]):
                if u not in self.rank:
                    del self._adj[u][v]
            # v's own adjacency stays: it holds the upward edges.

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def query(self, source: Vertex, target: Vertex) -> float:
        """Exact distance via bidirectional upward search."""
        if source not in self.upward or target not in self.upward:
            raise GraphError("source and target must be graph vertices")
        if source == target:
            self.last_settled = 0
            return 0.0
        dists = ({source: 0.0}, {target: 0.0})
        heaps = ([(0.0, 0, source)], [(0.0, 0, target)])
        settled: Tuple[Set[Vertex], Set[Vertex]] = (set(), set())
        counter = 1
        best = INF
        while heaps[0] or heaps[1]:
            for side in (0, 1):
                if not heaps[side]:
                    continue
                d, _, u = heapq.heappop(heaps[side])
                if u in settled[side]:
                    continue
                if d > best:
                    heaps[side].clear()
                    continue
                settled[side].add(u)
                other = dists[1 - side].get(u)
                if other is not None and d + other < best:
                    best = d + other
                for x, w in self.upward[u]:
                    nd = d + w
                    if nd < dists[side].get(x, INF):
                        dists[side][x] = nd
                        heapq.heappush(heaps[side], (nd, counter, x))
                        counter += 1
        self.last_settled = len(settled[0]) + len(settled[1])
        return best

    def size_report(self) -> SizeReport:
        """Words: 2 per upward edge (neighbor + weight) per vertex."""
        return SizeReport.from_counts(
            (v, 2 * len(edges)) for v, edges in self.upward.items()
        )
