"""Small-world augmentation baselines.

* :class:`KleinbergAugmentation` — the harmonic distribution of [29]
  generalized from grids to weighted graphs: contact u drawn with
  probability proportional to ``d(v, u)^{-exponent}``.  On a 2D grid
  with exponent 2 this is exactly Kleinberg's distribution.
* :class:`UniformAugmentation` — a uniformly random contact; the
  classic negative control (greedy gains little).
"""

from __future__ import annotations

from typing import Hashable, Optional

from repro.core.smallworld import AugmentationDistribution
from repro.graphs.graph import Graph
from repro.graphs.shortest_paths import dijkstra
from repro.util.errors import GraphError

Vertex = Hashable


class KleinbergAugmentation(AugmentationDistribution):
    """Harmonic long-range contacts: P(u) ∝ d(v, u)^{-exponent}."""

    def __init__(self, exponent: float = 2.0) -> None:
        if exponent < 0:
            raise GraphError("exponent must be non-negative")
        self.exponent = exponent

    def sample_contact(self, graph: Graph, v: Vertex, rng) -> Optional[Vertex]:
        dist, _ = dijkstra(graph, v)
        candidates = [(u, d) for u, d in dist.items() if u != v and d > 0]
        if not candidates:
            return None
        weights = [d ** (-self.exponent) for _, d in candidates]
        total = sum(weights)
        r = rng.random() * total
        acc = 0.0
        for (u, _), w in zip(candidates, weights):
            acc += w
            if acc >= r:
                return u
        return candidates[-1][0]


class UniformAugmentation(AugmentationDistribution):
    """A uniformly random contact among all other vertices."""

    def sample_contact(self, graph: Graph, v: Vertex, rng) -> Optional[Vertex]:
        others = [u for u in graph.vertices() if u != v]
        if not others:
            return None
        others.sort(key=repr)
        return others[rng.randrange(len(others))]
