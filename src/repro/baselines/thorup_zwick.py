"""The Thorup-Zwick approximate distance oracle (JACM 2005, [45]).

Stretch 2k-1 with O(k n^{1+1/k}) expected space — the best possible
trade-off for *general* graphs, and the contrast class for the paper's
claim: on minor-free graphs, path separators beat this to (1+eps)
stretch with near-linear space.
"""

from __future__ import annotations

import heapq
from typing import Dict, Hashable, List, Optional, Set

from repro.graphs.graph import Graph
from repro.graphs.shortest_paths import multi_source_dijkstra
from repro.util.errors import GraphError
from repro.util.rng import SeedLike, ensure_rng
from repro.util.sizing import SizeReport

Vertex = Hashable
INF = float("inf")


class ThorupZwickOracle:
    """Stretch-(2k-1) distance oracle for arbitrary weighted graphs.

    Construction (the paper's exact scheme):

    * level sets ``A_0 = V ⊇ A_1 ⊇ ... ⊇ A_k = {}``, each element of
      ``A_{i-1}`` surviving into ``A_i`` with probability n^{-1/k};
    * for every v: the i-th *pivot* p_i(v) (nearest A_i vertex) and
      its distance;
    * every v stores exact distances to its *bunch*
      ``B(v) = ∪_i { w ∈ A_i \\ A_{i+1} : d(w,v) < d(A_{i+1}, v) }``.

    Query walks the pivots, swapping endpoints, until the current
    pivot lands in the other endpoint's bunch.
    """

    def __init__(self, graph: Graph, k: int = 2, seed: SeedLike = 0) -> None:
        if k < 1:
            raise GraphError("ThorupZwickOracle requires k >= 1")
        self.graph = graph
        self.k = k
        rng = ensure_rng(seed)
        n = graph.num_vertices
        if n == 0:
            self.pivots = {}
            self.pivot_dist = {}
            self.bunch = {}
            return

        levels: List[Set[Vertex]] = [set(graph.vertices())]
        prob = n ** (-1.0 / k)
        for _ in range(1, k):
            prev = levels[-1]
            nxt = {v for v in prev if rng.random() < prob}
            levels.append(nxt)
        levels.append(set())  # A_k = empty

        # Pivot distances d(A_i, v) and witnesses p_i(v).
        self.pivot_dist: Dict[Vertex, List[float]] = {
            v: [INF] * (self.k + 1) for v in graph.vertices()
        }
        self.pivots: Dict[Vertex, List[Optional[Vertex]]] = {
            v: [None] * (self.k + 1) for v in graph.vertices()
        }
        for i in range(self.k):
            if not levels[i]:
                continue
            dist, origin = multi_source_dijkstra(graph, levels[i])
            for v in graph.vertices():
                self.pivot_dist[v][i] = dist.get(v, INF)
                self.pivots[v][i] = origin.get(v)
        for v in graph.vertices():
            self.pivot_dist[v][self.k] = INF

        # Clusters C(w) for w in A_i \ A_{i+1}, inverted into bunches.
        self.bunch: Dict[Vertex, Dict[Vertex, float]] = {
            v: {} for v in graph.vertices()
        }
        for i in range(self.k):
            frontier = levels[i] - levels[i + 1]
            for w in frontier:
                for v, d in self._cluster(w, i).items():
                    self.bunch[v][w] = d

    def _cluster(self, w: Vertex, level: int) -> Dict[Vertex, float]:
        """Truncated Dijkstra: grow from w only while
        ``d(w, v) < d(A_{level+1}, v)`` (the TZ cluster condition)."""
        dist: Dict[Vertex, float] = {w: 0.0}
        heap = [(0.0, 0, w)]
        counter = 1
        settled: Set[Vertex] = set()
        out: Dict[Vertex, float] = {}
        while heap:
            d, _, u = heapq.heappop(heap)
            if u in settled:
                continue
            settled.add(u)
            out[u] = d
            for v, weight in self.graph.neighbor_items(u):
                nd = d + weight
                if v in settled or nd >= self.pivot_dist[v][level + 1]:
                    continue
                if nd < dist.get(v, INF):
                    dist[v] = nd
                    heapq.heappush(heap, (nd, counter, v))
                    counter += 1
        return out

    # ------------------------------------------------------------------
    def query(self, u: Vertex, v: Vertex) -> float:
        """Estimate d(u, v); guaranteed within [d, (2k-1) d]."""
        if u == v:
            return 0.0
        w: Optional[Vertex] = u
        i = 0
        while w not in self.bunch[v]:
            i += 1
            if i >= self.k:
                return INF  # disconnected endpoints
            u, v = v, u
            w = self.pivots[u][i]
            if w is None:
                return INF
        d_uw = 0.0 if w == u else self.pivot_dist[u][i]
        return d_uw + self.bunch[v][w]

    def space_words(self) -> int:
        return self.size_report().total_words

    def size_report(self) -> SizeReport:
        """2 words per bunch entry + 2 per pivot level, per vertex."""
        return SizeReport.from_counts(
            (v, 2 * len(self.bunch[v]) + 2 * self.k) for v in self.bunch
        )
