"""Baselines the benchmarks compare the paper's structures against.

* :class:`ExactOracle` — ground truth (cached Dijkstra / APSP).
* :class:`AltOracle` — A* with landmark lower bounds (exact answers,
  goal-directed search): the classic road-network accelerator.
* :class:`ContractionHierarchy` — the de-facto practical exact oracle
  for road networks (Geisberger et al.).
* :class:`ThorupZwickOracle` — the classic general-graph approximate
  distance oracle (stretch 2k-1), the natural "non-separator"
  competitor the related-work section contrasts with.
* :class:`LandmarkOracle` — the folklore landmark/triangulation
  heuristic (no stretch guarantee).
* :class:`KleinbergAugmentation` / :class:`UniformAugmentation` — the
  small-world baselines of [29] and the naive uniform augmentation.
"""

from repro.baselines.alt import AltOracle, farthest_landmarks
from repro.baselines.augmentations import KleinbergAugmentation, UniformAugmentation
from repro.baselines.contraction import ContractionHierarchy
from repro.baselines.exact import ExactOracle, all_pairs_shortest_paths
from repro.baselines.landmarks import LandmarkOracle
from repro.baselines.thorup_zwick import ThorupZwickOracle

__all__ = [
    "AltOracle",
    "ContractionHierarchy",
    "ExactOracle",
    "KleinbergAugmentation",
    "LandmarkOracle",
    "ThorupZwickOracle",
    "UniformAugmentation",
    "farthest_landmarks",
    "all_pairs_shortest_paths",
]
