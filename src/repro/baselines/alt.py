"""ALT: A* with landmark lower bounds (Goldberg & Harrelson).

The standard *exact* point-to-point accelerator on road networks and
the natural speed baseline for the paper's (1+eps) oracle: ALT answers
exactly but must re-search per query; the oracle answers from labels
in near-constant time at an eps cost.  Landmarks are chosen by
farthest-point selection, and ``h(v) = max_l |d(l,t) - d(l,v)|`` is a
consistent heuristic, so the first time the target is settled the
distance is exact.
"""

from __future__ import annotations

import heapq
from typing import Dict, Hashable, List, Tuple

from repro.graphs.graph import Graph
from repro.graphs.shortest_paths import dijkstra
from repro.util.errors import GraphError
from repro.util.rng import SeedLike, ensure_rng
from repro.util.sizing import SizeReport

Vertex = Hashable
INF = float("inf")


def farthest_landmarks(graph: Graph, count: int, seed: SeedLike = 0) -> List[Vertex]:
    """Farthest-point landmark selection: iteratively add the vertex
    maximizing its distance to the landmarks chosen so far."""
    if count < 1:
        raise GraphError("need at least one landmark")
    rng = ensure_rng(seed)
    vertices = sorted(graph.vertices(), key=repr)
    if not vertices:
        raise GraphError("graph has no vertices")
    first = vertices[rng.randrange(len(vertices))]
    landmarks = [first]
    min_dist, _ = dijkstra(graph, first)
    while len(landmarks) < min(count, len(vertices)):
        candidate = max(
            (v for v in vertices if v in min_dist),
            key=lambda v: (min_dist[v], repr(v)),
        )
        if candidate in landmarks:
            break
        landmarks.append(candidate)
        dist, _ = dijkstra(graph, candidate)
        for v, d in dist.items():
            if d < min_dist.get(v, INF):
                min_dist[v] = d
    return landmarks


class AltOracle:
    """Exact point-to-point distances via A* with landmark heuristics."""

    def __init__(self, graph: Graph, num_landmarks: int = 8, seed: SeedLike = 0) -> None:
        self.graph = graph
        self.landmarks = farthest_landmarks(graph, num_landmarks, seed=seed)
        self._from_landmark: Dict[Vertex, Dict[Vertex, float]] = {
            l: dijkstra(graph, l)[0] for l in self.landmarks
        }
        self.last_settled = 0  # instrumentation: vertices settled by last query

    def _heuristic(self, v: Vertex, target: Vertex) -> float:
        best = 0.0
        for dist in self._from_landmark.values():
            dl_v = dist.get(v)
            dl_t = dist.get(target)
            if dl_v is None or dl_t is None:
                continue
            gap = abs(dl_t - dl_v)
            if gap > best:
                best = gap
        return best

    def query(self, source: Vertex, target: Vertex) -> float:
        """Exact distance (inf if disconnected); A* guided by landmarks."""
        if source not in self.graph or target not in self.graph:
            raise GraphError("source and target must be graph vertices")
        if source == target:
            self.last_settled = 0
            return 0.0
        dist: Dict[Vertex, float] = {source: 0.0}
        settled = set()
        heap: List[Tuple[float, int, Vertex]] = [
            (self._heuristic(source, target), 0, source)
        ]
        counter = 1
        while heap:
            _, _, u = heapq.heappop(heap)
            if u in settled:
                continue
            settled.add(u)
            if u == target:
                self.last_settled = len(settled)
                return dist[u]
            du = dist[u]
            for v, w in self.graph.neighbor_items(u):
                if v in settled:
                    continue
                nd = du + w
                if nd < dist.get(v, INF):
                    dist[v] = nd
                    heapq.heappush(
                        heap, (nd + self._heuristic(v, target), counter, v)
                    )
                    counter += 1
        self.last_settled = len(settled)
        return INF

    def size_report(self) -> SizeReport:
        words = 2 * len(self.landmarks)
        return SizeReport.from_counts((v, words) for v in self.graph.vertices())
