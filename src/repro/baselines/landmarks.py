"""Landmark / triangulation distance estimation (folklore baseline).

Pick L landmarks, store each vertex's distance to every landmark, and
answer queries by ``min_l d(u, l) + d(l, v)``.  Always an upper bound;
no worst-case stretch guarantee — which is exactly the contrast with
the paper's (1+eps) oracle that experiment E4 shows.
"""

from __future__ import annotations

from typing import Dict, Hashable, List

from repro.graphs.graph import Graph
from repro.graphs.shortest_paths import dijkstra
from repro.util.errors import GraphError
from repro.util.rng import SeedLike, ensure_rng
from repro.util.sizing import SizeReport

Vertex = Hashable
INF = float("inf")


class LandmarkOracle:
    """Upper-bound distance oracle from L random landmarks."""

    def __init__(self, graph: Graph, num_landmarks: int = 16, seed: SeedLike = 0) -> None:
        if num_landmarks < 1:
            raise GraphError("need at least one landmark")
        rng = ensure_rng(seed)
        vertices = sorted(graph.vertices(), key=repr)
        num = min(num_landmarks, len(vertices))
        self.landmarks: List[Vertex] = rng.sample(vertices, num)
        self.graph = graph
        # dist_to[l] holds d(l, v) for all v.
        self._dist: Dict[Vertex, Dict[Vertex, float]] = {
            l: dijkstra(graph, l)[0] for l in self.landmarks
        }

    def query(self, u: Vertex, v: Vertex) -> float:
        """Upper bound on d(u, v) via the best landmark."""
        if u == v:
            return 0.0
        best = INF
        for dist in self._dist.values():
            du = dist.get(u, INF)
            dv = dist.get(v, INF)
            if du + dv < best:
                best = du + dv
        return best

    def lower_bound(self, u: Vertex, v: Vertex) -> float:
        """Lower bound max_l |d(u,l) - d(v,l)| (triangle inequality)."""
        if u == v:
            return 0.0
        best = 0.0
        for dist in self._dist.values():
            du = dist.get(u, INF)
            dv = dist.get(v, INF)
            if du < INF and dv < INF:
                best = max(best, abs(du - dv))
        return best

    def size_report(self) -> SizeReport:
        words_per_vertex = 2 * len(self.landmarks)
        return SizeReport.from_counts(
            (v, words_per_vertex) for v in self.graph.vertices()
        )
