import pytest

from repro.util.errors import (
    GraphError,
    InvalidDecompositionError,
    InvalidSeparatorError,
    NotConnectedError,
    ReproError,
)


class TestHierarchy:
    def test_all_derive_from_repro_error(self):
        for exc in (
            GraphError,
            InvalidDecompositionError,
            InvalidSeparatorError,
            NotConnectedError,
        ):
            assert issubclass(exc, ReproError)

    def test_not_connected_is_graph_error(self):
        assert issubclass(NotConnectedError, GraphError)

    def test_single_except_catches_everything(self):
        # The design contract: one except clause for the whole package.
        for exc in (GraphError, InvalidSeparatorError, NotConnectedError):
            with pytest.raises(ReproError):
                raise exc("x")

    def test_serialization_error_in_hierarchy(self):
        from repro.core.serialize import SerializationError

        assert issubclass(SerializationError, ReproError)

    def test_not_planar_is_graph_error(self):
        from repro.planar import NotPlanarError

        assert issubclass(NotPlanarError, GraphError)
