import time

from repro.util import Timer


class TestTimer:
    def test_measures_elapsed(self):
        with Timer() as t:
            time.sleep(0.01)
        assert t.elapsed >= 0.01

    def test_zero_before_exit(self):
        t = Timer()
        assert t.elapsed == 0.0

    def test_reusable(self):
        t = Timer()
        with t:
            pass
        first = t.elapsed
        with t:
            time.sleep(0.005)
        assert t.elapsed >= 0.005
        assert t.elapsed != first or first == 0.0

    def test_exception_still_records(self):
        t = Timer()
        try:
            with t:
                time.sleep(0.005)
                raise RuntimeError("boom")
        except RuntimeError:
            pass
        assert t.elapsed >= 0.005
