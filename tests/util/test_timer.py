import time

from repro.util import Timer


class TestTimer:
    def test_measures_elapsed(self):
        with Timer() as t:
            time.sleep(0.01)
        assert t.elapsed >= 0.01

    def test_zero_before_exit(self):
        t = Timer()
        assert t.elapsed == 0.0

    def test_reusable(self):
        t = Timer()
        with t:
            pass
        first = t.elapsed
        with t:
            time.sleep(0.005)
        assert t.elapsed >= 0.005
        assert t.elapsed != first or first == 0.0

    def test_exception_still_records(self):
        t = Timer()
        try:
            with t:
                time.sleep(0.005)
                raise RuntimeError("boom")
        except RuntimeError:
            pass
        assert t.elapsed >= 0.005

    def test_nanosecond_reading(self):
        with Timer() as t:
            time.sleep(0.005)
        assert t.elapsed_ns >= 5_000_000
        assert t.elapsed == t.elapsed_ns / 1e9

    def test_laps_accumulate(self):
        with Timer() as t:
            time.sleep(0.005)
            first = t.lap()
            time.sleep(0.002)
            second = t.lap()
        assert first >= 0.005
        assert second >= 0.002
        assert t.laps == [first, second]
        # Laps partition the elapsed window (up to the tail after the
        # final lap), so their sum cannot exceed the total.
        assert sum(t.laps) <= t.elapsed

    def test_laps_reset_on_reentry(self):
        t = Timer()
        with t:
            t.lap()
        with t:
            pass
        assert t.laps == []

    def test_obs_reexport_is_same_class(self):
        from repro.obs import Timer as ObsTimer

        assert ObsTimer is Timer
