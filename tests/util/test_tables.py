import pytest

from repro.util.tables import format_table


class TestFormatTable:
    def test_header_and_rows_rendered(self):
        out = format_table(["n", "k"], [[10, 1], [100, 3]])
        lines = out.splitlines()
        assert len(lines) == 4  # header, rule, two rows
        assert "n" in lines[0] and "k" in lines[0]

    def test_title_prepended(self):
        out = format_table(["a"], [[1]], title="E1")
        assert out.splitlines()[0] == "E1"

    def test_columns_aligned(self):
        out = format_table(["col"], [[1], [1000]])
        rows = out.splitlines()[2:]
        assert len(rows[0]) == len(rows[1])

    def test_float_formatting(self):
        out = format_table(["x"], [[0.123456]])
        assert "0.123" in out

    def test_large_float_compacted(self):
        out = format_table(["x"], [[123456.7]])
        assert "1.23e+05" in out

    def test_row_width_mismatch_rejected(self):
        with pytest.raises(ValueError):
            format_table(["a", "b"], [[1]])

    def test_zero_rendered_plainly(self):
        assert "0" in format_table(["x"], [[0.0]])
