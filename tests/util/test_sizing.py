import math

import pytest

from repro.util.sizing import (
    PORTAL_ENTRY_WORDS,
    SizeReport,
    label_words,
    words_to_bits,
)


class TestWordsToBits:
    def test_unweighted_word_is_log_n_plus_one(self):
        assert words_to_bits(1, n=1024) == pytest.approx(math.log2(1024) + 1)

    def test_weight_bits_added(self):
        assert words_to_bits(1, n=4, max_weight=256.0) == pytest.approx(2 + 8)

    def test_scales_linearly_in_words(self):
        one = words_to_bits(1, n=64)
        assert words_to_bits(10, n=64) == pytest.approx(10 * one)

    def test_tiny_graph_rejected(self):
        with pytest.raises(ValueError):
            words_to_bits(1, n=1)


class TestLabelWords:
    def test_default_entry_size(self):
        assert label_words(5) == 5 * PORTAL_ENTRY_WORDS

    def test_custom_entry_size(self):
        assert label_words(3, words_per_entry=2) == 6


class TestSizeReport:
    def test_empty_report(self):
        report = SizeReport()
        assert report.total_words == 0
        assert report.max_words == 0
        assert report.mean_words == 0.0

    def test_accumulates_per_vertex(self):
        report = SizeReport()
        report.add("a", 3)
        report.add("a", 2)
        report.add("b", 10)
        assert report.per_vertex["a"] == 5
        assert report.total_words == 15
        assert report.max_words == 10
        assert report.mean_words == 7.5

    def test_merge_is_additive(self):
        left = SizeReport({"a": 1})
        right = SizeReport({"a": 2, "b": 3})
        merged = left.merge(right)
        assert merged.per_vertex == {"a": 3, "b": 3}
        # Inputs untouched.
        assert left.per_vertex == {"a": 1}

    def test_from_counts(self):
        report = SizeReport.from_counts([("x", 4), ("y", 6), ("x", 1)])
        assert report.per_vertex == {"x": 5, "y": 6}
