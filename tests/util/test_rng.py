import random

from repro.util.rng import derive_seed, ensure_rng, seed_fingerprint, spawn_rng


class TestEnsureRng:
    def test_none_gives_random_instance(self):
        assert isinstance(ensure_rng(None), random.Random)

    def test_int_is_deterministic(self):
        a = ensure_rng(42).random()
        b = ensure_rng(42).random()
        assert a == b

    def test_different_seeds_differ(self):
        assert ensure_rng(1).random() != ensure_rng(2).random()

    def test_existing_rng_passed_through(self):
        rng = random.Random(7)
        assert ensure_rng(rng) is rng


class TestSpawnRng:
    def test_child_is_deterministic_given_parent_state(self):
        a = spawn_rng(random.Random(5)).random()
        b = spawn_rng(random.Random(5)).random()
        assert a == b

    def test_salt_changes_stream(self):
        a = spawn_rng(random.Random(5), salt=1).random()
        b = spawn_rng(random.Random(5), salt=2).random()
        assert a != b

    def test_child_independent_of_parent_consumption(self):
        parent = random.Random(9)
        child = spawn_rng(parent)
        before = child.random()
        parent2 = random.Random(9)
        child2 = spawn_rng(parent2)
        parent2.random()  # consuming parent after spawn must not matter
        assert child2.random() == before


class TestSeedFingerprint:
    def test_int_is_identity(self):
        assert seed_fingerprint(42) == 42

    def test_random_instance_consumes_one_draw(self):
        assert seed_fingerprint(random.Random(5)) == random.Random(5).getrandbits(64)

    def test_none_draws_fresh_entropy(self):
        assert seed_fingerprint(None) != seed_fingerprint(None)


class TestDeriveSeed:
    def test_same_base_and_key_same_child(self):
        assert derive_seed(7, "worker", 3) == derive_seed(7, "worker", 3)

    def test_distinct_keys_distinct_children(self):
        children = {derive_seed(7, "worker", i) for i in range(100)}
        assert len(children) == 100

    def test_distinct_bases_distinct_children(self):
        assert derive_seed(1, "x") != derive_seed(2, "x")

    def test_independent_of_sibling_order(self):
        # Unlike stream sharing, deriving child 5 first and child 2
        # second gives the same values as the reverse order.
        a5, a2 = derive_seed(3, "w", 5), derive_seed(3, "w", 2)
        b2, b5 = derive_seed(3, "w", 2), derive_seed(3, "w", 5)
        assert (a5, a2) == (b5, b2)

    def test_fits_in_64_bits(self):
        assert 0 <= derive_seed(0, "k") < 2**64
