import random

from repro.util.rng import ensure_rng, spawn_rng


class TestEnsureRng:
    def test_none_gives_random_instance(self):
        assert isinstance(ensure_rng(None), random.Random)

    def test_int_is_deterministic(self):
        a = ensure_rng(42).random()
        b = ensure_rng(42).random()
        assert a == b

    def test_different_seeds_differ(self):
        assert ensure_rng(1).random() != ensure_rng(2).random()

    def test_existing_rng_passed_through(self):
        rng = random.Random(7)
        assert ensure_rng(rng) is rng


class TestSpawnRng:
    def test_child_is_deterministic_given_parent_state(self):
        a = spawn_rng(random.Random(5)).random()
        b = spawn_rng(random.Random(5)).random()
        assert a == b

    def test_salt_changes_stream(self):
        a = spawn_rng(random.Random(5), salt=1).random()
        b = spawn_rng(random.Random(5), salt=2).random()
        assert a != b

    def test_child_independent_of_parent_consumption(self):
        parent = random.Random(9)
        child = spawn_rng(parent)
        before = child.random()
        parent2 = random.Random(9)
        child2 = spawn_rng(parent2)
        parent2.random()  # consuming parent after spawn must not matter
        assert child2.random() == before
