import math

import pytest

from repro.core import claim1_landmarks, epsilon_cover_portals, min_portal_pair
from repro.core.portals import epsilon_cover_portals_at

INF = float("inf")


def linear_path(n):
    """A unit-weight path with vertices 0..n-1 and prefix = positions."""
    return list(range(n)), [float(i) for i in range(n)]


def check_cover(path, prefix, dist, portals, epsilon):
    """The defining property of an epsilon-cover."""
    for i, x in enumerate(path):
        dx = dist.get(x, INF)
        if dx == INF:
            continue
        best = min(
            dist[path[c]] + abs(prefix[c] - prefix[i]) for c, _ in portals
        )
        assert best <= (1 + epsilon) * dx + 1e-9, (i, best, dx)


class TestEpsilonCover:
    def test_cover_property_uniform_distances(self):
        path, prefix = linear_path(30)
        dist = {i: 10.0 + abs(i - 15) for i in path}
        for eps in (0.5, 0.25, 0.1):
            portals = epsilon_cover_portals(path, prefix, dist, eps)
            check_cover(path, prefix, dist, portals, eps)

    def test_cover_property_random_distances(self):
        import random

        rng = random.Random(3)
        path, prefix = linear_path(50)
        # Distances satisfying the 1-Lipschitz property along the path
        # (as real d_J(v, .) values do on a shortest path).
        dist = {0: rng.uniform(1, 20)}
        for i in range(1, 50):
            lo = max(0.5, dist[i - 1] - 1)
            dist[i] = rng.uniform(lo, dist[i - 1] + 1)
        portals = epsilon_cover_portals(path, prefix, dist, 0.2)
        check_cover(path, prefix, dist, portals, 0.2)

    def test_smaller_epsilon_means_more_portals(self):
        path, prefix = linear_path(200)
        dist = {i: 5.0 + 0.3 * abs(i - 100) for i in path}
        few = epsilon_cover_portals(path, prefix, dist, 1.0)
        many = epsilon_cover_portals(path, prefix, dist, 0.05)
        assert len(many) >= len(few)

    def test_vertex_on_path_gets_itself(self):
        path, prefix = linear_path(10)
        dist = {i: float(abs(i - 4)) for i in path}  # v == path[4]
        portals = epsilon_cover_portals(path, prefix, dist, 0.5)
        assert (4, 0.0) in portals

    def test_positional_variant_matches_dict_form(self):
        import random

        rng = random.Random(11)
        path, prefix = linear_path(40)
        dist = {0: rng.uniform(1, 20)}
        for i in range(1, 40):
            dist[i] = rng.uniform(max(0.5, dist[i - 1] - 1), dist[i - 1] + 1)
        # Knock some vertices unreachable to exercise the INF handling.
        del dist[7], dist[8]
        pos_dist = [dist.get(x, INF) for x in path]
        for eps in (1.0, 0.25, 0.05):
            assert epsilon_cover_portals_at(
                prefix, pos_dist, eps
            ) == epsilon_cover_portals(path, prefix, dist, eps)

    def test_positional_variant_all_unreachable(self):
        path, prefix = linear_path(6)
        assert epsilon_cover_portals_at(prefix, [INF] * 6, 0.25) == []

    def test_unreachable_vertices_skipped(self):
        path, prefix = linear_path(10)
        dist = {0: 1.0, 1: 1.5}  # the rest unreachable
        portals = epsilon_cover_portals(path, prefix, dist, 0.5)
        assert all(idx in (0, 1) for idx, _ in portals)

    def test_fully_unreachable_path(self):
        path, prefix = linear_path(5)
        assert epsilon_cover_portals(path, prefix, {}, 0.5) == []

    def test_invalid_epsilon(self):
        path, prefix = linear_path(5)
        with pytest.raises(ValueError):
            epsilon_cover_portals(path, prefix, {0: 1.0}, 0.0)

    def test_portal_count_grows_logarithmically_not_linearly(self):
        # Doubling the path length should add O(1/eps) portals, not 2x.
        dist_fn = lambda i, c: 3.0 + abs(i - c) * 0.9
        sizes = []
        for n in (64, 256, 1024):
            path, prefix = linear_path(n)
            dist = {i: dist_fn(i, n // 2) for i in path}
            portals = epsilon_cover_portals(path, prefix, dist, 0.25)
            sizes.append(len(portals))
        assert sizes[2] - sizes[1] <= 2 * (sizes[1] - sizes[0]) + 4


class TestClaim1Landmarks:
    def test_claim1_contraction_property(self):
        # Claim 1: for any x on Q there is a landmark l with
        # d_Q(l, x) <= (3/4) d_J(v, x).
        path, prefix = linear_path(120)
        c = 37
        d0 = 6.0
        dist = {i: d0 + abs(i - c) * 0.8 for i in path}
        landmarks = claim1_landmarks(path, prefix, dist, aspect_ratio=120)
        for i, x in enumerate(path):
            best = min(abs(prefix[l] - prefix[i]) for l in landmarks)
            assert best <= 0.75 * dist[x] + 1e-9

    def test_zero_distance_returns_single(self):
        path, prefix = linear_path(20)
        dist = {i: float(abs(i - 7)) for i in path}
        assert claim1_landmarks(path, prefix, dist, aspect_ratio=20) == [7]

    def test_landmark_count_logarithmic_in_delta(self):
        path, prefix = linear_path(2000)
        dist = {i: 4.0 + abs(i - 1000) * 0.5 for i in path}
        landmarks = claim1_landmarks(path, prefix, dist, aspect_ratio=2000)
        assert len(landmarks) <= 2 * (11 + math.ceil(math.log2(2000)) + 1) + 1

    def test_unreachable_path(self):
        path, prefix = linear_path(5)
        assert claim1_landmarks(path, prefix, {}, aspect_ratio=4) == []

    def test_single_vertex_path(self):
        assert claim1_landmarks([42], [0.0], {42: 3.0}, aspect_ratio=8) == [0]


class TestMinPortalPair:
    def brute(self, eu, ev):
        return min(
            du + abs(pu - pv) + dv for pu, du in eu for pv, dv in ev
        )

    def test_matches_bruteforce_random(self):
        import random

        rng = random.Random(11)
        for _ in range(50):
            eu = sorted(
                (rng.uniform(0, 100), rng.uniform(0, 50)) for _ in range(rng.randint(1, 8))
            )
            ev = sorted(
                (rng.uniform(0, 100), rng.uniform(0, 50)) for _ in range(rng.randint(1, 8))
            )
            assert min_portal_pair(eu, ev) == pytest.approx(self.brute(eu, ev))

    def test_empty_side_gives_inf(self):
        assert min_portal_pair([], [(0.0, 1.0)]) == INF
        assert min_portal_pair([(0.0, 1.0)], []) == INF

    def test_identical_position(self):
        assert min_portal_pair([(5.0, 2.0)], [(5.0, 3.0)]) == 5.0

    def test_single_entries(self):
        assert min_portal_pair([(0.0, 1.0)], [(10.0, 2.0)]) == 13.0
