import pytest

from repro.core import PathSeparator, SeparatorPhase
from repro.core.separator import singleton_separator
from repro.generators import grid_2d
from repro.graphs import Graph
from repro.util.errors import InvalidSeparatorError


@pytest.fixture
def grid5():
    return grid_2d(5)


def middle_row_separator():
    return PathSeparator(
        phases=[SeparatorPhase(paths=[[(2, c) for c in range(5)]])]
    )


class TestStructure:
    def test_counts(self):
        sep = PathSeparator(
            phases=[
                SeparatorPhase(paths=[[0], [1, 2]]),
                SeparatorPhase(paths=[[3]]),
            ]
        )
        assert sep.num_phases == 2
        assert sep.num_paths == 3
        assert sep.vertices() == {0, 1, 2, 3}

    def test_strongness(self):
        assert middle_row_separator().is_strong
        two_phase = PathSeparator(
            phases=[SeparatorPhase(paths=[[0]]), SeparatorPhase(paths=[[1]])]
        )
        assert not two_phase.is_strong
        assert PathSeparator().is_strong  # vacuously

    def test_all_paths_flattened(self):
        sep = PathSeparator(
            phases=[SeparatorPhase(paths=[[0], [1]]), SeparatorPhase(paths=[[2]])]
        )
        assert sep.all_paths() == [[0], [1], [2]]

    def test_singleton_separator(self):
        sep = singleton_separator([5, 7])
        assert sep.is_strong
        assert sep.num_paths == 2
        assert sep.vertices() == {5, 7}


class TestValidateP1:
    def test_middle_row_is_valid(self, grid5):
        middle_row_separator().validate(grid5)

    def test_non_shortest_path_rejected(self, grid5):
        # An L-shaped detour (0,0)->(0,1)->(1,1)->(1,0) is not minimal
        # cost between its endpoints ((0,0) and (1,0) are adjacent).
        bad = PathSeparator(
            phases=[SeparatorPhase(paths=[[(0, 0), (0, 1), (1, 1), (1, 0)]])]
        )
        with pytest.raises(InvalidSeparatorError, match=r"\(P1\)"):
            bad.validate(grid5)

    def test_non_adjacent_consecutive_rejected(self, grid5):
        bad = PathSeparator(
            phases=[SeparatorPhase(paths=[[(0, 0), (2, 2)]])]
        )
        with pytest.raises(InvalidSeparatorError, match="not adjacent"):
            bad.validate(grid5)

    def test_repeated_vertex_rejected(self, grid5):
        bad = PathSeparator(
            phases=[SeparatorPhase(paths=[[(0, 0), (0, 1), (0, 0)]])]
        )
        with pytest.raises(InvalidSeparatorError, match="repeats"):
            bad.validate(grid5)

    def test_vertex_outside_graph_rejected(self, grid5):
        bad = PathSeparator(phases=[SeparatorPhase(paths=[[(9, 9)]])])
        with pytest.raises(InvalidSeparatorError, match="residual"):
            bad.validate(grid5)

    def test_phase_residual_enforced(self, grid5):
        # Second phase reuses a vertex removed by the first.
        bad = PathSeparator(
            phases=[
                SeparatorPhase(paths=[[(2, c) for c in range(5)]]),
                SeparatorPhase(paths=[[(2, 0)]]),
            ]
        )
        with pytest.raises(InvalidSeparatorError, match="residual"):
            bad.validate(grid5)

    def test_empty_path_rejected(self, grid5):
        bad = PathSeparator(phases=[SeparatorPhase(paths=[[]])])
        with pytest.raises(InvalidSeparatorError, match="empty"):
            bad.validate(grid5)

    def test_path_shortest_in_residual_not_original(self):
        # Phase 0 removes the cheap middle; phase 1's path is shortest
        # only in the residual graph — still valid per Definition 1.
        g = Graph(
            [
                ("a", "m", 1.0),
                ("m", "b", 1.0),
                ("a", "x", 5.0),
                ("x", "b", 5.0),
                ("x", "y", 1.0),
            ]
        )
        sep = PathSeparator(
            phases=[
                SeparatorPhase(paths=[["m"]]),
                SeparatorPhase(paths=[["a", "x", "b"]]),
            ]
        )
        sep.validate(g)


class TestValidateP3:
    def test_unbalanced_rejected(self, grid5):
        corner_only = PathSeparator(phases=[SeparatorPhase(paths=[[(0, 0)]])])
        with pytest.raises(InvalidSeparatorError, match=r"\(P3\)"):
            corner_only.validate(grid5)

    def test_within_restriction(self, grid5):
        # Restricted to the top two rows, a middle-column vertex pair halves it.
        within = {(r, c) for r in range(2) for c in range(5)}
        sep = PathSeparator(
            phases=[SeparatorPhase(paths=[[(0, 2), (1, 2)]])]
        )
        sep.validate(grid5, within=within)


class TestMaxComponentFraction:
    def test_balanced(self, grid5):
        frac = middle_row_separator().max_component_fraction(grid5)
        assert frac == pytest.approx(10 / 25)

    def test_empty_graph(self):
        assert PathSeparator().max_component_fraction(Graph()) == 0.0

    def test_full_removal(self):
        g = Graph([(0, 1)])
        sep = PathSeparator(phases=[SeparatorPhase(paths=[[0, 1]])])
        assert sep.max_component_fraction(g) == 0.0
