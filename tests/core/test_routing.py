import pytest

from repro.core import CompactRoutingScheme, build_decomposition
from repro.generators import grid_2d, random_tree
from repro.graphs import Graph, dijkstra
from repro.util.errors import GraphError

from tests.conftest import family_graphs, pair_sample


class TestDelivery:
    def test_routes_reach_target_on_all_families(self):
        for name, g in family_graphs("small"):
            scheme = CompactRoutingScheme.build(g)
            for u, v in pair_sample(g, 40, seed=1):
                hops = scheme.route(u, v)
                assert hops[0] == u and hops[-1] == v, name

    def test_consecutive_hops_are_edges(self, small_grid):
        scheme = CompactRoutingScheme.build(small_grid)
        for u, v in pair_sample(small_grid, 40, seed=2):
            hops = scheme.route(u, v)
            for a, b in zip(hops, hops[1:]):
                assert small_grid.has_edge(a, b)

    def test_route_to_self(self, small_grid):
        scheme = CompactRoutingScheme.build(small_grid)
        assert scheme.route((1, 1), (1, 1)) == [(1, 1)]

    def test_unknown_vertex_rejected(self, small_grid):
        scheme = CompactRoutingScheme.build(small_grid)
        with pytest.raises(GraphError):
            scheme.route((0, 0), "ghost")


class TestStretch:
    def test_worst_case_stretch_bound(self):
        # The anchor scheme's provable bound is 3.
        for name, g in family_graphs("small"):
            scheme = CompactRoutingScheme.build(g)
            for u, v in pair_sample(g, 40, seed=3):
                cost = scheme.route_cost(scheme.route(u, v))
                true = dijkstra(g, u)[0][v]
                assert cost <= 3 * true + 1e-6, (name, u, v)

    def test_exact_on_trees(self):
        g = random_tree(80, weight_range=(1.0, 5.0), seed=4)
        scheme = CompactRoutingScheme.build(g)
        for u, v in pair_sample(g, 50, seed=5):
            cost = scheme.route_cost(scheme.route(u, v))
            true = dijkstra(g, u)[0][v]
            assert cost == pytest.approx(true)

    def test_mean_stretch_reasonable_on_grid(self):
        g = grid_2d(10)
        scheme = CompactRoutingScheme.build(g)
        ratios = []
        for u, v in pair_sample(g, 100, seed=6):
            cost = scheme.route_cost(scheme.route(u, v))
            ratios.append(cost / dijkstra(g, u)[0][v])
        assert sum(ratios) / len(ratios) <= 1.6


class TestCompactness:
    def test_tables_polylog(self):
        per_vertex = {}
        for side in (5, 10):
            g = grid_2d(side)
            scheme = CompactRoutingScheme.build(g)
            per_vertex[side] = scheme.table_report().mean_words
        # 4x more vertices must not mean 4x bigger tables.
        assert per_vertex[10] <= 3 * per_vertex[5]

    def test_labels_smaller_than_tables(self, small_grid):
        scheme = CompactRoutingScheme.build(small_grid)
        assert (
            scheme.label_report().mean_words
            <= scheme.table_report().mean_words
        )

    def test_every_vertex_has_table(self, small_grid):
        scheme = CompactRoutingScheme.build(small_grid)
        assert set(scheme.tables) == set(small_grid.vertices())


class TestKeySelection:
    def test_shared_key_exists_for_connected_pairs(self, small_grid):
        scheme = CompactRoutingScheme.build(small_grid)
        for u, v in pair_sample(small_grid, 30, seed=7):
            assert scheme.select_key(u, v) is not None

    def test_selected_key_estimate_equals_route_cost(self, weighted_grid):
        # The anchor estimate is the exact cost of the route we take.
        scheme = CompactRoutingScheme.build(weighted_grid)
        for u, v in pair_sample(weighted_grid, 30, seed=8):
            key = scheme.select_key(u, v)
            eu = scheme.labels[u].entries[key]
            ev = scheme.labels[v].entries[key]
            est = eu[2] + abs(eu[1] - ev[1]) + ev[2]
            cost = scheme.route_cost(scheme.route(u, v))
            assert cost <= est + 1e-6
