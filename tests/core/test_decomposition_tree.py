import math

import pytest

from repro.core import (
    GreedyPeelingEngine,
    TreeCentroidEngine,
    build_decomposition,
)
from repro.generators import grid_2d, k_tree, random_tree, series_parallel_graph
from repro.graphs import Graph
from repro.util.errors import NotConnectedError

from tests.conftest import family_graphs


class TestBuild:
    def test_every_vertex_has_home(self, small_grid):
        tree = build_decomposition(small_grid)
        assert set(tree.home) == set(small_grid.vertices())

    def test_root_is_whole_graph(self, small_grid):
        tree = build_decomposition(small_grid)
        assert tree.root().vertices == frozenset(small_grid.vertices())

    def test_depth_bound(self):
        for name, g in family_graphs("small"):
            tree = build_decomposition(g)
            assert tree.depth <= math.log2(g.num_vertices) + 1, name

    def test_validate_passes_for_families(self):
        for name, g in family_graphs("small"):
            build_decomposition(g, validate=True)

    def test_disconnected_rejected(self):
        g = Graph([(0, 1)])
        g.add_vertex(9)
        with pytest.raises(NotConnectedError):
            build_decomposition(g)

    def test_single_vertex_graph(self):
        g = Graph()
        g.add_vertex("only")
        tree = build_decomposition(g)
        assert tree.num_nodes == 1
        assert tree.home["only"][0] == 0

    def test_empty_graph(self):
        tree = build_decomposition(Graph())
        assert tree.num_nodes == 0


class TestRootPaths:
    def test_root_path_starts_at_root(self, small_grid):
        tree = build_decomposition(small_grid)
        for v in small_grid.vertices():
            chain = tree.root_path(v)
            assert chain[0] == 0
            assert tree.home[v][0] == chain[-1]

    def test_root_path_depths_increase(self, small_grid):
        tree = build_decomposition(small_grid)
        for v in small_grid.vertices():
            chain = tree.root_path(v)
            depths = [tree.nodes[i].depth for i in chain]
            assert depths == list(range(len(chain)))

    def test_vertex_in_every_node_on_its_root_path(self, small_grid):
        tree = build_decomposition(small_grid)
        for v in small_grid.vertices():
            for node_id in tree.root_path(v):
                assert v in tree.nodes[node_id].vertices


class TestPathMetadata:
    def test_prefix_monotone(self, weighted_grid):
        tree = build_decomposition(weighted_grid)
        for key in tree.all_path_keys():
            prefix = tree.path_prefix(key)
            assert prefix[0] == 0.0
            assert all(a < b for a, b in zip(prefix, prefix[1:]))

    def test_prefix_matches_edge_weights(self, weighted_grid):
        tree = build_decomposition(weighted_grid)
        for key in tree.all_path_keys():
            path = tree.path_vertices(key)
            prefix = tree.path_prefix(key)
            for i, (u, v) in enumerate(zip(path, path[1:])):
                gap = prefix[i + 1] - prefix[i]
                assert gap == pytest.approx(weighted_grid.weight(u, v))

    def test_residual_sets_shrink(self, small_grid):
        tree = build_decomposition(small_grid)
        for node in tree.nodes:
            residuals = [set(J) for _, J in node.residual_sets()]
            for a, b in zip(residuals, residuals[1:]):
                assert b < a or b == a - set()


class TestStats:
    def test_stats_keys(self, small_grid):
        stats = build_decomposition(small_grid).stats()
        for key in ("n", "depth", "max_paths_per_node", "strong_fraction"):
            assert key in stats

    def test_tree_engine_k_is_one(self):
        g = random_tree(100, seed=1)
        tree = build_decomposition(g, engine=TreeCentroidEngine())
        assert tree.max_paths_per_node == 1

    def test_ktree_k_at_most_width_plus_one(self):
        g, _ = k_tree(80, 3, seed=2)
        tree = build_decomposition(g)
        assert tree.max_paths_per_node <= 4

    def test_node_count_at_most_n(self, small_grid):
        tree = build_decomposition(small_grid)
        assert tree.num_nodes <= small_grid.num_vertices


class TestChildSizes:
    def test_children_halve(self):
        g = series_parallel_graph(90, seed=3)
        tree = build_decomposition(g)
        for node in tree.nodes:
            for child_id in node.children:
                assert tree.nodes[child_id].size <= node.size / 2


class TestDotExport:
    def test_dot_structure(self, small_grid):
        tree = build_decomposition(small_grid)
        dot = tree.to_dot()
        assert dot.startswith("digraph")
        assert dot.rstrip().endswith("}")
        # One node statement per decomposition node, one edge per child.
        assert dot.count("[label=") == tree.num_nodes
        edges = sum(len(n.children) for n in tree.nodes)
        assert dot.count("->") == edges

    def test_dot_truncates_long_separators(self, small_grid):
        tree = build_decomposition(small_grid)
        dot = tree.to_dot(max_label_vertices=1)
        assert "..." in dot
