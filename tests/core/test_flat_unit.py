"""Unit and regression tests for the flat core's edges.

Covers what the differential wall cannot: the canonical-vertex rule on
``CSRGraph`` (the PR 7 shard-key regression, now at the index layer),
backend resolution with and without numpy/scipy, path-key encoding
bounds, the small-residual dispatch, the construction kernel's source
validation, and the big-endian decode fallback in ``binfmt`` — all
without a skip in sight.
"""

import math
import random

import pytest

from repro.core import (
    BACKENDS,
    CSRGraph,
    FlatBackendUnavailable,
    FlatLabel,
    build_decomposition,
    build_labeling,
    dump_labeling,
    flat_available,
    flat_estimate,
    resolve_backend,
)
from repro.core import flat as flat_mod
from repro.core.binfmt import BinaryLabelReader, write_labeling_binary
from repro.core.decomposition import phase_portal_distance_maps
from repro.core.flat import (
    SMALL_RESIDUAL,
    FlatBuildContext,
    encode_path_key,
    flat_distance_maps,
    flat_phase_distance_maps,
    flat_unit_entries,
)
from repro.core.labeling import VertexLabel, _unit_entries, estimate_distance
from repro.dynamic.rebuild import (
    EdgeUpdate,
    delta_to_dict,
    incremental_relabel,
)
from repro.generators import grid_2d, random_delaunay_graph
from repro.graphs import Graph
from repro.graphs.shortest_paths import batched_dijkstra
from repro.util.errors import GraphError
from tests.dynamic.test_rebuild import random_reweight


class TestCanonicalVertexRegression:
    """``1`` and ``1.0`` are ONE vertex, at every layer.

    PR 7 fixed the shard router (``shard_key_bytes`` canonicalizes
    before hashing); the CSR index must obey the same rule or a
    JSON-round-tripped graph (integral floats) would silently diverge
    from the in-memory one (ints)."""

    def test_int_and_integral_float_resolve_to_one_index(self):
        g = Graph([(0, 1, 2.0), (1, 2, 3.0)])
        csr = CSRGraph.from_graph(g)
        for v in (0, 1, 2):
            assert csr.index_of(float(v)) == csr.index_of(v)
            assert float(v) in csr and v in csr

    def test_float_built_graph_answers_int_queries(self):
        # The JSON-round-trip shape: the graph's own vertices are
        # integral floats, the query keys are ints.
        g = Graph([(0.0, 1.0, 2.0), (1.0, 2.0, 3.0)])
        csr = CSRGraph.from_graph(g)
        assert csr.index_of(1) == csr.index_of(1.0)
        assert csr.neighbors(2) == csr.neighbors(2.0)

    def test_tuple_vertices_canonicalize_recursively(self):
        g = Graph([((0, 0.0), (1.0, 0), 1.5)])
        csr = CSRGraph.from_graph(g)
        assert csr.index_of((0.0, 0)) == csr.index_of((0, 0))
        assert (1, 0.0) in csr

    def test_unknown_vertex_raises_grapherror(self):
        csr = CSRGraph.from_graph(Graph([(0, 1, 1.0)]))
        with pytest.raises(GraphError, match="not in graph"):
            csr.index_of(7)
        assert 7 not in csr

    def test_canonical_collision_is_rejected(self):
        # Two distinct dict keys that canonicalize to the same index
        # key need a pathological __hash__ to coexist in a Graph at
        # all; if they ever do, from_graph must refuse rather than
        # silently merge or shadow them.
        class AliasedFloat(float):
            __hash__ = object.__hash__

            def __eq__(self, other):
                return self is other

            def __ne__(self, other):
                return self is not other

        one = AliasedFloat(1.0)
        g = Graph([(1, 0, 1.0), (one, 2, 1.0)])
        assert len(set(g.vertices())) == 4  # 1 and one really coexist
        with pytest.raises(GraphError, match="canonicalize"):
            CSRGraph.from_graph(g)

    def test_flat_labeling_matches_dict_on_float_keyed_graph(self):
        g = Graph([(0.0, 1.0, 2.0), (1.0, 2.0, 3.0), (2.0, 3.0, 1.0)])
        tree = build_decomposition(g)
        ref = build_labeling(g, tree, epsilon=0.5, backend="dict")
        flat = build_labeling(g, tree, epsilon=0.5, backend="flat")
        assert dump_labeling(flat) == dump_labeling(ref)


class TestBackendResolution:
    def test_explicit_backends_resolve_to_themselves(self):
        assert resolve_backend("dict") == "dict"
        assert flat_available()  # the test image ships numpy/scipy
        assert resolve_backend("flat") == "flat"

    def test_auto_and_none_prefer_flat_when_available(self):
        assert resolve_backend(None) == "flat"
        assert resolve_backend("auto") == "flat"

    def test_unknown_backend_is_a_valueerror(self):
        with pytest.raises(ValueError, match="unknown backend"):
            resolve_backend("simd")
        assert set(BACKENDS) == {"auto", "dict", "flat"}

    def test_missing_numpy_degrades_auto_and_refuses_flat(self, monkeypatch):
        monkeypatch.setattr(flat_mod, "_np", None)
        monkeypatch.setattr(
            flat_mod, "_IMPORT_ERROR", ImportError("no module named numpy")
        )
        assert not flat_available()
        assert resolve_backend(None) == "dict"
        assert resolve_backend("auto") == "dict"
        with pytest.raises(FlatBackendUnavailable, match="numpy"):
            resolve_backend("flat")
        with pytest.raises(FlatBackendUnavailable):
            CSRGraph.from_graph(Graph([(0, 1, 1.0)]))

    def test_build_labeling_honors_degraded_auto(self, monkeypatch):
        monkeypatch.setattr(flat_mod, "_np", None)
        g = Graph([(0, 1, 1.0), (1, 2, 2.0)])
        tree = build_decomposition(g)
        labeling = build_labeling(g, tree, epsilon=0.5)  # auto -> dict
        assert labeling.estimate(0, 2) == 3.0
        with pytest.raises(FlatBackendUnavailable):
            build_labeling(g, tree, epsilon=0.5, backend="flat")


class TestPathKeyEncoding:
    def test_code_order_equals_tuple_order(self):
        keys = [
            (0, 0, 0), (0, 0, 1), (0, 1, 0), (1, 0, 0),
            (1, 2, 3), (1, 2, 4), (2, 0, 0), (5, -1, 7), (5, 0, -9),
        ]
        codes = [encode_path_key(k) for k in keys]
        assert sorted(codes) == [encode_path_key(k) for k in sorted(keys)]
        assert len(set(codes)) == len(keys)

    def test_out_of_range_components_are_rejected(self):
        with pytest.raises(GraphError, match="outside the flat key range"):
            encode_path_key((0, 1 << 31, 0))
        with pytest.raises(GraphError, match="outside the flat key range"):
            encode_path_key((0, 0, -(1 << 31) - 1))


class TestFlatLabelShape:
    def test_words_and_portals_match_reference(self):
        g = random_delaunay_graph(48, seed=5)[0]
        tree = build_decomposition(g)
        labeling = build_labeling(g, tree, epsilon=0.25, backend="dict")
        for lab in labeling.labels.values():
            fl = FlatLabel.from_label(lab)
            assert fl.words == lab.words
            assert fl.num_portals == sum(
                len(p) for p in lab.entries.values()
            )

    def test_to_label_is_memoized_identity(self):
        lab = VertexLabel(7, {(0, 0, 0): [(0.0, 1.5), (2.0, 0.5)]})
        fl = FlatLabel.from_label(lab)
        assert fl.to_label() is fl.to_label()

    def test_same_vertex_short_circuits_to_zero(self):
        lab = VertexLabel("x", {})
        fl = FlatLabel.from_label(lab)
        assert flat_estimate(fl, fl) == 0.0
        assert estimate_distance(lab, lab) == 0.0


class TestConstructionKernelEdges:
    def test_small_residual_delegates_to_dict_kernel(self):
        g = grid_2d(3, weight_range=(1.0, 5.0), seed=2)  # 9 < SMALL_RESIDUAL
        assert len(set(g.vertices())) < SMALL_RESIDUAL
        tree = build_decomposition(g)
        ctx = FlatBuildContext(g, tree)
        units = tree.phase_units()
        node_id, phase_idx, residual = units[0]
        assert flat_unit_entries(
            ctx, node_id, phase_idx, residual, 0.25
        ) == _unit_entries(g, tree, node_id, phase_idx, residual, 0.25)

    def test_large_residual_matches_dict_kernel(self):
        # The flat kernel walks vertices in CSR-index order, the dict
        # kernel in residual order; the builder keys entries by
        # (vertex, path key), so only the *set* of triples must agree
        # — and it must, bit for bit, portal list included.
        g = grid_2d(7, weight_range=(1.0, 5.0), seed=3)  # 49 >= threshold
        tree = build_decomposition(g)
        ctx = FlatBuildContext(g, tree)
        checked = 0
        for node_id, phase_idx, residual in tree.phase_units():
            if len(residual) < SMALL_RESIDUAL:
                continue
            flat_out, flat_sources = flat_unit_entries(
                ctx, node_id, phase_idx, residual, 0.25
            )
            ref_out, ref_sources = _unit_entries(
                g, tree, node_id, phase_idx, residual, 0.25
            )
            assert flat_sources == ref_sources
            assert {
                (v, key): portals for v, key, portals in flat_out
            } == {(v, key): portals for v, key, portals in ref_out}
            assert len(flat_out) == len(ref_out)
            checked += 1
        assert checked  # the graph is big enough to hit the flat path

    def test_source_outside_residual_mirrors_reference_error(self):
        g = grid_2d(7, weight_range=(1.0, 5.0), seed=3)
        tree = build_decomposition(g)
        ctx = FlatBuildContext(g, tree)
        for node_id, phase_idx, residual in tree.phase_units():
            if len(residual) < SMALL_RESIDUAL:
                continue
            phase = tree.nodes[node_id].separator.phases[phase_idx]
            victim = phase.paths[0][0]
            broken = [v for v in residual if v != victim]
            if len(broken) < SMALL_RESIDUAL:
                continue
            with pytest.raises(GraphError, match="not in the allowed set"):
                flat_unit_entries(ctx, node_id, phase_idx, broken, 0.25)
            with pytest.raises(GraphError, match="not in the allowed set"):
                _unit_entries(g, tree, node_id, phase_idx, broken, 0.25)
            return
        pytest.fail("no unit large enough to exercise the flat kernel")


class TestBigEndianFallback:
    def test_struct_decode_path_equals_fast_path(self, tmp_path, monkeypatch):
        # Force the portable struct-unpack branch of the /2 flat
        # decoder and require bit-identical FlatLabels: on a
        # little-endian host this proves the big-endian fallback reads
        # the same floats the array('d') bulk path does.
        g = random_delaunay_graph(40, seed=9)[0]
        tree = build_decomposition(g)
        labeling = build_labeling(g, tree, epsilon=0.25, backend="flat")
        path = tmp_path / "labels.bin"
        write_labeling_binary(labeling, path, num_shards=4)

        with BinaryLabelReader(path) as reader:
            fast = {v: reader.get_flat(v) for v in reader.iter_vertices()}
        import repro.core.binfmt as binfmt

        monkeypatch.setattr(binfmt, "_LITTLE_ENDIAN", False)
        with BinaryLabelReader(path) as reader:
            slow = {v: reader.get_flat(v) for v in reader.iter_vertices()}
        assert fast.keys() == slow.keys()
        for v, a in fast.items():
            b = slow[v]
            assert a.keys == b.keys
            assert list(a.offs) == list(b.offs)
            assert a.runs == b.runs  # bit-equal float payloads
            assert math.isfinite(sum(a.runs)) or len(a.runs) == 0


class TestDynamicFlatHelpers:
    """The flat helpers behind ``incremental_relabel``'s cold-unit
    recomputes: in-place CSR reweights and the distance-map twins of
    ``batched_dijkstra`` / ``phase_portal_distance_maps``."""

    def _case(self, seed=9):
        g = grid_2d(7, weight_range=(1.0, 5.0), seed=seed)  # 49 >= threshold
        tree = build_decomposition(g)
        return g, tree, FlatBuildContext(g, tree)

    def test_set_weight_updates_both_arcs(self):
        g, tree, ctx = self._case()
        u, v = (0, 0), (0, 1)
        assert g.has_edge(u, v)
        ctx.csr.set_weight(u, v, 9.25)
        assert dict(ctx.csr.neighbors(u))[v] == 9.25
        assert dict(ctx.csr.neighbors(v))[u] == 9.25

    def test_set_weight_missing_edge_raises(self):
        g, tree, ctx = self._case()
        with pytest.raises(GraphError, match="no edge"):
            ctx.csr.set_weight((0, 0), (6, 6), 1.0)

    def test_distance_maps_bit_identical_to_batched_dijkstra(self):
        g, tree, ctx = self._case()
        residual = frozenset(g.vertices())
        sources = sorted(residual, key=repr)[:5] * 2  # dupes collapse
        ref = batched_dijkstra(g, sources, allowed=residual)
        flat = flat_distance_maps(ctx, sources, residual)
        assert list(flat) == list(ref)  # same dedup source order
        for s, ref_map in ref.items():
            flat_map = flat[s]
            assert set(flat_map) == set(ref_map)
            for v, d in ref_map.items():
                assert repr(flat_map[v]) == repr(d)

    def test_distance_maps_omit_unreachable(self):
        # Restrict the residual to one grid corner: vertices outside it
        # must be absent from the maps, not stored as inf.
        g, tree, ctx = self._case()
        residual = frozenset(
            (i, j) for i in range(2) for j in range(2)
        )
        flat = flat_distance_maps(ctx, [(0, 0)], residual)
        ref = batched_dijkstra(g, [(0, 0)], allowed=residual)
        assert set(flat[(0, 0)]) == set(ref[(0, 0)]) == residual

    def test_phase_distance_maps_match_reference(self):
        g, tree, ctx = self._case()
        checked = 0
        for node_id, phase_idx, residual in tree.phase_units():
            if len(residual) < SMALL_RESIDUAL:
                continue
            ref = phase_portal_distance_maps(
                g, tree, node_id, phase_idx, residual
            )
            flat = flat_phase_distance_maps(ctx, node_id, phase_idx, residual)
            assert list(flat) == list(ref)
            for s, ref_map in ref.items():
                assert set(flat[s]) == set(ref_map)
                for v, d in ref_map.items():
                    assert repr(flat[s][v]) == repr(d)
            checked += 1
        assert checked

    def test_distance_maps_source_validation_matches_reference(self):
        g, tree, ctx = self._case()
        residual = frozenset(v for v in g.vertices() if v != (0, 0))
        with pytest.raises(GraphError, match="not in the allowed set"):
            flat_distance_maps(ctx, [(0, 0)], residual)
        with pytest.raises(GraphError, match="not in graph"):
            flat_distance_maps(ctx, ["ghost"], residual | {"ghost"})

    def test_incremental_relabel_flat_matches_dict_path(self, monkeypatch):
        # Two independent, bit-identical labelings; one takes the flat
        # cold-unit path, the other is pinned to the pure-Python
        # reference.  Every delta and the final labeling must agree.
        import repro.dynamic.rebuild as rebuild_mod

        def build():
            g = grid_2d(7, weight_range=(1.0, 5.0), seed=11)
            tree = build_decomposition(g)
            return build_labeling(g, tree, epsilon=0.25, backend="dict")

        flat_side, dict_side = build(), build()
        assert dump_labeling(flat_side) == dump_labeling(dict_side)
        rng = random.Random(4)
        updates = []
        for _ in range(4):
            upd = random_reweight(rng, flat_side.graph)
            updates.append(EdgeUpdate(upd.u, upd.v, upd.weight))
        deltas_flat = [
            delta_to_dict(incremental_relabel(flat_side, upd))
            for upd in updates
        ]
        assert flat_side._flat_ctx is not None  # flat path actually ran
        monkeypatch.setattr(rebuild_mod, "_flat_context", lambda lab: None)
        deltas_dict = [
            delta_to_dict(incremental_relabel(dict_side, upd))
            for upd in updates
        ]
        assert deltas_flat == deltas_dict
        assert dump_labeling(flat_side) == dump_labeling(dict_side)
