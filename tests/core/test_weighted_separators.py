"""The vertex-weighted variant of Theorem 1 (the paper's note after the
main proof: lemmas 1 and 5 adapt to vertex weights)."""

import pytest

from repro.core import GreedyPeelingEngine, PathSeparator, SeparatorPhase
from repro.generators import grid_2d, random_tree
from repro.graphs import Graph, connected_components
from repro.util.errors import InvalidSeparatorError


class TestWeightedValidate:
    def test_weighted_balance_accepted(self):
        # Path 0-1-2; all weight on vertex 1; removing 1 balances.
        g = Graph([(0, 1), (1, 2)])
        weights = {0: 1.0, 1: 100.0, 2: 1.0}
        sep = PathSeparator(phases=[SeparatorPhase(paths=[[1]])])
        sep.validate(g, vertex_weight=weights)

    def test_weighted_balance_rejected(self):
        # Counting balance holds but weighted balance does not.
        g = Graph([(0, 1), (1, 2), (2, 3), (3, 4)])
        weights = {0: 1.0, 1: 1.0, 2: 1.0, 3: 1.0, 4: 100.0}
        sep = PathSeparator(phases=[SeparatorPhase(paths=[[2]])])
        sep.validate(g)  # unweighted: fine
        with pytest.raises(InvalidSeparatorError, match=r"\(P3\)"):
            sep.validate(g, vertex_weight=weights)

    def test_fraction_uses_weights(self):
        g = Graph([(0, 1), (1, 2)])
        weights = {0: 8.0, 1: 1.0, 2: 1.0}
        sep = PathSeparator(phases=[SeparatorPhase(paths=[[1]])])
        frac = sep.max_component_fraction(g, vertex_weight=weights)
        assert frac == pytest.approx(0.8)


class TestWeightedGreedyPeeling:
    def test_skewed_weights_on_grid(self):
        g = grid_2d(8)
        # All the weight sits in the top-left quadrant.
        weights = {
            v: (100.0 if v[0] < 4 and v[1] < 4 else 1.0) for v in g.vertices()
        }
        engine = GreedyPeelingEngine(seed=0, vertex_weight=weights)
        sep = engine.find_separator(g)
        sep.validate(g, vertex_weight=weights)

    def test_weighted_separator_targets_heavy_region(self):
        # With the weight concentrated on one corner vertex pair, the
        # separator must disconnect or remove them.
        g = grid_2d(6)
        weights = {v: 1e-6 for v in g.vertices()}
        weights[(0, 0)] = 10.0
        weights[(5, 5)] = 10.0
        engine = GreedyPeelingEngine(seed=0, vertex_weight=weights)
        sep = engine.find_separator(g)
        removed = sep.vertices()
        remaining = set(g.vertices()) - removed
        comps = connected_components(g, within=remaining)
        heavy_together = any(
            (0, 0) in c and (5, 5) in c for c in comps
        )
        assert not heavy_together

    def test_uniform_weights_match_unweighted(self):
        g = random_tree(60, seed=1)
        weights = {v: 1.0 for v in g.vertices()}
        sep_w = GreedyPeelingEngine(seed=3, vertex_weight=weights).find_separator(g)
        sep_u = GreedyPeelingEngine(seed=3).find_separator(g)
        assert sep_w.vertices() == sep_u.vertices()

    def test_zero_weight_vertices_ignored_in_balance(self):
        g = grid_2d(5)
        weights = {v: 0.0 for v in g.vertices()}
        weights[(2, 2)] = 1.0
        engine = GreedyPeelingEngine(seed=0, vertex_weight=weights)
        sep = engine.find_separator(g)
        sep.validate(g, vertex_weight=weights)
