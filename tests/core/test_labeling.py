import pytest

from repro.core import build_decomposition, build_labeling
from repro.core.labeling import estimate_distance
from repro.core.serialize import dump_labeling
from repro.generators import grid_2d, k_tree, random_tree
from repro.graphs import dijkstra
from repro.util.errors import GraphError

from tests.conftest import family_graphs, pair_sample


def stretch_check(graph, labeling, epsilon, pairs):
    for u, v in pairs:
        true = dijkstra(graph, u)[0][v]
        est = labeling.estimate(u, v)
        assert est >= true - 1e-9, (u, v, est, true)
        assert est <= (1 + epsilon) * true + 1e-9, (u, v, est, true)


class TestCorrectness:
    @pytest.mark.parametrize("epsilon", [0.5, 0.25, 0.1])
    def test_stretch_on_grid(self, epsilon):
        g = grid_2d(7)
        tree = build_decomposition(g)
        labeling = build_labeling(g, tree, epsilon=epsilon)
        stretch_check(g, labeling, epsilon, pair_sample(g, 120, seed=1))

    def test_stretch_on_all_families(self):
        for name, g in family_graphs("small"):
            tree = build_decomposition(g)
            labeling = build_labeling(g, tree, epsilon=0.25)
            stretch_check(g, labeling, 0.25, pair_sample(g, 60, seed=2))

    def test_identity_estimate_zero(self, small_grid):
        labeling = build_labeling(small_grid, build_decomposition(small_grid))
        assert labeling.estimate((1, 1), (1, 1)) == 0.0

    def test_adjacent_vertices(self, weighted_grid):
        tree = build_decomposition(weighted_grid)
        labeling = build_labeling(weighted_grid, tree, epsilon=0.25)
        for u, v, w in list(weighted_grid.edges())[:40]:
            true = dijkstra(weighted_grid, u)[0][v]
            est = labeling.estimate(u, v)
            assert true - 1e-9 <= est <= 1.25 * true + 1e-9

    def test_estimate_symmetric(self, small_grid):
        labeling = build_labeling(small_grid, build_decomposition(small_grid))
        for u, v in pair_sample(small_grid, 30, seed=3):
            assert labeling.estimate(u, v) == pytest.approx(
                labeling.estimate(v, u)
            )


class TestDistributedForm:
    def test_two_labels_suffice(self, small_grid):
        # Queries must work from the two labels alone, without the graph.
        labeling = build_labeling(small_grid, build_decomposition(small_grid))
        lu = labeling.label((0, 0))
        lv = labeling.label((4, 4))
        assert estimate_distance(lu, lv) >= 8.0 - 1e-9

    def test_missing_vertex_raises(self, small_grid):
        labeling = build_labeling(small_grid, build_decomposition(small_grid))
        with pytest.raises(GraphError):
            labeling.label("ghost")


class TestLabelSizes:
    def test_size_report_covers_all_vertices(self, small_grid):
        labeling = build_labeling(small_grid, build_decomposition(small_grid))
        report = labeling.size_report()
        assert set(report.per_vertex) == set(small_grid.vertices())

    def test_labels_scale_with_inverse_epsilon(self):
        g = grid_2d(8, weight_range=(1.0, 6.0), seed=4)
        tree = build_decomposition(g)
        loose = build_labeling(g, tree, epsilon=1.0).size_report()
        tight = build_labeling(g, tree, epsilon=0.05).size_report()
        assert tight.mean_words >= loose.mean_words

    def test_label_words_positive(self, small_grid):
        labeling = build_labeling(small_grid, build_decomposition(small_grid))
        assert all(w > 0 for w in labeling.size_report().per_vertex.values())

    def test_polylog_scaling(self):
        # Mean label size should grow far slower than n.
        sizes = {}
        for side in (6, 12):
            g = grid_2d(side)
            labeling = build_labeling(g, build_decomposition(g), epsilon=0.25)
            sizes[side * side] = labeling.size_report().mean_words
        assert sizes[144] <= 4 * sizes[36]  # n grew 4x; labels must not

    def test_invalid_epsilon(self, small_grid):
        tree = build_decomposition(small_grid)
        with pytest.raises(ValueError):
            build_labeling(small_grid, tree, epsilon=-0.5)


class TestParallelBuild:
    def test_parallel_matches_serial_byte_for_byte(self):
        g = grid_2d(7, weight_range=(1.0, 6.0), seed=2)
        tree = build_decomposition(g)
        serial = dump_labeling(build_labeling(g, tree, epsilon=0.25))
        par = dump_labeling(
            build_labeling(g, tree, epsilon=0.25, parallel=4, seed=7)
        )
        assert par == serial

    def test_parallel_on_all_families(self):
        for name, g in family_graphs("small"):
            tree = build_decomposition(g)
            serial = dump_labeling(build_labeling(g, tree, epsilon=0.3))
            par = dump_labeling(
                build_labeling(g, tree, epsilon=0.3, parallel=3, seed=1)
            )
            assert par == serial, name

    def test_parallel_reproducible_across_runs(self):
        g = grid_2d(6)
        tree = build_decomposition(g)
        runs = [
            dump_labeling(
                build_labeling(g, tree, epsilon=0.25, parallel=4, seed=7)
            )
            for _ in range(2)
        ]
        assert runs[0] == runs[1]

    def test_seed_does_not_change_label_bytes(self):
        # The labels are a deterministic function of (graph, tree,
        # epsilon); seed only steers worker child seeds, never output.
        g = grid_2d(6)
        tree = build_decomposition(g)
        a = dump_labeling(build_labeling(g, tree, parallel=2, seed=1))
        b = dump_labeling(build_labeling(g, tree, parallel=2, seed=999))
        assert a == b

    def test_parallel_one_is_serial(self):
        g = grid_2d(5)
        tree = build_decomposition(g)
        assert dump_labeling(
            build_labeling(g, tree, parallel=1)
        ) == dump_labeling(build_labeling(g, tree))

    def test_more_jobs_than_units(self):
        g = random_tree(12, seed=3)
        tree = build_decomposition(g)
        serial = dump_labeling(build_labeling(g, tree))
        assert dump_labeling(build_labeling(g, tree, parallel=64)) == serial


class TestTreeLabeling:
    def test_exact_on_trees(self):
        # With single-vertex separators every estimate goes through an
        # actual cut vertex, so tree estimates are exact.
        g = random_tree(80, weight_range=(1.0, 4.0), seed=5)
        labeling = build_labeling(g, build_decomposition(g), epsilon=0.25)
        for u, v in pair_sample(g, 60, seed=6):
            true = dijkstra(g, u)[0][v]
            assert labeling.estimate(u, v) == pytest.approx(true)
