import pytest

from repro.core import (
    CenterBagEngine,
    FundamentalCycleEngine,
    PathSeparatorOracle,
    build_decomposition,
)
from repro.generators import grid_2d, k_tree, random_delaunay_graph
from repro.graphs import dijkstra

from tests.conftest import family_graphs, pair_sample


class TestBuild:
    def test_build_default_engine(self, small_grid):
        oracle = PathSeparatorOracle.build(small_grid)
        assert oracle.epsilon == 0.25

    def test_build_with_explicit_engine(self):
        g, _ = k_tree(60, 3, seed=1)
        oracle = PathSeparatorOracle.build(g, engine=CenterBagEngine(order="mcs"))
        assert oracle.query(0, 59) >= 1.0

    def test_build_with_precomputed_tree(self, small_grid):
        tree = build_decomposition(small_grid)
        oracle = PathSeparatorOracle.build(small_grid, tree=tree)
        assert oracle.tree is tree

    def test_repr(self, small_grid):
        assert "PathSeparatorOracle" in repr(PathSeparatorOracle.build(small_grid))


class TestQueries:
    @pytest.mark.parametrize("epsilon", [0.5, 0.1])
    def test_stretch_guarantee(self, epsilon):
        g, _ = random_delaunay_graph(100, seed=2)
        oracle = PathSeparatorOracle.build(g, epsilon=epsilon)
        for u, v in pair_sample(g, 100, seed=3):
            true = dijkstra(g, u)[0][v]
            est = oracle.query(u, v)
            assert true - 1e-9 <= est <= (1 + epsilon) * true + 1e-9

    def test_all_families(self):
        for name, g in family_graphs("small"):
            oracle = PathSeparatorOracle.build(g, epsilon=0.3)
            for u, v in pair_sample(g, 40, seed=4):
                true = dijkstra(g, u)[0][v]
                est = oracle.query(u, v)
                assert true - 1e-9 <= est <= 1.3 * true + 1e-9, name

    def test_identity(self, small_grid):
        oracle = PathSeparatorOracle.build(small_grid)
        assert oracle.query((2, 2), (2, 2)) == 0.0

    def test_exhaustive_small_graph(self):
        g = grid_2d(4)
        oracle = PathSeparatorOracle.build(g, epsilon=0.2)
        vertices = sorted(g.vertices())
        for u in vertices:
            dist, _ = dijkstra(g, u)
            for v in vertices:
                if u == v:
                    continue
                est = oracle.query(u, v)
                assert dist[v] - 1e-9 <= est <= 1.2 * dist[v] + 1e-9


class TestSpace:
    def test_space_words_positive(self, small_grid):
        oracle = PathSeparatorOracle.build(small_grid)
        assert oracle.space_words() > 0

    def test_space_equals_size_report_total(self, small_grid):
        oracle = PathSeparatorOracle.build(small_grid)
        assert oracle.space_words() == oracle.size_report().total_words

    def test_near_linear_space(self):
        # Space per vertex should grow mildly (polylog), not linearly.
        per_vertex = {}
        for side in (5, 10):
            g = grid_2d(side)
            oracle = PathSeparatorOracle.build(g, epsilon=0.25)
            per_vertex[side] = oracle.space_words() / g.num_vertices
        assert per_vertex[10] <= 3 * per_vertex[5]


class TestEngineChoiceInvariance:
    def test_different_engines_same_guarantee(self):
        g = grid_2d(7)
        pairs = pair_sample(g, 50, seed=5)
        for engine in (None, FundamentalCycleEngine(seed=0)):
            oracle = PathSeparatorOracle.build(g, epsilon=0.25, engine=engine)
            for u, v in pairs:
                true = dijkstra(g, u)[0][v]
                est = oracle.query(u, v)
                assert true - 1e-9 <= est <= 1.25 * true + 1e-9
