"""The general (coordinate-free) form of Theorem 8: greedy metric nets."""

import pytest

from repro.core import MetricNetOracle, greedy_net, grid3d_doubling_decomposition
from repro.generators import grid_2d, grid_3d, path_graph
from repro.graphs import dijkstra, induced_subgraph

from tests.conftest import pair_sample


class TestGreedyNet:
    def test_covering_property(self):
        g = grid_2d(6)
        subset = set(g.vertices())
        for spacing in (1.0, 2.0, 4.0):
            net = greedy_net(g, subset, spacing)
            covered = set()
            for p in net:
                dist, _ = dijkstra(g, p, allowed=subset, cutoff=spacing)
                covered |= set(dist)
            assert covered == subset

    def test_packing_property(self):
        g = grid_2d(6)
        net = greedy_net(g, set(g.vertices()), 3.0)
        for i, p in enumerate(net):
            dist, _ = dijkstra(g, p)
            for q in net[i + 1 :]:
                assert dist[q] > 3.0

    def test_tiny_spacing_keeps_everything(self):
        g = path_graph(10)
        net = greedy_net(g, set(g.vertices()), 0.5)
        assert len(net) == 10

    def test_huge_spacing_single_point(self):
        g = path_graph(10)
        assert len(greedy_net(g, set(g.vertices()), 100.0)) == 1

    def test_subset_restriction(self):
        g = grid_2d(5)
        subset = {v for v in g.vertices() if v[0] == 2}
        net = greedy_net(g, subset, 1.0)
        assert set(net) <= subset

    def test_deterministic(self):
        g = grid_2d(5)
        subset = set(g.vertices())
        assert greedy_net(g, subset, 2.0) == greedy_net(g, subset, 2.0)


class TestMetricNetOracle:
    @pytest.mark.parametrize("epsilon", [0.5, 0.25])
    def test_stretch_on_cube(self, epsilon):
        g = grid_3d(5)
        oracle = MetricNetOracle(
            g, grid3d_doubling_decomposition(g), epsilon=epsilon
        )
        for u, v in pair_sample(g, 80, seed=1):
            true = dijkstra(g, u)[0][v]
            est = oracle.query(u, v)
            assert true - 1e-9 <= est <= (1 + epsilon) * true + 1e-9

    def test_rectangular_box(self):
        g = grid_3d(3, 4, 6)
        oracle = MetricNetOracle(g, grid3d_doubling_decomposition(g), epsilon=0.25)
        for u, v in pair_sample(g, 50, seed=2):
            true = dijkstra(g, u)[0][v]
            est = oracle.query(u, v)
            assert true - 1e-9 <= est <= 1.25 * true + 1e-9

    def test_weighted_mesh(self):
        # The coordinate oracle assumes unit weights; the metric-net
        # oracle must keep the guarantee on weighted meshes.
        g = grid_3d(4, 4, 4, weight_range=(1.0, 3.0), seed=3)
        oracle = MetricNetOracle(g, grid3d_doubling_decomposition(g), epsilon=0.5)
        for u, v in pair_sample(g, 60, seed=4):
            true = dijkstra(g, u)[0][v]
            est = oracle.query(u, v)
            assert true - 1e-9 <= est <= 1.5 * true + 1e-9

    def test_identity(self):
        g = grid_3d(3)
        oracle = MetricNetOracle(g, grid3d_doubling_decomposition(g))
        assert oracle.query((0, 0, 0), (0, 0, 0)) == 0.0

    def test_invalid_epsilon(self):
        g = grid_3d(3)
        with pytest.raises(ValueError):
            MetricNetOracle(g, grid3d_doubling_decomposition(g), epsilon=0)

    def test_size_report_covers_vertices(self):
        g = grid_3d(4)
        oracle = MetricNetOracle(g, grid3d_doubling_decomposition(g))
        assert set(oracle.size_report().per_vertex) == set(g.vertices())
