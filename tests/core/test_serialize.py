import json

import pytest

from repro.core import build_decomposition, build_labeling
from repro.core.labeling import estimate_distance
from repro.core.labeling import VertexLabel
from repro.core.serialize import (
    RemoteLabels,
    SerializationError,
    canonical_vertex,
    decode_label,
    decode_vertex,
    dump_labeling,
    encode_label,
    encode_vertex,
    load_labeling,
    shard_key_bytes,
    wire_bits,
)
from repro.generators import grid_2d, random_tree
from repro.graphs import dijkstra

from tests.conftest import pair_sample


class TestVertexCodec:
    @pytest.mark.parametrize(
        "v", [0, -17, 3.5, "node-a", (1, 2), ("a", (3, 4)), ((0, 1), (2, 3))]
    )
    def test_round_trip(self, v):
        assert decode_vertex(encode_vertex(v)) == v

    def test_unsupported_type_rejected(self):
        with pytest.raises(SerializationError):
            encode_vertex({"a": 1})

    def test_bool_rejected(self):
        # bools would silently decode as ints; reject them instead.
        with pytest.raises(SerializationError):
            encode_vertex(True)

    def test_malformed_payload_rejected(self):
        with pytest.raises(SerializationError):
            decode_vertex({"unknown": []})

    def test_bool_rejected_on_decode_too(self):
        with pytest.raises(SerializationError):
            decode_vertex(True)


class TestLabelCodec:
    def test_label_round_trip(self, small_grid):
        labeling = build_labeling(small_grid, build_decomposition(small_grid))
        for v in list(small_grid.vertices())[:10]:
            original = labeling.label(v)
            recovered = decode_label(encode_label(original))
            assert recovered.vertex == original.vertex
            assert recovered.entries == original.entries

    def test_encoded_label_is_json_safe(self, small_grid):
        labeling = build_labeling(small_grid, build_decomposition(small_grid))
        label = labeling.label((0, 0))
        json.dumps(encode_label(label))  # no raise

    def test_malformed_label_rejected(self):
        with pytest.raises(SerializationError):
            decode_label({"nope": 1})

    def test_malformed_key_rejected(self):
        with pytest.raises(SerializationError):
            decode_label({"v": 0, "e": {"1:2": []}})


class TestLabelingRoundTrip:
    def test_queries_survive_round_trip(self, tmp_path):
        g = grid_2d(6, weight_range=(1.0, 5.0), seed=1)
        labeling = build_labeling(g, build_decomposition(g), epsilon=0.25)
        path = tmp_path / "labels.json"
        dump_labeling(labeling, path)
        epsilon, labels = load_labeling(path)
        assert epsilon == 0.25
        assert set(labels) == set(g.vertices())
        for u, v in pair_sample(g, 30, seed=2):
            original = labeling.estimate(u, v)
            recovered = estimate_distance(labels[u], labels[v])
            assert recovered == pytest.approx(original)

    def test_load_from_string(self):
        g = random_tree(20, seed=3)
        labeling = build_labeling(g, build_decomposition(g))
        text = dump_labeling(labeling)
        epsilon, labels = load_labeling(text)
        assert len(labels) == 20

    def test_unknown_format_rejected(self):
        with pytest.raises(SerializationError):
            load_labeling(json.dumps({"format": "other", "labels": []}))

    def test_invalid_json_rejected(self):
        with pytest.raises(SerializationError):
            load_labeling("{broken")

    def test_format_stamp_is_versioned(self):
        from repro.core.serialize import (
            LABELS_FORMAT,
            LABELS_FORMAT_PREFIX,
            LABELS_FORMAT_VERSION,
        )

        g = random_tree(10, seed=5)
        labeling = build_labeling(g, build_decomposition(g))
        payload = json.loads(dump_labeling(labeling))
        assert payload["format"] == LABELS_FORMAT
        assert LABELS_FORMAT == f"{LABELS_FORMAT_PREFIX}/{LABELS_FORMAT_VERSION}"

    def test_missing_format_stamp_rejected(self):
        with pytest.raises(SerializationError, match="no format stamp"):
            load_labeling(json.dumps({"epsilon": 0.1, "labels": []}))

    def test_future_version_rejected_with_version_message(self):
        # A v99 file must be refused up front (the serve layer relies on
        # this to reject incompatible files at startup, not mid-request).
        payload = {
            "format": "repro-distance-labels/99",
            "epsilon": 0.1,
            "labels": [],
        }
        with pytest.raises(
            SerializationError, match="unsupported labels format version 99"
        ):
            load_labeling(json.dumps(payload))

    @pytest.mark.parametrize(
        "stamp", ["repro-distance-labels", "repro-distance-labels/x", 1, True]
    )
    def test_garbled_format_stamp_rejected(self, stamp):
        from repro.core.serialize import check_labels_format

        with pytest.raises(SerializationError, match="unknown format"):
            check_labels_format(stamp)


class TestRemoteLabels:
    @pytest.fixture
    def shipped(self):
        g = grid_2d(6, weight_range=(1.0, 5.0), seed=1)
        labeling = build_labeling(g, build_decomposition(g), epsilon=0.25)
        return g, labeling, load_labeling(dump_labeling(labeling))

    def test_load_returns_remote_labels(self, shipped):
        _, _, remote = shipped
        assert isinstance(remote, RemoteLabels)

    def test_tuple_unpacking_still_works(self, shipped):
        _, _, remote = shipped
        epsilon, labels = remote
        assert epsilon == 0.25
        assert labels is remote.labels

    def test_estimate_matches_labeling(self, shipped):
        g, labeling, remote = shipped
        for u, v in pair_sample(g, 30, seed=4):
            assert remote.estimate(u, v) == pytest.approx(
                labeling.estimate(u, v)
            )

    def test_estimate_is_graph_free(self, shipped):
        # The wrapper holds nothing but epsilon and the label dict.
        _, _, remote = shipped
        assert set(remote._fields) == {"epsilon", "labels"}

    def test_missing_vertex_one_line_error(self, shipped):
        from repro.util.errors import GraphError

        _, _, remote = shipped
        with pytest.raises(GraphError, match="has no label"):
            remote.estimate((0, 0), "ghost")

    def test_vertices_and_count(self, shipped):
        g, _, remote = shipped
        assert set(remote.vertices()) == set(g.vertices())
        assert remote.num_labels == g.num_vertices

    def test_payload_without_label_list_rejected(self):
        with pytest.raises(SerializationError):
            load_labeling(
                json.dumps({"format": "repro-distance-labels/1", "epsilon": 0.1})
            )


class TestWireBits:
    def test_positive_and_tracks_entries(self, small_grid):
        labeling = build_labeling(small_grid, build_decomposition(small_grid))
        labels = sorted(
            (labeling.label(v) for v in small_grid.vertices()),
            key=lambda l: l.num_portals,
        )
        assert wire_bits(labels[0]) > 0
        assert wire_bits(labels[-1]) >= wire_bits(labels[0])

    def test_binary_codec_measures_packed_record(self, small_grid):
        from repro.core.binfmt import encode_label_binary

        labeling = build_labeling(small_grid, build_decomposition(small_grid))
        label = labeling.label((0, 0))
        assert wire_bits(label, codec="binary") == 8 * len(
            encode_label_binary(label)
        )

    def test_non_finite_distance_rejected(self):
        label = VertexLabel(vertex=0, entries={(0, 0, 0): [(0.0, float("inf"))]})
        with pytest.raises(SerializationError, match="non-finite"):
            wire_bits(label)
        with pytest.raises(SerializationError, match="non-finite"):
            wire_bits(label, codec="binary")


def _with_bad_portal(dist):
    """A one-vertex labeling holding *dist* in a portal entry."""
    return RemoteLabels(
        0.25, {7: VertexLabel(vertex=7, entries={(0, 0, 0): [(1.0, dist)]})}
    )


class TestStrictJsonDump:
    """Regression: ``dump_labeling`` used to write non-strict JSON.

    Without ``allow_nan=False`` a labeling holding an ``inf`` distance
    silently serialized the token ``Infinity`` — which the serve
    protocol forbids on the wire and ``load_labeling``'s own strict
    parse cannot read back.  Now it raises, naming the culprit.
    """

    @pytest.mark.parametrize("bad", [float("inf"), float("-inf"), float("nan")])
    def test_non_finite_distance_raises_not_writes(self, tmp_path, bad):
        path = tmp_path / "labels.json"
        with pytest.raises(SerializationError, match="vertex 7"):
            dump_labeling(_with_bad_portal(bad), path)
        assert not path.exists()  # nothing half-written

    def test_non_finite_epsilon_raises(self):
        remote = RemoteLabels(float("inf"), {})
        with pytest.raises(SerializationError, match="epsilon"):
            dump_labeling(remote)

    def test_binary_codec_rejects_non_finite_too(self):
        with pytest.raises(SerializationError, match="non-finite"):
            dump_labeling(_with_bad_portal(float("inf")), codec="binary")

    def test_finite_labelings_unaffected(self, small_grid):
        labeling = build_labeling(small_grid, build_decomposition(small_grid))
        text = dump_labeling(labeling)
        assert "Infinity" not in text and "NaN" not in text


class TestDuplicateVertexRejected:
    """Regression: duplicate vertices used to win silently, last-one.

    A payload naming the same vertex twice is corrupt — keeping the
    last copy silently drops a label, turning file corruption into
    spurious "no label" answers far from the cause.
    """

    def _payload(self, vertex_jsons):
        labels = ",".join(
            '{"v": %s, "e": {"0:0:0": [[0.0, 1.0]]}}' % v for v in vertex_jsons
        )
        return (
            '{"format": "repro-distance-labels/1", "epsilon": 0.25, '
            '"labels": [%s]}' % labels
        )

    def test_duplicate_vertex_raises_naming_it(self):
        with pytest.raises(SerializationError, match="duplicate label.*7"):
            load_labeling(self._payload(["7", "3", "7"]))

    def test_distinct_vertices_load_fine(self):
        remote = load_labeling(self._payload(["7", "3"]))
        assert set(remote.labels) == {7, 3}

    def test_binary_codec_rejects_duplicates_at_pack_time(self):
        from repro.core.binfmt import pack_labeling

        class Doubled:
            epsilon = 0.25
            labels = {
                "a": VertexLabel(vertex=7, entries={}),
                "b": VertexLabel(vertex=7, entries={}),
            }

        with pytest.raises(SerializationError, match="duplicate label"):
            pack_labeling(Doubled())


class TestCanonicalVertex:
    @pytest.mark.parametrize(
        "v, expected",
        [
            (1.0, 1),
            (-2.0, -2),
            (0.0, 0),
            (2.5, 2.5),
            (7, 7),
            ("x", "x"),
            ((1.0, "a"), (1, "a")),
            (((3.0,), 2.5), ((3,), 2.5)),
        ],
    )
    def test_integral_floats_collapse(self, v, expected):
        canon = canonical_vertex(v)
        assert canon == expected and type(canon) is type(expected)

    @pytest.mark.parametrize("v", [float("inf"), float("-inf"), float("nan")])
    def test_non_finite_floats_pass_through(self, v):
        # is_integer() is False for inf/nan: they stay floats (and are
        # rejected later, by the codecs that forbid them).
        assert isinstance(canonical_vertex(v), float)

    def test_shard_key_bytes_identifies_numeric_family(self):
        assert shard_key_bytes(1) == shard_key_bytes(1.0)
        assert shard_key_bytes((1, 2.0)) == shard_key_bytes((1.0, 2))
        assert shard_key_bytes(1) != shard_key_bytes(1.5)
        assert shard_key_bytes("1") != shard_key_bytes(1)


class TestCodecDispatch:
    @pytest.fixture
    def remote(self, small_grid):
        labeling = build_labeling(small_grid, build_decomposition(small_grid))
        return load_labeling(dump_labeling(labeling))

    def test_dump_binary_returns_blob_and_loads_back(self, remote, tmp_path):
        from repro.core.binfmt import is_binary_labels

        blob = dump_labeling(remote, codec="binary")
        assert isinstance(blob, bytes) and is_binary_labels(blob)
        assert load_labeling(blob).labels == remote.labels

    def test_dump_binary_to_file_sniffed_on_load(self, remote, tmp_path):
        path = tmp_path / "labels.bin"
        dump_labeling(remote, path, codec="binary")
        back = load_labeling(path)
        assert back.epsilon == remote.epsilon
        assert back.labels == remote.labels

    def test_round_trip_through_binary_is_byte_identical_json(self, remote):
        blob = dump_labeling(remote, codec="binary")
        assert dump_labeling(load_labeling(blob)) == dump_labeling(remote)

    def test_unknown_codec_rejected(self, remote):
        with pytest.raises(SerializationError, match="unknown codec"):
            dump_labeling(remote, codec="msgpack")

    def test_json_payload_claiming_binary_version_rejected(self):
        payload = {
            "format": "repro-distance-labels/2",
            "epsilon": 0.1,
            "labels": [],
        }
        with pytest.raises(SerializationError, match="binary"):
            load_labeling(json.dumps(payload))

    def test_undecodable_bytes_payload_rejected(self):
        with pytest.raises(SerializationError, match="undecodable"):
            load_labeling(b"\xff\xfe\x00garbage")

    def test_json_bytes_payload_accepted(self, remote):
        text = dump_labeling(remote)
        assert load_labeling(text.encode("utf-8")).labels == remote.labels
