import json

import pytest

from repro.core import build_decomposition, build_labeling
from repro.core.labeling import estimate_distance
from repro.core.serialize import (
    RemoteLabels,
    SerializationError,
    decode_label,
    decode_vertex,
    dump_labeling,
    encode_label,
    encode_vertex,
    load_labeling,
    wire_bits,
)
from repro.generators import grid_2d, random_tree
from repro.graphs import dijkstra

from tests.conftest import pair_sample


class TestVertexCodec:
    @pytest.mark.parametrize(
        "v", [0, -17, 3.5, "node-a", (1, 2), ("a", (3, 4)), ((0, 1), (2, 3))]
    )
    def test_round_trip(self, v):
        assert decode_vertex(encode_vertex(v)) == v

    def test_unsupported_type_rejected(self):
        with pytest.raises(SerializationError):
            encode_vertex({"a": 1})

    def test_bool_rejected(self):
        # bools would silently decode as ints; reject them instead.
        with pytest.raises(SerializationError):
            encode_vertex(True)

    def test_malformed_payload_rejected(self):
        with pytest.raises(SerializationError):
            decode_vertex({"unknown": []})

    def test_bool_rejected_on_decode_too(self):
        with pytest.raises(SerializationError):
            decode_vertex(True)


class TestLabelCodec:
    def test_label_round_trip(self, small_grid):
        labeling = build_labeling(small_grid, build_decomposition(small_grid))
        for v in list(small_grid.vertices())[:10]:
            original = labeling.label(v)
            recovered = decode_label(encode_label(original))
            assert recovered.vertex == original.vertex
            assert recovered.entries == original.entries

    def test_encoded_label_is_json_safe(self, small_grid):
        labeling = build_labeling(small_grid, build_decomposition(small_grid))
        label = labeling.label((0, 0))
        json.dumps(encode_label(label))  # no raise

    def test_malformed_label_rejected(self):
        with pytest.raises(SerializationError):
            decode_label({"nope": 1})

    def test_malformed_key_rejected(self):
        with pytest.raises(SerializationError):
            decode_label({"v": 0, "e": {"1:2": []}})


class TestLabelingRoundTrip:
    def test_queries_survive_round_trip(self, tmp_path):
        g = grid_2d(6, weight_range=(1.0, 5.0), seed=1)
        labeling = build_labeling(g, build_decomposition(g), epsilon=0.25)
        path = tmp_path / "labels.json"
        dump_labeling(labeling, path)
        epsilon, labels = load_labeling(path)
        assert epsilon == 0.25
        assert set(labels) == set(g.vertices())
        for u, v in pair_sample(g, 30, seed=2):
            original = labeling.estimate(u, v)
            recovered = estimate_distance(labels[u], labels[v])
            assert recovered == pytest.approx(original)

    def test_load_from_string(self):
        g = random_tree(20, seed=3)
        labeling = build_labeling(g, build_decomposition(g))
        text = dump_labeling(labeling)
        epsilon, labels = load_labeling(text)
        assert len(labels) == 20

    def test_unknown_format_rejected(self):
        with pytest.raises(SerializationError):
            load_labeling(json.dumps({"format": "other", "labels": []}))

    def test_invalid_json_rejected(self):
        with pytest.raises(SerializationError):
            load_labeling("{broken")

    def test_format_stamp_is_versioned(self):
        from repro.core.serialize import (
            LABELS_FORMAT,
            LABELS_FORMAT_PREFIX,
            LABELS_FORMAT_VERSION,
        )

        g = random_tree(10, seed=5)
        labeling = build_labeling(g, build_decomposition(g))
        payload = json.loads(dump_labeling(labeling))
        assert payload["format"] == LABELS_FORMAT
        assert LABELS_FORMAT == f"{LABELS_FORMAT_PREFIX}/{LABELS_FORMAT_VERSION}"

    def test_missing_format_stamp_rejected(self):
        with pytest.raises(SerializationError, match="no format stamp"):
            load_labeling(json.dumps({"epsilon": 0.1, "labels": []}))

    def test_future_version_rejected_with_version_message(self):
        # A v99 file must be refused up front (the serve layer relies on
        # this to reject incompatible files at startup, not mid-request).
        payload = {
            "format": "repro-distance-labels/99",
            "epsilon": 0.1,
            "labels": [],
        }
        with pytest.raises(
            SerializationError, match="unsupported labels format version 99"
        ):
            load_labeling(json.dumps(payload))

    @pytest.mark.parametrize(
        "stamp", ["repro-distance-labels", "repro-distance-labels/x", 1, True]
    )
    def test_garbled_format_stamp_rejected(self, stamp):
        from repro.core.serialize import check_labels_format

        with pytest.raises(SerializationError, match="unknown format"):
            check_labels_format(stamp)


class TestRemoteLabels:
    @pytest.fixture
    def shipped(self):
        g = grid_2d(6, weight_range=(1.0, 5.0), seed=1)
        labeling = build_labeling(g, build_decomposition(g), epsilon=0.25)
        return g, labeling, load_labeling(dump_labeling(labeling))

    def test_load_returns_remote_labels(self, shipped):
        _, _, remote = shipped
        assert isinstance(remote, RemoteLabels)

    def test_tuple_unpacking_still_works(self, shipped):
        _, _, remote = shipped
        epsilon, labels = remote
        assert epsilon == 0.25
        assert labels is remote.labels

    def test_estimate_matches_labeling(self, shipped):
        g, labeling, remote = shipped
        for u, v in pair_sample(g, 30, seed=4):
            assert remote.estimate(u, v) == pytest.approx(
                labeling.estimate(u, v)
            )

    def test_estimate_is_graph_free(self, shipped):
        # The wrapper holds nothing but epsilon and the label dict.
        _, _, remote = shipped
        assert set(remote._fields) == {"epsilon", "labels"}

    def test_missing_vertex_one_line_error(self, shipped):
        from repro.util.errors import GraphError

        _, _, remote = shipped
        with pytest.raises(GraphError, match="has no label"):
            remote.estimate((0, 0), "ghost")

    def test_vertices_and_count(self, shipped):
        g, _, remote = shipped
        assert set(remote.vertices()) == set(g.vertices())
        assert remote.num_labels == g.num_vertices

    def test_payload_without_label_list_rejected(self):
        with pytest.raises(SerializationError):
            load_labeling(
                json.dumps({"format": "repro-distance-labels/1", "epsilon": 0.1})
            )


class TestWireBits:
    def test_positive_and_tracks_entries(self, small_grid):
        labeling = build_labeling(small_grid, build_decomposition(small_grid))
        labels = sorted(
            (labeling.label(v) for v in small_grid.vertices()),
            key=lambda l: l.num_portals,
        )
        assert wire_bits(labels[0]) > 0
        assert wire_bits(labels[-1]) >= wire_bits(labels[0])
