"""Differential test wall: the flat backend IS the dict backend.

Every layer that can observe a labeling is compared byte-for-byte
between ``backend="dict"`` (the pure-Python reference) and
``backend="flat"`` (the CSR/flat-array core):

* construction — ``dump_labeling`` JSON text and the packed ``/2``
  binary blob are compared as raw bytes, across **all five separator
  engines**, serial and parallel builds;
* serving — a server backed by a flat store must emit DIST and BATCH
  reply *lines* identical to a server backed by a dict store, for the
  JSON and the mmap'd binary codec alike;
* dynamics — applying the same ``LabelDelta`` sequence to a dict store
  and a flat store must leave their answers byte-identical.

This wall runs unconditionally: numpy/scipy are part of the supported
environment, so a missing flat backend is a *failure* here, never a
skip.  (The graceful-degradation path is covered separately in
``tests/core/test_flat_unit.py`` with monkeypatched imports.)
"""

import asyncio
import json
import math
import random

import pytest

from repro.core import (
    CenterBagEngine,
    GreedyPeelingEngine,
    StrongGreedyEngine,
    TreeCentroidEngine,
    build_decomposition,
    build_labeling,
    dump_labeling,
    flat_available,
    load_labeling,
)
from repro.core.binfmt import pack_labeling
from repro.dynamic import incremental_relabel
from repro.generators import (
    grid_2d,
    k_tree,
    random_delaunay_graph,
    random_planar_graph,
    random_tree,
)
from repro.planar import PlanarCycleEngine
from repro.serve import OracleServer, ShardedLabelStore, StoreCatalog
from repro.serve.loadgen import synthesize_pairs

from tests.dynamic.test_rebuild import random_reweight
from tests.serve.conftest import rpc
from tests.serve.test_server import wire

# One graph family per engine, matched to what the engine is for:
# greedy peeling likes bounded-degree meshes, center-bag needs a
# chordal-ish k-tree, the centroid engine requires a tree, strong
# greedy eats dense-ish grids, and the planar engine planar graphs.
ENGINE_CASES = [
    pytest.param(
        lambda: random_delaunay_graph(36, seed=3)[0],
        lambda: GreedyPeelingEngine(seed=7),
        id="delaunay-greedy",
    ),
    pytest.param(
        lambda: k_tree(36, 3, seed=1)[0],
        lambda: CenterBagEngine(order="min_degree"),
        id="ktree-centerbag",
    ),
    pytest.param(
        lambda: random_tree(40, weight_range=(1.0, 3.0), seed=2),
        lambda: TreeCentroidEngine(),
        id="tree-centroid",
    ),
    pytest.param(
        lambda: grid_2d(6, weight_range=(1.0, 5.0), seed=4),
        lambda: StrongGreedyEngine(seed=5),
        id="grid-stronggreedy",
    ),
    pytest.param(
        lambda: random_planar_graph(36, seed=6),
        lambda: PlanarCycleEngine(),
        id="planar-planarcycle",
    ),
]


def _build_pair(make_graph, make_engine, epsilon=0.25):
    """The same (graph, tree) labeled by both backends."""
    graph = make_graph()
    tree = build_decomposition(graph, engine=make_engine())
    ref = build_labeling(graph, tree, epsilon=epsilon, backend="dict")
    flat = build_labeling(graph, tree, epsilon=epsilon, backend="flat")
    return graph, tree, ref, flat


def test_flat_backend_is_available_here():
    # The wall's no-skip guarantee: in this environment the flat
    # backend must exist.  If numpy/scipy ever vanish from the image,
    # this fails loudly instead of silently skipping the whole wall.
    assert flat_available()


class TestConstructionByteIdentity:
    @pytest.mark.parametrize("make_graph, make_engine", ENGINE_CASES)
    def test_json_and_binary_dumps_identical(self, make_graph, make_engine):
        _, _, ref, flat = _build_pair(make_graph, make_engine)
        assert dump_labeling(flat) == dump_labeling(ref)
        for num_shards in (1, 4):
            assert pack_labeling(flat, num_shards=num_shards) == pack_labeling(
                ref, num_shards=num_shards
            )

    @pytest.mark.parametrize("make_graph, make_engine", ENGINE_CASES)
    def test_parallel_flat_build_identical(self, make_graph, make_engine):
        graph, tree, ref, _ = _build_pair(make_graph, make_engine)
        par = build_labeling(
            graph, tree, epsilon=0.25, backend="flat", parallel=2
        )
        assert dump_labeling(par) == dump_labeling(ref)

    @pytest.mark.parametrize("make_graph, make_engine", ENGINE_CASES)
    def test_estimates_bit_equal_on_all_pairs(self, make_graph, make_engine):
        graph, _, ref, flat = _build_pair(make_graph, make_engine)
        verts = sorted(graph.vertices(), key=repr)
        for u in verts:
            for v in verts:
                a = ref.estimate(u, v)
                b = flat.estimate(u, v)
                # Bitwise: repr distinguishes every finite float, and
                # inf == inf covers the unreachable case.
                assert repr(a) == repr(b), (u, v, a, b)


async def _serve_lines(store, requests):
    """Raw reply lines for *requests* from a fresh one-store server."""
    catalog = StoreCatalog()
    catalog.add(store)
    server = OracleServer(catalog, port=0)
    await server.start()
    try:
        return await rpc(server.port, requests)
    finally:
        await server.shutdown()


def _query_requests(pairs):
    requests = [
        {"id": i, "op": "DIST", "u": wire(u), "v": wire(v)}
        for i, (u, v) in enumerate(pairs)
    ]
    requests.append(
        {
            "id": len(requests),
            "op": "BATCH",
            "pairs": [[wire(u), wire(v)] for u, v in pairs],
        }
    )
    return requests


class TestServedByteIdentity:
    @pytest.mark.parametrize("make_graph, make_engine", ENGINE_CASES)
    def test_dist_and_batch_lines_identical_json_codec(
        self, make_graph, make_engine
    ):
        _, _, ref, _ = _build_pair(make_graph, make_engine)
        remote = load_labeling(dump_labeling(ref))
        pairs = synthesize_pairs(list(remote.vertices()), 16, seed=21)
        requests = _query_requests(pairs)

        async def main():
            dict_lines = await _serve_lines(
                ShardedLabelStore.from_remote(
                    "wall", remote, num_shards=4, backend="dict"
                ),
                requests,
            )
            flat_lines = await _serve_lines(
                ShardedLabelStore.from_remote(
                    "wall", remote, num_shards=4, backend="flat"
                ),
                requests,
            )
            return dict_lines, flat_lines

        dict_lines, flat_lines = asyncio.run(main())
        assert flat_lines == dict_lines
        # And the lines carry real payloads, not shared error chatter.
        for line in dict_lines:
            assert json.loads(line)["ok"] is True

    @pytest.mark.parametrize("make_graph, make_engine", ENGINE_CASES)
    def test_dist_and_batch_lines_identical_binary_codec(
        self, make_graph, make_engine, tmp_path
    ):
        _, _, ref, flat = _build_pair(make_graph, make_engine)
        path = tmp_path / "labels.bin"
        dump_labeling(flat, path, codec="binary", num_shards=4)
        remote = load_labeling(dump_labeling(ref))
        pairs = synthesize_pairs(list(remote.vertices()), 16, seed=22)
        requests = _query_requests(pairs)

        async def main():
            dict_lines = await _serve_lines(
                ShardedLabelStore.load(path, name="wall", backend="dict"),
                requests,
            )
            flat_lines = await _serve_lines(
                ShardedLabelStore.load(path, name="wall", backend="flat"),
                requests,
            )
            return dict_lines, flat_lines

        dict_lines, flat_lines = asyncio.run(main())
        assert flat_lines == dict_lines
        for line in dict_lines:
            assert json.loads(line)["ok"] is True


class TestDeltaByteIdentity:
    @pytest.mark.parametrize("make_graph, make_engine", ENGINE_CASES)
    def test_delta_application_keeps_stores_identical(
        self, make_graph, make_engine
    ):
        graph, tree, ref, _ = _build_pair(make_graph, make_engine)
        # Two independent snapshots of the pristine labels, one per
        # backend; incremental_relabel then mutates the *builder*
        # labeling and emits deltas both stores must track.
        remote_a = load_labeling(dump_labeling(ref))
        remote_b = load_labeling(dump_labeling(ref))
        dict_store = ShardedLabelStore.from_remote(
            "wall", remote_a, num_shards=4, backend="dict"
        )
        flat_store = ShardedLabelStore.from_remote(
            "wall", remote_b, num_shards=4, backend="flat"
        )
        pairs = synthesize_pairs(list(remote_a.vertices()), 20, seed=23)
        rng = random.Random(29)
        for _ in range(3):
            delta = incremental_relabel(ref, random_reweight(rng, graph))
            dict_store.apply_label_changes(delta.changes, delta.removals)
            flat_store.apply_label_changes(delta.changes, delta.removals)
            for u, v in pairs:
                a = dict_store.estimate(u, v)
                b = flat_store.estimate(u, v)
                assert repr(a) == repr(b), (u, v, a, b)
                # The moved labels also agree with the mutated builder
                # labeling itself — the store tracked reality.
                c = ref.estimate(u, v)
                assert repr(a) == repr(c), (u, v, a, c)

    def test_mapped_store_overlay_deltas_identical(self, tmp_path):
        graph = grid_2d(5, weight_range=(1.0, 5.0), seed=9)
        tree = build_decomposition(graph)
        ref = build_labeling(graph, tree, epsilon=0.25, backend="dict")
        path = tmp_path / "labels.bin"
        dump_labeling(ref, path, codec="binary", num_shards=4)
        dict_store = ShardedLabelStore.load(path, name="wall", backend="dict")
        flat_store = ShardedLabelStore.load(path, name="wall", backend="flat")
        pairs = synthesize_pairs(sorted(graph.vertices()), 20, seed=31)
        rng = random.Random(41)
        try:
            for _ in range(3):
                delta = incremental_relabel(ref, random_reweight(rng, graph))
                dict_store.apply_label_changes(delta.changes, delta.removals)
                flat_store.apply_label_changes(delta.changes, delta.removals)
                for u, v in pairs:
                    a = dict_store.estimate(u, v)
                    b = flat_store.estimate(u, v)
                    assert repr(a) == repr(b), (u, v, a, b)
        finally:
            dict_store.close()
            flat_store.close()
